//! Fig. 2(e–h): localization steps — co-designed HMGM-CIM versus the
//! conventional digital GMM.
//!
//! Runs Monte-Carlo localization over the same dataset with both map
//! backends and prints per-frame position error and particle spread, plus
//! the final accuracy comparison the paper reports ("matching accuracy").
//!
//! Run: `cargo run --release -p navicim-bench --bin fig2eh`

use navicim_analog::engine::HmgmCimEngine;
use navicim_analog::mapping::SpaceMap;
use navicim_bench::standard_localization_dataset;
use navicim_core::localization::{CimLocalizer, LocalizerConfig};
use navicim_core::registry::{CIM_HMGM, DIGITAL_GMM};
use navicim_core::reportfmt::Table;
use navicim_device::params::TechParams;
use navicim_gmm::fit::FitConfig;

fn main() {
    println!("# Fig. 2(e-h) — localization: HMGM-CIM vs conventional GMM\n");
    let dataset = standard_localization_dataset();
    println!(
        "workload: {} map points, {} frames, {}x{} depth images\n",
        dataset.map_points.len(),
        dataset.frames.len(),
        dataset.frames[0].depth.width(),
        dataset.frames[0].depth.height(),
    );

    let config = |backend: &str| LocalizerConfig {
        num_particles: 400,
        components: 16,
        pixel_stride: 11,
        backend: backend.into(),
        seed: 11,
        ..LocalizerConfig::default()
    };

    let mut digital =
        CimLocalizer::build(&dataset, config(DIGITAL_GMM)).expect("digital localizer builds");
    let digital_run = digital.run(&dataset).expect("digital run completes");

    // Resolution-matched digital baseline: the GMM constrained to the same
    // minimum kernel width the device can realize (the map-family-fair
    // comparison; the unconstrained GMM can exploit arbitrarily thin
    // planar components no analog kernel realizes).
    let tech = TechParams::cmos_45nm();
    let space = SpaceMap::fit_to_points(
        &dataset.map_points_as_rows(),
        tech.vdd * 0.15,
        tech.vdd * 0.85,
        0.1,
    )
    .expect("space map fits");
    let (floors, _) = HmgmCimEngine::recommended_sigma_bounds_per_axis(&tech, &space);
    let min_floor = floors.iter().cloned().fold(f64::INFINITY, f64::min);
    let mut matched = CimLocalizer::build(
        &dataset,
        LocalizerConfig {
            fit: FitConfig {
                var_floor: min_floor * min_floor,
                ..FitConfig::default()
            },
            ..config(DIGITAL_GMM)
        },
    )
    .expect("matched localizer builds");
    let matched_run = matched.run(&dataset).expect("matched run completes");

    // Default CimEngineConfig: 4-bit DACs, variation on.
    let mut cim = CimLocalizer::build(&dataset, config(CIM_HMGM)).expect("cim localizer builds");
    let cim_run = cim.run(&dataset).expect("cim run completes");

    println!("## per-frame position error and particle spread (metres)");
    let mut table = Table::new(vec![
        "frame",
        "gmm error",
        "gmm spread",
        "cim error",
        "cim spread",
    ]);
    for i in 0..digital_run.errors.len() {
        table.row(vec![
            format!("{}", i + 1),
            format!("{:.4}", digital_run.errors[i]),
            format!("{:.4}", digital_run.spreads[i]),
            format!("{:.4}", cim_run.errors[i]),
            format!("{:.4}", cim_run.spreads[i]),
        ]);
    }
    println!("{table}");

    println!("## summary");
    let mut summary = Table::new(vec!["backend", "steady-state error (m)", "point evals"]);
    summary.row(vec![
        "digital GMM, unconstrained sigma (conventional)".into(),
        format!("{:.4}", digital_run.steady_state_error()),
        format!("{}", digital_run.point_evaluations),
    ]);
    summary.row(vec![
        "digital GMM, device-matched sigma floor".into(),
        format!("{:.4}", matched_run.steady_state_error()),
        format!("{}", matched_run.point_evaluations),
    ]);
    summary.row(vec![
        "HMGM inverter-array CIM (co-design)".into(),
        format!("{:.4}", cim_run.steady_state_error()),
        format!("{}", cim_run.point_evaluations),
    ]);
    println!("{summary}");

    let d = digital_run.steady_state_error();
    let m = matched_run.steady_state_error();
    let c = cim_run.steady_state_error();
    println!(
        "paper shape check ('matching accuracy', Fig. 2(e-h)): CIM converges and \
         tracks like the conventional filter. Steady state: CIM {c:.3} m vs \
         unconstrained GMM {d:.3} m ({:.1}x) vs resolution-matched GMM {m:.3} m \
         ({:.2}x) -> {}",
        c / d,
        c / m,
        if c < m * 1.3 || c < d * 2.5 {
            "REPRODUCED"
        } else {
            "MISMATCH"
        }
    );
}
