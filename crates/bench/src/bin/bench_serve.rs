//! Fleet-serving throughput benchmark with a machine-readable JSON trail.
//!
//! Sweeps agent count × worker count over the two [`Fleet`] serving
//! modes:
//!
//! - `independent` — every session runs its monolithic
//!   `LocalizationPipeline::step`, i.e. N independent pipelines sharing
//!   nothing but the scheduler. This is the baseline.
//! - `coalesced` — per-frame likelihood evaluations from all sessions
//!   are merged into one `PointBatch` call per backend slot, amortizing
//!   per-call overheads (and, under `--features parallel`, crossing the
//!   chunking threshold small per-session batches never reach).
//!
//! Reported per configuration: aggregate frames/sec across the fleet and
//! per-agent p50/p99 frame latency. The parity gate re-runs every agent
//! count in both modes and requires **bit-identical** frame reports —
//! the determinism contract the serving layer is built on — exiting
//! non-zero on any mismatch so CI catches rot.
//!
//! Run: `cargo run --release -p navicim-bench --bin bench_serve`
//!
//! Flags:
//! - `--smoke` — tiny fleets and one rep (CI),
//! - `--out PATH` — JSON snapshot path (default `BENCH_serve.json`).

use navicim_core::localization::LocalizerConfig;
use navicim_core::pipeline::{FrameReport, GateConfig, HysteresisConfig, LocalizationPipeline};
use navicim_core::registry::{CIM_HMGM, DIGITAL_GMM};
use navicim_gmm::prune::PruneConfig;
use navicim_scene::dataset::{LocalizationConfig, LocalizationDataset};
use navicim_serve::{Fleet, FleetConfig, TaskOrder};
use std::time::Instant;

/// Seed for the per-agent session forks (`seed_base + i`).
const SEED_BASE: u64 = 4000;

fn dataset(smoke: bool) -> LocalizationDataset {
    LocalizationDataset::generate(
        &LocalizationConfig {
            image_width: 24,
            image_height: 18,
            map_points: 600,
            frames: if smoke { 4 } else { 6 },
            ..LocalizationConfig::default()
        },
        11,
    )
    .expect("dataset generates")
}

/// Serving workload: a modest per-session frame (64 particles, strided
/// 24×18 scans → ~2k staged points) so large fleets still sweep in CI
/// time. A gated digital+analog pair keeps both backend slots (and slot
/// migration) in play.
fn config() -> LocalizerConfig {
    LocalizerConfig {
        num_particles: 64,
        pixel_stride: 7,
        components: 8,
        gate: GateConfig::gated(DIGITAL_GMM, CIM_HMGM).with_hysteresis(HysteresisConfig {
            analog_enter: 0.12,
            digital_enter: 0.2,
            dwell: 2,
            start: 0,
        }),
        seed: 5,
        ..LocalizerConfig::default()
    }
}

struct Row {
    mode: &'static str,
    prune: bool,
    agents: usize,
    workers: usize,
    agg_fps: f64,
    p50_ms: f64,
    p99_ms: f64,
}

/// Builds a fresh fleet and streams the dataset once, returning wall
/// seconds and every per-agent round latency (ns). Rebuilt per rep:
/// sessions advance, so a fleet cannot be re-run.
fn run_once(
    prototype: &LocalizationPipeline,
    ds: &LocalizationDataset,
    agents: usize,
    fleet_config: FleetConfig,
) -> (f64, Vec<u64>, Vec<Vec<FrameReport>>) {
    let mut fleet = Fleet::new(prototype, agents, SEED_BASE, fleet_config).expect("fleet builds");
    let controls = ds.control_deltas();
    let mut latencies: Vec<u64> = Vec::with_capacity(agents * controls.len());
    let mut per_session: Vec<Vec<FrameReport>> = (0..agents).map(|_| Vec::new()).collect();
    let t0 = Instant::now();
    for (t, control) in controls.iter().enumerate() {
        let reports = fleet
            .step_round(control, &ds.frames[t + 1].depth, ds.frames[t + 1].pose)
            .expect("round succeeds");
        for (s, report) in reports.iter().enumerate() {
            per_session[s].push(report.clone());
        }
        latencies.extend_from_slice(fleet.last_latencies_ns());
    }
    (t0.elapsed().as_secs_f64(), latencies, per_session)
}

/// Percentile over a sorted slice (nearest-rank).
fn percentile_ms(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0 * sorted_ns.len() as f64).ceil() as usize).clamp(1, sorted_ns.len());
    sorted_ns[rank - 1] as f64 / 1e6
}

fn json_escape_free(s: &str) -> &str {
    // All strings we emit are static identifiers/paths without quotes or
    // control characters; assert instead of escaping.
    assert!(!s.contains(['"', '\\', '\n']), "string needs escaping: {s}");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_serve.json".to_string());

    let agent_counts: &[usize] = if smoke { &[4, 8] } else { &[16, 64, 256] };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Always include the single-worker column (the scheduling-free
    // reference); add multi-worker columns up to the host's cores so a
    // re-run on a bigger box sweeps the worker dimension for free.
    let mut worker_counts: Vec<usize> = vec![1];
    for w in [2usize, 4, 8] {
        if w <= cores {
            worker_counts.push(w);
        }
    }
    let reps = if smoke { 1 } else { 3 };

    let ds = dataset(smoke);
    let prototype = LocalizationPipeline::build(&ds, config()).expect("prototype builds");
    // Pruned twin of the serving workload: the spatial index gates
    // likelihood components per tile, so its outputs drift from the full
    // evaluation by up to the documented epsilon — and digital tiles
    // anchor at batch offsets, which coalescing changes. Pruned rows are
    // therefore a timing column only; the bitwise parity gate below stays
    // on the prune-off configuration, where coalescing is unobservable.
    let prototype_pruned = LocalizationPipeline::build(
        &ds,
        LocalizerConfig {
            prune: PruneConfig::enabled(),
            ..config()
        },
    )
    .expect("pruned prototype builds");
    let frames = ds.control_deltas().len();

    // ---- parity gate: coalesced ≡ independent, bit-for-bit ----
    // Independent mode is per-session monolithic stepping — i.e. exactly
    // the N-solo-pipelines baseline — so equality here *is* the
    // bit-identity-to-solo guarantee, at fleet scale.
    let mut parity = true;
    for &agents in agent_counts {
        let (_, _, solo) = run_once(
            &prototype,
            &ds,
            agents,
            FleetConfig {
                workers: 1,
                coalesce: false,
                order: TaskOrder::Forward,
            },
        );
        let (_, _, coalesced) = run_once(
            &prototype,
            &ds,
            agents,
            FleetConfig {
                workers: *worker_counts.last().unwrap(),
                coalesce: true,
                order: TaskOrder::Shuffled(7),
            },
        );
        if solo != coalesced {
            eprintln!("FAIL: coalesced fleet diverged from independent baseline at N={agents}");
            parity = false;
        }
    }

    // ---- throughput sweep ----
    // The prune-on pass runs at the widest worker column only: the prune
    // lever is per-evaluation, so one worker setting captures it without
    // doubling the sweep.
    let max_workers = *worker_counts.last().unwrap();
    let mut rows: Vec<Row> = Vec::new();
    println!("mode         prune agents workers  agg fps   p50 ms   p99 ms  speedup");
    for &agents in agent_counts {
        for prune in [false, true] {
            for &workers in &worker_counts {
                if prune && workers != max_workers {
                    continue;
                }
                let mut pair_fps = [0.0f64; 2];
                for (m, (mode, coalesce)) in [("independent", false), ("coalesced", true)]
                    .into_iter()
                    .enumerate()
                {
                    let mut best_secs = f64::INFINITY;
                    let mut best_lat: Vec<u64> = Vec::new();
                    for _ in 0..reps {
                        let (secs, lat, _) = run_once(
                            if prune { &prototype_pruned } else { &prototype },
                            &ds,
                            agents,
                            FleetConfig {
                                workers,
                                coalesce,
                                order: TaskOrder::Forward,
                            },
                        );
                        if secs < best_secs {
                            best_secs = secs;
                            best_lat = lat;
                        }
                    }
                    best_lat.sort_unstable();
                    let agg_fps = (agents * frames) as f64 / best_secs;
                    let p50_ms = percentile_ms(&best_lat, 50.0);
                    let p99_ms = percentile_ms(&best_lat, 99.0);
                    pair_fps[m] = agg_fps;
                    let speedup = if m == 1 {
                        format!("{:>6.2}x", pair_fps[1] / pair_fps[0])
                    } else {
                        "      -".to_string()
                    };
                    println!(
                        "{mode:<12} {:>5} {agents:>6} {workers:>7} {agg_fps:>8.0} {p50_ms:>8.2} {p99_ms:>8.2} {speedup}",
                        if prune { "on" } else { "off" }
                    );
                    rows.push(Row {
                        mode,
                        prune,
                        agents,
                        workers,
                        agg_fps,
                        p50_ms,
                        p99_ms,
                    });
                }
            }
        }
    }
    println!("parity (coalesced ≡ independent baseline): {parity}");

    // ---- JSON snapshot ----
    let mut json_rows = String::new();
    for r in &rows {
        if !json_rows.is_empty() {
            json_rows.push_str(",\n");
        }
        json_rows.push_str(&format!(
            "    {{\"mode\": \"{}\", \"prune\": {}, \"agents\": {}, \"workers\": {}, \"agg_frames_per_sec\": {:.1}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}",
            json_escape_free(r.mode),
            r.prune,
            r.agents,
            r.workers,
            r.agg_fps,
            r.p50_ms,
            r.p99_ms
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"smoke\": {smoke},\n  \"host\": {{\"arch\": \"{}\", \"os\": \"{}\", \"cores\": {cores}, \"target_cpu\": \"{}\"}},\n  \"config\": {{\"frames\": {frames}, \"particles\": 64, \"pixel_stride\": 7, \"reps\": {reps}}},\n  \"parity\": {{\"bit_identical\": {parity}}},\n  \"rows\": [\n{json_rows}\n  ]\n}}\n",
        json_escape_free(std::env::consts::ARCH),
        json_escape_free(std::env::consts::OS),
        json_escape_free(navicim_bench::target_cpu_label()),
    );
    std::fs::write(&out_path, json).expect("write bench snapshot");
    println!("wrote {out_path}");

    if !parity {
        std::process::exit(1);
    }
}
