//! Kernel micro-benchmarks with a machine-readable JSON trail.
//!
//! Times the three likelihood hot paths of the SIMD campaign — the
//! digital [`GmmEvalPlan`] batch path, the math HMGM batch path and the
//! analog CIM engine — against in-binary reimplementations of their
//! **pre-vectorization scalar baselines**, so before/after live in one
//! honest run:
//!
//! - `gmm_plan` vs `gmm_plan_scalar_ref` — plain `quad += nhiv·d·d`
//!   accumulation and a `f64::exp` log-sum-exp, exactly the seed's loop;
//! - `hmgm` vs `hmgm_scalar_ref` — `f64::exp` axis factors and a plain
//!   `Σ w·h(x)` mixture sum;
//! - `cim_engine` vs `cim_engine_direct` — the engine with its per-code
//!   current table disabled ([`HmgmCimEngine::with_direct_eval`]), i.e.
//!   the seed's DAC → EKV device model → Kirchhoff sum per evaluation.
//!
//! Every pairing is parity-checked inline: the analog pair must agree
//! *bitwise* (the code LUT is an exact cache); the digital pairs carry
//! the documented `exp_fast` ulp-bounded tolerance and are gated at
//! [`DIGITAL_MAX_ULP`]. Parity failure exits non-zero so CI catches rot.
//!
//! Run: `cargo run --release -p navicim-bench --bin bench_kernels`
//!
//! Flags:
//! - `--smoke` — tiny rep counts and the small workload only (CI),
//! - `--threads` — additionally sweep worker counts per kernel under
//!   pinned [`ChunkPolicy::exact`] splits, emitting `variant: "threads"`
//!   rows whose `workers` field varies. This is the re-tune harness for
//!   [`par::MIN_CHUNK`]: run it with `--features parallel` on a ≥4-core
//!   host, read off the batch size where the multi-worker rows cross
//!   below the single-worker row, and move the constant. Without the
//!   feature the sweep still runs but every worker count collapses to
//!   one thread (noted in the output), so rows only measure chunking
//!   overhead.
//! - `--out PATH` — JSON snapshot path (default `BENCH_kernels.json`).

use navicim_analog::engine::{CimEngineConfig, HmgmCimEngine};
use navicim_analog::mapping::SpaceMap;
use navicim_backend::par::{self, ChunkPolicy};
use navicim_backend::{LikelihoodBackend, PointBatch};
use navicim_gmm::fit::{fit_diag_gmm, FitConfig};
use navicim_gmm::gaussian::{Covariance, Gmm};
use navicim_gmm::hmg::{fit_hmgm, HmgKernel, HmgmFitConfig, HmgmModel};
use navicim_gmm::prune::{PruneConfig, PRUNE_EPSILON};
use navicim_math::rng::{Pcg32, SampleExt};
use navicim_math::simd::ulp_distance;
use navicim_math::stats::{log_sum_exp, LN_2PI};
use std::time::Instant;

/// Batch sizes tracked in the perf trajectory (shared with
/// `benches/bench_likelihood.rs`).
const BATCH_SIZES: [usize; 3] = [64, 256, 1024];

/// Regression gate on the digital fast-vs-reference drift, in ulps of
/// the final log-likelihood. The per-call `exp_fast` bound is ≤ 4 ulp;
/// after the log-sum-exp / mixture-sum reassociation through a ~1e1
/// dynamic range this lands in the tens of ulps, so a four-thousand-ulp
/// drift means a kernel broke, not that rounding moved.
const DIGITAL_MAX_ULP: u64 = 4096;

fn blob_points(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = Pcg32::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            vec![
                rng.sample_normal(0.0, 0.5),
                rng.sample_normal(0.0, 0.5),
                rng.sample_normal(0.5, 0.3),
            ]
        })
        .collect()
}

/// Best (minimum) ns per call of `f`, over `reps` samples of `iters`
/// calls each. Minimum beats median on a shared/1-core host: scheduler
/// noise only ever adds time, so the fastest sample is the closest
/// estimate of the kernel's intrinsic cost.
fn time_ns<F: FnMut()>(reps: usize, iters: usize, mut f: F) -> f64 {
    f(); // warm caches and branch predictors
    (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            t.elapsed().as_nanos() as f64 / iters as f64
        })
        .fold(f64::INFINITY, f64::min)
}

/// Picks an iteration count so one timing sample runs ≥ `target_ns`.
fn calibrate_iters<F: FnMut()>(target_ns: f64, mut f: F) -> usize {
    let t = Instant::now();
    f();
    let once = t.elapsed().as_nanos().max(1) as f64;
    ((target_ns / once).ceil() as usize).clamp(1, 1_000_000)
}

/// Pre-vectorization scalar GMM reference: hoisted diagonal plan with
/// plain multiply-accumulate and a `f64::exp` log-sum-exp — the seed's
/// exact per-point math.
struct GmmScalarRef {
    consts: Vec<f64>,
    neg_half_inv_vars: Vec<f64>,
    means: Vec<Vec<f64>>,
    dim: usize,
}

impl GmmScalarRef {
    fn new(gmm: &Gmm) -> Self {
        let Covariance::Diagonal(vars) = gmm.covariance() else {
            panic!("reference requires a diagonal mixture");
        };
        let dim = gmm.dim();
        let mut consts = Vec::with_capacity(gmm.num_components());
        let mut neg_half_inv_vars = Vec::with_capacity(gmm.num_components() * dim);
        for (k, vk) in vars.iter().enumerate() {
            let mut c = gmm.weights()[k].max(1e-300).ln() - 0.5 * dim as f64 * LN_2PI;
            for &v in vk {
                c -= 0.5 * v.ln();
                neg_half_inv_vars.push(-0.5 / v);
            }
            consts.push(c);
        }
        Self {
            consts,
            neg_half_inv_vars,
            means: gmm.means().to_vec(),
            dim,
        }
    }

    fn log_pdf(&self, x: &[f64], terms: &mut Vec<f64>) -> f64 {
        terms.clear();
        for (k, &c) in self.consts.iter().enumerate() {
            let nhiv = &self.neg_half_inv_vars[k * self.dim..(k + 1) * self.dim];
            let mean = &self.means[k];
            let mut quad = 0.0;
            for i in 0..self.dim {
                let d = x[i] - mean[i];
                quad += nhiv[i] * d * d;
            }
            terms.push(c + quad);
        }
        log_sum_exp(terms)
    }
}

/// Pre-vectorization scalar HMGM reference: `f64::exp` axis factors,
/// plain mixture sum.
fn hmgm_log_likelihood_ref(model: &HmgmModel, x: &[f64]) -> f64 {
    let d = model.dim() as f64;
    let mut total = 0.0;
    for (w, k) in model.weights().iter().zip(model.kernels()) {
        let mut inv_sum = 0.0;
        for (i, &xi) in x.iter().enumerate() {
            let z = (xi - k.means()[i]) / k.sigmas()[i];
            let g = (-0.5 * z * z).exp().max(1e-300);
            inv_sum += 1.0 / g;
        }
        total += w * (k.amplitude() * d / inv_sum);
    }
    total.max(1e-300).ln()
}

struct Row {
    kernel: &'static str,
    variant: &'static str,
    k: usize,
    n: usize,
    workers: usize,
    ns_per_point: f64,
}

/// Component counts of the pruning sweep: wide mixtures are where the
/// spatial index pays, so the sweep starts past the localization
/// pipeline's defaults.
const PRUNE_COMPONENTS: [usize; 3] = [16, 64, 256];

/// Scattered 3-d diagonal GMM: components spread uniformly over a
/// ±10 box, each a tight blob — the map shape the prune index targets.
fn prune_spread_gmm(k: usize) -> Gmm {
    let mut rng = Pcg32::seed_from_u64(21);
    let means: Vec<Vec<f64>> = (0..k)
        .map(|_| (0..3).map(|_| rng.sample_uniform(-10.0, 10.0)).collect())
        .collect();
    let vars = vec![vec![0.2, 0.3, 0.25]; k];
    Gmm::new(vec![1.0 / k as f64; k], means, Covariance::Diagonal(vars)).unwrap()
}

/// Scattered 3-d HMGM over the same ±10 box.
fn prune_spread_hmgm(k: usize) -> HmgmModel {
    let mut rng = Pcg32::seed_from_u64(22);
    let kernels: Vec<HmgKernel> = (0..k)
        .map(|_| {
            HmgKernel::new(
                (0..3).map(|_| rng.sample_uniform(-10.0, 10.0)).collect(),
                vec![0.4, 0.5, 0.45],
                1.0,
            )
            .unwrap()
        })
        .collect();
    HmgmModel::new(vec![1.0; k], kernels).unwrap()
}

/// Query batch clustered near one component — the localized scan the
/// index prunes against.
fn clustered_queries(center: &[f64], n: usize, seed: u64) -> PointBatch {
    let mut rng = Pcg32::seed_from_u64(seed);
    let mut batch = PointBatch::with_capacity(3, n);
    for _ in 0..n {
        batch.push(&[
            center[0] + rng.sample_normal(0.0, 0.3),
            center[1] + rng.sample_normal(0.0, 0.3),
            center[2] + rng.sample_normal(0.0, 0.3),
        ]);
    }
    batch
}

/// Worker count the auto [`ChunkPolicy`] resolves to for a batch of `n`
/// (mirrors its resolution rule), so rows timed through the production
/// entry points report the thread count actually used.
fn auto_workers(n: usize) -> usize {
    if cfg!(feature = "parallel") {
        par::worker_count().min(n.div_ceil(par::MIN_CHUNK)).max(1)
    } else {
        1
    }
}

fn json_escape_free(s: &str) -> &str {
    // All strings we emit are static identifiers/paths without quotes or
    // control characters; assert instead of escaping.
    assert!(!s.contains(['"', '\\', '\n']), "string needs escaping: {s}");
    s
}

fn row_json(r: &Row) -> String {
    format!(
        "    {{\"kernel\": \"{}\", \"variant\": \"{}\", \"components\": {}, \"batch_size\": {}, \"workers\": {}, \"ns_per_point\": {:.2}}}",
        json_escape_free(r.kernel),
        json_escape_free(r.variant),
        r.k,
        r.n,
        r.workers,
        r.ns_per_point
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let threads = args.iter().any(|a| a == "--threads");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_kernels.json".to_string());

    let components: &[usize] = if smoke { &[8] } else { &[8, 32] };
    let batch_sizes: &[usize] = if smoke {
        &BATCH_SIZES[..2]
    } else {
        &BATCH_SIZES
    };
    let (reps, target_ns) = if smoke { (3, 2e5) } else { (9, 5e6) };

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Worker counts for the `--threads` sweep: the single-thread column
    // plus powers of two up to the host's cores.
    let mut worker_counts: Vec<usize> = vec![1];
    for w in [2usize, 4, 8] {
        if w <= cores {
            worker_counts.push(w);
        }
    }

    let points = blob_points(600, 1);
    let mut rows: Vec<Row> = Vec::new();
    let mut thread_rows: Vec<Row> = Vec::new();
    let mut gmm_max_ulp = 0u64;
    let mut hmgm_max_ulp = 0u64;
    let mut cim_exact = true;

    for &k in components {
        let mut rng = Pcg32::seed_from_u64(2);
        let gmm = fit_diag_gmm(&points, k, &FitConfig::default(), &mut rng).unwrap();
        let gmm_ref = GmmScalarRef::new(&gmm);

        let space = SpaceMap::fit_to_points(&points, 0.15, 0.85, 0.1).unwrap();
        let tech = navicim_device::params::TechParams::cmos_45nm();
        let (floor, ceil) = HmgmCimEngine::recommended_sigma_bounds(&tech, &space);
        let mut rng2 = Pcg32::seed_from_u64(3);
        let model = fit_hmgm(
            &points,
            k,
            &HmgmFitConfig {
                sigma_floor: floor,
                sigma_ceiling: Some(ceil),
                ..HmgmFitConfig::default()
            },
            &mut rng2,
        )
        .unwrap();
        let mut engine =
            HmgmCimEngine::build(&model, space.clone(), CimEngineConfig::default()).unwrap();
        let mut engine_direct = HmgmCimEngine::build(&model, space, CimEngineConfig::default())
            .unwrap()
            .with_direct_eval();

        for &n in batch_sizes {
            let mut batch = PointBatch::with_capacity(3, n);
            for i in 0..n {
                batch.push(&points[i % points.len()]);
            }
            let mut out = vec![0.0; n];
            let mut out_ref = vec![0.0; n];

            // --- digital GMM plan ---
            let mut gmm_b = gmm.clone();
            gmm_b.log_likelihood_into(&batch, &mut out);
            {
                let mut terms = Vec::new();
                for (i, o) in out_ref.iter_mut().enumerate() {
                    *o = gmm_ref.log_pdf(batch.point(i), &mut terms);
                }
            }
            for (a, b) in out.iter().zip(&out_ref) {
                gmm_max_ulp = gmm_max_ulp.max(ulp_distance(*a, *b));
            }
            let iters = calibrate_iters(target_ns, || {
                gmm_b.log_likelihood_into(&batch, &mut out);
            });
            let simd_ns = time_ns(reps, iters, || {
                gmm_b.log_likelihood_into(&batch, &mut out);
                std::hint::black_box(out[0]);
            }) / n as f64;
            let iters = calibrate_iters(target_ns, || {
                let mut terms = Vec::new();
                for (i, o) in out_ref.iter_mut().enumerate() {
                    *o = gmm_ref.log_pdf(batch.point(i), &mut terms);
                }
            });
            let ref_ns = time_ns(reps, iters, || {
                let mut terms = Vec::new();
                for (i, o) in out_ref.iter_mut().enumerate() {
                    *o = gmm_ref.log_pdf(batch.point(i), &mut terms);
                }
                std::hint::black_box(out_ref[0]);
            }) / n as f64;
            rows.push(Row {
                kernel: "gmm_plan",
                variant: "simd",
                k,
                n,
                workers: auto_workers(n),
                ns_per_point: simd_ns,
            });
            rows.push(Row {
                kernel: "gmm_plan",
                variant: "scalar_ref",
                k,
                n,
                workers: 1,
                ns_per_point: ref_ns,
            });

            // --- math HMGM ---
            let mut model_b = model.clone();
            model_b.log_likelihood_into(&batch, &mut out);
            for (i, o) in out_ref.iter_mut().enumerate() {
                *o = hmgm_log_likelihood_ref(&model, batch.point(i));
            }
            for (a, b) in out.iter().zip(&out_ref) {
                hmgm_max_ulp = hmgm_max_ulp.max(ulp_distance(*a, *b));
            }
            let iters = calibrate_iters(target_ns, || {
                model_b.log_likelihood_into(&batch, &mut out);
            });
            let simd_ns = time_ns(reps, iters, || {
                model_b.log_likelihood_into(&batch, &mut out);
                std::hint::black_box(out[0]);
            }) / n as f64;
            let iters = calibrate_iters(target_ns, || {
                for (i, o) in out_ref.iter_mut().enumerate() {
                    *o = hmgm_log_likelihood_ref(&model, batch.point(i));
                }
            });
            let ref_ns = time_ns(reps, iters, || {
                for (i, o) in out_ref.iter_mut().enumerate() {
                    *o = hmgm_log_likelihood_ref(&model, batch.point(i));
                }
                std::hint::black_box(out_ref[0]);
            }) / n as f64;
            rows.push(Row {
                kernel: "hmgm",
                variant: "simd",
                k,
                n,
                workers: auto_workers(n),
                ns_per_point: simd_ns,
            });
            rows.push(Row {
                kernel: "hmgm",
                variant: "scalar_ref",
                k,
                n,
                workers: 1,
                ns_per_point: ref_ns,
            });

            // --- analog CIM engine (LUT+lanes vs direct device model) ---
            // Parity first, from aligned noise cursors: rebuild both so
            // evaluation i draws the same counter-based noise.
            {
                let mut a = HmgmCimEngine::build(
                    &model,
                    SpaceMap::fit_to_points(&points, 0.15, 0.85, 0.1).unwrap(),
                    CimEngineConfig::default(),
                )
                .unwrap();
                let mut b = HmgmCimEngine::build(
                    &model,
                    SpaceMap::fit_to_points(&points, 0.15, 0.85, 0.1).unwrap(),
                    CimEngineConfig::default(),
                )
                .unwrap()
                .with_direct_eval();
                a.log_likelihood_into(&batch, &mut out);
                b.log_likelihood_into(&batch, &mut out_ref);
                cim_exact &= out == out_ref;
            }
            let iters = calibrate_iters(target_ns, || {
                engine.log_likelihood_into(&batch, &mut out);
            });
            let simd_ns = time_ns(reps, iters, || {
                engine.log_likelihood_into(&batch, &mut out);
                std::hint::black_box(out[0]);
            }) / n as f64;
            let iters = calibrate_iters(target_ns, || {
                engine_direct.log_likelihood_into(&batch, &mut out_ref);
            });
            let ref_ns = time_ns(reps, iters, || {
                engine_direct.log_likelihood_into(&batch, &mut out_ref);
                std::hint::black_box(out_ref[0]);
            }) / n as f64;
            rows.push(Row {
                kernel: "cim_engine",
                variant: "simd",
                k,
                n,
                workers: auto_workers(n),
                ns_per_point: simd_ns,
            });
            rows.push(Row {
                kernel: "cim_engine",
                variant: "scalar_ref",
                k,
                n,
                workers: auto_workers(n),
                ns_per_point: ref_ns,
            });
        }

        // --- worker-count sweep (--threads) ---
        // Raw scaling of each production batch kernel under pinned
        // `ChunkPolicy::exact` splits, bypassing the min-chunk gate so
        // every (n, workers) point is measured even below the production
        // threshold. Reading off where the multi-worker rows dip under
        // the single-worker row re-derives `par::MIN_CHUNK` on this host.
        if threads && k == components[0] {
            let mut sweep_sizes = batch_sizes.to_vec();
            if !smoke {
                // One size past the production threshold so the sweep
                // brackets the break-even instead of stopping at it.
                sweep_sizes.push(4 * par::MIN_CHUNK);
            }
            let mut gmm_t = gmm.clone();
            let mut model_t = model.clone();
            for &n in &sweep_sizes {
                let mut batch = PointBatch::with_capacity(3, n);
                for i in 0..n {
                    batch.push(&points[i % points.len()]);
                }
                let mut out = vec![0.0; n];
                for &w in &worker_counts {
                    let policy = ChunkPolicy::exact(n.div_ceil(w), w);

                    let iters = calibrate_iters(target_ns, || {
                        gmm_t.log_likelihood_into_policy(&batch, &mut out, policy);
                    });
                    let ns = time_ns(reps, iters, || {
                        gmm_t.log_likelihood_into_policy(&batch, &mut out, policy);
                        std::hint::black_box(out[0]);
                    }) / n as f64;
                    thread_rows.push(Row {
                        kernel: "gmm_plan",
                        variant: "threads",
                        k,
                        n,
                        workers: w,
                        ns_per_point: ns,
                    });

                    let iters = calibrate_iters(target_ns, || {
                        model_t.log_likelihood_into_policy(&batch, &mut out, policy);
                    });
                    let ns = time_ns(reps, iters, || {
                        model_t.log_likelihood_into_policy(&batch, &mut out, policy);
                        std::hint::black_box(out[0]);
                    }) / n as f64;
                    thread_rows.push(Row {
                        kernel: "hmgm",
                        variant: "threads",
                        k,
                        n,
                        workers: w,
                        ns_per_point: ns,
                    });

                    let iters = calibrate_iters(target_ns, || {
                        engine.log_likelihood_into_chunked(&batch, &mut out, policy);
                    });
                    let ns = time_ns(reps, iters, || {
                        engine.log_likelihood_into_chunked(&batch, &mut out, policy);
                        std::hint::black_box(out[0]);
                    }) / n as f64;
                    thread_rows.push(Row {
                        kernel: "cim_engine",
                        variant: "threads",
                        k,
                        n,
                        workers: w,
                        ns_per_point: ns,
                    });
                }
            }
        }
    }

    // ---- spatial component pruning ----
    // Scattered components, clustered queries: the shape the prune index
    // is built for. Digital rows are parity-gated at the documented
    // additive PRUNE_EPSILON and off-mode must stay bit-identical; the
    // CIM rows exercise column gating, whose error budget is the log-ADC
    // step rather than epsilon.
    let mut prune_rows: Vec<Row> = Vec::new();
    let mut prune_digital_max_abs = 0.0f64;
    let mut prune_off_exact = true;
    let mut cim_prune_max_abs = 0.0f64;
    let mut cim_log_lsb = 0.0f64;
    let mut cim_min_active_fraction = 1.0f64;
    for &k in &PRUNE_COMPONENTS {
        let gmm_full = prune_spread_gmm(k);
        let mut gmm_pruned = gmm_full.clone();
        gmm_pruned.set_prune(PruneConfig::enabled());
        let hmgm_full = prune_spread_hmgm(k);
        let mut hmgm_pruned = hmgm_full.clone();
        hmgm_pruned.set_prune(PruneConfig::enabled());

        // Device-constrained spread model for the CIM column-gating rows:
        // sigma pinned at the programmable floor of a space covering the
        // same ±10 box.
        let anchor_pts = vec![vec![-10.0, -10.0, -10.0], vec![10.0, 10.0, 10.0]];
        let space = SpaceMap::fit_to_points(&anchor_pts, 0.15, 0.85, 0.1).unwrap();
        let tech = navicim_device::params::TechParams::cmos_45nm();
        let (floor, _) = HmgmCimEngine::recommended_sigma_bounds(&tech, &space);
        let mut rngc = Pcg32::seed_from_u64(23);
        let cim_kernels: Vec<HmgKernel> = (0..k)
            .map(|_| {
                HmgKernel::new(
                    (0..3).map(|_| rngc.sample_uniform(-9.5, 9.5)).collect(),
                    vec![floor; 3],
                    1.0,
                )
                .unwrap()
            })
            .collect();
        let cim_model = HmgmModel::new(vec![1.0; k], cim_kernels).unwrap();
        let mut cim_full =
            HmgmCimEngine::build(&cim_model, space.clone(), CimEngineConfig::default()).unwrap();
        let mut cim_pruned = HmgmCimEngine::build_with_pruning(
            &cim_model,
            space.clone(),
            CimEngineConfig::default(),
            PruneConfig::enabled(),
        )
        .unwrap();
        cim_log_lsb = cim_pruned.adc().log_lsb();

        for &n in batch_sizes {
            let batch = clustered_queries(&gmm_full.means()[0], n, 31);
            // The CIM rows query from a box corner: the device-floored
            // sigmas (~10% of the axis span) mean only components whose
            // per-axis z clears the `ln K + 12` nat margin can gate, and
            // a mid-box cluster never sees such distances. A corner
            // cluster puts the far half of the box 10+ sigma out.
            let cim_batch = clustered_queries(&[-9.0, -9.0, -9.0], n, 33);
            let mut out = vec![0.0; n];
            let mut out_full = vec![0.0; n];

            // Digital parity: epsilon bound on, bit-identity off.
            let mut gf = gmm_full.clone();
            gmm_pruned.log_likelihood_into(&batch, &mut out);
            gf.log_likelihood_into(&batch, &mut out_full);
            for (a, b) in out.iter().zip(&out_full) {
                prune_digital_max_abs = prune_digital_max_abs.max((a - b).abs());
            }
            let mut g_off = gmm_full.clone();
            g_off.set_prune(PruneConfig::enabled());
            g_off.set_prune(PruneConfig::default());
            g_off.log_likelihood_into(&batch, &mut out);
            prune_off_exact &= out
                .iter()
                .zip(&out_full)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            let mut hf = hmgm_full.clone();
            hmgm_pruned.log_likelihood_into(&batch, &mut out);
            hf.log_likelihood_into(&batch, &mut out_full);
            for (a, b) in out.iter().zip(&out_full) {
                prune_digital_max_abs = prune_digital_max_abs.max((a - b).abs());
            }
            let mut h_off = hmgm_full.clone();
            h_off.set_prune(PruneConfig::enabled());
            h_off.set_prune(PruneConfig::default());
            h_off.log_likelihood_into(&batch, &mut out);
            prune_off_exact &= out
                .iter()
                .zip(&out_full)
                .all(|(a, b)| a.to_bits() == b.to_bits());

            // CIM parity from aligned noise cursors: fresh engines so
            // evaluation i draws the same counter-based noise on both.
            {
                let mut a = HmgmCimEngine::build_with_pruning(
                    &cim_model,
                    space.clone(),
                    CimEngineConfig::default(),
                    PruneConfig::enabled(),
                )
                .unwrap();
                let mut b =
                    HmgmCimEngine::build(&cim_model, space.clone(), CimEngineConfig::default())
                        .unwrap();
                a.log_likelihood_into(&cim_batch, &mut out);
                b.log_likelihood_into(&cim_batch, &mut out_full);
                for (x, y) in out.iter().zip(&out_full) {
                    cim_prune_max_abs = cim_prune_max_abs.max((x - y).abs());
                }
                cim_min_active_fraction =
                    cim_min_active_fraction.min(a.stats().active_column_fraction());
            }

            // Timings: pruned row first, full row second (pairwise).
            for (kernel, pruned_ns, full_ns) in [
                (
                    "gmm_plan",
                    {
                        let iters = calibrate_iters(target_ns, || {
                            gmm_pruned.log_likelihood_into(&batch, &mut out);
                        });
                        time_ns(reps, iters, || {
                            gmm_pruned.log_likelihood_into(&batch, &mut out);
                            std::hint::black_box(out[0]);
                        }) / n as f64
                    },
                    {
                        let mut full = gmm_full.clone();
                        let iters = calibrate_iters(target_ns, || {
                            full.log_likelihood_into(&batch, &mut out);
                        });
                        time_ns(reps, iters, || {
                            full.log_likelihood_into(&batch, &mut out);
                            std::hint::black_box(out[0]);
                        }) / n as f64
                    },
                ),
                (
                    "hmgm",
                    {
                        let iters = calibrate_iters(target_ns, || {
                            hmgm_pruned.log_likelihood_into(&batch, &mut out);
                        });
                        time_ns(reps, iters, || {
                            hmgm_pruned.log_likelihood_into(&batch, &mut out);
                            std::hint::black_box(out[0]);
                        }) / n as f64
                    },
                    {
                        let mut full = hmgm_full.clone();
                        let iters = calibrate_iters(target_ns, || {
                            full.log_likelihood_into(&batch, &mut out);
                        });
                        time_ns(reps, iters, || {
                            full.log_likelihood_into(&batch, &mut out);
                            std::hint::black_box(out[0]);
                        }) / n as f64
                    },
                ),
                (
                    "cim_engine",
                    {
                        let iters = calibrate_iters(target_ns, || {
                            cim_pruned.log_likelihood_into(&cim_batch, &mut out);
                        });
                        time_ns(reps, iters, || {
                            cim_pruned.log_likelihood_into(&cim_batch, &mut out);
                            std::hint::black_box(out[0]);
                        }) / n as f64
                    },
                    {
                        let iters = calibrate_iters(target_ns, || {
                            cim_full.log_likelihood_into(&cim_batch, &mut out);
                        });
                        time_ns(reps, iters, || {
                            cim_full.log_likelihood_into(&cim_batch, &mut out);
                            std::hint::black_box(out[0]);
                        }) / n as f64
                    },
                ),
            ] {
                prune_rows.push(Row {
                    kernel,
                    variant: "pruned",
                    k,
                    n,
                    workers: auto_workers(n),
                    ns_per_point: pruned_ns,
                });
                prune_rows.push(Row {
                    kernel,
                    variant: "full",
                    k,
                    n,
                    workers: auto_workers(n),
                    ns_per_point: full_ns,
                });
            }
        }
    }

    // ---- report ----
    let mut ok = true;
    println!("kernel      k   n      scalar_ref  simd      speedup");
    let mut json_rows = String::new();
    for pair in rows.chunks(2) {
        let [simd, refr] = pair else { unreachable!() };
        let speedup = refr.ns_per_point / simd.ns_per_point;
        println!(
            "{:<10} {:>3} {:>5}  {:>8.1}ns {:>8.1}ns  {:>5.2}x",
            simd.kernel, simd.k, simd.n, refr.ns_per_point, simd.ns_per_point, speedup
        );
        for r in [simd, refr] {
            if !json_rows.is_empty() {
                json_rows.push_str(",\n");
            }
            json_rows.push_str(&row_json(r));
        }
    }
    for r in &thread_rows {
        if !json_rows.is_empty() {
            json_rows.push_str(",\n");
        }
        json_rows.push_str(&row_json(r));
    }
    if threads {
        if !cfg!(feature = "parallel") {
            println!(
                "note: built without --features parallel; every worker count below runs \
                 single-threaded (rows measure chunking overhead only)"
            );
        }
        println!(
            "threads sweep (ChunkPolicy::exact, min-chunk gate bypassed; \
             production par::MIN_CHUNK = {})",
            par::MIN_CHUNK
        );
        println!("kernel      k   n     workers  ns/point  vs w=1");
        for r in &thread_rows {
            let base = thread_rows
                .iter()
                .find(|b| b.kernel == r.kernel && b.n == r.n && b.workers == 1)
                .expect("w=1 baseline row exists");
            println!(
                "{:<10} {:>3} {:>5} {:>8}  {:>7.1}ns {:>6.2}x",
                r.kernel,
                r.k,
                r.n,
                r.workers,
                r.ns_per_point,
                base.ns_per_point / r.ns_per_point
            );
        }
    }
    println!(
        "pruning sweep (spatial index, clustered queries; epsilon = {PRUNE_EPSILON:.0e} nats)"
    );
    println!("kernel      k   n      full      pruned    speedup");
    for pair in prune_rows.chunks(2) {
        let [pruned, full] = pair else { unreachable!() };
        println!(
            "{:<10} {:>3} {:>5}  {:>8.1}ns {:>8.1}ns  {:>5.2}x",
            pruned.kernel,
            pruned.k,
            pruned.n,
            full.ns_per_point,
            pruned.ns_per_point,
            full.ns_per_point / pruned.ns_per_point
        );
        for r in [pruned, full] {
            if !json_rows.is_empty() {
                json_rows.push_str(",\n");
            }
            json_rows.push_str(&row_json(r));
        }
    }
    println!("parity: gmm {gmm_max_ulp} ulp, hmgm {hmgm_max_ulp} ulp, cim exact: {cim_exact}");
    println!(
        "prune parity: digital max |diff| {prune_digital_max_abs:.2e} (gate {PRUNE_EPSILON:.0e}), \
         off-mode bit-identical: {prune_off_exact}, cim max |diff| {cim_prune_max_abs:.2e} \
         (log-ADC lsb {cim_log_lsb:.2e}), min active column fraction {cim_min_active_fraction:.3}"
    );
    if gmm_max_ulp > DIGITAL_MAX_ULP || hmgm_max_ulp > DIGITAL_MAX_ULP {
        eprintln!("FAIL: digital SIMD drift exceeds the {DIGITAL_MAX_ULP}-ulp gate");
        ok = false;
    }
    if !cim_exact {
        eprintln!("FAIL: CIM LUT path is not bit-identical to the direct path");
        ok = false;
    }
    if prune_digital_max_abs > PRUNE_EPSILON {
        eprintln!(
            "FAIL: pruned digital drift {prune_digital_max_abs:.3e} exceeds the \
             PRUNE_EPSILON gate {PRUNE_EPSILON:.0e}"
        );
        ok = false;
    }
    if !prune_off_exact {
        eprintln!("FAIL: prune-off evaluation is not bit-identical to a never-pruned model");
        ok = false;
    }
    // Column gating error budget: the log-ADC step (plus slack for the
    // exp path), not epsilon — a gated far column changes the array
    // current below converter visibility.
    if cim_prune_max_abs > cim_log_lsb * 2.0 {
        eprintln!(
            "FAIL: column-gated CIM drift {cim_prune_max_abs:.3e} exceeds two \
             log-ADC steps ({cim_log_lsb:.3e} each)"
        );
        ok = false;
    }
    if cim_min_active_fraction >= 1.0 {
        eprintln!("FAIL: column gating never dropped a column on the clustered workload");
        ok = false;
    }

    let json = format!(
        "{{\n  \"bench\": \"kernels\",\n  \"smoke\": {smoke},\n  \"host\": {{\"arch\": \"{}\", \"os\": \"{}\", \"cores\": {cores}, \"target_cpu\": \"{}\"}},\n  \"config\": {{\"dim\": 3, \"reps\": {reps}, \"threads_sweep\": {threads}}},\n  \"parity\": {{\"gmm_max_ulp\": {gmm_max_ulp}, \"hmgm_max_ulp\": {hmgm_max_ulp}, \"digital_ulp_gate\": {DIGITAL_MAX_ULP}, \"cim_bit_identical\": {cim_exact}}},\n  \"prune\": {{\"epsilon\": {PRUNE_EPSILON:e}, \"digital_max_abs\": {prune_digital_max_abs:e}, \"off_bit_identical\": {prune_off_exact}, \"cim_max_abs\": {cim_prune_max_abs:e}, \"cim_log_adc_lsb\": {cim_log_lsb:e}, \"cim_min_active_fraction\": {cim_min_active_fraction:.4}}},\n  \"rows\": [\n{json_rows}\n  ]\n}}\n",
        json_escape_free(std::env::consts::ARCH),
        json_escape_free(std::env::consts::OS),
        json_escape_free(navicim_bench::target_cpu_label()),
    );
    std::fs::write(&out_path, json).expect("write bench snapshot");
    println!("wrote {out_path}");

    if !ok {
        std::process::exit(1);
    }
}
