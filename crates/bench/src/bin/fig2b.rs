//! Fig. 2(b): Gaussian-like switching current of the 6-T inverter.
//!
//! Sweeps each of the three input voltages across the supply while holding
//! the others at their cell centres, prints the current profile and the
//! least-squares Gaussian fit quality.
//!
//! Run: `cargo run --release -p navicim-bench --bin fig2b`

use navicim_analog::diagnostics::fit_gaussian_1d;
use navicim_core::reportfmt::{fmt_sig, Table};
use navicim_device::inverter::{GaussianLikeCell, MultiInputInverter};
use navicim_device::params::TechParams;

fn main() {
    let tech = TechParams::cmos_45nm();
    println!("# Fig. 2(b) — inverter switching-current bell and Gaussian fit");
    println!("technology: {} (VDD = {} V)\n", tech.node, tech.vdd);

    // Single-cell sweep at three programmed centres.
    println!("## 1-D sweeps at programmed centres (one cell)");
    let mut table = Table::new(vec![
        "center (V)",
        "fit mean (V)",
        "fit sigma (V)",
        "peak I (uA)",
        "R^2",
    ]);
    for &center in &[0.35, 0.5, 0.65] {
        let cell = GaussianLikeCell::with_center(&tech, center);
        let sigma = cell.effective_sigma();
        let xs: Vec<f64> = (0..161)
            .map(|i| center + (i as f64 - 80.0) / 80.0 * 2.5 * sigma)
            .filter(|&v| (0.0..=tech.vdd).contains(&v))
            .collect();
        let ys: Vec<f64> = xs.iter().map(|&v| cell.current(v)).collect();
        let fit = fit_gaussian_1d(&xs, &ys).expect("bell fits a gaussian");
        table.row(vec![
            format!("{center:.2}"),
            format!("{:.4}", fit.mean),
            format!("{:.4}", fit.sigma),
            format!("{:.3}", fit.amplitude * 1e6),
            format!("{:.4}", fit.r_squared),
        ]);
    }
    println!("{table}");

    // The raw series for one sweep (the figure's curve).
    println!("## current profile, center = 0.5 V (series for plotting)");
    let cell = GaussianLikeCell::with_center(&tech, 0.5);
    let mut series = Table::new(vec!["V_in (V)", "I_inv (uA)"]);
    for i in 0..=40 {
        let v = i as f64 / 40.0 * tech.vdd;
        series.row(vec![format!("{v:.3}"), fmt_sig(cell.current(v) * 1e6)]);
    }
    println!("{series}");

    // Multi-input sweep: vary V_X with V_Y, V_Z at centre (paper's inset).
    println!("## multi-input inverter: sweep V_X with V_Y = V_Z = centre");
    let inv = MultiInputInverter::from_centers(&tech, &[0.5, 0.5, 0.5], 0.3)
        .expect("centers are on-rail");
    let xs: Vec<f64> = (0..81).map(|i| 0.2 + i as f64 / 80.0 * 0.6).collect();
    let ys: Vec<f64> = xs.iter().map(|&v| inv.current(&[v, 0.5, 0.5])).collect();
    let fit = fit_gaussian_1d(&xs, &ys).expect("multi-input bell fits");
    println!(
        "gaussian fit: mean {:.4} V, sigma {:.4} V, R^2 {:.4}\n",
        fit.mean, fit.sigma, fit.r_squared
    );
    println!(
        "paper shape check: bell centred at the programmed voltage with high R^2 -> {}",
        if fit.r_squared > 0.95 {
            "REPRODUCED"
        } else {
            "MISMATCH"
        }
    );
}
