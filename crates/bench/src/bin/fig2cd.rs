//! Fig. 2(c,d): contour/surface of the two-input inverter current —
//! rectilinear HMG tails versus elliptical Gaussian tails.
//!
//! Prints a coarse surface grid, the iso-contour crossing analysis and the
//! implied superellipse exponent for the device, the mathematical HMG
//! kernel and the product-Gaussian reference.
//!
//! Run: `cargo run --release -p navicim-bench --bin fig2cd`

use navicim_analog::diagnostics::{rectilinearity, superellipse_exponent};
use navicim_core::reportfmt::Table;
use navicim_device::inverter::GaussianLikeCell;
use navicim_device::params::TechParams;

fn main() {
    let tech = TechParams::cmos_45nm();
    println!("# Fig. 2(c,d) — iso-current contour shape analysis\n");

    let a = GaussianLikeCell::with_center(&tech, 0.5);
    let b = GaussianLikeCell::with_center(&tech, 0.5);
    let device = move |x: f64, y: f64| 1.0 / (1.0 / a.current(x) + 1.0 / b.current(y));
    let hmg = |x: f64, y: f64| {
        let g1 = f64::exp(-0.5 * ((x - 0.5) / 0.08).powi(2)).max(1e-300);
        let g2 = f64::exp(-0.5 * ((y - 0.5) / 0.08).powi(2)).max(1e-300);
        2.0 / (1.0 / g1 + 1.0 / g2)
    };
    let gauss =
        |x: f64, y: f64| f64::exp(-0.5 * (((x - 0.5) / 0.08).powi(2) + ((y - 0.5) / 0.08).powi(2)));

    // Surface grid (device current, µA) for plotting Fig. 2(d).
    println!("## device current surface (uA), 13x13 grid over [0.2, 0.8]^2");
    let mut surface = Table::new(
        std::iter::once("Vy\\Vx".to_string())
            .chain((0..13).map(|i| format!("{:.2}", 0.2 + i as f64 * 0.05)))
            .collect::<Vec<_>>(),
    );
    for j in 0..13 {
        let vy = 0.2 + j as f64 * 0.05;
        let mut row = vec![format!("{vy:.2}")];
        for i in 0..13 {
            let vx = 0.2 + i as f64 * 0.05;
            row.push(format!("{:.3}", device(vx, vy) * 1e6));
        }
        surface.row(row);
    }
    println!("{surface}");

    // Contour-shape metrics at several levels below the peak.
    println!("## contour shape: diagonal/axis crossing ratio and superellipse exponent");
    let mut table = Table::new(vec![
        "kernel",
        "level (frac of peak)",
        "diag/axis ratio",
        "superellipse p",
        "tail class",
    ]);
    let peak_dev = device(0.5, 0.5);
    let cases: Vec<(&str, Box<dyn Fn(f64, f64) -> f64>, f64)> = vec![
        ("device 2-input inverter", Box::new(device), peak_dev),
        ("math HMG kernel", Box::new(hmg), 1.0),
        ("product Gaussian", Box::new(gauss), 1.0),
    ];
    for (name, f, peak) in &cases {
        for &frac in &[1e-2, 1e-3, 1e-4] {
            let level = peak * frac;
            match rectilinearity(f, (0.5, 0.5), level, 0.6) {
                Ok(ratio) => {
                    let p = superellipse_exponent(ratio).unwrap_or(f64::INFINITY);
                    let class = if p > 3.0 {
                        "rectilinear"
                    } else if p > 2.3 {
                        "squared-off"
                    } else {
                        "elliptical"
                    };
                    table.row(vec![
                        (*name).into(),
                        format!("{frac:.0e}"),
                        format!("{ratio:.3}"),
                        format!("{p:.2}"),
                        class.into(),
                    ]);
                }
                Err(_) => {
                    table.row(vec![
                        (*name).into(),
                        format!("{frac:.0e}"),
                        "out of window".into(),
                        String::new(),
                        String::new(),
                    ]);
                }
            }
        }
    }
    println!("{table}");
    println!(
        "paper shape check: HMG/device contours square off (p >> 2) while the \
         Gaussian stays elliptical (p = 2) -> see table above"
    );
}
