//! Ablation: particle count and mixture-component sweeps for the
//! localization pipeline (the Section II workload-scaling claim).
//!
//! Run: `cargo run --release -p navicim-bench --bin abl_pf_sweep`

use navicim_bench::small_localization_dataset;
use navicim_core::localization::{CimLocalizer, LocalizerConfig};
use navicim_core::registry::{CIM_HMGM, DIGITAL_GMM};
use navicim_core::reportfmt::Table;
use navicim_energy::analog::AnalogCimProfile;
use navicim_energy::digital::DigitalProfile;

fn main() {
    println!("# Ablation — particle-count and component-count sweeps\n");
    let dataset = small_localization_dataset(51);
    let analog = AnalogCimProfile::paper_45nm();
    let digital = DigitalProfile::paper_calibrated_gmm_asic();

    println!("## steady-state error vs particle count (16 components, CIM backend)");
    let mut p_table = Table::new(vec![
        "particles",
        "steady-state error (m)",
        "point evals",
        "CIM energy/frame (pJ)",
    ]);
    for &particles in &[50usize, 100, 250, 500, 1000] {
        let config = LocalizerConfig {
            num_particles: particles,
            components: 16,
            pixel_stride: 11,
            backend: CIM_HMGM.into(),
            seed: 5,
            ..LocalizerConfig::default()
        };
        let mut loc = CimLocalizer::build(&dataset, config).expect("localizer builds");
        let run = loc.run(&dataset).expect("run completes");
        let stats = run.stats;
        let per_eval = analog
            .likelihood_eval_report(stats.avg_current(), 3, 4, 4)
            .expect("prices")
            .total_pj();
        let frames = run.errors.len() as f64;
        p_table.row(vec![
            format!("{particles}"),
            format!("{:.4}", run.steady_state_error()),
            format!("{}", run.point_evaluations),
            format!("{:.1}", per_eval * run.point_evaluations as f64 / frames),
        ]);
    }
    println!("{p_table}");

    println!("## steady-state error vs mixture components (400 particles)");
    let mut k_table = Table::new(vec![
        "components K",
        "gmm error (m)",
        "cim error (m)",
        "digital energy/eval (fJ)",
        "cim evals",
    ]);
    for &k in &[4usize, 8, 16, 32] {
        let base = LocalizerConfig {
            num_particles: 400,
            components: k,
            pixel_stride: 11,
            seed: 6,
            ..LocalizerConfig::default()
        };
        let mut gmm_loc = CimLocalizer::build(
            &dataset,
            LocalizerConfig {
                backend: DIGITAL_GMM.into(),
                ..base.clone()
            },
        )
        .expect("gmm localizer builds");
        let gmm_run = gmm_loc.run(&dataset).expect("gmm run");
        let mut cim_loc = CimLocalizer::build(
            &dataset,
            LocalizerConfig {
                backend: CIM_HMGM.into(),
                ..base
            },
        )
        .expect("cim localizer builds");
        let cim_run = cim_loc.run(&dataset).expect("cim run");
        let digital_fj = digital.gmm_point_pj(3, k, 8).expect("prices") * 1e3;
        k_table.row(vec![
            format!("{k}"),
            format!("{:.4}", gmm_run.steady_state_error()),
            format!("{:.4}", cim_run.steady_state_error()),
            format!("{digital_fj:.1}"),
            format!("{}", cim_run.point_evaluations),
        ]);
    }
    println!("{k_table}");
    println!(
        "shape: error saturates with enough particles/components while digital \
         energy grows linearly in K — the workload argument motivating the \
         analog mixture evaluation."
    );
}
