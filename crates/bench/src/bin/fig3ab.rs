//! Fig. 3(a,b): the SRAM-embedded dropout-bit generator.
//!
//! Characterizes the CCI RNG across fabricated instances: pre/post
//! calibration bias, the effect of array size on the comparator-offset
//! z-score (the paper's noise-amplification argument), and the randomness
//! battery on the calibrated bitstream.
//!
//! Run: `cargo run --release -p navicim-bench --bin fig3ab`

use navicim_core::reportfmt::Table;
use navicim_math::randtest;
use navicim_math::rng::Pcg32;
use navicim_math::stats;
use navicim_sram::rng::{CciRng, CciRngConfig};

fn main() {
    println!("# Fig. 3(a,b) — SRAM-embedded CCI RNG characterization\n");

    // Pre/post calibration bias across dies.
    println!("## calibration across 20 fabricated instances (default array)");
    let mut fab_rng = Pcg32::seed_from_u64(31);
    let config = CciRngConfig::default();
    let mut pre = Vec::new();
    let mut post = Vec::new();
    let mut cal_bits = Vec::new();
    for _ in 0..20 {
        let mut rng = CciRng::fabricate(&config, &mut fab_rng).expect("rng fabricates");
        let report = rng.calibrate(2000);
        pre.push(report.bias_before);
        post.push(report.bias_after);
        cal_bits.push(report.bits_used as f64);
    }
    let mut table = Table::new(vec!["metric", "pre-calibration", "post-calibration"]);
    table.row(vec![
        "mean |bias - 0.5|".into(),
        format!(
            "{:.4}",
            stats::mean(&pre.iter().map(|b| (b - 0.5).abs()).collect::<Vec<_>>())
        ),
        format!(
            "{:.4}",
            stats::mean(&post.iter().map(|b| (b - 0.5).abs()).collect::<Vec<_>>())
        ),
    ]);
    table.row(vec![
        "worst |bias - 0.5|".into(),
        format!(
            "{:.4}",
            pre.iter().map(|b| (b - 0.5).abs()).fold(0.0f64, f64::max)
        ),
        format!(
            "{:.4}",
            post.iter().map(|b| (b - 0.5).abs()).fold(0.0f64, f64::max)
        ),
    ]);
    println!("{table}");
    println!(
        "calibration cost: mean {:.0} serial bits per die\n",
        stats::mean(&cal_bits)
    );

    // Array-size scaling of the comparator-offset z-score.
    println!("## comparator-offset suppression vs array size (paper's parallel-port argument)");
    let mut scale_table = Table::new(vec![
        "columns/side x cells",
        "total cells",
        "mean |comparator z|",
    ]);
    for (cols, cells) in [(1usize, 16usize), (2, 64), (4, 64), (8, 128), (16, 256)] {
        let cfg = CciRngConfig {
            columns_per_side: cols,
            cells_per_column: cells,
            ..CciRngConfig::default()
        };
        let mut zs = Vec::new();
        let mut rng_src = Pcg32::seed_from_u64(32);
        for _ in 0..40 {
            let rng = CciRng::fabricate(&cfg, &mut rng_src).expect("fabricates");
            zs.push(rng.comparator_offset_z().abs());
        }
        scale_table.row(vec![
            format!("{cols} x {cells}"),
            format!("{}", cols * cells),
            format!("{:.4}", stats::mean(&zs)),
        ]);
    }
    println!("{scale_table}");

    // Randomness battery on a calibrated stream.
    println!("## randomness battery on one calibrated die (16384 bits)");
    let mut die = CciRng::fabricate(&config, &mut fab_rng).expect("fabricates");
    die.calibrate(4000);
    let bits = die.bits(16_384);
    let mut battery = Table::new(vec!["test", "statistic", "p-value", "pass@1%"]);
    for outcome in randtest::battery(&bits) {
        battery.row(vec![
            outcome.name.into(),
            format!("{:.3}", outcome.statistic),
            format!("{:.4}", outcome.p_value),
            if outcome.pass {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    println!("{battery}");

    let all_pass = randtest::battery_passes(&bits);
    println!(
        "paper shape check: calibrated SRAM-harvested bits are usable dropout \
         bits -> {}",
        if all_pass { "REPRODUCED" } else { "MISMATCH" }
    );
}
