//! Ablation: compute reuse and sample ordering (Sec. III-C design
//! choices).
//!
//! Measures executed MACs per MC-Dropout prediction across dropout
//! probabilities and iteration counts for four execution policies:
//! full recompute, row gating only, gating + reuse, gating + reuse +
//! greedy sample ordering.
//!
//! Run: `cargo run --release -p navicim-bench --bin abl_reuse`

use navicim_bench::{calibration_inputs, small_vo_dataset, small_vo_network};
use navicim_core::reportfmt::Table;
use navicim_core::vo::{train_vo_network, BayesianVo, VoPipelineConfig, VoTrainConfig};

fn main() {
    println!("# Ablation — compute reuse and sample ordering\n");
    let dataset = small_vo_dataset(41);

    println!("## executed-MAC fraction vs dropout probability (T = 30)");
    let mut table = Table::new(vec![
        "dropout p",
        "reuse off",
        "reuse on",
        "reuse + ordering",
        "saving vs off",
    ]);
    for &p in &[0.3, 0.5, 0.7] {
        // Retrain with the requested dropout probability so masks match.
        let net = train_vo_network(
            &dataset.samples,
            dataset.feature_dim(),
            &VoTrainConfig {
                hidden1: 24,
                hidden2: 12,
                epochs: 40,
                dropout_p: p,
                ..VoTrainConfig::default()
            },
        )
        .expect("network trains");
        let calib = calibration_inputs(&dataset, 8);
        let frac = |reuse: bool, order: bool| {
            let mut vo = BayesianVo::build(
                &net,
                &calib,
                VoPipelineConfig {
                    reuse,
                    order_samples: order,
                    mc_iterations: 30,
                    ..VoPipelineConfig::default()
                },
            )
            .expect("pipeline builds");
            for s in dataset.samples.iter().take(5) {
                let _ = vo.predict(&s.features);
            }
            vo.macro_stats().workload_fraction()
        };
        let off = frac(false, false);
        let on = frac(true, false);
        let ordered = frac(true, true);
        table.row(vec![
            format!("{p:.1}"),
            format!("{off:.3}"),
            format!("{on:.3}"),
            format!("{ordered:.3}"),
            format!("{:.1}%", (1.0 - ordered / off) * 100.0),
        ]);
    }
    println!("{table}");

    println!("## executed-MAC fraction vs MC iteration count (p = 0.5, reuse + ordering)");
    let net = small_vo_network(&dataset);
    let calib = calibration_inputs(&dataset, 8);
    let mut t_table = Table::new(vec!["iterations T", "workload fraction", "amortization"]);
    for &t in &[5usize, 10, 30, 60] {
        let mut vo = BayesianVo::build(
            &net,
            &calib,
            VoPipelineConfig {
                mc_iterations: t,
                ..VoPipelineConfig::default()
            },
        )
        .expect("pipeline builds");
        for s in dataset.samples.iter().take(5) {
            let _ = vo.predict(&s.features);
        }
        let frac = vo.macro_stats().workload_fraction();
        t_table.row(vec![
            format!("{t}"),
            format!("{frac:.3}"),
            format!("{:.1}% saved", (1.0 - frac) * 100.0),
        ]);
    }
    println!("{t_table}");
    println!(
        "paper shape check: reuse + ordering substantially reduce the MC-Dropout \
         workload, with savings growing as iterations amortize the first full pass."
    );
}
