//! Fig. 2(i): energy per likelihood evaluation — 8-bit digital GMM
//! processor versus the 4-bit HMGM inverter-array CIM.
//!
//! Reproduces the paper's operating point (100 mixture components realized
//! on ~500 physical inverter columns at 45 nm) by fitting a 100-component
//! HMGM to the standard scene, running real likelihood queries through the
//! simulated engine to measure the average array current, and pricing both
//! implementations with `navicim-energy`. The paper's anchors: CIM =
//! 374 fJ, digital = 25× higher.
//!
//! Run: `cargo run --release -p navicim-bench --bin fig2i`

use navicim_analog::engine::{CimEngineConfig, HmgmCimEngine};
use navicim_analog::mapping::SpaceMap;
use navicim_bench::standard_localization_dataset;
use navicim_core::reportfmt::Table;
use navicim_energy::analog::AnalogCimProfile;
use navicim_energy::digital::DigitalProfile;
use navicim_gmm::hmg::{fit_hmgm, HmgmFitConfig};
use navicim_math::rng::{Pcg32, SampleExt};

fn main() {
    println!("# Fig. 2(i) — likelihood-evaluation energy: digital GMM vs HMGM-CIM\n");
    let dataset = standard_localization_dataset();
    let points = dataset.map_points_as_rows();
    let components = 100;

    // Fit the 100-component HMGM map and compile it at 4-bit precision.
    let cim_config = CimEngineConfig {
        dac_bits: 4,
        adc_bits: 4,
        max_replicas: 5,
        ..CimEngineConfig::default()
    };
    let vdd = cim_config.tech.vdd;
    let mut rng = Pcg32::seed_from_u64(21);
    let space =
        SpaceMap::fit_to_points(&points, vdd * 0.15, vdd * 0.85, 0.1).expect("space map fits");
    let (floor, ceil) = HmgmCimEngine::recommended_sigma_bounds(&cim_config.tech, &space);
    let model = fit_hmgm(
        &points,
        components,
        &HmgmFitConfig {
            sigma_floor: floor,
            sigma_ceiling: Some(ceil),
            ..HmgmFitConfig::default()
        },
        &mut rng,
    )
    .expect("hmgm fits");
    let mut engine = HmgmCimEngine::build(&model, space, cim_config).expect("engine compiles");
    println!(
        "array: {} components on {} physical inverter columns (paper: 100 on 500)\n",
        engine.array().num_columns(),
        engine.array().num_physical_columns()
    );

    // Measure the average array current over representative queries.
    let queries = 2000;
    for _ in 0..queries {
        let p = &points[rng.sample_index(points.len())];
        let jitter: Vec<f64> = p
            .iter()
            .map(|&x| x + rng.sample_normal(0.0, 0.05))
            .collect();
        let _ = engine.log_likelihood(&jitter);
    }
    let stats = engine.stats();
    let avg_current = stats.avg_current();
    println!(
        "measured average array current over {queries} queries: {:.3} uA\n",
        avg_current * 1e6
    );

    // Price the CIM evaluation.
    let analog = AnalogCimProfile::paper_45nm();
    let cim_report = analog
        .likelihood_eval_report(avg_current, 3, 4, 4)
        .expect("cim energy prices");
    println!("{cim_report}");
    let cim_fj = cim_report.total_fj();

    // Price the digital baselines (8-bit, 100 components, 3-D point).
    let calibrated = DigitalProfile::paper_calibrated_gmm_asic();
    let horowitz = DigitalProfile::horowitz_45nm();
    let e_cal = calibrated.gmm_point_pj(3, components, 8).expect("prices") * 1e3;
    let e_hor = horowitz.gmm_point_pj(3, components, 8).expect("prices") * 1e3;

    println!("## energy per likelihood evaluation (one projected pixel, 100 components)");
    let mut table = Table::new(vec!["implementation", "energy (fJ)", "vs CIM"]);
    table.row(vec![
        "HMGM inverter-array CIM, 4-bit (this work)".into(),
        format!("{cim_fj:.1}"),
        "1x".into(),
    ]);
    table.row(vec![
        "digital GMM ASIC, 8-bit (paper-calibrated baseline)".into(),
        format!("{e_cal:.1}"),
        format!("{:.1}x", e_cal / cim_fj),
    ]);
    table.row(vec![
        "digital GMM processor, 8-bit (Horowitz-derived costs)".into(),
        format!("{e_hor:.1}"),
        format!("{:.1}x", e_hor / cim_fj),
    ]);
    println!("{table}");

    println!(
        "paper anchors: CIM = 374 fJ (measured here: {cim_fj:.1} fJ), digital = 25x \
         (measured here: {:.1}x against the calibrated ASIC, {:.1}x against Horowitz \
         costs) -> {}",
        e_cal / cim_fj,
        e_hor / cim_fj,
        if (e_cal / cim_fj) > 10.0 && cim_fj < 1000.0 {
            "SHAPE REPRODUCED"
        } else {
            "MISMATCH"
        }
    );
}
