//! Fig. 3(f): correlation between predictive uncertainty (variance) and
//! pose error.
//!
//! Runs 4-bit MC-Dropout VO and prints the per-frame (variance, error)
//! scatter, the Pearson/Spearman correlations and the binned calibration
//! curve — the paper's "discernible correlation" claim.
//!
//! Run: `cargo run --release -p navicim-bench --bin fig3f`

use navicim_bench::{calibration_inputs, standard_vo_dataset, trained_vo_network};
use navicim_core::reportfmt::Table;
use navicim_core::uncertainty::calibration_summary;
use navicim_core::vo::{BayesianVo, VoPipelineConfig};

fn main() {
    println!("# Fig. 3(f) — pose error vs predictive uncertainty\n");
    let dataset = standard_vo_dataset();
    eprintln!("training the pose regressor...");
    let net = trained_vo_network(&dataset);
    let calib = calibration_inputs(&dataset, 16);

    let mut vo = BayesianVo::build(
        &net,
        &calib,
        VoPipelineConfig {
            weight_bits: 4,
            act_bits: 4,
            mc_iterations: 30,
            ..VoPipelineConfig::default()
        },
    )
    .expect("pipeline builds");
    let run = vo.run_trajectory(&dataset).expect("run completes");

    println!("## per-frame scatter (variance, |error|), subsampled");
    let mut scatter = Table::new(vec!["frame", "predictive variance", "step error (m)"]);
    for (i, (v, e)) in run
        .per_step_variance
        .iter()
        .zip(&run.per_step_error)
        .enumerate()
    {
        if i % 3 == 0 {
            scatter.row(vec![format!("{i}"), format!("{v:.6}"), format!("{e:.4}")]);
        }
    }
    println!("{scatter}");

    let summary = calibration_summary(&run.per_step_variance, &run.per_step_error, 5)
        .expect("calibration summary computes");

    println!("## correlation and binned calibration curve");
    println!(
        "pearson r = {:.3}, spearman rho = {:.3}\n",
        summary.pearson, summary.spearman
    );
    let mut bins = Table::new(vec![
        "uncertainty quintile",
        "mean variance",
        "mean |error| (m)",
    ]);
    for (i, (u, e)) in summary
        .binned_uncertainty
        .iter()
        .zip(&summary.binned_errors)
        .enumerate()
    {
        bins.row(vec![
            format!("Q{}", i + 1),
            format!("{u:.6}"),
            format!("{e:.4}"),
        ]);
    }
    println!("{bins}");

    println!(
        "paper shape check: 'a discernible correlation between error and \
         predictive uncertainty' -> spearman {:.3}, monotone trend {} ({})",
        summary.spearman,
        summary.monotone_trend(),
        if summary.spearman > 0.2 && summary.monotone_trend() {
            "REPRODUCED"
        } else {
            "PARTIAL"
        }
    );
}
