//! Section III-D table: effective TOPS/W of the SRAM MC-Dropout macro
//! versus precision.
//!
//! Runs real quantized MC-Dropout inference (30 iterations) through the
//! simulated macro, takes its operation counters and prices them with the
//! 16 nm profile. Paper anchors: 3.04 TOPS/W at 4 bits, ≈2 TOPS/W at
//! 6 bits.
//!
//! Run: `cargo run --release -p navicim-bench --bin tab_tops`

use navicim_bench::{calibration_inputs, standard_vo_dataset, trained_vo_network};
use navicim_core::reportfmt::Table;
use navicim_core::vo::{BayesianVo, VoPipelineConfig};
use navicim_energy::sram::SramCimProfile;

fn main() {
    println!("# Sec. III-D — effective TOPS/W vs precision (30 MC iterations)\n");
    let dataset = standard_vo_dataset();
    eprintln!("training the pose regressor...");
    let net = trained_vo_network(&dataset);
    let calib = calibration_inputs(&dataset, 16);
    let profile = SramCimProfile::paper_16nm();

    let mut table = Table::new(vec![
        "precision",
        "reuse",
        "executed MACs",
        "full-equiv MACs",
        "workload frac",
        "energy (nJ)",
        "effective TOPS/W",
    ]);

    let frames = 20.min(dataset.samples.len());
    for &bits in &[4u32, 6, 8] {
        for &reuse in &[true, false] {
            let mut vo = BayesianVo::build(
                &net,
                &calib,
                VoPipelineConfig {
                    weight_bits: bits,
                    act_bits: bits,
                    mc_iterations: 30,
                    reuse,
                    order_samples: reuse,
                    ..VoPipelineConfig::default()
                },
            )
            .expect("pipeline builds");
            for sample in dataset.samples.iter().take(frames) {
                let _ = vo.predict(&sample.features);
            }
            let stats = vo.macro_stats();
            let rng_bits = (30 * frames * 100) as u64; // masks per iteration
            let report = profile
                .inference_report(
                    stats.macs_executed,
                    stats.adc_conversions,
                    vo.config().adc_bits.min(8),
                    rng_bits,
                    bits,
                )
                .expect("energy prices");
            let tops =
                navicim_energy::tops_per_watt(2 * stats.macs_full_equivalent, report.total_pj());
            table.row(vec![
                format!("{bits}-bit"),
                if reuse { "on".into() } else { "off".into() },
                format!("{}", stats.macs_executed),
                format!("{}", stats.macs_full_equivalent),
                format!("{:.3}", stats.workload_fraction()),
                format!("{:.2}", report.total_pj() / 1e3),
                format!("{tops:.2}"),
            ]);
        }
    }
    println!("{table}");
    println!(
        "paper anchors: 3.04 TOPS/W @4-bit, ~2 TOPS/W @6-bit with reuse. The \
         4-bit/6-bit ordering and the reuse advantage are the shape claims; \
         see the table rows above."
    );
}
