//! Fig. 3(c–e): VO trajectories in X-Y / Y-Z / X-Z — MC-Dropout on the CIM
//! macro versus deterministic inference, across precisions.
//!
//! Trains the pose regressor once, then evaluates: full-precision
//! deterministic, quantized deterministic (4/6/8 bits) and quantized
//! MC-Dropout (4/6/8 bits, 30 iterations). Prints per-configuration ATE
//! and the trajectory coordinate series for plotting.
//!
//! Run: `cargo run --release -p navicim-bench --bin fig3ce`

use navicim_bench::{calibration_inputs, standard_vo_dataset, trained_vo_network};
use navicim_core::reportfmt::Table;
use navicim_core::vo::{run_fp_trajectory, BayesianVo, VoPipelineConfig, VoRun};

fn main() {
    println!("# Fig. 3(c-e) — uncertainty-expressive VO trajectories\n");
    let dataset = standard_vo_dataset();
    println!(
        "workload: {} frames, feature dim {}\n",
        dataset.frames.len(),
        dataset.feature_dim()
    );
    eprintln!("training the pose regressor...");
    let mut net = trained_vo_network(&dataset);
    let calib = calibration_inputs(&dataset, 16);

    let fp = run_fp_trajectory(&mut net, &dataset);

    let mut runs: Vec<(String, VoRun)> = vec![("fp64 deterministic".into(), fp)];
    for &bits in &[4u32, 6, 8] {
        let mut det = BayesianVo::build(
            &net,
            &calib,
            VoPipelineConfig {
                weight_bits: bits,
                act_bits: bits,
                mc_iterations: 30,
                ..VoPipelineConfig::default()
            },
        )
        .expect("pipeline builds");
        let det_run = det
            .run_trajectory_deterministic(&dataset)
            .expect("deterministic run completes");
        runs.push((format!("{bits}-bit deterministic (CIM)"), det_run));

        let mut mc = BayesianVo::build(
            &net,
            &calib,
            VoPipelineConfig {
                weight_bits: bits,
                act_bits: bits,
                mc_iterations: 30,
                ..VoPipelineConfig::default()
            },
        )
        .expect("pipeline builds");
        let mc_run = mc.run_trajectory(&dataset).expect("mc run completes");
        runs.push((format!("{bits}-bit MC-Dropout x30 (CIM)"), mc_run));
    }

    println!("## trajectory accuracy (ATE over the full flight)");
    let mut table = Table::new(vec![
        "configuration",
        "ATE RMSE (m)",
        "ATE mean (m)",
        "final drift (m)",
        "mean step error (m)",
    ]);
    for (name, run) in &runs {
        table.row(vec![
            name.clone(),
            format!("{:.4}", run.trajectory.ate_rmse),
            format!("{:.4}", run.trajectory.ate_mean),
            format!("{:.4}", run.trajectory.final_drift),
            format!("{:.4}", navicim_math::stats::mean(&run.per_step_error)),
        ]);
    }
    println!("{table}");

    // Trajectory coordinate series for the paper's three panels.
    let planes = [("X-Y", 0usize, 1usize), ("Y-Z", 1, 2), ("X-Z", 0, 2)];
    let pick = |name: &str| {
        runs.iter()
            .find(|(n, _)| n == name)
            .map(|(_, r)| r)
            .expect("configuration exists")
    };
    let mc4 = pick("4-bit MC-Dropout x30 (CIM)");
    for (plane, i, j) in planes {
        println!("## trajectory series, {plane} plane (ground truth vs 4-bit MC-Dropout)");
        let mut t = Table::new(vec![
            "frame",
            &format!("truth {}", &plane[0..1]),
            &format!("truth {}", &plane[2..3]),
            &format!("est {}", &plane[0..1]),
            &format!("est {}", &plane[2..3]),
        ]);
        for (k, (truth, est)) in mc4.truths.iter().zip(&mc4.estimates).enumerate() {
            if k % 4 != 0 {
                continue; // subsample rows for readability
            }
            let tr = truth.translation.to_array();
            let es = est.translation.to_array();
            t.row(vec![
                format!("{k}"),
                format!("{:.3}", tr[i]),
                format!("{:.3}", tr[j]),
                format!("{:.3}", es[i]),
                format!("{:.3}", es[j]),
            ]);
        }
        println!("{t}");
    }

    let fp_ate = runs[0].1.trajectory.ate_rmse;
    let mc4_ate = mc4.trajectory.ate_rmse;
    let det4_ate = pick("4-bit deterministic (CIM)").trajectory.ate_rmse;
    println!(
        "paper shape check: 'even with very low precision, probabilistic inference \
         can accurately track the ground truth' -> 4-bit MC ATE {:.4} m vs fp {:.4} m \
         vs 4-bit deterministic {:.4} m ({})",
        mc4_ate,
        fp_ate,
        det4_ate,
        if mc4_ate <= det4_ate * 1.05 {
            "REPRODUCED (MC at least matches deterministic at 4 bits)"
        } else {
            "PARTIAL (see table)"
        }
    );
}
