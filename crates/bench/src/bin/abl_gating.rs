//! Ablation: uncertainty-gated compute on *both* axes — the map
//! substrate and the VO MC-Dropout depth.
//!
//! The paper's thesis, closed end to end: live uncertainty *drives* the
//! compute spent. On the map axis a hysteresis gate serves uncertain
//! frames on the accurate digital GMM datapath and collapsed-cloud
//! frames on the cheap analog HMGM-CIM array, compared against the
//! always-digital / always-analog baselines and an uncertainty-blind
//! periodic-refresh duty cycle. On the VO axis an [`AdaptiveMcPolicy`]
//! modulates the per-frame MC-Dropout iteration count from the previous
//! frame's predictive variance (paper Section III), compared against the
//! fixed-depth run at *identical* pose error — the joint map+VO energy
//! is the full Fig. 2 story.
//!
//! Run: `cargo run --release -p navicim-bench --bin abl_gating`
//!
//! Flags:
//! - `--frames N` — flight length (default 60; CI smoke uses 40),
//! - `--csv PATH` — write the gated adaptive run's per-frame log (all
//!   uncertainty-bus columns) as CSV, the training-data path for learned
//!   gates.

use navicim_analog::engine::CimEngineConfig;
use navicim_core::localization::LocalizerConfig;
use navicim_core::pipeline::{
    GateConfig, GateKind, HysteresisConfig, LocalizationPipeline, PeriodicRefreshConfig,
    PipelineRun, VoStage, ANALOG_SLOT, DIGITAL_SLOT,
};
use navicim_core::registry::{CIM_HMGM, DIGITAL_GMM};
use navicim_core::reportfmt::{fmt_pct, Table};
use navicim_core::vo::{
    train_vo_network, AdaptiveMcConfig, AdaptiveMcPolicy, BayesianVo, VoPipelineConfig,
    VoTrainConfig,
};
use navicim_scene::dataset::{make_samples, LocalizationDataset};

/// MC-Dropout depth of the fixed VO baseline (the paper's constant).
const FIXED_MC: usize = 30;
/// Depth floor of the adaptive policy.
const MIN_MC: usize = 8;
/// VO feature grid.
const GRID_W: usize = 4;
const GRID_H: usize = 3;

fn gate_thresholds() -> HysteresisConfig {
    HysteresisConfig {
        analog_enter: 0.07,
        digital_enter: 0.10,
        dwell: 2,
        start: DIGITAL_SLOT,
    }
}

/// The standard Section II scene, orbited long enough for the gate's
/// digital↔analog duty cycle to settle.
fn gating_dataset(frames: usize) -> LocalizationDataset {
    LocalizationDataset::generate(
        &navicim_scene::dataset::LocalizationConfig {
            image_width: 48,
            image_height: 36,
            map_points: 2000,
            frames,
            ..navicim_scene::dataset::LocalizationConfig::default()
        },
        navicim_bench::SEED,
    )
    .expect("gating dataset generates")
}

fn localizer_config(policy: GateKind) -> LocalizerConfig {
    LocalizerConfig {
        num_particles: 500,
        components: 16,
        pixel_stride: 9,
        // Low-precision converters (the Walden-scaled ADC term dominates
        // the analog energy) on a trimmed, post-calibration array corner
        // (variation largely compensated, integration window narrowing
        // the noise) — the operating point where the analog map matches
        // digital tracking accuracy at a fraction of the energy.
        cim: CimEngineConfig {
            dac_bits: 6,
            adc_bits: 6,
            variation_severity: 0.3,
            noise_bandwidth: 1e7,
            ..CimEngineConfig::default()
        },
        gate: GateConfig {
            backends: vec![DIGITAL_GMM.into(), CIM_HMGM.into()],
            policy,
        },
        seed: 5,
        ..LocalizerConfig::default()
    }
}

fn run_policy(dataset: &LocalizationDataset, label: &str, policy: GateKind) -> PipelineRun {
    LocalizationPipeline::build(dataset, localizer_config(policy))
        .unwrap_or_else(|e| panic!("{label} pipeline builds: {e}"))
        .run(dataset)
        .unwrap_or_else(|e| panic!("{label} run completes: {e}"))
}

/// A gated run with a VO stage riding along at the given depth policy.
fn run_gated_with_vo(
    dataset: &LocalizationDataset,
    net: &navicim_nn::mlp::Mlp,
    calib: &[Vec<f64>],
    label: &str,
    policy: AdaptiveMcPolicy,
) -> PipelineRun {
    let vo = BayesianVo::build(
        net,
        calib,
        VoPipelineConfig {
            mc_iterations: FIXED_MC,
            ..VoPipelineConfig::default()
        },
    )
    .unwrap_or_else(|e| panic!("{label} vo builds: {e}"));
    let stage = VoStage::new(
        vo,
        policy,
        &dataset.camera,
        &dataset.frames[0].depth,
        GRID_W,
        GRID_H,
    )
    .unwrap_or_else(|e| panic!("{label} vo stage builds: {e}"));
    LocalizationPipeline::build(
        dataset,
        localizer_config(GateKind::Hysteresis(gate_thresholds())),
    )
    .unwrap_or_else(|e| panic!("{label} pipeline builds: {e}"))
    .with_vo(stage)
    .run(dataset)
    .unwrap_or_else(|e| panic!("{label} run completes: {e}"))
}

fn parse_args() -> (usize, Option<String>) {
    let mut frames = 60usize;
    let mut csv = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--frames" => {
                let v = args.next().expect("--frames needs a value");
                frames = v.parse().expect("--frames value must be an integer");
                assert!(frames >= 8, "--frames must be at least 8");
            }
            "--csv" => csv = Some(args.next().expect("--csv needs a path")),
            other => panic!("unknown argument {other} (expected --frames N / --csv PATH)"),
        }
    }
    (frames, csv)
}

fn main() {
    let (num_frames, csv_path) = parse_args();
    println!("# Ablation — uncertainty-gated compute on the map and VO axes\n");
    let thresholds = gate_thresholds();
    println!(
        "flight: {num_frames} frames; hysteresis gate: analog at spread <= {} m, digital at \
         spread >= {} m, dwell {} frames",
        thresholds.analog_enter, thresholds.digital_enter, thresholds.dwell
    );
    let refresh = PeriodicRefreshConfig::default();
    println!(
        "periodic-refresh baseline: {} digital frame(s) every {} analog frames\n",
        refresh.refresh_len, refresh.period
    );
    let dataset = gating_dataset(num_frames);

    // ── Map axis: gate policies over the digital/analog slots ─────────
    let digital = run_policy(&dataset, "always-digital", GateKind::Always(DIGITAL_SLOT));
    let analog = run_policy(&dataset, "always-analog", GateKind::Always(ANALOG_SLOT));
    let periodic = run_policy(&dataset, "periodic-refresh", GateKind::Periodic(refresh));
    let gated = run_policy(&dataset, "hysteresis", GateKind::Hysteresis(thresholds));

    // ── VO axis: fixed-depth vs adaptive MC on the gated pipeline ─────
    eprintln!("training the VO regressor...");
    let samples = make_samples(&dataset.frames, &dataset.camera, GRID_W, GRID_H);
    let net = train_vo_network(
        &samples,
        3 * GRID_W * GRID_H,
        &VoTrainConfig {
            hidden1: 32,
            hidden2: 16,
            epochs: 120,
            ..VoTrainConfig::default()
        },
    )
    .expect("vo network trains");
    let calib: Vec<Vec<f64>> = samples.iter().take(8).map(|s| s.features.clone()).collect();
    let fixed_vo = run_gated_with_vo(
        &dataset,
        &net,
        &calib,
        "gated+fixed-mc",
        AdaptiveMcPolicy::fixed(FIXED_MC).expect("fixed policy"),
    );
    // Adaptive thresholds straddle the fixed run's observed variance
    // scale (quantiles of its logged per-frame variances), so the policy
    // runs shallow on the confident majority and deep on the uncertain
    // tail. Both thresholds sit *inside* the observed distribution
    // (p75 / p90) so both directions of the hysteresis band can fire —
    // the policy steps down when confident AND climbs back on the
    // uncertain tail, rather than degenerating into a one-way
    // step-down-to-floor schedule.
    let mut vars: Vec<f64> = fixed_vo
        .frames
        .iter()
        .map(|f| f.vo.expect("vo stage attached").variance)
        .collect();
    vars.sort_by(|a, b| a.partial_cmp(b).expect("finite variances"));
    let var_low = vars[(vars.len() * 3) / 4];
    let p90 = vars[(vars.len() * 9) / 10];
    // Ties between quantiles would invert the band; nudge var_high up.
    let var_high = if p90 > var_low {
        p90
    } else {
        var_low * 1.5 + 1e-12
    };
    let mc_config = AdaptiveMcConfig {
        min_iterations: MIN_MC,
        max_iterations: FIXED_MC,
        var_low,
        var_high,
        dwell: 2,
    };
    let adaptive_vo = run_gated_with_vo(
        &dataset,
        &net,
        &calib,
        "gated+adaptive-mc",
        AdaptiveMcPolicy::new(mc_config).expect("adaptive policy"),
    );

    println!("## per-frame stream (gated + adaptive MC)");
    let mut frames = Table::new(vec![
        "frame",
        "backend",
        "spread (m)",
        "ess frac",
        "innovation",
        "mc iters",
        "gated err (m)",
        "map pJ",
        "vo pJ",
    ]);
    for f in &adaptive_vo.frames {
        let vo = f.vo.expect("vo stage attached");
        frames.row(vec![
            format!("{}", f.frame + 1),
            adaptive_vo.backends[f.slot].clone(),
            format!("{:.4}", f.signals.spread),
            format!("{:.3}", f.signals.ess_fraction),
            format!("{:.3}", f.signals.innovation),
            format!("{}", vo.iterations),
            format!("{:.4}", f.summary.error),
            format!("{:.1}", f.map_energy_pj),
            format!("{:.1}", vo.energy_pj),
        ]);
    }
    println!("{frames}");

    println!("## per-slot share of the gated run");
    println!("{}", gated.summary_table());

    println!("## map-axis policy comparison");
    let mut table = Table::new(vec![
        "policy",
        "analog frames",
        "steady-state error (m)",
        "map energy (pJ)",
        "vs always-digital",
    ]);
    for run in [&digital, &analog, &periodic, &gated] {
        table.row(vec![
            run.gate.clone(),
            fmt_pct(run.analog_fraction()),
            format!("{:.4}", run.steady_state_error()),
            format!("{:.1}", run.total_map_energy_pj()),
            format!(
                "{:.2}x energy",
                run.total_map_energy_pj() / digital.total_map_energy_pj()
            ),
        ]);
    }
    println!("{table}");

    println!("## vo-axis depth comparison (both on the hysteresis-gated map)");
    let mut vo_table = Table::new(vec![
        "mc policy",
        "mean iters",
        "steady-state error (m)",
        "vo energy (pJ)",
        "joint map+vo (pJ)",
        "vs fixed",
    ]);
    for run in [&fixed_vo, &adaptive_vo] {
        vo_table.row(vec![
            run.vo_policy.clone().expect("vo stage attached"),
            format!("{:.1}", run.mean_mc_iterations()),
            format!("{:.4}", run.steady_state_error()),
            format!("{:.1}", run.total_vo_energy_pj()),
            format!("{:.1}", run.total_energy_pj()),
            format!(
                "{:.2}x joint energy",
                run.total_energy_pj() / fixed_vo.total_energy_pj()
            ),
        ]);
    }
    println!("{vo_table}");

    if let Some(path) = &csv_path {
        let csv = adaptive_vo.to_csv();
        std::fs::write(path, csv.to_string()).expect("csv log writes");
        println!("wrote {} frame-log rows to {path}\n", csv.len());
    }

    // The headline claims of the two-axis gating co-design, checked on
    // the spot. A MISMATCH exits non-zero so the CI smoke run fails on a
    // regression of either energy story, not just on a crash.
    let analog_share = gated.analog_fraction();
    let err_ratio = gated.steady_state_error() / digital.steady_state_error();
    let saves_map_energy = gated.total_map_energy_pj() < digital.total_map_energy_pj();
    let map_ok = analog_share >= 0.5 && err_ratio <= 1.1 && saves_map_energy;
    println!(
        "map axis: {} of frames on the analog array, steady-state error {:.1}% of \
         always-digital, {} backend switches, map energy {:.2}x always-digital -> {}",
        fmt_pct(analog_share),
        err_ratio * 100.0,
        gated.switches(),
        gated.total_map_energy_pj() / digital.total_map_energy_pj(),
        if map_ok {
            "SHAPE REPRODUCED"
        } else {
            "MISMATCH"
        }
    );
    let same_error = adaptive_vo.steady_state_error() <= fixed_vo.steady_state_error();
    let saves_joint = adaptive_vo.total_energy_pj() < fixed_vo.total_energy_pj();
    let vo_ok = saves_joint && same_error;
    println!(
        "vo axis: adaptive depth {:.1} mean iters (fixed {FIXED_MC}), joint energy {:.2}x the \
         fixed-depth gated run at {} steady-state pose error -> {}",
        adaptive_vo.mean_mc_iterations(),
        adaptive_vo.total_energy_pj() / fixed_vo.total_energy_pj(),
        if adaptive_vo.steady_state_error() == fixed_vo.steady_state_error() {
            "identical"
        } else {
            "different"
        },
        if vo_ok {
            "SHAPE REPRODUCED"
        } else {
            "MISMATCH"
        }
    );
    if !(map_ok && vo_ok) {
        std::process::exit(1);
    }
}
