//! Ablation: uncertainty-gated compute on *both* axes — the map
//! substrate and the VO MC-Dropout depth — plus the closed VO→filter
//! loop.
//!
//! The paper's thesis, closed end to end: live uncertainty *drives* the
//! compute spent. On the map axis a hysteresis gate serves uncertain
//! frames on the accurate digital GMM datapath and collapsed-cloud
//! frames on the cheap analog HMGM-CIM array, compared against the
//! always-digital / always-analog baselines, an uncertainty-blind
//! periodic-refresh duty cycle and the multi-signal gate (spread band
//! plus innovation/ESS digital-wake rescues). On the VO axis an
//! [`AdaptiveMcPolicy`] modulates the per-frame MC-Dropout iteration
//! count from the previous frame's predictive variance (paper Section
//! III), compared against the fixed-depth run at *identical* pose error.
//! Finally, the control-source comparison closes the sensor-fusion loop:
//! the same gated pipeline navigating on ground-truth odometry
//! (open loop) versus on its *own* MC-Dropout VO predictive mean with
//! variance-inflated motion noise (closed loop) — the full autonomy
//! story, since a real drone has no ground-truth deltas to lean on.
//!
//! Run: `cargo run --release -p navicim-bench --bin abl_gating`
//!
//! Flags:
//! - `--frames N` — flight length (default 60; CI smoke uses 40),
//! - `--csv PATH` — write the closed-loop run's per-frame log (all
//!   uncertainty-bus columns incl. control source and noise scale) as
//!   CSV, the training-data path for learned gates.

use navicim_analog::engine::CimEngineConfig;
use navicim_core::localization::LocalizerConfig;
use navicim_core::pipeline::{
    ControlSource, GateConfig, GateKind, HysteresisConfig, LocalizationPipeline, MultiSignalConfig,
    NoiseInflation, PeriodicRefreshConfig, PipelineRun, VoStage, ANALOG_SLOT, DIGITAL_SLOT,
};
use navicim_core::registry::{CIM_HMGM, DIGITAL_GMM};
use navicim_core::reportfmt::{fmt_pct, Table};
use navicim_core::vo::{
    train_vo_network, AdaptiveMcConfig, AdaptiveMcPolicy, BayesianVo, VoPipelineConfig,
    VoTrainConfig,
};
use navicim_scene::dataset::{make_samples, LocalizationDataset};

/// MC-Dropout depth of the fixed VO baseline (the paper's constant).
const FIXED_MC: usize = 30;
/// Depth floor of the adaptive policy.
const MIN_MC: usize = 8;
/// VO feature grid.
const GRID_W: usize = 4;
const GRID_H: usize = 3;

fn gate_thresholds() -> HysteresisConfig {
    HysteresisConfig {
        analog_enter: 0.07,
        digital_enter: 0.10,
        dwell: 2,
        start: DIGITAL_SLOT,
    }
}

fn multi_signal_thresholds() -> MultiSignalConfig {
    MultiSignalConfig {
        spread: gate_thresholds(),
        // The tempered per-frame mean log-likelihood wobbles by a few
        // nats frame to frame on this flight; a five-nat drop below
        // trend is a genuine map-mismatch event, not noise.
        innovation_wake: -5.0,
        ess_wake: 0.02,
    }
}

/// The loop-comparison gate: the same multi-signal rescue thresholds
/// with a spread band re-centred for the tracking regime, whose
/// post-update spreads sit higher than the classic relocalization
/// regime's (denser scans, tighter prior, different collapse dynamics).
fn tracking_multi_signal() -> MultiSignalConfig {
    MultiSignalConfig {
        spread: HysteresisConfig {
            analog_enter: 0.10,
            digital_enter: 0.14,
            dwell: 2,
            start: DIGITAL_SLOT,
        },
        ..multi_signal_thresholds()
    }
}

/// Bounded VO-variance → motion-noise inflation of the closed loop,
/// calibrated from the open-loop run's observed per-frame variances the
/// same way the adaptive-MC band is. The floor sits *below* 1: the
/// regressor's measured per-step error (~1 mm) is an order of magnitude
/// inside the modeled odometry noise band, so a confident prediction
/// legitimately sharpens the proposal — that is the closed loop's
/// energy story, since a slower spread ramp means fewer digital
/// wake-ups. The gain then widens uncertain frames back up toward the
/// ceiling instead of letting them silently bias the filter.
fn calibrated_inflation(variance_p90: f64) -> NoiseInflation {
    let p90 = variance_p90.max(f64::MIN_POSITIVE);
    NoiseInflation::new(0.4 / p90, 0.8, 1.2).expect("valid inflation bounds")
}

/// The standard Section II scene, orbited long enough for the gate's
/// digital↔analog duty cycle to settle.
fn gating_dataset(frames: usize) -> LocalizationDataset {
    LocalizationDataset::generate(
        &navicim_scene::dataset::LocalizationConfig {
            image_width: 48,
            image_height: 36,
            map_points: 2000,
            frames,
            ..navicim_scene::dataset::LocalizationConfig::default()
        },
        navicim_bench::SEED,
    )
    .expect("gating dataset generates")
}

/// Filter seeds of the open/closed control-source comparison. A single
/// 40-frame flight is one draw from a noisy process (which likelihood
/// mode the cloud collapses into, which marginal frames cross the gate
/// thresholds), so the loop claim is checked on the *mean* over several
/// independent filter seeds rather than on one lucky or unlucky run.
const LOOP_SEEDS: [u64; 3] = [5, 11, 23];

/// The classic relocalization regime of the map/VO-axis rows: a wide
/// 0.25 m init prior the gate has to collapse from, unchanged from the
/// earlier gating ablations.
fn localizer_config(policy: GateKind) -> LocalizerConfig {
    LocalizerConfig {
        num_particles: 500,
        components: 16,
        pixel_stride: 9,
        // Low-precision converters (the Walden-scaled ADC term dominates
        // the analog energy) on a trimmed, post-calibration array corner
        // (variation largely compensated, integration window narrowing
        // the noise) — the operating point where the analog map matches
        // digital tracking accuracy at a fraction of the energy.
        cim: CimEngineConfig {
            dac_bits: 6,
            adc_bits: 6,
            variation_severity: 0.3,
            noise_bandwidth: 1e7,
            ..CimEngineConfig::default()
        },
        gate: GateConfig {
            backends: vec![DIGITAL_GMM.into(), CIM_HMGM.into()],
            policy,
        },
        seed: 5,
        ..LocalizerConfig::default()
    }
}

/// The tracking regime of the open/closed loop comparison: the flight
/// starts from a decent prior (as a drone taking off from a known pad
/// does) and scans densely enough that the likelihood is not badly
/// aliased, so the comparison measures *drift containment under each
/// control source* rather than which mode a 0.25 m-wide prior happens
/// to collapse into.
fn tracking_config(policy: GateKind, seed: u64) -> LocalizerConfig {
    LocalizerConfig {
        pixel_stride: 7,
        init_spread: 0.1,
        init_yaw_spread: 0.05,
        seed,
        ..localizer_config(policy)
    }
}

fn run_policy(dataset: &LocalizationDataset, label: &str, policy: GateKind) -> PipelineRun {
    run_policy_seeded(dataset, label, policy, 5)
}

fn run_policy_seeded(
    dataset: &LocalizationDataset,
    label: &str,
    policy: GateKind,
    seed: u64,
) -> PipelineRun {
    let config = LocalizerConfig {
        seed,
        ..localizer_config(policy)
    };
    LocalizationPipeline::build(dataset, config)
        .unwrap_or_else(|e| panic!("{label} pipeline builds: {e}"))
        .run(dataset)
        .unwrap_or_else(|e| panic!("{label} run completes: {e}"))
}

/// One row of the VO-staged runs: depth policy, control source, noise
/// inflation and filter seed.
struct LoopRunSpec {
    label: &'static str,
    policy: AdaptiveMcPolicy,
    control: ControlSource,
    inflation: NoiseInflation,
    seed: u64,
}

/// A gated run with a VO stage riding along at the given depth policy,
/// either observing (open loop, ground-truth odometry) or *driving* the
/// motion model (closed loop, VO predictive mean + variance-inflated
/// noise). Both loop rows arbitrate the map slots with the multi-signal
/// gate: its innovation/ESS rescue is precisely the watchdog a closed
/// loop needs — a VO-dragged cloud that settles into a *wrong* map
/// basin is tight (spread-blind) but scores below its likelihood trend.
fn run_gated_with_vo(
    dataset: &LocalizationDataset,
    net: &navicim_nn::mlp::Mlp,
    calib: &[Vec<f64>],
    spec: LoopRunSpec,
) -> PipelineRun {
    let label = spec.label;
    let vo = BayesianVo::build(
        net,
        calib,
        VoPipelineConfig {
            mc_iterations: FIXED_MC,
            ..VoPipelineConfig::default()
        },
    )
    .unwrap_or_else(|e| panic!("{label} vo builds: {e}"));
    let stage = VoStage::new(
        vo,
        spec.policy,
        &dataset.camera,
        &dataset.frames[0].depth,
        GRID_W,
        GRID_H,
    )
    .unwrap_or_else(|e| panic!("{label} vo stage builds: {e}"));
    LocalizationPipeline::build(
        dataset,
        tracking_config(GateKind::MultiSignal(tracking_multi_signal()), spec.seed),
    )
    .unwrap_or_else(|e| panic!("{label} pipeline builds: {e}"))
    .with_vo(stage)
    .with_control(spec.control)
    .with_noise_inflation(spec.inflation)
    .unwrap_or_else(|e| panic!("{label} inflation validates: {e}"))
    .run(dataset)
    .unwrap_or_else(|e| panic!("{label} run completes: {e}"))
}

fn parse_args() -> (usize, Option<String>) {
    let mut frames = 60usize;
    let mut csv = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--frames" => {
                let v = args.next().expect("--frames needs a value");
                frames = v.parse().expect("--frames value must be an integer");
                assert!(frames >= 8, "--frames must be at least 8");
            }
            "--csv" => csv = Some(args.next().expect("--csv needs a path")),
            other => panic!("unknown argument {other} (expected --frames N / --csv PATH)"),
        }
    }
    (frames, csv)
}

fn main() {
    let (num_frames, csv_path) = parse_args();
    println!("# Ablation — uncertainty-gated compute on the map and VO axes\n");
    let thresholds = gate_thresholds();
    println!(
        "flight: {num_frames} frames; hysteresis gate: analog at spread <= {} m, digital at \
         spread >= {} m, dwell {} frames",
        thresholds.analog_enter, thresholds.digital_enter, thresholds.dwell
    );
    let refresh = PeriodicRefreshConfig::default();
    println!(
        "periodic-refresh baseline: {} digital frame(s) every {} analog frames\n",
        refresh.refresh_len, refresh.period
    );
    let dataset = gating_dataset(num_frames);

    // ── Map axis: gate policies over the digital/analog slots ─────────
    let digital = run_policy(&dataset, "always-digital", GateKind::Always(DIGITAL_SLOT));
    let analog = run_policy(&dataset, "always-analog", GateKind::Always(ANALOG_SLOT));
    let periodic = run_policy(&dataset, "periodic-refresh", GateKind::Periodic(refresh));
    let gated = run_policy(&dataset, "hysteresis", GateKind::Hysteresis(thresholds));
    let multi = run_policy(
        &dataset,
        "multi-signal",
        GateKind::MultiSignal(multi_signal_thresholds()),
    );

    // ── VO axis: fixed-depth vs adaptive MC on the gated pipeline ─────
    eprintln!("training the VO regressor...");
    let samples = make_samples(&dataset.frames, &dataset.camera, GRID_W, GRID_H);
    // Deep enough that the regressor's per-step bias stays well inside
    // the inflated motion-noise band — in closed-loop mode the filter
    // has to absorb that bias every frame, so VO quality (a one-time
    // training cost) buys pose accuracy at zero inference energy.
    let net = train_vo_network(
        &samples,
        3 * GRID_W * GRID_H,
        &VoTrainConfig {
            hidden1: 48,
            hidden2: 24,
            epochs: 300,
            ..VoTrainConfig::default()
        },
    )
    .expect("vo network trains");
    let calib: Vec<Vec<f64>> = samples.iter().take(8).map(|s| s.features.clone()).collect();
    let fixed_vo = run_gated_with_vo(
        &dataset,
        &net,
        &calib,
        LoopRunSpec {
            label: "gated+fixed-mc",
            policy: AdaptiveMcPolicy::fixed(FIXED_MC).expect("fixed policy"),
            control: ControlSource::GroundTruth,
            inflation: NoiseInflation::default(),
            seed: 5,
        },
    );
    // Adaptive thresholds straddle the fixed run's observed variance
    // scale (quantiles of its logged per-frame variances), so the policy
    // runs shallow on the confident majority and deep on the uncertain
    // tail. Both thresholds sit *inside* the observed distribution
    // (p75 / p90) so both directions of the hysteresis band can fire —
    // the policy steps down when confident AND climbs back on the
    // uncertain tail, rather than degenerating into a one-way
    // step-down-to-floor schedule.
    let mut vars: Vec<f64> = fixed_vo
        .frames
        .iter()
        .map(|f| f.vo.expect("vo stage attached").variance)
        .collect();
    vars.sort_by(|a, b| a.partial_cmp(b).expect("finite variances"));
    let var_low = vars[(vars.len() * 3) / 4];
    let p90 = vars[(vars.len() * 9) / 10];
    // Ties between quantiles would invert the band; nudge var_high up.
    let var_high = if p90 > var_low {
        p90
    } else {
        var_low * 1.5 + 1e-12
    };
    let mc_config = AdaptiveMcConfig {
        min_iterations: MIN_MC,
        max_iterations: FIXED_MC,
        var_low,
        var_high,
        dwell: 2,
    };
    let adaptive_vo = run_gated_with_vo(
        &dataset,
        &net,
        &calib,
        LoopRunSpec {
            label: "gated+adaptive-mc",
            policy: AdaptiveMcPolicy::new(mc_config).expect("adaptive policy"),
            control: ControlSource::GroundTruth,
            inflation: NoiseInflation::default(),
            seed: 5,
        },
    );

    // ── Closed loop: the same gated+adaptive pipeline, navigating on
    // its own VO predictions instead of ground-truth odometry, sampled
    // over several filter seeds next to matching open-loop runs ────────
    let inflation = calibrated_inflation(p90);
    let mut open_runs = Vec::with_capacity(LOOP_SEEDS.len());
    let mut closed_runs = Vec::with_capacity(LOOP_SEEDS.len());
    for &seed in &LOOP_SEEDS {
        if seed == 5 {
            // The seed-5 open-loop spec is exactly the gated+adaptive
            // row above, and runs are bit-identical for identical
            // configs (property-tested) — reuse it instead of paying a
            // redundant VO-staged flight.
            open_runs.push(adaptive_vo.clone());
        } else {
            open_runs.push(run_gated_with_vo(
                &dataset,
                &net,
                &calib,
                LoopRunSpec {
                    label: "open-loop",
                    policy: AdaptiveMcPolicy::new(mc_config).expect("adaptive policy"),
                    control: ControlSource::GroundTruth,
                    inflation: NoiseInflation::default(),
                    seed,
                },
            ));
        }
        closed_runs.push(run_gated_with_vo(
            &dataset,
            &net,
            &calib,
            LoopRunSpec {
                label: "closed-loop",
                policy: AdaptiveMcPolicy::new(mc_config).expect("adaptive policy"),
                control: ControlSource::VisualOdometry,
                inflation,
                seed,
            },
        ));
    }
    let closed_vo = &closed_runs[0];

    println!("## per-frame stream (closed loop: VO-driven, adaptive MC)");
    let mut frames = Table::new(vec![
        "frame",
        "backend",
        "spread (m)",
        "ess frac",
        "innovation",
        "mc iters",
        "noise scale",
        "err (m)",
        "map pJ",
        "vo pJ",
    ]);
    for f in &closed_vo.frames {
        let vo = f.vo.expect("vo stage attached");
        frames.row(vec![
            format!("{}", f.frame + 1),
            closed_vo.backends[f.slot].clone(),
            format!("{:.4}", f.signals.spread),
            format!("{:.3}", f.signals.ess_fraction),
            f.signals
                .innovation
                .map_or("warm-up".into(), |i| format!("{i:+.3}")),
            format!("{}", vo.iterations),
            format!("{:.2}x", f.noise_scale),
            format!("{:.4}", f.summary.error),
            format!("{:.1}", f.map_energy_pj),
            format!("{:.1}", vo.energy_pj),
        ]);
    }
    println!("{frames}");

    println!("## per-slot share of the gated run");
    println!("{}", gated.summary_table());

    println!("## map-axis policy comparison");
    let mut table = Table::new(vec![
        "policy",
        "analog frames",
        "steady-state error (m)",
        "map energy (pJ)",
        "vs always-digital",
    ]);
    for run in [&digital, &analog, &periodic, &gated, &multi] {
        table.row(vec![
            run.gate.clone(),
            fmt_pct(run.analog_fraction()),
            format!("{:.4}", run.steady_state_error()),
            format!("{:.1}", run.total_map_energy_pj()),
            format!(
                "{:.2}x energy",
                run.total_map_energy_pj() / digital.total_map_energy_pj()
            ),
        ]);
    }
    println!("{table}");

    println!("## vo-axis depth comparison (both on the multi-signal-gated map)");
    let mut vo_table = Table::new(vec![
        "mc policy",
        "mean iters",
        "steady-state error (m)",
        "vo energy (pJ)",
        "joint map+vo (pJ)",
        "vs fixed",
    ]);
    for run in [&fixed_vo, &adaptive_vo] {
        vo_table.row(vec![
            run.vo_policy.clone().expect("vo stage attached"),
            format!("{:.1}", run.mean_mc_iterations()),
            format!("{:.4}", run.steady_state_error()),
            format!("{:.1}", run.total_vo_energy_pj()),
            format!("{:.1}", run.total_energy_pj()),
            format!(
                "{:.2}x joint energy",
                run.total_energy_pj() / fixed_vo.total_energy_pj()
            ),
        ]);
    }
    println!("{vo_table}");

    println!(
        "## control-source comparison over {} filter seeds (open vs closed loop, both \
         multi-signal-gated + adaptive MC)",
        LOOP_SEEDS.len()
    );
    let mut loop_table = Table::new(vec![
        "seed",
        "control source",
        "steady-state error (m)",
        "analog frames",
        "mean noise scale",
        "vo ctrl err (m)",
        "joint map+vo (pJ)",
    ]);
    for (i, &seed) in LOOP_SEEDS.iter().enumerate() {
        for run in [&open_runs[i], &closed_runs[i]] {
            let source = run
                .frames
                .first()
                .map(|f| f.control_source.label())
                .unwrap_or("-");
            loop_table.row(vec![
                format!("{seed}"),
                source.into(),
                format!("{:.4}", run.steady_state_error()),
                fmt_pct(run.analog_fraction()),
                format!("{:.2}x", run.mean_noise_scale()),
                run.mean_control_error()
                    .map_or("-".into(), |e| format!("{e:.4}")),
                format!("{:.1}", run.total_energy_pj()),
            ]);
        }
    }
    let mean = |f: &dyn Fn(&PipelineRun) -> f64, runs: &[PipelineRun]| -> f64 {
        runs.iter().map(f).sum::<f64>() / runs.len() as f64
    };
    let open_err = mean(&PipelineRun::steady_state_error, &open_runs);
    let closed_err = mean(&PipelineRun::steady_state_error, &closed_runs);
    let open_pj = mean(&PipelineRun::total_energy_pj, &open_runs);
    let closed_pj = mean(&PipelineRun::total_energy_pj, &closed_runs);
    for (label, err, pj, runs) in [
        ("mean ground-truth", open_err, open_pj, &open_runs),
        ("mean visual-odometry", closed_err, closed_pj, &closed_runs),
    ] {
        loop_table.row(vec![
            "-".into(),
            label.into(),
            format!("{err:.4}"),
            fmt_pct(mean(&PipelineRun::analog_fraction, runs)),
            format!("{:.2}x", mean(&PipelineRun::mean_noise_scale, runs)),
            String::new(),
            format!("{pj:.1}"),
        ]);
    }
    println!("{loop_table}");

    if let Some(path) = &csv_path {
        let csv = closed_vo.to_csv();
        std::fs::write(path, csv.to_string()).expect("csv log writes");
        println!("wrote {} frame-log rows to {path}\n", csv.len());
    }

    // The headline claims of the two-axis gating co-design, checked on
    // the spot. A MISMATCH exits non-zero so the CI smoke run fails on a
    // regression of either energy story, not just on a crash.
    let analog_share = gated.analog_fraction();
    let err_ratio = gated.steady_state_error() / digital.steady_state_error();
    let saves_map_energy = gated.total_map_energy_pj() < digital.total_map_energy_pj();
    let map_ok = analog_share >= 0.5 && err_ratio <= 1.1 && saves_map_energy;
    println!(
        "map axis: {} of frames on the analog array, steady-state error {:.1}% of \
         always-digital, {} backend switches, map energy {:.2}x always-digital -> {}",
        fmt_pct(analog_share),
        err_ratio * 100.0,
        gated.switches(),
        gated.total_map_energy_pj() / digital.total_map_energy_pj(),
        if map_ok {
            "SHAPE REPRODUCED"
        } else {
            "MISMATCH"
        }
    );
    let same_error = adaptive_vo.steady_state_error() <= fixed_vo.steady_state_error();
    let saves_joint = adaptive_vo.total_energy_pj() < fixed_vo.total_energy_pj();
    let vo_ok = saves_joint && same_error;
    println!(
        "vo axis: adaptive depth {:.1} mean iters (fixed {FIXED_MC}), joint energy {:.2}x the \
         fixed-depth gated run at {} steady-state pose error -> {}",
        adaptive_vo.mean_mc_iterations(),
        adaptive_vo.total_energy_pj() / fixed_vo.total_energy_pj(),
        if adaptive_vo.steady_state_error() == fixed_vo.steady_state_error() {
            "identical"
        } else {
            "different"
        },
        if vo_ok {
            "SHAPE REPRODUCED"
        } else {
            "MISMATCH"
        }
    );
    // The closed-loop claim: navigating on the pipeline's own VO
    // estimates (no ground-truth odometry at all) holds steady-state
    // pose error within 1.5x the open-loop gated runs without spending
    // more joint energy, averaged over the seed panel — trust-scaled
    // noise keeps the proposal matched to the measured odometry quality
    // instead of collapsing onto a biased track or ballooning the
    // digital duty cycle.
    let err_ratio = closed_err / open_err;
    let energy_ratio = closed_pj / open_pj;
    let closed_ok = err_ratio <= 1.5 && energy_ratio <= 1.0;
    println!(
        "closed loop ({}-seed mean): steady-state error {:.2}x the open-loop gated runs \
         ({:.4} vs {:.4} m) at {:.2}x joint energy, mean noise scale {:.2}x, mean vo control \
         error {:.4} m -> {}",
        LOOP_SEEDS.len(),
        err_ratio,
        closed_err,
        open_err,
        energy_ratio,
        mean(&PipelineRun::mean_noise_scale, &closed_runs),
        mean(
            &|r: &PipelineRun| r.mean_control_error().unwrap_or(f64::NAN),
            &closed_runs,
        ),
        if closed_ok {
            "SHAPE REPRODUCED"
        } else {
            "MISMATCH"
        }
    );
    // The multi-signal gate must not regress the spread-only story:
    // comparable steady error at a genuine analog share. Like the loop
    // claim, a single flight is one noisy draw (a rescue firing once
    // reshuffles the whole realization), so the comparison is averaged
    // over the same seed panel; the seed-5 rows reuse the map-axis runs.
    let mut hyst_runs = vec![gated];
    let mut multi_runs = vec![multi];
    for &seed in &LOOP_SEEDS[1..] {
        hyst_runs.push(run_policy_seeded(
            &dataset,
            "hysteresis",
            GateKind::Hysteresis(thresholds),
            seed,
        ));
        multi_runs.push(run_policy_seeded(
            &dataset,
            "multi-signal",
            GateKind::MultiSignal(multi_signal_thresholds()),
            seed,
        ));
    }
    let hyst_err = mean(&PipelineRun::steady_state_error, &hyst_runs);
    let multi_err = mean(&PipelineRun::steady_state_error, &multi_runs);
    let multi_energy = mean(&PipelineRun::total_map_energy_pj, &multi_runs);
    let multi_ok = multi_err <= hyst_err * 1.25 && multi_energy < digital.total_map_energy_pj();
    println!(
        "multi-signal gate ({}-seed mean): {} analog frames, steady-state error {:.4} m \
         (spread-only {:.4} m), map energy {:.2}x always-digital -> {}",
        LOOP_SEEDS.len(),
        fmt_pct(mean(&PipelineRun::analog_fraction, &multi_runs)),
        multi_err,
        hyst_err,
        multi_energy / digital.total_map_energy_pj(),
        if multi_ok {
            "SHAPE REPRODUCED"
        } else {
            "MISMATCH"
        }
    );
    if !(map_ok && vo_ok && closed_ok && multi_ok) {
        std::process::exit(1);
    }
}
