//! Ablation: uncertainty-gated digital↔analog backend arbitration.
//!
//! The paper's thesis, closed end to end: particle-spread uncertainty
//! *drives* the compute substrate. A hysteresis gate serves uncertain
//! frames on the accurate digital GMM datapath and collapsed-cloud frames
//! on the cheap analog HMGM-CIM array, and is compared against the
//! always-digital and always-analog baselines on steady-state accuracy
//! and Fig. 2(i)-style map-evaluation energy.
//!
//! Run: `cargo run --release -p navicim-bench --bin abl_gating`

use navicim_analog::engine::CimEngineConfig;

use navicim_core::localization::LocalizerConfig;
use navicim_core::pipeline::{
    GateConfig, GateKind, HysteresisConfig, LocalizationPipeline, PipelineRun, ANALOG_SLOT,
    DIGITAL_SLOT,
};
use navicim_core::registry::{CIM_HMGM, DIGITAL_GMM};
use navicim_core::reportfmt::{fmt_pct, Table};

fn gate_thresholds() -> HysteresisConfig {
    HysteresisConfig {
        analog_enter: 0.07,
        digital_enter: 0.10,
        dwell: 2,
        start: DIGITAL_SLOT,
    }
}

/// The standard Section II scene, orbited for 30 frames so the gate's
/// digital↔analog duty cycle settles.
fn gating_dataset() -> navicim_scene::dataset::LocalizationDataset {
    navicim_scene::dataset::LocalizationDataset::generate(
        &navicim_scene::dataset::LocalizationConfig {
            image_width: 48,
            image_height: 36,
            map_points: 2000,
            frames: 30,
            ..navicim_scene::dataset::LocalizationConfig::default()
        },
        navicim_bench::SEED,
    )
    .expect("gating dataset generates")
}

fn run_policy(label: &str, policy: GateKind) -> PipelineRun {
    let dataset = gating_dataset();
    let config = LocalizerConfig {
        num_particles: 500,
        components: 16,
        pixel_stride: 9,
        // Low-precision converters (the Walden-scaled ADC term dominates
        // the analog energy) on a trimmed, post-calibration array corner
        // (variation largely compensated, integration window narrowing
        // the noise) — the operating point where the analog map matches
        // digital tracking accuracy at a fraction of the energy.
        cim: CimEngineConfig {
            dac_bits: 6,
            adc_bits: 6,
            variation_severity: 0.3,
            noise_bandwidth: 1e7,
            ..CimEngineConfig::default()
        },
        gate: GateConfig {
            backends: vec![DIGITAL_GMM.into(), CIM_HMGM.into()],
            policy,
        },
        seed: 5,
        ..LocalizerConfig::default()
    };
    LocalizationPipeline::build(&dataset, config)
        .unwrap_or_else(|e| panic!("{label} pipeline builds: {e}"))
        .run(&dataset)
        .unwrap_or_else(|e| panic!("{label} run completes: {e}"))
}

fn main() {
    println!("# Ablation — uncertainty-gated digital<->analog backend arbitration\n");
    let thresholds = gate_thresholds();
    println!(
        "hysteresis gate: analog at spread <= {} m, digital at spread >= {} m, \
         dwell {} frames\n",
        thresholds.analog_enter, thresholds.digital_enter, thresholds.dwell
    );

    let digital = run_policy("always-digital", GateKind::Always(DIGITAL_SLOT));
    let analog = run_policy("always-analog", GateKind::Always(ANALOG_SLOT));
    let gated = run_policy("hysteresis", GateKind::Hysteresis(thresholds));

    println!("## per-frame stream");
    let mut frames = Table::new(vec![
        "frame",
        "gated backend",
        "gate spread (m)",
        "digital err (m)",
        "analog err (m)",
        "gated err (m)",
        "gated energy (pJ)",
    ]);
    for ((d, a), g) in digital.frames.iter().zip(&analog.frames).zip(&gated.frames) {
        frames.row(vec![
            format!("{}", g.frame + 1),
            gated.backends[g.slot].clone(),
            format!("{:.4}", g.gate_spread),
            format!("{:.4}", d.summary.error),
            format!("{:.4}", a.summary.error),
            format!("{:.4}", g.summary.error),
            format!("{:.1}", g.energy_pj),
        ]);
    }
    println!("{frames}");

    println!("## per-slot share of the gated run");
    println!("{}", gated.summary_table());

    println!("## policy comparison");
    let mut table = Table::new(vec![
        "policy",
        "analog frames",
        "steady-state error (m)",
        "energy (pJ)",
        "vs always-digital",
    ]);
    for run in [&digital, &analog, &gated] {
        table.row(vec![
            run.gate.clone(),
            fmt_pct(run.analog_fraction()),
            format!("{:.4}", run.steady_state_error()),
            format!("{:.1}", run.total_energy_pj()),
            format!(
                "{:.2}x energy",
                run.total_energy_pj() / digital.total_energy_pj()
            ),
        ]);
    }
    println!("{table}");

    // The headline claims of the gating co-design, checked on the spot.
    let analog_share = gated.analog_fraction();
    let err_ratio = gated.steady_state_error() / digital.steady_state_error();
    let saves_energy = gated.total_energy_pj() < digital.total_energy_pj();
    println!(
        "gated run: {} of frames on the analog array, steady-state error {:.1}% of \
         always-digital, {} backend switches, energy {:.2}x always-digital -> {}",
        fmt_pct(analog_share),
        err_ratio * 100.0,
        gated.switches(),
        gated.total_energy_pj() / digital.total_energy_pj(),
        if analog_share >= 0.5 && err_ratio <= 1.1 && saves_energy {
            "SHAPE REPRODUCED"
        } else {
            "MISMATCH"
        }
    );
}
