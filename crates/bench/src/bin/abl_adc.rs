//! Ablation: log-ADC resolution and process-variation severity of the
//! analog likelihood engine (robustness of the Section II co-design).
//!
//! Run: `cargo run --release -p navicim-bench --bin abl_adc`

use navicim_analog::engine::CimEngineConfig;
use navicim_bench::small_localization_dataset;
use navicim_core::localization::{CimLocalizer, LocalizerConfig};
use navicim_core::registry::CIM_HMGM;
use navicim_core::reportfmt::Table;

fn main() {
    println!("# Ablation — ADC resolution and device variation\n");
    let dataset = small_localization_dataset(61);
    let base = LocalizerConfig {
        num_particles: 300,
        components: 12,
        pixel_stride: 11,
        seed: 7,
        ..LocalizerConfig::default()
    };

    println!("## steady-state error vs log-ADC bits (nominal variation)");
    let mut adc_table = Table::new(vec!["adc bits", "steady-state error (m)"]);
    for &bits in &[2u32, 3, 4, 6, 8] {
        let config = LocalizerConfig {
            backend: CIM_HMGM.into(),
            cim: CimEngineConfig {
                adc_bits: bits,
                ..CimEngineConfig::default()
            },
            ..base.clone()
        };
        let mut loc = CimLocalizer::build(&dataset, config).expect("localizer builds");
        let run = loc.run(&dataset).expect("run completes");
        adc_table.row(vec![
            format!("{bits}"),
            format!("{:.4}", run.steady_state_error()),
        ]);
    }
    println!("{adc_table}");

    println!("## steady-state error vs process-variation severity (8-bit ADC)");
    let mut var_table = Table::new(vec![
        "variation severity (x nominal)",
        "steady-state error (m)",
    ]);
    for &sev in &[0.0, 0.5, 1.0, 2.0, 4.0] {
        let config = LocalizerConfig {
            backend: CIM_HMGM.into(),
            cim: CimEngineConfig {
                variation_severity: sev,
                ..CimEngineConfig::default()
            },
            ..base.clone()
        };
        let mut loc = CimLocalizer::build(&dataset, config).expect("localizer builds");
        let run = loc.run(&dataset).expect("run completes");
        var_table.row(vec![
            format!("{sev:.1}"),
            format!("{:.4}", run.steady_state_error()),
        ]);
    }
    println!("{var_table}");
    println!(
        "shape: accuracy degrades gracefully at very low ADC resolution and \
         under exaggerated device variation — the probabilistic filter absorbs \
         moderate hardware non-ideality (the paper's Fig. 1 argument)."
    );
}
