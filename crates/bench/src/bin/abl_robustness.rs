//! Ablation: the fault-injection robustness matrix — detection,
//! safe-mode response, and recovery under scripted sensor and world
//! faults.
//!
//! Every other ablation measures the pipeline on a clean synthetic
//! flight. This one runs the scenario matrix from `navicim-scenario`
//! against the innovation-CUSUM fault detector and the safe-mode
//! response (`LocalizationPipeline::with_safe_mode`): sensor blackout,
//! kidnapped-robot teleports, stuck-value and adversarial spoof faults,
//! low-texture stretches, plus a long drift run and a fleet sweep in
//! which a subset of agents is faulted mid-flight. Each scenario is
//! graded on the spot — bounded detection delay, zero false alarms on
//! clean flight, post-recovery re-convergence, and fleet fault
//! isolation (untouched agents bit-identical to their solo runs) — and
//! a MISMATCH exits non-zero so CI fails on a robustness regression,
//! not just on a crash.
//!
//! Run: `cargo run --release -p navicim-bench --bin abl_robustness`
//!
//! Flags:
//! - `--frames N` — scenario flight length (default 48),
//! - `--drift-frames N` — drift-run length (default 1000),
//! - `--smoke` — CI preset (36-frame scenarios, 220-frame drift run),
//! - `--csv PATH` — write the blackout scenario's per-frame log
//!   (schema v3: `nees`, `fault_active`, `safe_mode` columns) as CSV.

use navicim_analog::engine::CimEngineConfig;
use navicim_core::localization::LocalizerConfig;
use navicim_core::pipeline::{
    FaultDetectorConfig, FrameReport, GateConfig, HysteresisConfig, LocalizationPipeline,
    NoiseInflation, PipelineRun, SafeModeConfig, DIGITAL_SLOT,
};
use navicim_core::registry::{CIM_HMGM, DIGITAL_GMM};
use navicim_core::reportfmt::Table;
use navicim_math::geom::Pose;
use navicim_scenario::{
    run_scenario, FaultEvent, FaultKind, ScenarioOutcome, ScenarioScript, ScenarioStream,
};
use navicim_scene::camera::DepthImage;
use navicim_scene::dataset::LocalizationDataset;
use navicim_serve::{Fleet, FleetConfig};

/// Frame every scenario's first (or only) fault lands on: late enough
/// that the detector's per-slot innovation trackers are warm and the
/// cloud has settled into steady-state tracking.
const FAULT_AT: usize = 20;
/// Session seed shared by every scenario fork, so the pre-fault prefix
/// of each run is bit-identical to the clean run's.
const SESSION_SEED: u64 = 0xFA_017;
/// Fleet sweep shape.
const AGENTS: usize = 3;
const FAULTED_AGENT: usize = 1;
const FLEET_SEED_BASE: u64 = 4100;

/// A densely-sampled orbit (48 poses on the standard 1.8 m circle, so
/// one frame step is ~0.24 m): dense enough that a one-frame
/// [`FaultKind::Teleport`] is a kidnap the widened safe-mode proposal
/// can genuinely re-acquire from, rather than a half-metre jump no
/// local filter recovers without global relocalization.
fn dataset() -> LocalizationDataset {
    LocalizationDataset::generate(
        &navicim_scene::dataset::LocalizationConfig {
            image_width: 32,
            image_height: 24,
            map_points: 1200,
            frames: 48,
            ..navicim_scene::dataset::LocalizationConfig::default()
        },
        navicim_bench::SEED,
    )
    .expect("robustness dataset generates")
}

/// The tracking regime: a decent takeoff prior and dense-enough scans,
/// arbitrated digital↔analog by the spread hysteresis gate — the
/// operating point the fault matrix should disturb and safe mode must
/// defend.
fn localizer_config() -> LocalizerConfig {
    LocalizerConfig {
        num_particles: 300,
        pixel_stride: 7,
        components: 8,
        init_spread: 0.1,
        init_yaw_spread: 0.05,
        cim: CimEngineConfig {
            dac_bits: 6,
            adc_bits: 6,
            variation_severity: 0.3,
            noise_bandwidth: 1e7,
            ..CimEngineConfig::default()
        },
        gate: GateConfig::gated(DIGITAL_GMM, CIM_HMGM).with_hysteresis(HysteresisConfig {
            analog_enter: 0.10,
            digital_enter: 0.14,
            dwell: 2,
            start: DIGITAL_SLOT,
        }),
        seed: 5,
        ..LocalizerConfig::default()
    }
}

/// CUSUM tuning: clean-flight innovations on this regime wobble by a
/// couple of tens of nats across slot migrations, while any of the
/// matrix faults drags the mean log-likelihood hundreds of nats below
/// trend — so the detector sits an order of magnitude above the clean
/// wobble and still fires within a frame or two of onset.
fn safe_mode_config() -> SafeModeConfig {
    SafeModeConfig {
        detector: FaultDetectorConfig {
            drift: 4.0,
            threshold: 60.0,
            warmup: 3,
        },
        hold_frames: 3,
        recovery_innovation: -1.0,
    }
}

/// Safe-mode noise response: gain 0 pins clean frames at the 1.0x
/// floor (no VO stage rides along here), while the safe-mode override
/// clamps to the 3x ceiling — the widened proposal a kidnapped or
/// blinded cloud needs to re-acquire.
fn safe_inflation() -> NoiseInflation {
    NoiseInflation::new(0.0, 1.0, 6.0).expect("valid inflation bounds")
}

/// The armed prototype every scenario forks its session from.
fn build_prototype(ds: &LocalizationDataset) -> LocalizationPipeline {
    LocalizationPipeline::build(ds, localizer_config())
        .expect("prototype builds")
        .with_safe_mode(safe_mode_config())
        .expect("safe mode arms")
        .with_noise_inflation(safe_inflation())
        .expect("inflation validates")
}

fn run_script(
    prototype: &LocalizationPipeline,
    ds: &LocalizationDataset,
    script: &ScenarioScript,
) -> ScenarioOutcome {
    let mut session = prototype.fork_session(SESSION_SEED).expect("session forks");
    run_scenario(&mut session, ds, script)
        .unwrap_or_else(|e| panic!("scenario '{}' runs: {e}", script.name))
}

/// The scenario matrix (everything except the long drift run).
fn matrix_scripts(frames: usize) -> Vec<ScenarioScript> {
    vec![
        ScenarioScript::clean("clean", frames),
        ScenarioScript::clean("blackout", frames).with_event(FaultEvent {
            at_frame: FAULT_AT,
            duration: 3,
            kind: FaultKind::Dropout { fraction: 1.0 },
        }),
        ScenarioScript::clean("kidnap", frames).with_event(FaultEvent {
            at_frame: FAULT_AT,
            duration: 1,
            kind: FaultKind::Teleport { skip: 2 },
        }),
        ScenarioScript::clean("stuck", frames).with_event(FaultEvent {
            at_frame: FAULT_AT,
            duration: 3,
            kind: FaultKind::StuckValue { depth_m: 2.5 },
        }),
        ScenarioScript::clean("spoof", frames).with_event(FaultEvent {
            at_frame: FAULT_AT,
            duration: 3,
            kind: FaultKind::Spoof {
                depth_m: 0.5,
                fraction: 0.9,
            },
        }),
        ScenarioScript::clean("low-texture", frames).with_event(FaultEvent {
            at_frame: FAULT_AT,
            duration: 2,
            kind: FaultKind::LowTexture,
        }),
    ]
}

/// Post-fault tail length the re-convergence claims average over.
const TAIL: usize = 8;
/// False-alarm grace after a fault window: the latched alarm
/// legitimately persists through the dwell-gated recovery.
const GRACE: usize = 12;

struct ScenarioGrade {
    name: String,
    outcome: ScenarioOutcome,
    delay: Option<usize>,
    ok: bool,
    verdict: String,
}

/// Grades one scenario against the matrix claims. `clean_tail` is the
/// clean run's tail error — the re-convergence yardstick.
fn grade(outcome: ScenarioOutcome, clean_tail: f64) -> ScenarioGrade {
    let name = outcome.name.clone();
    let delay = outcome.detection_delays().first().copied().flatten();
    let false_alarms = outcome.false_alarm_frames(GRACE);
    let tail_err = outcome.mean_tail_error(TAIL);
    let nees_finite = outcome.reports.iter().all(|r| r.nees.is_finite());
    let recovered = outcome
        .reports
        .iter()
        .rev()
        .take(4)
        .all(|r| !r.safe_mode && !r.fault_active);
    let (ok, verdict) = match name.as_str() {
        "clean" => {
            let ok = false_alarms == 0 && outcome.safe_mode_frames() == 0 && nees_finite;
            (ok, "zero false alarms".to_string())
        }
        // Sensor faults: detected within 3 frames of onset (the fault
        // reaches the innovation bus one frame after it first blinds a
        // likelihood), safe mode engaged and exited, tail re-converged.
        "blackout" | "stuck" | "spoof" => {
            let detected = delay.is_some_and(|d| d <= 3);
            let responded = outcome.safe_mode_frames() >= 2;
            let reconverged = tail_err <= (clean_tail * 3.0).max(0.12);
            let ok = detected
                && responded
                && recovered
                && reconverged
                && false_alarms == 0
                && nees_finite;
            (
                ok,
                format!(
                    "detect<=3 recover tail<={:.3}",
                    (clean_tail * 3.0).max(0.12)
                ),
            )
        }
        // The kidnapped robot: a world-side fault (one poisoned frame),
        // so detection rides the post-teleport mismatch and recovery
        // includes genuine re-acquisition — the delay and tail bounds
        // are looser.
        "kidnap" => {
            let detected = delay.is_some_and(|d| d <= 5);
            let responded = outcome.safe_mode_frames() >= 2;
            let reconverged = tail_err <= (clean_tail * 5.0).max(0.2);
            let ok = detected && responded && recovered && reconverged && nees_finite;
            (
                ok,
                format!("detect<=5 recover tail<={:.3}", (clean_tail * 5.0).max(0.2)),
            )
        }
        // A low-texture stretch degrades rather than breaks the
        // likelihood; the claim is benign handling — whether or not the
        // detector fires, the pipeline must exit any safe mode it
        // entered and re-converge.
        "low-texture" => {
            let reconverged = tail_err <= (clean_tail * 5.0).max(0.2);
            let ok = recovered && reconverged && false_alarms == 0 && nees_finite;
            (
                ok,
                format!("recover tail<={:.3}", (clean_tail * 5.0).max(0.2)),
            )
        }
        other => (false, format!("unknown scenario {other}")),
    };
    ScenarioGrade {
        name,
        outcome,
        delay,
        ok,
        verdict,
    }
}

/// The fleet sweep: one agent flies the blackout window while its
/// neighbors fly clean, all in coalesced rounds. Returns
/// `(per-agent reports, solo replays, ok)`.
fn fleet_sweep(
    prototype: &LocalizationPipeline,
    ds: &LocalizationDataset,
    frames: usize,
) -> (Vec<Vec<FrameReport>>, bool) {
    let window = FAULT_AT..FAULT_AT + 3;
    let script = ScenarioScript::clean("fleet", frames);
    let stream: Vec<_> = ScenarioStream::new(ds, &script)
        .expect("stream builds")
        .collect();
    let blind = DepthImage::new(ds.frames[0].depth.width(), ds.frames[0].depth.height());

    let mut fleet = Fleet::new(prototype, AGENTS, FLEET_SEED_BASE, FleetConfig::default())
        .expect("fleet builds");
    let mut per_agent: Vec<Vec<FrameReport>> = (0..AGENTS).map(|_| Vec::new()).collect();
    for f in &stream {
        let depths: Vec<DepthImage> = (0..AGENTS)
            .map(|i| {
                if i == FAULTED_AGENT && window.contains(&f.frame) {
                    blind.clone()
                } else {
                    f.depth.clone()
                }
            })
            .collect();
        let controls: Vec<Pose> = vec![f.control; AGENTS];
        let truths: Vec<Pose> = vec![f.truth; AGENTS];
        let reports = fleet
            .step_round_each(&controls, &depths, &truths)
            .expect("fleet round succeeds");
        for (i, r) in reports.iter().enumerate() {
            per_agent[i].push(r.clone());
        }
    }

    // Solo replays with identical per-agent inputs: the isolation
    // baseline.
    let mut ok = true;
    for i in 0..AGENTS {
        let mut session = prototype
            .fork_session(FLEET_SEED_BASE + i as u64)
            .expect("solo fork succeeds");
        let solo: Vec<FrameReport> = stream
            .iter()
            .map(|f| {
                let depth = if i == FAULTED_AGENT && window.contains(&f.frame) {
                    &blind
                } else {
                    &f.depth
                };
                session
                    .step(&f.control, depth, f.truth)
                    .expect("solo step succeeds")
            })
            .collect();
        if per_agent[i] != solo {
            eprintln!("fleet agent {i} diverged from its solo replay");
            ok = false;
        }
    }
    let faulted_responded = per_agent[FAULTED_AGENT].iter().any(|r| r.safe_mode);
    let neighbors_clean = (0..AGENTS)
        .filter(|&i| i != FAULTED_AGENT)
        .all(|i| per_agent[i].iter().all(|r| !r.fault_active && !r.safe_mode));
    (per_agent, ok && faulted_responded && neighbors_clean)
}

struct Args {
    frames: usize,
    drift_frames: usize,
    csv: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        frames: 48,
        drift_frames: 1000,
        csv: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--frames" => {
                let v = it.next().expect("--frames needs a value");
                args.frames = v.parse().expect("--frames value must be an integer");
            }
            "--drift-frames" => {
                let v = it.next().expect("--drift-frames needs a value");
                args.drift_frames = v.parse().expect("--drift-frames value must be an integer");
            }
            "--smoke" => {
                args.frames = 40;
                args.drift_frames = 220;
            }
            "--csv" => args.csv = Some(it.next().expect("--csv needs a path")),
            other => panic!(
                "unknown argument {other} (expected --frames N / --drift-frames N / --smoke / \
                 --csv PATH)"
            ),
        }
    }
    assert!(
        args.frames >= FAULT_AT + 16,
        "--frames must leave at least 16 frames after the fault at {FAULT_AT}"
    );
    assert!(args.drift_frames >= 64, "--drift-frames must be >= 64");
    args
}

fn main() {
    let args = parse_args();
    println!("# Ablation — fault-injection robustness matrix\n");
    let sm = safe_mode_config();
    println!(
        "scenarios: {} frames, faults at frame {FAULT_AT}; CUSUM drift {} threshold {} warmup \
         {}; safe mode: hold {} frames, recovery innovation >= {}, noise ceiling {:.1}x\n",
        args.frames,
        sm.detector.drift,
        sm.detector.threshold,
        sm.detector.warmup,
        sm.hold_frames,
        sm.recovery_innovation,
        safe_inflation().ceiling,
    );
    let ds = dataset();
    let prototype = build_prototype(&ds);

    // ── The scenario matrix ───────────────────────────────────────────
    let mut grades = Vec::new();
    let mut clean_tail = f64::NAN;
    for script in matrix_scripts(args.frames) {
        let outcome = run_script(&prototype, &ds, &script);
        if script.name == "clean" {
            clean_tail = outcome.mean_tail_error(TAIL);
        }
        grades.push(grade(outcome, clean_tail));
    }

    let mut table = Table::new(vec![
        "scenario",
        "injected",
        "detect delay",
        "safe frames",
        "false alarms",
        "tail err (m)",
        "tail nees",
        "claim",
        "verdict",
    ]);
    for g in &grades {
        table.row(vec![
            g.name.clone(),
            format!("{}", g.outcome.injected.iter().filter(|&&f| f).count()),
            g.delay.map_or("-".into(), |d| format!("{d}")),
            format!("{}", g.outcome.safe_mode_frames()),
            format!("{}", g.outcome.false_alarm_frames(GRACE)),
            format!("{:.4}", g.outcome.mean_tail_error(TAIL)),
            format!("{:.1}", g.outcome.mean_tail_nees(TAIL)),
            g.verdict.clone(),
            if g.ok {
                "ok".into()
            } else {
                "MISMATCH".to_string()
            },
        ]);
    }
    println!("## scenario matrix\n{table}");

    // ── The long drift run: a clean orbit looped far past the dataset
    // length must stay converged with a silent detector ───────────────
    let drift_script = ScenarioScript::clean("drift", args.drift_frames);
    let drift = run_script(&prototype, &ds, &drift_script);
    let drift_tail = drift.mean_tail_error(args.drift_frames / 8);
    let drift_alarms = drift.false_alarm_frames(0);
    let drift_nees_finite = drift.reports.iter().all(|r| r.nees.is_finite());
    let drift_ok = drift_alarms == 0
        && drift.safe_mode_frames() == 0
        && drift_tail <= (clean_tail * 3.0).max(0.12)
        && drift_nees_finite;
    println!(
        "drift run: {} frames over a {}-frame orbit, tail error {:.4} m (clean {:.4} m), {} \
         false alarms, {} safe-mode frames -> {}",
        args.drift_frames,
        ds.frames.len(),
        drift_tail,
        clean_tail,
        drift_alarms,
        drift.safe_mode_frames(),
        if drift_ok {
            "SHAPE REPRODUCED"
        } else {
            "MISMATCH"
        }
    );

    // ── The fleet sweep: coalesced serving isolates a faulted agent ───
    let (per_agent, fleet_ok) = fleet_sweep(&prototype, &ds, args.frames);
    let faulted_safe = per_agent[FAULTED_AGENT]
        .iter()
        .filter(|r| r.safe_mode)
        .count();
    println!(
        "fleet sweep: {AGENTS} agents coalesced, agent {FAULTED_AGENT} blinded for 3 frames; \
         faulted agent spent {faulted_safe} frames in safe mode, neighbors untouched and \
         bit-identical to solo runs -> {}",
        if fleet_ok {
            "SHAPE REPRODUCED"
        } else {
            "MISMATCH"
        }
    );

    let matrix_ok = grades.iter().all(|g| g.ok);
    println!(
        "\nscenario matrix: {}/{} scenarios within claim -> {}",
        grades.iter().filter(|g| g.ok).count(),
        grades.len(),
        if matrix_ok {
            "SHAPE REPRODUCED"
        } else {
            "MISMATCH"
        }
    );

    if let Some(path) = &args.csv {
        let blackout = grades
            .iter()
            .find(|g| g.name == "blackout")
            .expect("blackout scenario present");
        let run = PipelineRun {
            backends: prototype.backend_names().to_vec(),
            gate: "hysteresis+safe-mode".into(),
            vo_policy: None,
            frames: blackout.outcome.reports.clone(),
            stats: Vec::new(),
        };
        let csv = run.to_csv();
        std::fs::write(path, csv.to_string()).expect("csv log writes");
        println!("wrote {} blackout frame-log rows to {path}", csv.len());
    }

    if !(matrix_ok && drift_ok && fleet_ok) {
        std::process::exit(1);
    }
}
