//! Shared workloads for the experiment binaries and criterion benches.
//!
//! Every table/figure regeneration binary (`src/bin/fig*.rs`,
//! `src/bin/tab*.rs`, `src/bin/abl*.rs`) builds its workload through this
//! module so results stay comparable across experiments. All generators
//! are deterministic in their seeds.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use navicim_core::vo::{train_vo_network, VoTrainConfig};
use navicim_nn::mlp::Mlp;
use navicim_scene::dataset::{
    LocalizationConfig, LocalizationDataset, VoConfig, VoDataset, VoTrajectory,
};
use navicim_scene::noise::DepthNoise;

/// Standard seed for all experiment workloads.
pub const SEED: u64 = 0xDA7E_2024;

/// The standard Section II localization workload: a tabletop scene with a
/// 2k-point map cloud and a 30-frame orbit of 48×36 depth images.
pub fn standard_localization_dataset() -> LocalizationDataset {
    LocalizationDataset::generate(
        &LocalizationConfig {
            image_width: 48,
            image_height: 36,
            map_points: 2000,
            frames: 30,
            ..LocalizationConfig::default()
        },
        SEED,
    )
    .expect("standard localization dataset generates")
}

/// A smaller localization workload for parameter sweeps.
pub fn small_localization_dataset(seed: u64) -> LocalizationDataset {
    LocalizationDataset::generate(
        &LocalizationConfig {
            image_width: 32,
            image_height: 24,
            map_points: 1200,
            frames: 16,
            ..LocalizationConfig::default()
        },
        seed,
    )
    .expect("small localization dataset generates")
}

/// The standard Section III VO workload: a waypoint flight of 100 frames
/// with an 8×6 feature grid (96-dimensional features).
pub fn standard_vo_dataset() -> VoDataset {
    VoDataset::generate(
        &VoConfig {
            image_width: 32,
            image_height: 24,
            grid_width: 8,
            grid_height: 6,
            frames: 100,
            trajectory: VoTrajectory::Waypoints(7),
            ..VoConfig::default()
        },
        SEED,
    )
    .expect("standard vo dataset generates")
}

/// A small VO workload for quick benches.
pub fn small_vo_dataset(seed: u64) -> VoDataset {
    VoDataset::generate(
        &VoConfig {
            image_width: 24,
            image_height: 18,
            grid_width: 4,
            grid_height: 3,
            frames: 30,
            trajectory: VoTrajectory::Waypoints(4),
            noise: DepthNoise::none(),
            ..VoConfig::default()
        },
        seed,
    )
    .expect("small vo dataset generates")
}

/// Trains the standard VO regressor on a dataset (64/32 hidden units,
/// p = 0.5 dropout).
pub fn trained_vo_network(dataset: &VoDataset) -> Mlp {
    train_vo_network(
        &dataset.samples,
        dataset.feature_dim(),
        &VoTrainConfig::default(),
    )
    .expect("vo network trains")
}

/// Trains a reduced VO regressor for quick benches.
pub fn small_vo_network(dataset: &VoDataset) -> Mlp {
    train_vo_network(
        &dataset.samples,
        dataset.feature_dim(),
        &VoTrainConfig {
            hidden1: 24,
            hidden2: 12,
            epochs: 60,
            ..VoTrainConfig::default()
        },
    )
    .expect("small vo network trains")
}

/// Calibration inputs for quantization: the first `n` sample features.
pub fn calibration_inputs(dataset: &VoDataset, n: usize) -> Vec<Vec<f64>> {
    dataset
        .samples
        .iter()
        .take(n.max(1))
        .map(|s| s.features.clone())
        .collect()
}

/// The widest SIMD feature tier this binary was compiled for — the
/// `target-cpu` provenance stamp for benchmark snapshots. The repo's
/// `.cargo/config.toml` builds with `target-cpu=native` (instruction
/// selection only; results stay bit-identical across hosts), so two
/// snapshots with equal `cores` can still come from different silicon:
/// this label plus the core count makes committed baselines and owed
/// multi-core re-runs distinguishable.
pub fn target_cpu_label() -> &'static str {
    if cfg!(target_feature = "avx512f") {
        "x86-64+avx512"
    } else if cfg!(target_feature = "avx2") {
        "x86-64+avx2"
    } else if cfg!(target_feature = "sse4.2") {
        "x86-64+sse4.2"
    } else if cfg!(target_feature = "sse2") {
        "x86-64+sse2"
    } else if cfg!(target_feature = "neon") {
        "aarch64+neon"
    } else {
        "baseline"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_cpu_label_is_a_fixed_token() {
        // The label lands in committed JSON snapshots: non-empty, no
        // whitespace or quotes to escape.
        let label = target_cpu_label();
        assert!(!label.is_empty());
        assert!(label.chars().all(|c| c.is_ascii_graphic() && c != '"'));
    }

    #[test]
    fn workloads_generate() {
        let loc = small_localization_dataset(1);
        assert!(loc.frames.len() >= 2);
        let vo = small_vo_dataset(1);
        assert!(vo.samples.len() >= 2);
        assert!(!calibration_inputs(&vo, 4).is_empty());
    }
}
