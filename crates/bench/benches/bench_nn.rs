//! Timing: network forward passes — float, quantized-exact and
//! quantized-on-macro.

use criterion::{criterion_group, criterion_main, Criterion};
use navicim_bench::{calibration_inputs, small_vo_dataset, small_vo_network};
use navicim_core::vo::CimQuantBackend;
use navicim_math::rng::Pcg32;
use navicim_nn::quant::{ExactBackend, QuantBackend, QuantizedMlp};
use navicim_nn::Mode;
use navicim_sram::cim_macro::{MacroConfig, SramCimMacro};

fn bench_nn(c: &mut Criterion) {
    let dataset = small_vo_dataset(1);
    let mut net = small_vo_network(&dataset);
    let calib = calibration_inputs(&dataset, 8);
    let features = dataset.samples[0].features.clone();

    let mut group = c.benchmark_group("forward_pass");
    group.sample_size(30);

    group.bench_function("float64", |b| {
        let mut rng = Pcg32::seed_from_u64(1);
        b.iter(|| std::hint::black_box(net.forward(&features, Mode::Deterministic, &mut rng)))
    });

    group.bench_function("quant4_exact_backend", |b| {
        let qnet = QuantizedMlp::from_mlp(&net, 4, 4, &calib).unwrap();
        let mut backend = ExactBackend::new();
        b.iter(|| std::hint::black_box(qnet.forward_with_masks(&mut backend, &features, &[])))
    });

    group.bench_function("quant4_sram_macro", |b| {
        let qnet = QuantizedMlp::from_mlp(&net, 4, 4, &calib).unwrap();
        let mut backend = CimQuantBackend::new(SramCimMacro::new(MacroConfig::default()));
        b.iter(|| {
            backend.reset();
            std::hint::black_box(qnet.forward_with_masks(&mut backend, &features, &[]))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_nn);
criterion_main!(benches);
