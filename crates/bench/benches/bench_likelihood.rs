//! Timing: map-likelihood evaluation — digital GMM vs math HMGM vs the
//! device-backed CIM engine — on both the scalar and the batched path,
//! plus a worker-count sweep of the analog batch path (the `parallel`
//! feature's multi-core speedup; without the feature the sweep rows
//! coincide, which is itself worth seeing on the chart).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use navicim_analog::engine::{CimEngineConfig, HmgmCimEngine};
use navicim_analog::mapping::SpaceMap;
use navicim_backend::par::ChunkPolicy;
use navicim_backend::{LikelihoodBackend, PointBatch};
use navicim_gmm::fit::{fit_diag_gmm, FitConfig};
use navicim_gmm::hmg::{fit_hmgm, HmgmFitConfig};
use navicim_math::rng::{Pcg32, SampleExt};

/// Batch sizes tracked in the perf trajectory.
const BATCH_SIZES: [usize; 3] = [64, 256, 1024];

fn blob_points(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = Pcg32::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            vec![
                rng.sample_normal(0.0, 0.5),
                rng.sample_normal(0.0, 0.5),
                rng.sample_normal(0.5, 0.3),
            ]
        })
        .collect()
}

fn bench_likelihood(c: &mut Criterion) {
    let points = blob_points(600, 1);
    let mut group = c.benchmark_group("likelihood_eval");
    group.sample_size(20);

    for &k in &[8usize, 32] {
        let mut rng = Pcg32::seed_from_u64(2);
        let gmm = fit_diag_gmm(&points, k, &FitConfig::default(), &mut rng).unwrap();
        group.bench_with_input(BenchmarkId::new("digital_gmm", k), &k, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % points.len();
                std::hint::black_box(gmm.log_pdf(&points[i]))
            })
        });

        let space = SpaceMap::fit_to_points(&points, 0.15, 0.85, 0.1).unwrap();
        let tech = navicim_device::params::TechParams::cmos_45nm();
        let (floor, ceil) = HmgmCimEngine::recommended_sigma_bounds(&tech, &space);
        let mut rng2 = Pcg32::seed_from_u64(3);
        let model = fit_hmgm(
            &points,
            k,
            &HmgmFitConfig {
                sigma_floor: floor,
                sigma_ceiling: Some(ceil),
                ..HmgmFitConfig::default()
            },
            &mut rng2,
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::new("math_hmgm", k), &k, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % points.len();
                std::hint::black_box(model.log_likelihood(&points[i]))
            })
        });

        let mut engine = HmgmCimEngine::build(&model, space, CimEngineConfig::default()).unwrap();
        group.bench_with_input(BenchmarkId::new("cim_engine", k), &k, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % points.len();
                std::hint::black_box(engine.log_likelihood(&points[i]))
            })
        });

        // Batched variants: one backend call per batch; reported time is
        // per whole batch (divide by the batch size for per-point cost).
        for &batch_size in &BATCH_SIZES {
            let mut batch = PointBatch::with_capacity(3, batch_size);
            for i in 0..batch_size {
                batch.push(&points[i % points.len()]);
            }
            let mut out = vec![0.0; batch_size];

            let mut gmm_b = gmm.clone();
            group.bench_with_input(
                BenchmarkId::new(format!("digital_gmm_batch{batch_size}"), k),
                &k,
                |b, _| {
                    b.iter(|| {
                        gmm_b.log_likelihood_into(&batch, &mut out);
                        std::hint::black_box(out[0])
                    })
                },
            );

            let mut model_b = model.clone();
            group.bench_with_input(
                BenchmarkId::new(format!("math_hmgm_batch{batch_size}"), k),
                &k,
                |b, _| {
                    b.iter(|| {
                        model_b.log_likelihood_into(&batch, &mut out);
                        std::hint::black_box(out[0])
                    })
                },
            );

            group.bench_with_input(
                BenchmarkId::new(format!("cim_engine_batch{batch_size}"), k),
                &k,
                |b, _| {
                    b.iter(|| {
                        engine.log_likelihood_into(&batch, &mut out);
                        std::hint::black_box(out[0])
                    })
                },
            );
        }

        // Thread-count sweep of the analog batch path at 1024 points:
        // the splittable noise stream makes each worker count produce
        // bit-identical output, so the rows differ only in wall clock.
        let threads_batch_size = 1024;
        let mut batch = PointBatch::with_capacity(3, threads_batch_size);
        for i in 0..threads_batch_size {
            batch.push(&points[i % points.len()]);
        }
        let mut out = vec![0.0; threads_batch_size];
        for workers in [1usize, 2, 4] {
            let policy = ChunkPolicy {
                chunk_len: Some(threads_batch_size.div_ceil(workers)),
                workers: Some(workers),
                min_chunk: None,
            };
            group.bench_with_input(
                BenchmarkId::new(format!("cim_engine_batch1024_threads{workers}"), k),
                &k,
                |b, _| {
                    b.iter(|| {
                        engine.log_likelihood_into_chunked(&batch, &mut out, policy);
                        std::hint::black_box(out[0])
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_likelihood);
criterion_main!(benches);
