//! Timing: map-likelihood evaluation — digital GMM vs math HMGM vs the
//! device-backed CIM engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use navicim_analog::engine::{CimEngineConfig, HmgmCimEngine};
use navicim_analog::mapping::SpaceMap;
use navicim_gmm::fit::{fit_diag_gmm, FitConfig};
use navicim_gmm::hmg::{fit_hmgm, HmgmFitConfig};
use navicim_math::rng::{Pcg32, SampleExt};

fn blob_points(n: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = Pcg32::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            vec![
                rng.sample_normal(0.0, 0.5),
                rng.sample_normal(0.0, 0.5),
                rng.sample_normal(0.5, 0.3),
            ]
        })
        .collect()
}

fn bench_likelihood(c: &mut Criterion) {
    let points = blob_points(600, 1);
    let mut group = c.benchmark_group("likelihood_eval");
    group.sample_size(20);

    for &k in &[8usize, 32] {
        let mut rng = Pcg32::seed_from_u64(2);
        let gmm = fit_diag_gmm(&points, k, &FitConfig::default(), &mut rng).unwrap();
        group.bench_with_input(BenchmarkId::new("digital_gmm", k), &k, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % points.len();
                std::hint::black_box(gmm.log_pdf(&points[i]))
            })
        });

        let space = SpaceMap::fit_to_points(&points, 0.15, 0.85, 0.1).unwrap();
        let tech = navicim_device::params::TechParams::cmos_45nm();
        let (floor, ceil) = HmgmCimEngine::recommended_sigma_bounds(&tech, &space);
        let mut rng2 = Pcg32::seed_from_u64(3);
        let model = fit_hmgm(
            &points,
            k,
            &HmgmFitConfig {
                sigma_floor: floor,
                sigma_ceiling: Some(ceil),
                ..HmgmFitConfig::default()
            },
            &mut rng2,
        )
        .unwrap();
        group.bench_with_input(BenchmarkId::new("math_hmgm", k), &k, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % points.len();
                std::hint::black_box(model.log_likelihood(&points[i]))
            })
        });

        let mut engine =
            HmgmCimEngine::build(&model, space, CimEngineConfig::default()).unwrap();
        group.bench_with_input(BenchmarkId::new("cim_engine", k), &k, |b, _| {
            let mut i = 0usize;
            b.iter(|| {
                i = (i + 1) % points.len();
                std::hint::black_box(engine.log_likelihood(&points[i]))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_likelihood);
criterion_main!(benches);
