//! Timing: one particle-filter predict/update step vs particle count,
//! the scalar-vs-batched comparison of the map-backed weight step, a
//! worker-count sweep (1/2/4) of the *analog* weight step at 1024
//! particles — the multi-core CIM throughput the `parallel` feature
//! unlocks (without the feature the sweep rows coincide) — and the full
//! uncertainty-gated pipeline step under each arbitration policy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use navicim_analog::engine::{CimEngineConfig, HmgmCimEngine};
use navicim_analog::mapping::SpaceMap;
use navicim_backend::par::ChunkPolicy;
use navicim_backend::{LikelihoodBackend, PointBatch};
use navicim_bench::small_localization_dataset;
use navicim_core::localization::LocalizerConfig;
use navicim_core::pipeline::{
    GateConfig, GateKind, HysteresisConfig, LocalizationPipeline, ANALOG_SLOT, DIGITAL_SLOT,
};
use navicim_core::registry::{CIM_HMGM, DIGITAL_GMM};
use navicim_filter::filter::{FilterConfig, Measurement, ParticleFilter};
use navicim_filter::motion::OdometryMotion;
use navicim_filter::particle::ParticleSet;
use navicim_gmm::fit::{fit_diag_gmm, FitConfig};
use navicim_gmm::gaussian::Gmm;
use navicim_gmm::hmg::{fit_hmgm, HmgmFitConfig};
use navicim_math::geom::{Pose, Vec3};
use navicim_math::rng::{Pcg32, SampleExt};
use navicim_math::stats::diag_mvn_logpdf;

/// Cheap synthetic position sensor so the bench isolates filter overhead.
struct PositionSensor;

impl Measurement<Pose, Vec3> for PositionSensor {
    fn log_likelihood(&mut self, state: &Pose, obs: &Vec3) -> f64 {
        diag_mvn_logpdf(
            &state.translation.to_array(),
            &obs.to_array(),
            &[0.2, 0.2, 0.2],
        )
    }
}

/// A GMM map sensor scoring particle positions, switchable between the
/// legacy per-particle scalar path and the per-frame batch path — the
/// digital weight step of the localization pipeline in isolation.
struct GmmMapSensor {
    gmm: Gmm,
    batched: bool,
    batch: PointBatch,
}

impl Measurement<Pose, Vec3> for GmmMapSensor {
    fn log_likelihood(&mut self, state: &Pose, _obs: &Vec3) -> f64 {
        self.gmm.log_pdf(&state.translation.to_array())
    }

    fn log_likelihood_batch(&mut self, states: &[Pose], obs: &Vec3, out: &mut [f64]) {
        if !self.batched {
            for (o, s) in out.iter_mut().zip(states) {
                *o = self.log_likelihood(s, obs);
            }
            return;
        }
        self.batch.clear();
        for s in states {
            let t = s.translation;
            self.batch.push_xyz(t.x, t.y, t.z);
        }
        self.gmm.log_likelihood_into(&self.batch, out);
    }
}

fn particle_cloud(n: usize, rng: &mut Pcg32) -> Vec<Pose> {
    (0..n)
        .map(|_| {
            Pose::from_position_euler(
                Vec3::new(
                    rng.sample_normal(0.0, 0.3),
                    rng.sample_normal(0.0, 0.3),
                    rng.sample_normal(1.0, 0.2),
                ),
                0.0,
                0.0,
                rng.sample_normal(0.0, 0.1),
            )
        })
        .collect()
}

/// Scalar vs batched digital weight step at 64/256/1024 particles: the
/// headline speedup of the batched backend layer.
fn bench_weight_step(c: &mut Criterion) {
    let mut rng = Pcg32::seed_from_u64(7);
    let points: Vec<Vec<f64>> = (0..600)
        .map(|_| {
            vec![
                rng.sample_normal(0.0, 0.5),
                rng.sample_normal(0.0, 0.5),
                rng.sample_normal(1.0, 0.3),
            ]
        })
        .collect();
    let gmm = fit_diag_gmm(&points, 16, &FitConfig::default(), &mut rng).unwrap();
    let mut group = c.benchmark_group("pf_weight_step_digital");
    group.sample_size(20);
    for &n in &[64usize, 256, 1024] {
        for (label, batched) in [("scalar", false), ("batched", true)] {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, &n| {
                let mut cloud_rng = Pcg32::seed_from_u64(1);
                let states = particle_cloud(n, &mut cloud_rng);
                let mut pf = ParticleFilter::new(
                    ParticleSet::from_states(states).unwrap(),
                    FilterConfig {
                        // Isolate the weight step: never resample.
                        ess_fraction: 0.0,
                        ..FilterConfig::default()
                    },
                );
                let mut sensor = GmmMapSensor {
                    gmm: gmm.clone(),
                    batched,
                    batch: PointBatch::with_capacity(3, n),
                };
                let obs = Vec3::new(0.0, 0.0, 1.0);
                b.iter(|| {
                    pf.update(&obs, &mut sensor, &mut cloud_rng)
                        .expect("update succeeds");
                })
            });
        }
    }
    group.finish();
}

/// A CIM-engine map sensor scoring particle positions through the
/// chunked analog batch path with a fixed worker cap — the analog weight
/// step of the localization pipeline in isolation.
struct CimMapSensor {
    engine: HmgmCimEngine,
    policy: ChunkPolicy,
    batch: PointBatch,
}

impl Measurement<Pose, Vec3> for CimMapSensor {
    fn log_likelihood(&mut self, state: &Pose, _obs: &Vec3) -> f64 {
        self.engine.log_likelihood(&state.translation.to_array())
    }

    fn log_likelihood_batch(&mut self, states: &[Pose], _obs: &Vec3, out: &mut [f64]) {
        self.batch.clear();
        for s in states {
            let t = s.translation;
            self.batch.push_xyz(t.x, t.y, t.z);
        }
        self.engine
            .log_likelihood_into_chunked(&self.batch, out, self.policy);
    }
}

/// Analog weight step at 1024 particles across 1/2/4 workers: tracks the
/// `parallel` speedup of the CIM backend (bit-identical results at every
/// worker count, thanks to the counter-based noise stream).
fn bench_analog_weight_step_threads(c: &mut Criterion) {
    let mut rng = Pcg32::seed_from_u64(7);
    let points: Vec<Vec<f64>> = (0..600)
        .map(|_| {
            vec![
                rng.sample_normal(0.0, 0.5),
                rng.sample_normal(0.0, 0.5),
                rng.sample_normal(1.0, 0.3),
            ]
        })
        .collect();
    let space = SpaceMap::fit_to_points(&points, 0.15, 0.85, 0.1).unwrap();
    let tech = navicim_device::params::TechParams::cmos_45nm();
    let (floor, ceil) = HmgmCimEngine::recommended_sigma_bounds(&tech, &space);
    let model = fit_hmgm(
        &points,
        16,
        &HmgmFitConfig {
            sigma_floor: floor,
            sigma_ceiling: Some(ceil),
            ..HmgmFitConfig::default()
        },
        &mut rng,
    )
    .unwrap();
    let n = 1024usize;
    let mut group = c.benchmark_group("pf_weight_step_analog_threads");
    group.sample_size(10);
    for workers in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, &w| {
            let engine =
                HmgmCimEngine::build(&model, space.clone(), CimEngineConfig::default()).unwrap();
            let mut cloud_rng = Pcg32::seed_from_u64(1);
            let states = particle_cloud(n, &mut cloud_rng);
            let mut pf = ParticleFilter::new(
                ParticleSet::from_states(states).unwrap(),
                FilterConfig {
                    // Isolate the weight step: never resample.
                    ess_fraction: 0.0,
                    ..FilterConfig::default()
                },
            );
            let mut sensor = CimMapSensor {
                engine,
                policy: ChunkPolicy {
                    chunk_len: Some(n.div_ceil(w)),
                    workers: Some(w),
                    min_chunk: None,
                },
                batch: PointBatch::with_capacity(3, n),
            };
            let obs = Vec3::new(0.0, 0.0, 1.0);
            b.iter(|| {
                pf.update(&obs, &mut sensor, &mut cloud_rng)
                    .expect("update succeeds");
            })
        });
    }
    group.finish();
}

fn bench_pf(c: &mut Criterion) {
    let mut group = c.benchmark_group("particle_filter_step");
    group.sample_size(20);
    for &n in &[100usize, 500, 2000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut rng = Pcg32::seed_from_u64(1);
            let states: Vec<Pose> = (0..n)
                .map(|_| {
                    Pose::from_position_euler(
                        Vec3::new(
                            rng.sample_normal(0.0, 0.3),
                            rng.sample_normal(0.0, 0.3),
                            rng.sample_normal(1.0, 0.2),
                        ),
                        0.0,
                        0.0,
                        rng.sample_normal(0.0, 0.1),
                    )
                })
                .collect();
            let mut pf = ParticleFilter::new(
                ParticleSet::from_states(states).unwrap(),
                FilterConfig::default(),
            );
            let motion = OdometryMotion::indoor();
            let control = Pose::from_position_euler(Vec3::new(0.05, 0.0, 0.0), 0.0, 0.0, 0.01);
            let obs = Vec3::new(0.05, 0.0, 1.0);
            let mut sensor = PositionSensor;
            b.iter(|| {
                pf.step(&control, &obs, &motion, &mut sensor, &mut rng)
                    .expect("step succeeds");
            })
        });
    }
    group.finish();
}

/// One full gated-pipeline step (projection, gate decision, weight
/// update, energy pricing) under each arbitration policy — the end-to-end
/// cost of the streaming API, and the digital↔analog throughput gap the
/// hysteresis gate trades between.
fn bench_gated_pipeline_step(c: &mut Criterion) {
    let dataset = small_localization_dataset(51);
    let mut group = c.benchmark_group("pf_gated_pipeline_step");
    group.sample_size(10);
    for (label, policy) in [
        ("always-digital", GateKind::Always(DIGITAL_SLOT)),
        ("always-analog", GateKind::Always(ANALOG_SLOT)),
        (
            "hysteresis",
            GateKind::Hysteresis(HysteresisConfig::default()),
        ),
    ] {
        group.bench_function(BenchmarkId::new(label, 256), |b| {
            let config = LocalizerConfig {
                num_particles: 256,
                components: 12,
                pixel_stride: 11,
                gate: GateConfig {
                    backends: vec![DIGITAL_GMM.into(), CIM_HMGM.into()],
                    policy: policy.clone(),
                },
                seed: 9,
                ..LocalizerConfig::default()
            };
            let mut pipeline =
                LocalizationPipeline::build(&dataset, config).expect("pipeline builds");
            let control = dataset.frames[0].pose.delta_to(dataset.frames[1].pose);
            let truth = dataset.frames[1].pose;
            b.iter(|| {
                pipeline
                    .step(&control, &dataset.frames[1].depth, truth)
                    .expect("step succeeds")
            })
        });
    }
    group.finish();
}

/// One gated pipeline step with the VO MC-Dropout stage riding along:
/// fixed 30-iteration depth vs the variance-adaptive policy — the
/// VO-side saving of the two-axis co-design in the perf trajectory —
/// plus the closed-loop variant, where the VO predictive mean *drives*
/// the motion model with variance-scaled noise instead of observing
/// (the full step a ground-truth-free deployment pays for).
fn bench_adaptive_mc_pipeline_step(c: &mut Criterion) {
    use navicim_core::pipeline::{ControlSource, VoStage};
    use navicim_core::vo::{
        train_vo_network, AdaptiveMcConfig, AdaptiveMcPolicy, BayesianVo, VoPipelineConfig,
        VoTrainConfig,
    };
    use navicim_scene::dataset::make_samples;

    let dataset = small_localization_dataset(51);
    // The standard Section III network size (128/64 hidden units on a
    // 96-dimensional 8x4 feature grid): large enough that the MC-pass
    // count dominates the VO stage's cost, so the fixed-vs-adaptive gap
    // is visible in wall time and not only in the energy accounting.
    let (grid_w, grid_h) = (8usize, 4usize);
    let samples = make_samples(&dataset.frames, &dataset.camera, grid_w, grid_h);
    let net = train_vo_network(
        &samples,
        3 * grid_w * grid_h,
        &VoTrainConfig {
            epochs: 60,
            ..VoTrainConfig::default()
        },
    )
    .expect("vo network trains");
    let calib: Vec<Vec<f64>> = samples.iter().take(6).map(|s| s.features.clone()).collect();
    let adaptive = || {
        AdaptiveMcPolicy::new(AdaptiveMcConfig {
            min_iterations: 8,
            max_iterations: 30,
            // A permissive low threshold: steady-state frames run at the
            // 8-pass floor, which is exactly the saving being measured.
            var_low: f64::MAX / 4.0,
            var_high: f64::MAX / 2.0,
            dwell: 1,
        })
        .expect("adaptive policy")
    };
    let mut group = c.benchmark_group("pf_vo_mc_pipeline_step");
    group.sample_size(10);
    for (label, policy, control) in [
        (
            "vo-fixed30",
            AdaptiveMcPolicy::fixed(30).expect("fixed"),
            ControlSource::GroundTruth,
        ),
        ("vo-adaptive", adaptive(), ControlSource::GroundTruth),
        ("vo-closed-loop", adaptive(), ControlSource::VisualOdometry),
    ] {
        group.bench_function(BenchmarkId::new(label, 256), |b| {
            let config = LocalizerConfig {
                num_particles: 256,
                components: 12,
                pixel_stride: 11,
                gate: GateConfig {
                    backends: vec![DIGITAL_GMM.into(), CIM_HMGM.into()],
                    policy: GateKind::Hysteresis(HysteresisConfig::default()),
                },
                seed: 9,
                ..LocalizerConfig::default()
            };
            let vo = BayesianVo::build(
                &net,
                &calib,
                VoPipelineConfig {
                    mc_iterations: 30,
                    ..VoPipelineConfig::default()
                },
            )
            .expect("vo builds");
            let stage = VoStage::new(
                vo,
                policy.clone(),
                &dataset.camera,
                &dataset.frames[0].depth,
                grid_w,
                grid_h,
            )
            .expect("vo stage builds");
            let mut pipeline = LocalizationPipeline::build(&dataset, config)
                .expect("pipeline builds")
                .with_vo(stage)
                .with_control(control);
            let gt_control = dataset.frames[0].pose.delta_to(dataset.frames[1].pose);
            let truth = dataset.frames[1].pose;
            b.iter(|| {
                pipeline
                    .step(&gt_control, &dataset.frames[1].depth, truth)
                    .expect("step succeeds")
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pf,
    bench_weight_step,
    bench_analog_weight_step_threads,
    bench_gated_pipeline_step,
    bench_adaptive_mc_pipeline_step
);
criterion_main!(benches);
