//! Timing: one particle-filter predict/update step vs particle count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use navicim_filter::filter::{FilterConfig, Measurement, ParticleFilter};
use navicim_filter::motion::OdometryMotion;
use navicim_filter::particle::ParticleSet;
use navicim_math::geom::{Pose, Vec3};
use navicim_math::rng::{Pcg32, SampleExt};
use navicim_math::stats::diag_mvn_logpdf;

/// Cheap synthetic position sensor so the bench isolates filter overhead.
struct PositionSensor;

impl Measurement<Pose, Vec3> for PositionSensor {
    fn log_likelihood(&mut self, state: &Pose, obs: &Vec3) -> f64 {
        diag_mvn_logpdf(
            &state.translation.to_array(),
            &obs.to_array(),
            &[0.2, 0.2, 0.2],
        )
    }
}

fn bench_pf(c: &mut Criterion) {
    let mut group = c.benchmark_group("particle_filter_step");
    group.sample_size(20);
    for &n in &[100usize, 500, 2000] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut rng = Pcg32::seed_from_u64(1);
            let states: Vec<Pose> = (0..n)
                .map(|_| {
                    Pose::from_position_euler(
                        Vec3::new(
                            rng.sample_normal(0.0, 0.3),
                            rng.sample_normal(0.0, 0.3),
                            rng.sample_normal(1.0, 0.2),
                        ),
                        0.0,
                        0.0,
                        rng.sample_normal(0.0, 0.1),
                    )
                })
                .collect();
            let mut pf = ParticleFilter::new(
                ParticleSet::from_states(states).unwrap(),
                FilterConfig::default(),
            );
            let motion = OdometryMotion::indoor();
            let control = Pose::from_position_euler(Vec3::new(0.05, 0.0, 0.0), 0.0, 0.0, 0.01);
            let obs = Vec3::new(0.05, 0.0, 1.0);
            let mut sensor = PositionSensor;
            b.iter(|| {
                pf.step(&control, &obs, &motion, &mut sensor, &mut rng)
                    .expect("step succeeds");
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pf);
criterion_main!(benches);
