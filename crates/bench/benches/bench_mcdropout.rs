//! Timing: one MC-Dropout prediction (T = 30) on the SRAM macro, with and
//! without compute reuse, against the exact software backend.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use navicim_bench::{calibration_inputs, small_vo_dataset, small_vo_network};
use navicim_core::vo::{BayesianVo, VoPipelineConfig};
use navicim_math::rng::Pcg32;
use navicim_nn::quant::{ExactBackend, QuantizedMlp};

fn bench_mcdropout(c: &mut Criterion) {
    let dataset = small_vo_dataset(1);
    let net = small_vo_network(&dataset);
    let calib = calibration_inputs(&dataset, 8);
    let features = dataset.samples[0].features.clone();

    let mut group = c.benchmark_group("mc_dropout_predict_t30");
    group.sample_size(10);

    for &reuse in &[true, false] {
        let label = if reuse { "macro_reuse" } else { "macro_full" };
        group.bench_with_input(BenchmarkId::new(label, 4), &reuse, |b, &reuse| {
            let mut vo = BayesianVo::build(
                &net,
                &calib,
                VoPipelineConfig {
                    reuse,
                    order_samples: reuse,
                    mc_iterations: 30,
                    ..VoPipelineConfig::default()
                },
            )
            .unwrap();
            b.iter(|| std::hint::black_box(vo.predict(&features)))
        });
    }

    group.bench_function("exact_software_backend", |b| {
        let qnet = QuantizedMlp::from_mlp(&net, 4, 4, &calib).unwrap();
        let mut backend = ExactBackend::new();
        let mut rng = Pcg32::seed_from_u64(7);
        b.iter(|| std::hint::black_box(qnet.mc_predict(&mut backend, &features, 30, &mut rng)))
    });
    group.finish();
}

criterion_group!(benches, bench_mcdropout);
criterion_main!(benches);
