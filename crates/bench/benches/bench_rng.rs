//! Timing: dropout-bitstream generation — modeled CCI RNG vs PCG software
//! generator, raw and whitened.

use criterion::{criterion_group, criterion_main, Criterion};
use navicim_math::rng::{Pcg32, Rng64};
use navicim_sram::rng::{CciRng, CciRngConfig};

fn bench_rng(c: &mut Criterion) {
    let mut group = c.benchmark_group("dropout_bits_1k");
    group.sample_size(20);

    group.bench_function("cci_raw", |b| {
        let mut fab = Pcg32::seed_from_u64(1);
        let mut rng = CciRng::fabricate(&CciRngConfig::default(), &mut fab).unwrap();
        rng.calibrate(1000);
        b.iter(|| {
            let mut acc = 0u32;
            for _ in 0..1024 {
                acc += rng.next_bit() as u32;
            }
            std::hint::black_box(acc)
        })
    });

    group.bench_function("cci_whitened", |b| {
        let mut fab = Pcg32::seed_from_u64(2);
        let mut rng = CciRng::fabricate(&CciRngConfig::default(), &mut fab).unwrap();
        b.iter(|| {
            let mut acc = 0u32;
            for _ in 0..1024 {
                acc += rng.next_bit_whitened() as u32;
            }
            std::hint::black_box(acc)
        })
    });

    group.bench_function("pcg32_reference", |b| {
        let mut rng = Pcg32::seed_from_u64(3);
        b.iter(|| {
            let mut acc = 0u32;
            for _ in 0..16 {
                acc ^= rng.next_u64().count_ones();
            }
            std::hint::black_box(acc)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_rng);
criterion_main!(benches);
