//! Parametric energy models for the paper's efficiency claims.
//!
//! Absolute silicon energies cannot be measured from a simulator, so this
//! crate models them parametrically and is calibrated at two anchor points
//! the paper reports:
//!
//! - Section II / Fig. 2(i): a likelihood evaluation on the 4-bit HMGM
//!   inverter array (500 columns, 100 components, 45 nm) costs **374 fJ**,
//!   **25×** below an 8-bit digital GMM processor;
//! - Section III-D: the SRAM MC-Dropout macro reaches **3.04 TOPS/W at
//!   4 bits** and **≈2 TOPS/W at 6 bits** (16 nm, 1 GHz, 0.85 V, 30
//!   MC iterations).
//!
//! Constants marked `CALIBRATED` below are fitted to those anchors; the
//! Horowitz-style digital profile ([`digital::DigitalProfile::horowitz_45nm`])
//! is provided as an independent, literature-derived baseline so every
//! comparison can be reported against both.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analog;
pub mod digital;
pub mod report;
pub mod sram;

use std::error::Error;
use std::fmt;

/// Error type for energy-model construction.
#[derive(Debug, Clone, PartialEq)]
pub enum EnergyError {
    /// An argument was outside its valid domain.
    InvalidArgument(String),
}

impl fmt::Display for EnergyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnergyError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl Error for EnergyError {}

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, EnergyError>;

/// Converts picojoules and operation counts to TOPS/W.
///
/// `ops` is the number of delivered operations (a MAC counts as 2).
///
/// Returns 0 for zero energy (undefined efficiency).
pub fn tops_per_watt(ops: u64, energy_pj: f64) -> f64 {
    if energy_pj <= 0.0 {
        return 0.0;
    }
    // ops / (energy_pj · 1e-12 J) / 1e12 = ops / energy_pj.
    ops as f64 / energy_pj
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tops_per_watt_units() {
        // 1 TOPS/W = 1 op/pJ: 2000 ops at 1000 pJ → 2 TOPS/W.
        assert!((tops_per_watt(2000, 1000.0) - 2.0).abs() < 1e-12);
        assert_eq!(tops_per_watt(100, 0.0), 0.0);
    }
}
