//! Digital-datapath energy costs (the conventional baseline).

use crate::{EnergyError, Result};

/// Per-operation energy profile of a digital processor.
///
/// Operation costs scale with operand width: additions linearly, multiplies
/// quadratically, memory/LUT accesses linearly — standard first-order CMOS
/// scaling.
#[derive(Debug, Clone, PartialEq)]
pub struct DigitalProfile {
    name: String,
    /// Energy of an 8-bit addition, in pJ.
    add8_pj: f64,
    /// Energy of an 8-bit multiplication, in pJ.
    mult8_pj: f64,
    /// Energy of reading 8 bits from local SRAM, in pJ.
    read8_pj: f64,
    /// Energy of one exponential lookup (LUT access + interpolation), in pJ.
    exp8_pj: f64,
}

impl DigitalProfile {
    /// Literature-derived 45 nm costs (Horowitz, ISSCC 2014: 8-bit add
    /// 0.03 pJ, 8-bit mult 0.2 pJ, 8 KB SRAM access ≈1.25 pJ/byte).
    pub fn horowitz_45nm() -> Self {
        Self {
            name: "digital-45nm-horowitz".into(),
            add8_pj: 0.03,
            mult8_pj: 0.2,
            read8_pj: 1.25,
            exp8_pj: 1.45, // LUT read + one interpolation mult/add
        }
    }

    /// CALIBRATED: an aggressively optimized GMM ASIC whose per-component
    /// evaluation energy reproduces the paper's reported 25× gap against
    /// the 374 fJ CIM likelihood (i.e. ≈9.35 pJ per 100-component
    /// evaluation). Represents the most favourable digital baseline; the
    /// Horowitz profile bounds the comparison from the other side.
    pub fn paper_calibrated_gmm_asic() -> Self {
        // 93.5 fJ per component-point at 8 bits, distributed over the same
        // op mix as `gmm_point_pj` (3 sub + 3 sq-mult + 3 scale-mult +
        // 3 add + exp + weight mac + 7 reads).
        Self {
            name: "digital-45nm-paper-calibrated".into(),
            add8_pj: 0.00146,
            mult8_pj: 0.00738,
            read8_pj: 0.00292,
            exp8_pj: 0.00973,
        }
    }

    /// Profile name for reports.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Energy of one addition at the given width, in pJ (linear scaling).
    pub fn add_pj(&self, bits: u32) -> f64 {
        self.add8_pj * bits as f64 / 8.0
    }

    /// Energy of one multiplication at the given width, in pJ (quadratic
    /// scaling).
    pub fn mult_pj(&self, bits: u32) -> f64 {
        self.mult8_pj * (bits as f64 / 8.0).powi(2)
    }

    /// Energy of one multiply-accumulate, in pJ.
    pub fn mac_pj(&self, bits: u32) -> f64 {
        self.mult_pj(bits) + self.add_pj(bits.saturating_mul(2))
    }

    /// Energy of one local-memory read of the given width, in pJ.
    pub fn read_pj(&self, bits: u32) -> f64 {
        self.read8_pj * bits as f64 / 8.0
    }

    /// Energy of one exponential evaluation at the given width, in pJ.
    pub fn exp_pj(&self, bits: u32) -> f64 {
        self.exp8_pj * bits as f64 / 8.0
    }

    /// Energy of one Gaussian-mixture likelihood evaluation for a
    /// `dim`-dimensional point against `components` diagonal components at
    /// the given precision, in pJ.
    ///
    /// Per component: `dim` subtractions, `dim` squaring multiplies, `dim`
    /// scale multiplies, `dim` additions (exponent assembly), one
    /// exponential, one weight MAC, plus `2·dim + 1` parameter reads.
    ///
    /// # Errors
    ///
    /// Returns [`EnergyError::InvalidArgument`] for zero `dim`,
    /// `components` or `bits`.
    pub fn gmm_point_pj(&self, dim: usize, components: usize, bits: u32) -> Result<f64> {
        if dim == 0 || components == 0 || bits == 0 {
            return Err(EnergyError::InvalidArgument(
                "gmm energy requires non-zero dim, components and bits".into(),
            ));
        }
        let d = dim as f64;
        let per_component = d * self.add_pj(bits)              // subtractions
            + d * self.mult_pj(bits)                           // squares
            + d * self.mult_pj(bits)                           // 1/2σ² scaling
            + d * self.add_pj(bits)                            // exponent sum
            + self.exp_pj(bits)                                // exp lookup
            + self.mac_pj(bits)                                // weight MAC
            + (2.0 * d + 1.0) * self.read_pj(bits); // parameter fetches
        Ok(per_component * components as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_scaling_laws() {
        let p = DigitalProfile::horowitz_45nm();
        assert!((p.add_pj(16) / p.add_pj(8) - 2.0).abs() < 1e-12);
        assert!((p.mult_pj(16) / p.mult_pj(8) - 4.0).abs() < 1e-12);
        assert!(p.mac_pj(8) > p.mult_pj(8));
    }

    #[test]
    fn gmm_energy_scales_with_components_and_dim() {
        let p = DigitalProfile::horowitz_45nm();
        let base = p.gmm_point_pj(3, 100, 8).unwrap();
        let more_k = p.gmm_point_pj(3, 200, 8).unwrap();
        assert!((more_k / base - 2.0).abs() < 1e-12);
        let more_d = p.gmm_point_pj(6, 100, 8).unwrap();
        assert!(more_d > base * 1.5);
    }

    #[test]
    fn paper_calibrated_hits_anchor() {
        // 100-component, 3-D, 8-bit evaluation ≈ 25 × 374 fJ = 9.35 pJ.
        let p = DigitalProfile::paper_calibrated_gmm_asic();
        let e = p.gmm_point_pj(3, 100, 8).unwrap();
        assert!(
            (e - 9.35).abs() / 9.35 < 0.1,
            "calibrated GMM energy {e} pJ, expected ≈9.35 pJ"
        );
    }

    #[test]
    fn horowitz_is_costlier_than_calibrated() {
        let h = DigitalProfile::horowitz_45nm()
            .gmm_point_pj(3, 100, 8)
            .unwrap();
        let c = DigitalProfile::paper_calibrated_gmm_asic()
            .gmm_point_pj(3, 100, 8)
            .unwrap();
        assert!(h > 5.0 * c);
    }

    #[test]
    fn validation() {
        let p = DigitalProfile::horowitz_45nm();
        assert!(p.gmm_point_pj(0, 10, 8).is_err());
        assert!(p.gmm_point_pj(3, 0, 8).is_err());
        assert!(p.gmm_point_pj(3, 10, 0).is_err());
    }
}
