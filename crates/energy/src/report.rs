//! Itemized energy reports with markdown rendering.

use std::fmt;

/// An itemized energy breakdown (all values in picojoules).
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyReport {
    label: String,
    items: Vec<(String, f64)>,
}

impl EnergyReport {
    /// Creates an empty report.
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            items: Vec::new(),
        }
    }

    /// Report label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Appends one line item (energy in pJ).
    pub fn push(&mut self, item: impl Into<String>, energy_pj: f64) {
        self.items.push((item.into(), energy_pj));
    }

    /// Line items.
    pub fn items(&self) -> &[(String, f64)] {
        &self.items
    }

    /// Total energy in pJ.
    pub fn total_pj(&self) -> f64 {
        self.items.iter().map(|(_, e)| e).sum()
    }

    /// Total energy in femtojoules (convenience for sub-pJ results).
    pub fn total_fj(&self) -> f64 {
        self.total_pj() * 1e3
    }
}

impl fmt::Display for EnergyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "### {}", self.label)?;
        writeln!(f, "| component | energy (pJ) | share |")?;
        writeln!(f, "|---|---:|---:|")?;
        let total = self.total_pj().max(1e-300);
        for (name, e) in &self.items {
            writeln!(f, "| {name} | {e:.6} | {:.1}% |", e / total * 100.0)?;
        }
        writeln!(f, "| **total** | **{:.6}** | 100% |", self.total_pj())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_units() {
        let mut r = EnergyReport::new("test");
        r.push("a", 1.5);
        r.push("b", 0.5);
        assert_eq!(r.total_pj(), 2.0);
        assert_eq!(r.total_fj(), 2000.0);
        assert_eq!(r.items().len(), 2);
    }

    #[test]
    fn display_renders_markdown_table() {
        let mut r = EnergyReport::new("breakdown");
        r.push("array", 0.1);
        let s = r.to_string();
        assert!(s.contains("### breakdown"));
        assert!(s.contains("| array |"));
        assert!(s.contains("**total**"));
    }

    #[test]
    fn clone_preserves_report() {
        let mut r = EnergyReport::new("x");
        r.push("y", 3.25);
        let copy = r.clone();
        assert_eq!(copy, r);
        assert_eq!(copy.label(), "x");
    }
}
