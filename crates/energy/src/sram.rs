//! Energy costs of the SRAM MC-Dropout macro (Section III-D).

use crate::report::EnergyReport;
use crate::{tops_per_watt, EnergyError, Result};

/// Cost profile of the SRAM CIM inference path at the paper's 16 nm,
/// 0.85 V, 1 GHz operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramCimProfile {
    /// CALIBRATED energy of one executed CIM MAC at 4-bit precision, in pJ
    /// (fitted to the 3.04 TOPS/W anchor; includes wordline/bitline
    /// switching and digital accumulation periphery).
    pub mac4_pj: f64,
    /// Exponent of the MAC-energy precision scaling `(bits/4)^γ`.
    pub mac_bits_exponent: f64,
    /// Partial-sum ADC Walden FoM, in femtojoules per step.
    pub adc_fom_fj_per_step: f64,
    /// Energy per generated dropout bit (CCI RNG), in femtojoules.
    pub rng_bit_fj: f64,
}

impl SramCimProfile {
    /// The paper's 16 nm operating point.
    ///
    /// `mac4_pj` is CALIBRATED so the *measured* MC-Dropout pipeline (30
    /// iterations, p = 0.5, reuse + ordering, which executes ≈4% of the
    /// full-equivalent workload) reproduces the 3.04 TOPS/W anchor; the
    /// value therefore absorbs wordline/bitline streaming and digital
    /// periphery, not just the analog MAC.
    pub fn paper_16nm() -> Self {
        Self {
            mac4_pj: 12.9, // CALIBRATED (3.04 TOPS/W anchor, measured reuse)
            mac_bits_exponent: 0.9,
            adc_fom_fj_per_step: 100.0,
            rng_bit_fj: 5.0,
        }
    }

    /// Energy of one executed MAC at the given precision, in pJ.
    pub fn mac_pj(&self, bits: u32) -> f64 {
        self.mac4_pj * (bits as f64 / 4.0).powf(self.mac_bits_exponent)
    }

    /// Energy of one partial-sum ADC conversion at the given resolution,
    /// in pJ.
    pub fn adc_pj(&self, bits: u32) -> f64 {
        self.adc_fom_fj_per_step * (1u64 << bits) as f64 * 1e-3
    }

    /// Total inference energy in pJ from raw operation counts — the
    /// allocation-free per-frame counterpart of
    /// [`Self::inference_report`] (identical arithmetic, no report
    /// strings), used by the gated pipeline to price each frame's
    /// MC-Dropout passes from a [`MacroStats`-style] counter delta.
    ///
    /// [`MacroStats`-style]: Self::inference_report
    ///
    /// # Errors
    ///
    /// Returns [`EnergyError::InvalidArgument`] for zero precision.
    pub fn inference_pj(
        &self,
        macs_executed: u64,
        adc_conversions: u64,
        adc_bits: u32,
        rng_bits: u64,
        precision_bits: u32,
    ) -> Result<f64> {
        if precision_bits == 0 {
            return Err(EnergyError::InvalidArgument(
                "precision must be non-zero".into(),
            ));
        }
        Ok(macs_executed as f64 * self.mac_pj(precision_bits)
            + adc_conversions as f64 * self.adc_pj(adc_bits)
            + rng_bits as f64 * self.rng_bit_fj * 1e-3)
    }

    /// Full inference-energy breakdown from operation counts.
    ///
    /// # Errors
    ///
    /// Returns [`EnergyError::InvalidArgument`] for zero precision.
    pub fn inference_report(
        &self,
        macs_executed: u64,
        adc_conversions: u64,
        adc_bits: u32,
        rng_bits: u64,
        precision_bits: u32,
    ) -> Result<EnergyReport> {
        if precision_bits == 0 {
            return Err(EnergyError::InvalidArgument(
                "precision must be non-zero".into(),
            ));
        }
        let mut report = EnergyReport::new("sram CIM MC-Dropout inference");
        report.push(
            "CIM MAC array",
            macs_executed as f64 * self.mac_pj(precision_bits),
        );
        report.push(
            "partial-sum ADCs",
            adc_conversions as f64 * self.adc_pj(adc_bits),
        );
        report.push("dropout RNG", rng_bits as f64 * self.rng_bit_fj * 1e-3);
        Ok(report)
    }

    /// Effective TOPS/W: delivered operations (2 × full-equivalent MACs,
    /// i.e. the workload *as if* no reuse had been applied — the standard
    /// way effective efficiency is reported for reuse schemes) over the
    /// energy actually spent.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::inference_report`] validation.
    pub fn effective_tops_per_watt(
        &self,
        macs_full_equivalent: u64,
        macs_executed: u64,
        adc_conversions: u64,
        adc_bits: u32,
        rng_bits: u64,
        precision_bits: u32,
    ) -> Result<f64> {
        let report = self.inference_report(
            macs_executed,
            adc_conversions,
            adc_bits,
            rng_bits,
            precision_bits,
        )?;
        Ok(tops_per_watt(2 * macs_full_equivalent, report.total_pj()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Operating point measured from the simulated pipeline: 30 MC
    /// iterations, p = 0.5 dropout, reuse + ordering (≈4% of the full
    /// workload executed), 8-bit partial-sum ADCs.
    fn paper_like_counts() -> (u64, u64, u64, u64) {
        let full = 16_204_800u64;
        let executed = 700_000u64;
        let adc_conversions = 61_000u64;
        let rng_bits = 90_000u64;
        (full, executed, adc_conversions, rng_bits)
    }

    #[test]
    fn four_bit_anchor() {
        let p = SramCimProfile::paper_16nm();
        let (full, exec, adc, rng) = paper_like_counts();
        let tops = p
            .effective_tops_per_watt(full, exec, adc, 8, rng, 4)
            .unwrap();
        assert!(
            (2.6..3.6).contains(&tops),
            "4-bit effective TOPS/W {tops}, paper anchor 3.04"
        );
    }

    #[test]
    fn six_bit_anchor() {
        let p = SramCimProfile::paper_16nm();
        let (full, exec, adc, rng) = paper_like_counts();
        let tops = p
            .effective_tops_per_watt(full, exec, adc, 8, rng, 6)
            .unwrap();
        assert!(
            (1.5..2.6).contains(&tops),
            "6-bit effective TOPS/W {tops}, paper anchor ≈2"
        );
    }

    #[test]
    fn reuse_improves_effective_efficiency() {
        let p = SramCimProfile::paper_16nm();
        let with_reuse = p
            .effective_tops_per_watt(1_000_000, 100_000, 20_000, 8, 6000, 4)
            .unwrap();
        let without = p
            .effective_tops_per_watt(1_000_000, 1_000_000, 20_000, 8, 6000, 4)
            .unwrap();
        assert!(with_reuse > without * 1.5);
    }

    #[test]
    fn inference_pj_matches_report_total() {
        let p = SramCimProfile::paper_16nm();
        let (_, exec, adc, rng) = paper_like_counts();
        let report = p.inference_report(exec, adc, 8, rng, 4).unwrap();
        let flat = p.inference_pj(exec, adc, 8, rng, 4).unwrap();
        assert!((flat - report.total_pj()).abs() < 1e-9 * report.total_pj());
        assert!(p.inference_pj(exec, adc, 8, rng, 0).is_err());
        assert_eq!(p.inference_pj(0, 0, 8, 0, 4).unwrap(), 0.0);
    }

    #[test]
    fn mac_scaling_monotone() {
        let p = SramCimProfile::paper_16nm();
        assert!(p.mac_pj(6) > p.mac_pj(4));
        assert!(p.mac_pj(8) > p.mac_pj(6));
    }

    #[test]
    fn validation() {
        let p = SramCimProfile::paper_16nm();
        assert!(p.inference_report(10, 1, 4, 1, 0).is_err());
    }
}
