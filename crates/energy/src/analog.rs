//! Energy costs of the analog inverter-array likelihood engine
//! (Section II, Fig. 2(i)).

use crate::report::EnergyReport;
use crate::{EnergyError, Result};

/// Cost profile of the analog CIM likelihood path.
///
/// The array energy is computed from the *measured* average array current
/// of the simulated engine (`E = I_avg · V_DD · t_eval`), so the model
/// tracks the actual workload; `current_scale` maps our strong-inversion
/// device model onto the paper's deep-subthreshold design point and is
/// CALIBRATED against the 374 fJ anchor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalogCimProfile {
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Evaluation window per likelihood query, in seconds.
    pub eval_time_s: f64,
    /// CALIBRATED current scale mapping modeled currents to the paper's
    /// subthreshold-biased design.
    pub current_scale: f64,
    /// DAC conversion energy at 4 bits, in femtojoules (scales linearly
    /// with bits).
    pub dac4_fj: f64,
    /// ADC Walden figure of merit, in femtojoules per conversion step.
    pub adc_fom_fj_per_step: f64,
}

impl AnalogCimProfile {
    /// The paper's 45 nm operating point.
    pub fn paper_45nm() -> Self {
        Self {
            vdd: 1.0,
            eval_time_s: 1e-9,
            current_scale: 30.0, // CALIBRATED (374 fJ anchor)
            dac4_fj: 20.0,
            adc_fom_fj_per_step: 8.0,
        }
    }

    /// Array conduction energy for one evaluation, in pJ, from the average
    /// total array current in amperes.
    ///
    /// # Errors
    ///
    /// Returns [`EnergyError::InvalidArgument`] for negative currents.
    pub fn array_pj(&self, avg_current_a: f64) -> Result<f64> {
        if avg_current_a < 0.0 {
            return Err(EnergyError::InvalidArgument(
                "average current must be non-negative".into(),
            ));
        }
        Ok(avg_current_a * self.current_scale * self.vdd * self.eval_time_s * 1e12)
    }

    /// Energy of one DAC conversion at the given resolution, in pJ.
    pub fn dac_pj(&self, bits: u32) -> f64 {
        self.dac4_fj * bits as f64 / 4.0 * 1e-3
    }

    /// Energy of one ADC conversion at the given resolution, in pJ
    /// (Walden scaling: per-step FoM × 2^bits).
    pub fn adc_pj(&self, bits: u32) -> f64 {
        self.adc_fom_fj_per_step * (1u64 << bits) as f64 * 1e-3
    }

    /// Total energy of one likelihood evaluation in pJ — the sum of the
    /// [`Self::likelihood_eval_report`] items without building the
    /// itemized report, so per-frame pricing loops (the gated pipeline
    /// prices every frame) stay allocation-free.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::array_pj`] validation.
    pub fn likelihood_eval_pj(
        &self,
        avg_current_a: f64,
        dims: usize,
        dac_bits: u32,
        adc_bits: u32,
    ) -> Result<f64> {
        self.likelihood_eval_pj_gated(avg_current_a, dims, dac_bits, adc_bits, 1.0)
    }

    /// [`Self::likelihood_eval_pj`] under column gating: the DAC drive
    /// term is scaled by `active_fraction` — the fraction of column
    /// activation slots actually driven per evaluation — because gated
    /// columns never receive their DAC→array input drive. The array term
    /// already tracks gating through the measured average current (gated
    /// columns conduct nothing), and the single output ADC conversion is
    /// unaffected. At `active_fraction = 1.0` (no gating) this is exactly
    /// the ungated price, bitwise.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::array_pj`] validation; rejects fractions
    /// outside `[0, 1]`.
    pub fn likelihood_eval_pj_gated(
        &self,
        avg_current_a: f64,
        dims: usize,
        dac_bits: u32,
        adc_bits: u32,
        active_fraction: f64,
    ) -> Result<f64> {
        if !(0.0..=1.0).contains(&active_fraction) {
            return Err(EnergyError::InvalidArgument(format!(
                "active column fraction must be in [0, 1], got {active_fraction}"
            )));
        }
        Ok(self.array_pj(avg_current_a)?
            + dims as f64 * self.dac_pj(dac_bits) * active_fraction
            + self.adc_pj(adc_bits))
    }

    /// Full breakdown of one likelihood evaluation: `dims` DAC conversions,
    /// one array read, one log-ADC conversion.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::array_pj`] validation.
    pub fn likelihood_eval_report(
        &self,
        avg_current_a: f64,
        dims: usize,
        dac_bits: u32,
        adc_bits: u32,
    ) -> Result<EnergyReport> {
        let mut report = EnergyReport::new("analog CIM likelihood evaluation");
        report.push("inverter array conduction", self.array_pj(avg_current_a)?);
        report.push("input DACs", dims as f64 * self.dac_pj(dac_bits));
        report.push("log-ADC conversion", self.adc_pj(adc_bits));
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_energy_is_q_times_v() {
        let p = AnalogCimProfile {
            current_scale: 1.0,
            ..AnalogCimProfile::paper_45nm()
        };
        // 1 µA for 1 ns at 1 V = 1 fJ = 1e-3 pJ.
        let e = p.array_pj(1e-6).unwrap();
        assert!((e - 1e-3).abs() < 1e-15);
        assert!(p.array_pj(-1.0).is_err());
    }

    #[test]
    fn adc_walden_scaling() {
        let p = AnalogCimProfile::paper_45nm();
        assert!((p.adc_pj(5) / p.adc_pj(4) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn paper_anchor_in_range() {
        // At a representative simulated average array current of ~4 µA
        // (500 subthreshold columns, few conducting), the 4-bit evaluation
        // should land near the paper's 374 fJ anchor.
        let p = AnalogCimProfile::paper_45nm();
        let report = p.likelihood_eval_report(4e-6, 3, 4, 4).unwrap();
        let total = report.total_pj();
        assert!(
            (0.15..0.75).contains(&total),
            "total {total} pJ should be in the few-hundred-fJ range"
        );
    }

    #[test]
    fn breakdown_has_three_items() {
        let p = AnalogCimProfile::paper_45nm();
        let report = p.likelihood_eval_report(1e-6, 3, 4, 8).unwrap();
        assert_eq!(report.items().len(), 3);
        assert!(report.total_pj() > 0.0);
    }

    #[test]
    fn gated_eval_scales_only_the_dac_term() {
        let p = AnalogCimProfile::paper_45nm();
        let full = p.likelihood_eval_pj(2e-6, 3, 4, 8).unwrap();
        let gated = p.likelihood_eval_pj_gated(2e-6, 3, 4, 8, 0.25).unwrap();
        let dac_term = 3.0 * p.dac_pj(4);
        assert!((full - gated - dac_term * 0.75).abs() < 1e-15);
        // Full activation is bitwise the ungated price.
        assert_eq!(
            p.likelihood_eval_pj_gated(2e-6, 3, 4, 8, 1.0).unwrap(),
            full
        );
        assert!(p.likelihood_eval_pj_gated(2e-6, 3, 4, 8, 1.5).is_err());
        assert!(p.likelihood_eval_pj_gated(2e-6, 3, 4, 8, -0.1).is_err());
    }

    #[test]
    fn eval_pj_matches_report_total() {
        let p = AnalogCimProfile::paper_45nm();
        let report = p.likelihood_eval_report(2.5e-6, 3, 4, 6).unwrap();
        let total = p.likelihood_eval_pj(2.5e-6, 3, 4, 6).unwrap();
        assert_eq!(total, report.total_pj());
        assert!(p.likelihood_eval_pj(-1.0, 3, 4, 6).is_err());
    }
}
