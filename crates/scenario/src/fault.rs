//! Declarative fault scripts: what breaks, when, and for how long.

use crate::{Result, ScenarioError};
use navicim_math::rng::{Pcg32, Rng64, SampleExt};
use navicim_scene::camera::DepthImage;

/// One kind of injected fault.
///
/// Depth-mutating kinds operate on a cloned frame — the dataset is
/// never modified — and use only the public [`DepthImage`] API, so
/// every fault composes with every camera model. `0.0` is the sensor's
/// "no return" encoding throughout.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Kidnapped robot: the stream's dataset cursor jumps `skip` frames
    /// ahead while the frame's *control* stays the pre-jump one-step
    /// delta — the filter is told the robot took a normal step while
    /// the world (depth + truth) teleported under it.
    Teleport {
        /// Dataset frames to jump (≥ 1).
        skip: usize,
    },
    /// Sensor dropout: each valid pixel independently loses its return
    /// with probability `fraction` (1.0 = a fully blind frame).
    Dropout {
        /// Per-pixel dropout probability in (0, 1].
        fraction: f64,
    },
    /// Stuck-value fault: the whole readout freezes at one constant
    /// depth (a latched ASIC output or a fogged lens).
    StuckValue {
        /// The stuck reading in meters (> 0, finite).
        depth_m: f64,
    },
    /// Adversarial offset: every valid return is biased by `bias_m`
    /// (readings pushed to ≤ 0 become "no return") — a calibrated
    /// range-walk attack that keeps the image *plausible*.
    Offset {
        /// Additive range bias in meters (finite, ≠ 0).
        bias_m: f64,
    },
    /// Measurement spoofing: each pixel is independently overwritten
    /// with a false return at `depth_m` with probability `fraction`
    /// (injected phantom geometry, valid and invalid pixels alike).
    Spoof {
        /// The spoofed range in meters (> 0, finite).
        depth_m: f64,
        /// Per-pixel spoof probability in (0, 1].
        fraction: f64,
    },
    /// Low-texture stretch: every valid return is flattened to the
    /// frame's mean depth — a featureless wall that starves both the
    /// scan likelihood and the VO feature grids of structure.
    LowTexture,
}

impl FaultKind {
    /// A short stable label for tables and logs.
    pub fn label(&self) -> &'static str {
        match self {
            Self::Teleport { .. } => "teleport",
            Self::Dropout { .. } => "dropout",
            Self::StuckValue { .. } => "stuck-value",
            Self::Offset { .. } => "offset",
            Self::Spoof { .. } => "spoof",
            Self::LowTexture => "low-texture",
        }
    }

    fn validate(&self) -> Result<()> {
        let bad = |msg: String| Err(ScenarioError::InvalidArgument(msg));
        match *self {
            Self::Teleport { skip: 0 } => bad("teleport skip must be >= 1".into()),
            Self::Dropout { fraction } | Self::Spoof { fraction, .. }
                if !fraction.is_finite() || !(fraction > 0.0) || !(fraction <= 1.0) =>
            {
                bad(format!(
                    "fault pixel fraction must be in (0, 1], got {fraction}"
                ))
            }
            Self::StuckValue { depth_m } | Self::Spoof { depth_m, .. }
                if !depth_m.is_finite() || !(depth_m > 0.0) =>
            {
                bad(format!(
                    "fault depth must be finite and > 0 m, got {depth_m}"
                ))
            }
            Self::Offset { bias_m } if !bias_m.is_finite() || bias_m == 0.0 => bad(format!(
                "offset bias must be finite and non-zero, got {bias_m}"
            )),
            _ => Ok(()),
        }
    }

    /// Applies a depth-mutating fault to `depth` in place. [`Teleport`]
    /// is a *stream* fault (it moves the cursor, not the pixels) and is
    /// a no-op here. `rng` drives the per-pixel draws of
    /// [`FaultKind::Dropout`] / [`FaultKind::Spoof`]; pass a
    /// deterministically seeded generator for replayable scenarios.
    ///
    /// [`Teleport`]: FaultKind::Teleport
    pub fn apply<R: Rng64 + ?Sized>(&self, depth: &mut DepthImage, rng: &mut R) {
        match *self {
            Self::Teleport { .. } => {}
            Self::Dropout { fraction } => {
                for v in 0..depth.height() {
                    for u in 0..depth.width() {
                        if depth.depth(u, v) > 0.0 && rng.sample_bool(fraction) {
                            depth.set_depth(u, v, 0.0);
                        }
                    }
                }
            }
            Self::StuckValue { depth_m } => {
                for v in 0..depth.height() {
                    for u in 0..depth.width() {
                        depth.set_depth(u, v, depth_m);
                    }
                }
            }
            Self::Offset { bias_m } => {
                for v in 0..depth.height() {
                    for u in 0..depth.width() {
                        let d = depth.depth(u, v);
                        if d > 0.0 {
                            depth.set_depth(u, v, (d + bias_m).max(0.0));
                        }
                    }
                }
            }
            Self::Spoof { depth_m, fraction } => {
                for v in 0..depth.height() {
                    for u in 0..depth.width() {
                        if rng.sample_bool(fraction) {
                            depth.set_depth(u, v, depth_m);
                        }
                    }
                }
            }
            Self::LowTexture => {
                let mut sum = 0.0;
                let mut n = 0usize;
                for (_, _, d) in depth.valid_pixels() {
                    sum += d;
                    n += 1;
                }
                if n == 0 {
                    return;
                }
                let mean = sum / n as f64;
                for v in 0..depth.height() {
                    for u in 0..depth.width() {
                        if depth.depth(u, v) > 0.0 {
                            depth.set_depth(u, v, mean);
                        }
                    }
                }
            }
        }
    }
}

/// One scheduled fault: a kind active over the half-open stream-frame
/// window `[at_frame, at_frame + duration)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// First stream frame (0-based tracked frame) the fault is active.
    pub at_frame: usize,
    /// Frames the fault persists (≥ 1). A [`FaultKind::Teleport`]
    /// jumps the cursor once per active frame, so `duration: 1` is the
    /// classic single kidnap.
    pub duration: usize,
    /// What breaks.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// Whether this event is active at stream frame `frame`.
    pub fn active_at(&self, frame: usize) -> bool {
        frame >= self.at_frame && frame < self.at_frame + self.duration
    }

    /// The half-open `[start, end)` stream-frame window.
    pub fn window(&self) -> (usize, usize) {
        (self.at_frame, self.at_frame + self.duration)
    }
}

/// A named, validated schedule of [`FaultEvent`]s over `frames` tracked
/// stream frames.
///
/// The script is pure data: build one with [`ScenarioScript::clean`] +
/// [`ScenarioScript::with_event`], validate it once, then feed it to a
/// [`crate::stream::ScenarioStream`] (or [`crate::stream::run_scenario`])
/// any number of times — every run replays bit-identically because all
/// randomness is counter-seeded from `seed` and the frame index.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioScript {
    /// Scenario name (tables, logs, CSV provenance).
    pub name: String,
    /// Tracked stream frames the scenario runs (≥ 1). May exceed the
    /// dataset length — the stream loops its cursor, which is how
    /// 1k+-frame drift runs come from a 10-frame orbit.
    pub frames: usize,
    /// Master seed of the per-frame fault draws.
    pub seed: u64,
    /// The schedule, in any order.
    pub events: Vec<FaultEvent>,
}

impl ScenarioScript {
    /// A fault-free script: the baseline every fault scenario is graded
    /// against, and the false-alarm control.
    pub fn clean(name: impl Into<String>, frames: usize) -> Self {
        Self {
            name: name.into(),
            frames,
            seed: 0x5EED_FA17,
            events: Vec::new(),
        }
    }

    /// Adds one event (builder style).
    #[must_use]
    pub fn with_event(mut self, event: FaultEvent) -> Self {
        self.events.push(event);
        self
    }

    /// Replaces the fault-draw seed (builder style).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates the schedule: a positive frame count, every event
    /// windowed inside it with a positive duration, and every kind's
    /// own parameter domain.
    ///
    /// # Errors
    ///
    /// Returns [`ScenarioError::InvalidArgument`] naming the first
    /// violation.
    pub fn validate(&self) -> Result<()> {
        if self.frames == 0 {
            return Err(ScenarioError::InvalidArgument(format!(
                "scenario '{}' must run at least one frame",
                self.name
            )));
        }
        for (i, ev) in self.events.iter().enumerate() {
            if ev.duration == 0 {
                return Err(ScenarioError::InvalidArgument(format!(
                    "scenario '{}' event {i} has zero duration",
                    self.name
                )));
            }
            if ev.at_frame + ev.duration > self.frames {
                return Err(ScenarioError::InvalidArgument(format!(
                    "scenario '{}' event {i} window [{}, {}) exceeds the {}-frame run",
                    self.name,
                    ev.at_frame,
                    ev.at_frame + ev.duration,
                    self.frames
                )));
            }
            ev.kind.validate()?;
        }
        Ok(())
    }

    /// Whether any scripted event is active at stream frame `frame`.
    pub fn fault_active_at(&self, frame: usize) -> bool {
        self.events.iter().any(|ev| ev.active_at(frame))
    }

    /// The RNG driving frame `frame`'s fault pixel draws: counter-style
    /// seeding from the script seed and the frame index, so frames are
    /// independent and any frame replays without streaming the run.
    pub fn frame_rng(&self, frame: usize) -> Pcg32 {
        // SplitMix-style odd multiplier decorrelates consecutive frames.
        Pcg32::seed_from_u64(self.seed ^ (frame as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image(fill: f64) -> DepthImage {
        let mut img = DepthImage::new(8, 6);
        for v in 0..6 {
            for u in 0..8 {
                img.set_depth(u, v, fill);
            }
        }
        img
    }

    #[test]
    fn script_validation() {
        assert!(ScenarioScript::clean("ok", 10).validate().is_ok());
        assert!(ScenarioScript::clean("empty", 0).validate().is_err());
        // Window past the end.
        let s = ScenarioScript::clean("late", 10).with_event(FaultEvent {
            at_frame: 8,
            duration: 3,
            kind: FaultKind::LowTexture,
        });
        assert!(s.validate().is_err());
        // Zero duration.
        let s = ScenarioScript::clean("zero", 10).with_event(FaultEvent {
            at_frame: 2,
            duration: 0,
            kind: FaultKind::LowTexture,
        });
        assert!(s.validate().is_err());
    }

    #[test]
    fn kind_parameter_domains() {
        let cases = [
            FaultKind::Teleport { skip: 0 },
            FaultKind::Dropout { fraction: 0.0 },
            FaultKind::Dropout { fraction: 1.5 },
            FaultKind::Dropout { fraction: f64::NAN },
            FaultKind::StuckValue { depth_m: 0.0 },
            FaultKind::StuckValue {
                depth_m: f64::INFINITY,
            },
            FaultKind::Offset { bias_m: 0.0 },
            FaultKind::Offset { bias_m: f64::NAN },
            FaultKind::Spoof {
                depth_m: -1.0,
                fraction: 0.5,
            },
            FaultKind::Spoof {
                depth_m: 1.0,
                fraction: 0.0,
            },
        ];
        for kind in cases {
            let s = ScenarioScript::clean("bad", 10).with_event(FaultEvent {
                at_frame: 0,
                duration: 1,
                kind,
            });
            assert!(s.validate().is_err(), "{kind:?} accepted");
        }
    }

    #[test]
    fn event_windows() {
        let ev = FaultEvent {
            at_frame: 5,
            duration: 3,
            kind: FaultKind::LowTexture,
        };
        assert!(!ev.active_at(4));
        assert!(ev.active_at(5));
        assert!(ev.active_at(7));
        assert!(!ev.active_at(8));
        assert_eq!(ev.window(), (5, 8));
    }

    #[test]
    fn dropout_full_blinds_the_frame() {
        let mut img = image(2.0);
        let mut rng = Pcg32::seed_from_u64(1);
        FaultKind::Dropout { fraction: 1.0 }.apply(&mut img, &mut rng);
        assert_eq!(img.valid_count(), 0);
    }

    #[test]
    fn dropout_partial_is_deterministic_per_seed() {
        let script = ScenarioScript::clean("d", 10);
        let mut a = image(2.0);
        let mut b = image(2.0);
        FaultKind::Dropout { fraction: 0.5 }.apply(&mut a, &mut script.frame_rng(3));
        FaultKind::Dropout { fraction: 0.5 }.apply(&mut b, &mut script.frame_rng(3));
        assert_eq!(a.as_slice(), b.as_slice());
        assert!(a.valid_count() > 0 && a.valid_count() < 48);
        // A different frame index draws a different mask.
        let mut c = image(2.0);
        FaultKind::Dropout { fraction: 0.5 }.apply(&mut c, &mut script.frame_rng(4));
        assert_ne!(a.as_slice(), c.as_slice());
    }

    #[test]
    fn stuck_value_freezes_every_pixel() {
        let mut img = image(2.0);
        img.set_depth(0, 0, 0.0); // even invalid pixels latch
        let mut rng = Pcg32::seed_from_u64(1);
        FaultKind::StuckValue { depth_m: 1.5 }.apply(&mut img, &mut rng);
        for (_, _, d) in img.valid_pixels() {
            assert_eq!(d, 1.5);
        }
        assert_eq!(img.valid_count(), 48);
    }

    #[test]
    fn offset_biases_valid_pixels_and_culls_nonpositive() {
        let mut img = image(2.0);
        img.set_depth(0, 0, 0.0);
        img.set_depth(1, 0, 0.5);
        let mut rng = Pcg32::seed_from_u64(1);
        FaultKind::Offset { bias_m: -1.0 }.apply(&mut img, &mut rng);
        // Invalid stays invalid (no phantom return from the bias).
        assert_eq!(img.depth(0, 0), 0.0);
        // 0.5 - 1.0 <= 0 → no return.
        assert_eq!(img.depth(1, 0), 0.0);
        assert_eq!(img.depth(2, 0), 1.0);
    }

    #[test]
    fn spoof_injects_phantom_returns_into_invalid_pixels() {
        let mut img = DepthImage::new(8, 6); // all invalid
        let mut rng = Pcg32::seed_from_u64(2);
        FaultKind::Spoof {
            depth_m: 1.0,
            fraction: 1.0,
        }
        .apply(&mut img, &mut rng);
        assert_eq!(img.valid_count(), 48);
        for (_, _, d) in img.valid_pixels() {
            assert_eq!(d, 1.0);
        }
    }

    #[test]
    fn low_texture_flattens_to_the_mean() {
        let mut img = image(2.0);
        img.set_depth(0, 0, 4.0);
        img.set_depth(1, 0, 0.0); // invalid: excluded from the mean, left alone
        let mut rng = Pcg32::seed_from_u64(3);
        FaultKind::LowTexture.apply(&mut img, &mut rng);
        let mean = (4.0 + 46.0 * 2.0) / 47.0;
        assert_eq!(img.depth(1, 0), 0.0);
        for (_, _, d) in img.valid_pixels() {
            assert!((d - mean).abs() < 1e-12);
        }
        // A fully blind frame is a no-op, not a division by zero.
        let mut blind = DepthImage::new(4, 4);
        FaultKind::LowTexture.apply(&mut blind, &mut rng);
        assert_eq!(blind.valid_count(), 0);
    }
}
