//! Scripted fault injection as a wrapper over a dataset's frame stream,
//! plus the scenario runner and its outcome grading.

use crate::fault::{FaultEvent, FaultKind, ScenarioScript};
use crate::{Result, ScenarioError};
use navicim_core::pipeline::{FrameReport, LocalizationPipeline};
use navicim_math::geom::Pose;
use navicim_scene::camera::DepthImage;
use navicim_scene::dataset::LocalizationDataset;

/// One faulted stream frame: exactly the `(control, depth, truth)`
/// triple a [`LocalizationPipeline::step`] call consumes, plus the
/// injection flag for grading.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioFrame {
    /// 0-based tracked stream frame.
    pub frame: usize,
    /// The odometry control fed to the filter — always the one-step
    /// delta of the poses the *robot believes* it traversed, so under a
    /// [`FaultKind::Teleport`] this is the honest pre-jump step while
    /// `truth`/`depth` come from the post-jump world.
    pub control: Pose,
    /// This frame's (possibly fault-mutated) depth image.
    pub depth: DepthImage,
    /// Ground-truth pose of the served frame.
    pub truth: Pose,
    /// Whether any scripted fault was active this frame.
    pub fault_active: bool,
}

/// A [`ScenarioScript`] applied over a [`LocalizationDataset`]'s frame
/// stream.
///
/// The stream keeps a dataset cursor that advances one frame per step
/// and wraps modulo the dataset length, so a script may run arbitrarily
/// many frames over a short orbit (the 1k+-frame drift regime). The
/// control of every frame — including across the wrap — is computed
/// from the actual pose pair `(previous served, next served)`, so the
/// odometry is always consistent with the served truth... except where
/// a [`FaultKind::Teleport`] deliberately breaks that consistency.
///
/// Depth faults mutate a *clone* of the dataset frame using the
/// script's counter-seeded per-frame RNG: the same script over the same
/// dataset yields bit-identical streams, run after run.
#[derive(Debug)]
pub struct ScenarioStream<'a> {
    dataset: &'a LocalizationDataset,
    script: &'a ScenarioScript,
    cursor: usize,
    next: usize,
}

impl<'a> ScenarioStream<'a> {
    /// Validates the script and wraps the dataset.
    ///
    /// # Errors
    ///
    /// Propagates [`ScenarioScript::validate`]; rejects datasets with
    /// fewer than two frames (no pose pair to derive controls from).
    pub fn new(dataset: &'a LocalizationDataset, script: &'a ScenarioScript) -> Result<Self> {
        script.validate()?;
        if dataset.frames.len() < 2 {
            return Err(ScenarioError::InvalidArgument(format!(
                "scenario '{}' needs a dataset with at least 2 frames, got {}",
                script.name,
                dataset.frames.len()
            )));
        }
        Ok(Self {
            dataset,
            script,
            cursor: 0,
            next: 0,
        })
    }

    /// Total frames this stream will yield.
    pub fn len_frames(&self) -> usize {
        self.script.frames
    }
}

impl Iterator for ScenarioStream<'_> {
    type Item = ScenarioFrame;

    fn next(&mut self) -> Option<ScenarioFrame> {
        if self.next >= self.script.frames {
            return None;
        }
        let frame = self.next;
        let n = self.dataset.frames.len();
        let prev = self.cursor;
        let mut cur = (prev + 1) % n;
        // The control the robot *believes*: the nominal one-frame step,
        // captured before any teleport moves the world.
        let control = self.dataset.frames[prev]
            .pose
            .delta_to(self.dataset.frames[cur].pose);
        let mut fault_active = false;
        for ev in &self.script.events {
            if ev.active_at(frame) {
                fault_active = true;
                if let FaultKind::Teleport { skip } = ev.kind {
                    cur = (cur + skip) % n;
                }
            }
        }
        let truth = self.dataset.frames[cur].pose;
        let mut depth = self.dataset.frames[cur].depth.clone();
        if fault_active {
            let mut rng = self.script.frame_rng(frame);
            for ev in &self.script.events {
                if ev.active_at(frame) {
                    ev.kind.apply(&mut depth, &mut rng);
                }
            }
        }
        self.cursor = cur;
        self.next += 1;
        Some(ScenarioFrame {
            frame,
            control,
            depth,
            truth,
            fault_active,
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.script.frames - self.next;
        (left, Some(left))
    }
}

/// A graded scenario run: the pipeline's frame reports next to the
/// injection ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// The script's name.
    pub name: String,
    /// The script's schedule (for window-relative grading).
    pub events: Vec<FaultEvent>,
    /// Per-frame pipeline reports, in stream order.
    pub reports: Vec<FrameReport>,
    /// Per-frame injection flags — what was *actually* scripted, to
    /// grade the detector's `fault_active` claims against.
    pub injected: Vec<bool>,
}

impl ScenarioOutcome {
    /// Frames in the run.
    pub fn frames(&self) -> usize {
        self.reports.len()
    }

    /// Per-event detection delay: frames from the event's onset to the
    /// first report at-or-after it with the detector's alarm latched
    /// (`None` = never detected). The search runs to the end of the
    /// stream, so for multi-event scripts whose alarm latches across
    /// windows, grade one event per script or space events past
    /// recovery.
    pub fn detection_delays(&self) -> Vec<Option<usize>> {
        self.events
            .iter()
            .map(|ev| {
                self.reports[ev.at_frame.min(self.reports.len())..]
                    .iter()
                    .position(|r| r.fault_active)
            })
            .collect()
    }

    /// Frames where the detector claimed a fault *outside* every
    /// scripted window and its `grace` trailing frames (the latched
    /// alarm legitimately persists into recovery) — the false-alarm
    /// count. On a clean script every alarmed frame counts.
    pub fn false_alarm_frames(&self, grace: usize) -> usize {
        self.reports
            .iter()
            .enumerate()
            .filter(|(i, r)| {
                r.fault_active
                    && !self
                        .events
                        .iter()
                        .any(|ev| *i >= ev.at_frame && *i < ev.at_frame + ev.duration + grace)
            })
            .count()
    }

    /// Mean translation error over the final `tail` frames (clamped to
    /// the run length) — the post-recovery re-convergence metric.
    pub fn mean_tail_error(&self, tail: usize) -> f64 {
        let n = self.reports.len();
        if n == 0 {
            return 0.0;
        }
        let tail = &self.reports[n - tail.clamp(1, n)..];
        tail.iter().map(|r| r.summary.error).sum::<f64>() / tail.len() as f64
    }

    /// Mean NEES over the final `tail` frames — the post-recovery
    /// *consistency* metric (near the position dimension 3 when the
    /// filter's covariance explains its error again).
    pub fn mean_tail_nees(&self, tail: usize) -> f64 {
        let n = self.reports.len();
        if n == 0 {
            return 0.0;
        }
        let tail = &self.reports[n - tail.clamp(1, n)..];
        tail.iter().map(|r| r.nees).sum::<f64>() / tail.len() as f64
    }

    /// Frames the safe-mode response governed.
    pub fn safe_mode_frames(&self) -> usize {
        self.reports.iter().filter(|r| r.safe_mode).count()
    }
}

/// Streams `script` over `dataset` through `pipeline`, one
/// [`LocalizationPipeline::step`] per scenario frame, and collects the
/// graded outcome. The pipeline is consumed statefully — pass a fresh
/// build (or [`LocalizationPipeline::fork_session`]) per scenario.
///
/// # Errors
///
/// Propagates script validation and pipeline step errors.
pub fn run_scenario(
    pipeline: &mut LocalizationPipeline,
    dataset: &LocalizationDataset,
    script: &ScenarioScript,
) -> Result<ScenarioOutcome> {
    let stream = ScenarioStream::new(dataset, script)?;
    let mut reports = Vec::with_capacity(script.frames);
    let mut injected = Vec::with_capacity(script.frames);
    for f in stream {
        let report = pipeline.step(&f.control, &f.depth, f.truth)?;
        injected.push(f.fault_active);
        reports.push(report);
    }
    Ok(ScenarioOutcome {
        name: script.name.clone(),
        events: script.events.clone(),
        reports,
        injected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use navicim_core::localization::LocalizerConfig;
    use navicim_core::pipeline::{
        FaultDetectorConfig, GateConfig, SafeModeConfig, ANALOG_SLOT, DIGITAL_SLOT,
    };
    use navicim_core::registry::{CIM_HMGM, DIGITAL_GMM};
    use navicim_scene::dataset::LocalizationConfig;

    fn dataset() -> LocalizationDataset {
        LocalizationDataset::generate(
            &LocalizationConfig {
                image_width: 24,
                image_height: 18,
                map_points: 600,
                frames: 8,
                ..LocalizationConfig::default()
            },
            7,
        )
        .unwrap()
    }

    #[test]
    fn clean_stream_replays_the_dataset() {
        let ds = dataset();
        let script = ScenarioScript::clean("clean", ds.frames.len() - 1);
        let frames: Vec<ScenarioFrame> = ScenarioStream::new(&ds, &script).unwrap().collect();
        assert_eq!(frames.len(), 7);
        let controls = ds.control_deltas();
        for (t, f) in frames.iter().enumerate() {
            assert_eq!(f.frame, t);
            assert_eq!(f.control, controls[t]);
            assert_eq!(f.truth, ds.frames[t + 1].pose);
            assert_eq!(f.depth, ds.frames[t + 1].depth);
            assert!(!f.fault_active);
        }
    }

    #[test]
    fn looping_stream_runs_past_the_dataset_with_consistent_controls() {
        let ds = dataset();
        let n = ds.frames.len();
        let script = ScenarioScript::clean("drift", 3 * n);
        let frames: Vec<ScenarioFrame> = ScenarioStream::new(&ds, &script).unwrap().collect();
        assert_eq!(frames.len(), 3 * n);
        // Across the wrap the control is the actual pose delta of the
        // served pair — odometry stays consistent with truth.
        let mut cursor = 0usize;
        for f in &frames {
            let next = (cursor + 1) % n;
            assert_eq!(
                f.control,
                ds.frames[cursor].pose.delta_to(ds.frames[next].pose)
            );
            assert_eq!(f.truth, ds.frames[next].pose);
            cursor = next;
        }
    }

    #[test]
    fn teleport_feeds_prejump_control_with_postjump_world() {
        let ds = dataset();
        let n = ds.frames.len();
        let script = ScenarioScript::clean("kidnap", 6).with_event(FaultEvent {
            at_frame: 3,
            duration: 1,
            kind: FaultKind::Teleport { skip: 2 },
        });
        let frames: Vec<ScenarioFrame> = ScenarioStream::new(&ds, &script).unwrap().collect();
        // Frames 0-2 track normally: cursor 1, 2, 3.
        assert_eq!(frames[2].truth, ds.frames[3].pose);
        // Frame 3: the robot believes it stepped 3→4, but the world
        // jumped to dataset frame (4 + 2) % n = 6.
        assert_eq!(
            frames[3].control,
            ds.frames[3].pose.delta_to(ds.frames[4].pose)
        );
        assert_eq!(frames[3].truth, ds.frames[6 % n].pose);
        assert_eq!(frames[3].depth, ds.frames[6 % n].depth);
        assert!(frames[3].fault_active);
        // Frame 4 resumes honest stepping from the *new* location.
        assert_eq!(
            frames[4].control,
            ds.frames[6 % n].pose.delta_to(ds.frames[7 % n].pose)
        );
        assert!(!frames[4].fault_active);
    }

    #[test]
    fn depth_faults_mutate_only_the_scripted_window() {
        let ds = dataset();
        let script = ScenarioScript::clean("burst", 7).with_event(FaultEvent {
            at_frame: 2,
            duration: 2,
            kind: FaultKind::Dropout { fraction: 1.0 },
        });
        let frames: Vec<ScenarioFrame> = ScenarioStream::new(&ds, &script).unwrap().collect();
        for f in &frames {
            let scripted = (2..4).contains(&f.frame);
            assert_eq!(f.fault_active, scripted);
            if scripted {
                assert_eq!(f.depth.valid_count(), 0);
            } else {
                assert_eq!(f.depth, ds.frames[f.frame + 1].depth);
            }
        }
        // The dataset itself was never touched.
        assert!(ds.frames[3].depth.valid_count() > 0);
    }

    #[test]
    fn streams_replay_bit_identically() {
        let ds = dataset();
        let script = ScenarioScript::clean("replay", 10)
            .with_event(FaultEvent {
                at_frame: 2,
                duration: 3,
                kind: FaultKind::Dropout { fraction: 0.4 },
            })
            .with_event(FaultEvent {
                at_frame: 6,
                duration: 2,
                kind: FaultKind::Spoof {
                    depth_m: 1.2,
                    fraction: 0.3,
                },
            });
        let a: Vec<ScenarioFrame> = ScenarioStream::new(&ds, &script).unwrap().collect();
        let b: Vec<ScenarioFrame> = ScenarioStream::new(&ds, &script).unwrap().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn run_scenario_detects_a_blackout_and_recovers() {
        let ds = dataset();
        let config = LocalizerConfig {
            num_particles: 150,
            pixel_stride: 7,
            components: 8,
            gate: GateConfig::always(vec![DIGITAL_GMM, CIM_HMGM], ANALOG_SLOT),
            init_spread: 0.1,
            init_yaw_spread: 0.05,
            seed: 3,
            ..LocalizerConfig::default()
        };
        let mut pipeline = LocalizationPipeline::build(&ds, config)
            .unwrap()
            .with_safe_mode(SafeModeConfig {
                detector: FaultDetectorConfig {
                    drift: 2.0,
                    threshold: 10.0,
                    warmup: 2,
                },
                hold_frames: 2,
                recovery_innovation: -1.0,
            })
            .unwrap();
        let script = ScenarioScript::clean("blackout", 24).with_event(FaultEvent {
            at_frame: 10,
            duration: 3,
            kind: FaultKind::Dropout { fraction: 1.0 },
        });
        let outcome = run_scenario(&mut pipeline, &ds, &script).unwrap();
        assert_eq!(outcome.frames(), 24);
        assert_eq!(outcome.injected.iter().filter(|&&f| f).count(), 3);
        // Detected within 2 frames of onset (the BLIND_LL reading lands
        // on the bus one frame after the first blind frame).
        let delay = outcome.detection_delays()[0].expect("blackout detected");
        assert!(delay <= 2, "delay {delay}");
        // No alarms before the fault or long after recovery.
        assert_eq!(outcome.false_alarm_frames(8), 0);
        // Safe mode engaged and forced the digital override.
        assert!(outcome.safe_mode_frames() >= 2);
        for r in outcome.reports.iter().filter(|r| r.safe_mode) {
            assert_eq!(r.slot, DIGITAL_SLOT);
        }
        // And exited: the run's tail is back on the pinned analog slot.
        let last = outcome.reports.last().unwrap();
        assert!(!last.safe_mode && last.slot == ANALOG_SLOT);
        assert!(outcome.mean_tail_error(4).is_finite());
        assert!(outcome.mean_tail_nees(4).is_finite());
    }
}
