//! Fault-injection scenario scripting for the localization pipeline —
//! breaking the tracker on purpose.
//!
//! Every headline number upstream of this crate is measured on one
//! clean synthetic flight regime. The paper's pitch, however, is
//! autonomy under *unknown* conditions, so this crate provides the
//! machinery to manufacture known-bad ones and grade the pipeline's
//! response:
//!
//! - [`fault::ScenarioScript`] — a declarative schedule of timed
//!   [`fault::FaultEvent`]s (kidnapped-robot teleports, sensor dropout
//!   and stuck-value faults, adversarial offset/spoof injection,
//!   low-texture stretches, 1k+-frame drift runs) over a
//!   [`navicim_scene::dataset::LocalizationDataset`],
//! - [`stream::ScenarioStream`] — the script applied as a wrapper over
//!   the dataset's frame stream: a looping cursor turns a short orbit
//!   into an arbitrarily long run, controls are always derived from the
//!   *actually served* pose pairs, and depth faults mutate cloned
//!   [`navicim_scene::camera::DepthImage`]s deterministically (per-frame
//!   counter-seeded draws, so a scenario replays bit-identically),
//! - [`stream::run_scenario`] / [`stream::ScenarioOutcome`] — drive a
//!   [`navicim_core::pipeline::LocalizationPipeline`] through a script
//!   and grade the result: detection delay per fault window, false
//!   alarms outside them, post-recovery error re-convergence, NEES
//!   consistency.
//!
//! The detection/response side under test lives in `navicim-core`
//! (`LocalizationPipeline::with_safe_mode`) and `navicim-filter`
//! (`FaultDetector` over the per-slot `InnovationTracker`); this crate
//! deliberately only *injects* and *grades*.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fault;
pub mod stream;

pub use fault::{FaultEvent, FaultKind, ScenarioScript};
pub use stream::{run_scenario, ScenarioFrame, ScenarioOutcome, ScenarioStream};

use std::error::Error;
use std::fmt;

/// Error type for scenario construction and runs.
#[derive(Debug)]
pub enum ScenarioError {
    /// An argument was outside its valid domain.
    InvalidArgument(String),
    /// The pipeline under test failed mid-scenario.
    Core(navicim_core::CoreError),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            Self::Core(e) => write!(f, "pipeline error: {e}"),
        }
    }
}

impl Error for ScenarioError {}

impl From<navicim_core::CoreError> for ScenarioError {
    fn from(e: navicim_core::CoreError) -> Self {
        Self::Core(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, ScenarioError>;
