//! The batched likelihood backend layer.
//!
//! Every navicim map/likelihood backend — the digital GMM, the analog
//! HMGM CIM engine and the quantized MC-Dropout regressor — is throughput
//! bound on likelihood evaluation: a particle-filter frame weighs hundreds
//! to thousands of hypotheses, each scoring dozens of projected depth
//! pixels. The seed evaluated all of that one scalar call at a time; this
//! crate defines the shared batch-evaluation contract the whole stack is
//! refactored onto:
//!
//! - [`PointBatch`] — a flat, dimension-tagged buffer of query points that
//!   can be filled once per frame and reused across frames without
//!   reallocating,
//! - [`LikelihoodBackend`] — the batch-first trait (`log_likelihood_into`)
//!   with a scalar adapter, implemented by `navicim_gmm::gaussian::Gmm`,
//!   `navicim_gmm::hmg::HmgmModel` and
//!   `navicim_analog::engine::HmgmCimEngine`,
//! - [`par`] — chunked execution helpers that spread a batch across
//!   threads behind the `parallel` feature.
//!
//! Pure backends use [`par::for_each_chunk`] directly. Backends whose
//! evaluation consumes hidden state (the CIM engine's noise) stay
//! *bit-identical* across batch sizes, chunk sizes and thread counts by
//! making that state splittable: noise comes from a counter-based stream
//! indexed by the absolute evaluation number, and per-evaluation
//! statistics flow through [`par::zip_chunks`]'s second buffer so the
//! caller can merge them in index order afterwards.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod par;

/// A flat batch of fixed-dimension query points.
///
/// Points are stored contiguously (`len × dim` doubles) so backends can
/// stream them without pointer chasing, and the buffer can be cleared and
/// refilled every frame without freeing its allocation.
///
/// ```
/// use navicim_backend::PointBatch;
/// let mut batch = PointBatch::new(3);
/// batch.push(&[0.0, 1.0, 2.0]);
/// batch.push(&[3.0, 4.0, 5.0]);
/// assert_eq!(batch.len(), 2);
/// assert_eq!(batch.point(1), &[3.0, 4.0, 5.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PointBatch {
    data: Vec<f64>,
    dim: usize,
}

impl PointBatch {
    /// Creates an empty batch of `dim`-dimensional points.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "point batch requires a positive dimension");
        Self {
            data: Vec::new(),
            dim,
        }
    }

    /// Creates an empty batch with room for `capacity` points.
    pub fn with_capacity(dim: usize, capacity: usize) -> Self {
        let mut batch = Self::new(dim);
        batch.data.reserve(capacity * dim);
        batch
    }

    /// Builds a `dim`-dimensional batch from row vectors. An empty row
    /// list yields a valid empty batch of the requested dimension (the
    /// dimension is explicit precisely so "no queries this frame" cannot
    /// silently produce a batch of the wrong shape).
    ///
    /// # Panics
    ///
    /// Panics if any row's length differs from `dim`.
    pub fn from_rows(dim: usize, rows: &[Vec<f64>]) -> Self {
        let mut batch = Self::with_capacity(dim, rows.len());
        for row in rows {
            batch.push(row);
        }
        batch
    }

    /// Point dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of points in the batch.
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Number of points the batch can hold without reallocating —
    /// the steady-state-allocation probe for buffer-reuse tests.
    pub fn capacity(&self) -> usize {
        self.data.capacity() / self.dim
    }

    /// Whether the batch holds no points.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends one point.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn push(&mut self, point: &[f64]) {
        assert_eq!(point.len(), self.dim, "point dimension mismatch");
        self.data.extend_from_slice(point);
    }

    /// Appends one 3-D point from coordinates (the localization hot path).
    ///
    /// # Panics
    ///
    /// Panics unless the batch is 3-dimensional.
    pub fn push_xyz(&mut self, x: f64, y: f64, z: f64) {
        assert_eq!(self.dim, 3, "push_xyz requires a 3-d batch");
        self.data.extend_from_slice(&[x, y, z]);
    }

    /// Appends every point of `other`, preserving order — the bulk path
    /// for coalescing many staged batches into one (a single flat copy
    /// instead of a per-point push).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn extend_from_batch(&mut self, other: &PointBatch) {
        assert_eq!(
            other.dim, self.dim,
            "cannot extend a {}-d batch from a {}-d batch",
            self.dim, other.dim
        );
        // Exact reservation: the coalescing caller knows the incoming
        // span size here, so growing by amortized doubling would only
        // overshoot the steady-state capacity the round scratch settles
        // into.
        self.data.reserve_exact(other.data.len());
        self.data.extend_from_slice(&other.data);
    }

    /// The `i`-th point.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn point(&self, i: usize) -> &[f64] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Iterates over the points as slices.
    pub fn iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.dim)
    }

    /// The underlying flat storage (`len × dim` doubles).
    pub fn as_flat(&self) -> &[f64] {
        &self.data
    }

    /// Removes all points, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Splits the batch into `(points-in-range,)` sub-slices for chunked
    /// evaluation: returns the flat storage for points `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn flat_range(&self, start: usize, end: usize) -> &[f64] {
        &self.data[start * self.dim..end * self.dim]
    }
}

/// A likelihood backend with a first-class batch API.
///
/// The batch method is the primitive; `log_likelihood_point` is a
/// convenience adapter evaluating a batch of one, so implementing the
/// batch path once gives both. Implementations must guarantee that
/// evaluating a batch is *bit-identical* to evaluating its points one by
/// one in order (including any internal RNG consumption), which is what
/// lets callers pick batch sizes freely for performance.
pub trait LikelihoodBackend {
    /// Query dimensionality accepted by the backend.
    fn dim(&self) -> usize;

    /// Evaluates the log-likelihood of every point in `batch`, writing
    /// results to `out` (one value per point, in order).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != batch.len()` or on dimension mismatch.
    fn log_likelihood_into(&mut self, batch: &PointBatch, out: &mut [f64]);

    /// Batch evaluation into a fresh vector.
    fn log_likelihood_batch(&mut self, batch: &PointBatch) -> Vec<f64> {
        let mut out = vec![0.0; batch.len()];
        self.log_likelihood_into(batch, &mut out);
        out
    }

    /// Scalar adapter: evaluates a single point through the batch path.
    fn log_likelihood_point(&mut self, point: &[f64]) -> f64 {
        let mut batch = PointBatch::new(point.len());
        batch.push(point);
        let mut out = [0.0];
        self.log_likelihood_into(&batch, &mut out);
        out[0]
    }
}

impl<B: LikelihoodBackend + ?Sized> LikelihoodBackend for &mut B {
    fn dim(&self) -> usize {
        (**self).dim()
    }

    fn log_likelihood_into(&mut self, batch: &PointBatch, out: &mut [f64]) {
        (**self).log_likelihood_into(batch, out)
    }
}

/// Asserts the `(batch, out)` pair is consistent for a backend of
/// dimension `dim`; shared by backend implementations.
pub fn check_batch_shape(dim: usize, batch: &PointBatch, out: &[f64]) {
    assert_eq!(batch.dim(), dim, "batch dimension mismatch");
    assert_eq!(
        out.len(),
        batch.len(),
        "output buffer must hold one value per point"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    struct SumBackend;

    impl LikelihoodBackend for SumBackend {
        fn dim(&self) -> usize {
            2
        }

        fn log_likelihood_into(&mut self, batch: &PointBatch, out: &mut [f64]) {
            check_batch_shape(self.dim(), batch, out);
            for (o, p) in out.iter_mut().zip(batch.iter()) {
                *o = p.iter().sum();
            }
        }
    }

    #[test]
    fn batch_storage_roundtrip() {
        let mut b = PointBatch::with_capacity(2, 4);
        assert!(b.is_empty());
        b.push(&[1.0, 2.0]);
        b.push(&[3.0, 4.0]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.point(0), &[1.0, 2.0]);
        assert_eq!(b.as_flat(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(b.flat_range(1, 2), &[3.0, 4.0]);
        let rows: Vec<&[f64]> = b.iter().collect();
        assert_eq!(rows.len(), 2);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.dim(), 2);
    }

    #[test]
    fn from_rows_builds() {
        let b = PointBatch::from_rows(3, &[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(b.dim(), 3);
        assert_eq!(b.len(), 2);
        // Empty rows keep the requested dimension.
        let empty = PointBatch::from_rows(3, &[]);
        assert_eq!(empty.dim(), 3);
        assert!(empty.is_empty());
    }

    #[test]
    fn extend_from_batch_concatenates() {
        let a = PointBatch::from_rows(2, &[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = PointBatch::from_rows(2, &[vec![5.0, 6.0]]);
        let mut merged = PointBatch::new(2);
        merged.extend_from_batch(&a);
        merged.extend_from_batch(&b);
        assert_eq!(merged.len(), 3);
        assert_eq!(merged.as_flat(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "cannot extend")]
    fn extend_from_batch_rejects_dim_mismatch() {
        let mut a = PointBatch::new(2);
        a.extend_from_batch(&PointBatch::new(3));
    }

    #[test]
    fn xyz_push() {
        let mut b = PointBatch::new(3);
        b.push_xyz(1.0, 2.0, 3.0);
        assert_eq!(b.point(0), &[1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dim_mismatch_panics() {
        let mut b = PointBatch::new(2);
        b.push(&[1.0]);
    }

    #[test]
    fn scalar_adapter_matches_batch() {
        let mut backend = SumBackend;
        let mut batch = PointBatch::new(2);
        batch.push(&[1.0, 2.0]);
        batch.push(&[5.0, -1.0]);
        let out = backend.log_likelihood_batch(&batch);
        assert_eq!(out, vec![3.0, 4.0]);
        assert_eq!(backend.log_likelihood_point(&[1.0, 2.0]), 3.0);
        // Through a mutable reference, too.
        let by_ref: &mut SumBackend = &mut backend;
        assert_eq!(by_ref.dim(), 2);
        assert_eq!(by_ref.log_likelihood_point(&[0.0, 0.5]), 0.5);
    }
}
