//! Chunked batch execution, optionally spread across threads.
//!
//! A batch is split into contiguous chunks and each chunk is processed by
//! a closure that receives the chunk's *start index* in the full buffer.
//! The splitting is *result-transparent*: every chunk writes a disjoint
//! region of the output buffer with the same per-element math, so chunked,
//! threaded and sequential execution produce bit-identical results.
//!
//! Two kinds of backend use this module:
//!
//! - **Pure backends** (digital GMM, math HMGM) compute each element from
//!   the query alone — [`for_each_chunk`] spreads them across threads with
//!   no further ceremony.
//! - **Stateful backends** (the analog CIM engine, whose evaluations
//!   consume noise) are parallelized by making the hidden state
//!   *splittable*: the engine's noise comes from a counter-based stream
//!   (`navicim_device::noise::NoiseStream`), so a chunk starting at index
//!   `s` perturbs evaluation `s + k` with `stream.at(base + s + k)` —
//!   the same value a sequential pass would draw. Per-evaluation
//!   statistics are written into a second buffer via [`zip_chunks`] and
//!   merged by the caller *in index order* afterwards, which keeps even
//!   floating-point accumulators (current sums) bit-identical across
//!   chunkings and thread counts.
//!
//! With the `parallel` feature disabled (the default), every entry point
//! degrades to a plain sequential loop over the same chunks. With it
//! enabled, chunks are dispatched over [`std::thread::scope`] workers when
//! the host has more than one core and the batch is large enough to
//! amortize thread startup. [`ChunkPolicy`] pins the chunk length and
//! worker count explicitly — benches use it to sweep thread counts and
//! the property tests use it to prove chunking invariance.

/// Minimum number of points per chunk before threading is worthwhile.
///
/// Retuned for the vectorized kernels (see `BENCH_kernels.json`): the
/// 4-wide SIMD + LUT campaign cut per-point cost by roughly 2–5×
/// (a 1024-point CIM-engine batch now evaluates in the tens of
/// microseconds), so the old threshold of 256 points no longer amortizes
/// the ~10 µs cost of spawning scoped worker threads. 1024 points keeps
/// the slowest kernel's chunk comfortably above that break-even while
/// still splitting the particle-filter-scale batches threading exists
/// for. Benchmarks can override per policy via
/// [`ChunkPolicy::with_min_chunk`].
///
/// To re-tune on a new host, run `cargo run --release -p navicim-bench
/// --features parallel --bin bench_kernels -- --threads`: its sweep pins
/// `(chunk_len, workers)` per batch size with the gate bypassed, and the
/// batch size where multi-worker rows first beat the single-worker row
/// is the new break-even. The fleet coalescer
/// (`navicim-serve`) relies on this same gate — its merged cross-agent
/// batches exist precisely to cross this threshold.
pub const MIN_CHUNK: usize = 1024;

/// Number of worker threads the host can usefully run.
pub fn worker_count() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// How a batch is split into chunks and distributed over workers.
///
/// The default ([`ChunkPolicy::auto`]) picks one contiguous chunk per
/// worker and gates threading on [`MIN_CHUNK`], which is the right call
/// for production batches. Explicit values bypass the gate — they exist
/// so tests can prove bit-identical results for any `(chunk_len,
/// workers)` pair and benches can sweep thread counts on a fixed host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChunkPolicy {
    /// Chunk length (`None` = one contiguous chunk per worker).
    pub chunk_len: Option<usize>,
    /// Worker-thread cap (`None` = all available, gated by the threading
    /// threshold; ignored without the `parallel` feature).
    pub workers: Option<usize>,
    /// Threading threshold override (`None` = [`MIN_CHUNK`]): the minimum
    /// points per chunk before auto worker resolution adds threads.
    /// Benches sweep this to locate the threading break-even.
    pub min_chunk: Option<usize>,
}

impl ChunkPolicy {
    /// The production policy: one chunk per worker, threading only when
    /// the batch amortizes it.
    pub fn auto() -> Self {
        Self::default()
    }

    /// An explicit policy with a fixed chunk length and worker cap.
    pub fn exact(chunk_len: usize, workers: usize) -> Self {
        Self {
            chunk_len: Some(chunk_len),
            workers: Some(workers),
            min_chunk: None,
        }
    }

    /// Returns a copy with the auto-threading threshold overridden (the
    /// minimum points per chunk before worker threads are added; values
    /// below 1 are floored to 1). Only consulted when `workers` is
    /// `None` — explicit worker counts already bypass the gate.
    pub fn with_min_chunk(mut self, min_chunk: usize) -> Self {
        self.min_chunk = Some(min_chunk.max(1));
        self
    }

    /// Resolves the policy for a batch of `n` elements into a concrete
    /// `(chunk_len, workers)` pair (both at least 1). Without the
    /// `parallel` feature workers is always 1 — execution is sequential,
    /// so only the chunk length matters — and no thread-count syscall is
    /// made.
    fn resolve(self, n: usize) -> (usize, usize) {
        #[cfg(not(feature = "parallel"))]
        let workers = 1usize;
        #[cfg(feature = "parallel")]
        let workers = match self.workers {
            Some(w) => w.max(1),
            None => {
                let min_chunk = self.min_chunk.unwrap_or(MIN_CHUNK).max(1);
                worker_count().min(n.div_ceil(min_chunk)).max(1)
            }
        };
        let chunk_len = self.chunk_len.unwrap_or(n.div_ceil(workers)).max(1);
        (chunk_len, workers)
    }

    /// Whether this policy would execute a batch of `n` elements as one
    /// contiguous chunk on the calling thread. Stateful backends use this
    /// to route the common case through their reused scratch buffers
    /// instead of per-chunk ones.
    pub fn is_single_chunk(self, n: usize) -> bool {
        self.resolve(n).0 >= n
    }
}

/// Runs `work(start, out_chunk)` over contiguous chunks of `out` under the
/// auto policy, where `start` is the index of the chunk's first element in
/// the full buffer.
///
/// The closure must compute elements purely from the chunk bounds (no
/// hidden sequential state) — that is what makes threaded and sequential
/// execution bit-identical.
pub fn for_each_chunk<F>(out: &mut [f64], work: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    for_each_chunk_policy(ChunkPolicy::auto(), out, work);
}

/// [`for_each_chunk`] with an explicit [`ChunkPolicy`].
pub fn for_each_chunk_policy<F>(policy: ChunkPolicy, out: &mut [f64], work: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    let n = out.len();
    let (chunk_len, workers) = policy.resolve(n);
    // Single-chunk fast path: no chunk-descriptor collection, no thread
    // dispatch — the whole cost of the call is the work itself (this is
    // the only path non-`parallel` builds with the auto policy take).
    if chunk_len >= n {
        work(0, out);
        return;
    }
    let chunks = out
        .chunks_mut(chunk_len)
        .enumerate()
        .map(|(i, c)| (i * chunk_len, c));
    run_chunks(workers, chunks.collect(), &|(start, chunk)| {
        work(start, chunk)
    });
}

/// Runs `work(start, a_chunk, b_chunk)` over matching contiguous chunks of
/// two equal-length buffers under the auto policy.
///
/// This is the stateful-backend entry point: `a` receives the results and
/// `b` receives per-element merge data (e.g. the pre-noise array current
/// of each evaluation), which the caller folds into its counters in index
/// order after the call — giving chunking-independent statistics on top
/// of chunking-independent results.
///
/// # Panics
///
/// Panics if `a.len() != b.len()`.
pub fn zip_chunks<F>(a: &mut [f64], b: &mut [f64], work: F)
where
    F: Fn(usize, &mut [f64], &mut [f64]) + Sync,
{
    zip_chunks_policy(ChunkPolicy::auto(), a, b, work);
}

/// [`zip_chunks`] with an explicit [`ChunkPolicy`].
///
/// # Panics
///
/// Panics if `a.len() != b.len()`.
pub fn zip_chunks_policy<F>(policy: ChunkPolicy, a: &mut [f64], b: &mut [f64], work: F)
where
    F: Fn(usize, &mut [f64], &mut [f64]) + Sync,
{
    assert_eq!(a.len(), b.len(), "zipped buffers must have equal length");
    let n = a.len();
    let (chunk_len, workers) = policy.resolve(n);
    if chunk_len >= n {
        work(0, a, b);
        return;
    }
    let chunks = a
        .chunks_mut(chunk_len)
        .zip(b.chunks_mut(chunk_len))
        .enumerate()
        .map(|(i, (ca, cb))| (i * chunk_len, ca, cb));
    run_chunks(workers, chunks.collect(), &|(start, ca, cb)| {
        work(start, ca, cb)
    });
}

/// Dispatches a list of prepared chunks over up to `workers` scoped
/// threads (contiguous runs of chunks per worker, so low-index chunks
/// stay on the first worker).
#[cfg(feature = "parallel")]
fn run_chunks<C: Send>(workers: usize, mut chunks: Vec<C>, work: &(dyn Fn(C) + Sync)) {
    if workers <= 1 || chunks.len() <= 1 {
        for c in chunks {
            work(c);
        }
        return;
    }
    let per_worker = chunks.len().div_ceil(workers.min(chunks.len()));
    std::thread::scope(|scope| {
        while !chunks.is_empty() {
            let take = per_worker.min(chunks.len());
            let group: Vec<C> = chunks.drain(..take).collect();
            scope.spawn(move || {
                for c in group {
                    work(c);
                }
            });
        }
    });
}

/// Sequential dispatch used when the `parallel` feature is disabled: the
/// same chunks, in index order, on the calling thread.
#[cfg(not(feature = "parallel"))]
fn run_chunks<C>(_workers: usize, chunks: Vec<C>, work: &(dyn Fn(C) + Sync)) {
    for c in chunks {
        work(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_element_exactly_once() {
        for n in [0usize, 1, 7, MIN_CHUNK, 4 * MIN_CHUNK + 3] {
            let mut out = vec![0.0; n];
            for_each_chunk(&mut out, |start, chunk| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v += (start + i) as f64;
                }
            });
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, i as f64, "element {i} of {n}");
            }
        }
    }

    #[test]
    fn explicit_policies_match_auto() {
        let n = 3 * MIN_CHUNK + 11;
        let fill = |policy: ChunkPolicy| {
            let mut out = vec![0.0; n];
            for_each_chunk_policy(policy, &mut out, |start, chunk| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = ((start + i) as f64).sin();
                }
            });
            out
        };
        let auto = fill(ChunkPolicy::auto());
        for chunk_len in [1usize, 7, 64, n] {
            for workers in [1usize, 2, 4] {
                assert_eq!(
                    fill(ChunkPolicy::exact(chunk_len, workers)),
                    auto,
                    "chunk_len {chunk_len}, workers {workers}"
                );
            }
        }
    }

    #[test]
    fn zip_chunks_fills_both_buffers() {
        for n in [0usize, 1, 13, MIN_CHUNK + 5] {
            for policy in [ChunkPolicy::auto(), ChunkPolicy::exact(3, 4)] {
                let mut a = vec![0.0; n];
                let mut b = vec![0.0; n];
                zip_chunks_policy(policy, &mut a, &mut b, |start, ca, cb| {
                    for (i, (va, vb)) in ca.iter_mut().zip(cb.iter_mut()).enumerate() {
                        *va = (start + i) as f64;
                        *vb = -((start + i) as f64);
                    }
                });
                for i in 0..n {
                    assert_eq!(a[i], i as f64, "{policy:?}");
                    assert_eq!(b[i], -(i as f64), "{policy:?}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn zip_chunks_rejects_length_mismatch() {
        let mut a = vec![0.0; 3];
        let mut b = vec![0.0; 4];
        zip_chunks(&mut a, &mut b, |_, _, _| {});
    }

    #[test]
    fn worker_count_positive() {
        assert!(worker_count() >= 1);
    }

    #[test]
    fn policy_resolution_is_sane() {
        // Explicit chunk lengths are honored (floored at 1); auto
        // derives a chunk per worker. Worker counts only bite with the
        // `parallel` feature — without it execution is sequential.
        assert_eq!(ChunkPolicy::exact(7, 2).resolve(100).0, 7);
        #[cfg(feature = "parallel")]
        assert_eq!(ChunkPolicy::exact(7, 2).resolve(100).1, 2);
        assert_eq!(ChunkPolicy::exact(0, 0).resolve(100), (1, 1));
        let (len, workers) = ChunkPolicy::auto().resolve(10);
        assert_eq!(workers, 1, "small batches stay sequential");
        assert_eq!(len, 10);
        assert!(ChunkPolicy::auto().is_single_chunk(10));
        assert!(!ChunkPolicy::exact(3, 1).is_single_chunk(10));
    }

    #[test]
    fn min_chunk_override_moves_threading_gate() {
        // Lowering the threshold lets auto resolution add workers for
        // batches the default gate keeps sequential (observable only
        // with the `parallel` feature on a multi-core host); the floor
        // keeps a zero override from dividing by zero.
        let policy = ChunkPolicy::auto().with_min_chunk(0);
        assert_eq!(policy.min_chunk, Some(1));
        let low = ChunkPolicy::auto().with_min_chunk(4);
        #[cfg(feature = "parallel")]
        assert_eq!(
            low.resolve(64).1,
            worker_count().min(16),
            "64 points / min_chunk 4 caps workers at 16"
        );
        #[cfg(not(feature = "parallel"))]
        assert_eq!(low.resolve(64).1, 1);
        // Results stay identical whatever the gate says.
        let mut a = vec![0.0; 64];
        for_each_chunk_policy(low, &mut a, |start, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = (start + i) as f64;
            }
        });
        let mut b = vec![0.0; 64];
        for_each_chunk_policy(ChunkPolicy::auto(), &mut b, |start, chunk| {
            for (i, v) in chunk.iter_mut().enumerate() {
                *v = (start + i) as f64;
            }
        });
        assert_eq!(a, b);
    }
}
