//! Chunked batch execution, optionally spread across threads.
//!
//! Pure (stateless) backends evaluate each point independently, so a batch
//! can be split into contiguous chunks and processed on worker threads.
//! The splitting is *result-transparent*: every chunk writes a disjoint
//! region of the output buffer with the same per-point math, so chunked,
//! threaded and sequential execution produce bit-identical results.
//!
//! With the `parallel` feature disabled (the default), [`for_each_chunk`]
//! degrades to a plain sequential loop with zero overhead. With it
//! enabled, chunks are dispatched over [`std::thread::scope`] workers when
//! the host has more than one core and the batch is large enough to
//! amortize thread startup.

/// Minimum number of points per chunk before threading is worthwhile.
pub const MIN_CHUNK: usize = 256;

/// Number of worker threads the host can usefully run.
pub fn worker_count() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs `work(start, out_chunk)` over contiguous chunks of `out`, where
/// `start` is the index of the chunk's first element in the full buffer.
///
/// The closure must compute elements purely from the chunk bounds (no
/// hidden sequential state) — that is what makes threaded and sequential
/// execution bit-identical.
#[cfg(feature = "parallel")]
pub fn for_each_chunk<F>(out: &mut [f64], work: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    let n = out.len();
    let workers = worker_count().min(n.div_ceil(MIN_CHUNK)).max(1);
    if workers == 1 {
        work(0, out);
        return;
    }
    let chunk_len = n.div_ceil(workers);
    std::thread::scope(|scope| {
        for (i, chunk) in out.chunks_mut(chunk_len).enumerate() {
            let work = &work;
            scope.spawn(move || work(i * chunk_len, chunk));
        }
    });
}

/// Sequential fallback used when the `parallel` feature is disabled.
#[cfg(not(feature = "parallel"))]
pub fn for_each_chunk<F>(out: &mut [f64], work: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    work(0, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_element_exactly_once() {
        for n in [0usize, 1, 7, MIN_CHUNK, 4 * MIN_CHUNK + 3] {
            let mut out = vec![0.0; n];
            for_each_chunk(&mut out, |start, chunk| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v += (start + i) as f64;
                }
            });
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, i as f64, "element {i} of {n}");
            }
        }
    }

    #[test]
    fn worker_count_positive() {
        assert!(worker_count() >= 1);
    }
}
