//! First-order optimizers operating on an [`crate::mlp::Mlp`]'s
//! parameter/gradient pairs.

use crate::mlp::Mlp;
use crate::{NnError, Result};

/// An optimizer applying one update from accumulated gradients.
pub trait Optimizer {
    /// Applies one update step; gradients are consumed (not cleared — call
    /// [`Mlp::zero_grad`] afterwards).
    fn step(&mut self, net: &mut Mlp);
}

/// Stochastic gradient descent with optional momentum.
#[derive(Debug, Clone, PartialEq)]
pub struct Sgd {
    lr: f64,
    momentum: f64,
    velocity: Vec<f64>,
}

impl Sgd {
    /// Creates plain SGD with the given learning rate.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidArgument`] for non-positive rates.
    pub fn new(lr: f64) -> Result<Self> {
        Self::with_momentum(lr, 0.0)
    }

    /// Creates SGD with momentum.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidArgument`] for non-positive rates or
    /// momentum outside `[0, 1)`.
    pub fn with_momentum(lr: f64, momentum: f64) -> Result<Self> {
        if !(lr > 0.0) {
            return Err(NnError::InvalidArgument(format!(
                "learning rate must be positive, got {lr}"
            )));
        }
        if !(0.0..1.0).contains(&momentum) {
            return Err(NnError::InvalidArgument(format!(
                "momentum must be in [0, 1), got {momentum}"
            )));
        }
        Ok(Self {
            lr,
            momentum,
            velocity: Vec::new(),
        })
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, net: &mut Mlp) {
        if self.velocity.is_empty() {
            self.velocity = vec![0.0; net.param_count()];
        }
        let mut idx = 0;
        let lr = self.lr;
        let mu = self.momentum;
        let vel = &mut self.velocity;
        net.visit_params(|p, g| {
            let v = &mut vel[idx];
            *v = mu * *v - lr * *g;
            *p += *v;
            idx += 1;
        });
    }
}

/// Adam optimizer (Kingma & Ba 2015).
#[derive(Debug, Clone, PartialEq)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl Adam {
    /// Creates Adam with standard betas (0.9, 0.999).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidArgument`] for a non-positive rate.
    pub fn new(lr: f64) -> Result<Self> {
        if !(lr > 0.0) {
            return Err(NnError::InvalidArgument(format!(
                "learning rate must be positive, got {lr}"
            )));
        }
        Ok(Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        })
    }
}

impl Optimizer for Adam {
    fn step(&mut self, net: &mut Mlp) {
        let n = net.param_count();
        if self.m.is_empty() {
            self.m = vec![0.0; n];
            self.v = vec![0.0; n];
        }
        self.t += 1;
        let bias1 = 1.0 - self.beta1.powi(self.t as i32);
        let bias2 = 1.0 - self.beta2.powi(self.t as i32);
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        let (m, v) = (&mut self.m, &mut self.v);
        let mut idx = 0;
        net.visit_params(|p, g| {
            m[idx] = b1 * m[idx] + (1.0 - b1) * *g;
            v[idx] = b2 * v[idx] + (1.0 - b2) * *g * *g;
            let m_hat = m[idx] / bias1;
            let v_hat = v[idx] / bias2;
            *p -= lr * m_hat / (v_hat.sqrt() + eps);
            idx += 1;
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{Loss, Mse};
    use crate::mlp::Mlp;
    use crate::Mode;
    use navicim_math::rng::Pcg32;

    fn quadratic_step<O: Optimizer>(opt: &mut O, steps: usize) -> f64 {
        // Minimize ||W x + b − t||² for a single dense layer.
        let mut rng = Pcg32::seed_from_u64(1);
        let mut net = Mlp::builder(2).dense(1).build(&mut rng).unwrap();
        let x = [1.0, -1.0];
        let target = [3.0];
        let mse = Mse;
        let mut last = f64::INFINITY;
        for _ in 0..steps {
            let y = net.forward(&x, Mode::Train, &mut rng);
            last = mse.value(&y, &target);
            let g = mse.gradient(&y, &target);
            net.zero_grad();
            net.forward(&x, Mode::Train, &mut rng);
            net.backward(&g);
            opt.step(&mut net);
        }
        last
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut opt = Sgd::new(0.1).unwrap();
        let loss = quadratic_step(&mut opt, 200);
        assert!(loss < 1e-6, "loss {loss}");
    }

    #[test]
    fn momentum_accelerates() {
        // With a conservatively small rate, plain SGD crawls while momentum
        // makes visible progress in the same step budget.
        let mut plain = Sgd::new(0.005).unwrap();
        let mut heavy = Sgd::with_momentum(0.005, 0.9).unwrap();
        let loss_plain = quadratic_step(&mut plain, 40);
        let loss_heavy = quadratic_step(&mut heavy, 40);
        assert!(loss_heavy < loss_plain, "{loss_heavy} vs {loss_plain}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut opt = Adam::new(0.05).unwrap();
        let loss = quadratic_step(&mut opt, 300);
        assert!(loss < 1e-5, "loss {loss}");
    }

    #[test]
    fn validation() {
        assert!(Sgd::new(0.0).is_err());
        assert!(Sgd::with_momentum(0.1, 1.0).is_err());
        assert!(Adam::new(-0.1).is_err());
    }
}
