//! Epoch-based training loop.

use crate::loss::Loss;
use crate::mlp::Mlp;
use crate::optim::Optimizer;
use crate::{Mode, NnError, Result};
use navicim_math::rng::{Rng64, SampleExt};

/// One supervised example.
#[derive(Debug, Clone, PartialEq)]
pub struct Example {
    /// Input features.
    pub input: Vec<f64>,
    /// Regression target.
    pub target: Vec<f64>,
}

/// Training configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the data.
    pub epochs: usize,
    /// Gradients are averaged over mini-batches of this size.
    pub batch_size: usize,
    /// Shuffle examples between epochs.
    pub shuffle: bool,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 50,
            batch_size: 16,
            shuffle: true,
        }
    }
}

/// Trains `net` on `examples`, returning the mean training loss per epoch.
///
/// # Errors
///
/// Returns [`NnError::InvalidArgument`] for empty data, zero batch size or
/// shape mismatches against the network.
pub fn train<L, O, R>(
    net: &mut Mlp,
    examples: &[Example],
    loss: &L,
    optimizer: &mut O,
    config: &TrainConfig,
    rng: &mut R,
) -> Result<Vec<f64>>
where
    L: Loss,
    O: Optimizer,
    R: Rng64,
{
    if examples.is_empty() {
        return Err(NnError::InvalidArgument("no training examples".into()));
    }
    if config.batch_size == 0 {
        return Err(NnError::InvalidArgument(
            "batch size must be positive".into(),
        ));
    }
    for (i, ex) in examples.iter().enumerate() {
        if ex.input.len() != net.in_dim() {
            return Err(NnError::ShapeMismatch {
                expected: net.in_dim(),
                found: ex.input.len(),
            });
        }
        if ex.target.len() != net.out_dim() {
            return Err(NnError::InvalidArgument(format!(
                "example {i} target has length {}, expected {}",
                ex.target.len(),
                net.out_dim()
            )));
        }
    }

    let mut order: Vec<usize> = (0..examples.len()).collect();
    let mut history = Vec::with_capacity(config.epochs);
    for _epoch in 0..config.epochs {
        if config.shuffle {
            rng.shuffle(&mut order);
        }
        let mut epoch_loss = 0.0;
        for batch in order.chunks(config.batch_size) {
            net.zero_grad();
            let scale = 1.0 / batch.len() as f64;
            for &i in batch {
                let ex = &examples[i];
                let y = net.forward(&ex.input, Mode::Train, rng);
                epoch_loss += loss.value(&y, &ex.target);
                let g: Vec<f64> = loss
                    .gradient(&y, &ex.target)
                    .into_iter()
                    .map(|v| v * scale)
                    .collect();
                net.backward(&g);
            }
            optimizer.step(net);
        }
        history.push(epoch_loss / examples.len() as f64);
    }
    Ok(history)
}

/// Mean loss of `net` (deterministic mode) over a validation set.
///
/// # Panics
///
/// Panics on shape mismatches (validate with [`train`] first).
pub fn evaluate<L: Loss, R: Rng64>(
    net: &mut Mlp,
    examples: &[Example],
    loss: &L,
    rng: &mut R,
) -> f64 {
    if examples.is_empty() {
        return 0.0;
    }
    let total: f64 = examples
        .iter()
        .map(|ex| {
            let y = net.forward(&ex.input, Mode::Deterministic, rng);
            loss.value(&y, &ex.target)
        })
        .sum();
    total / examples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::Mse;
    use crate::mlp::Mlp;
    use crate::optim::Adam;
    use navicim_math::rng::Pcg32;

    fn xor_examples() -> Vec<Example> {
        vec![
            Example {
                input: vec![0.0, 0.0],
                target: vec![0.0],
            },
            Example {
                input: vec![0.0, 1.0],
                target: vec![1.0],
            },
            Example {
                input: vec![1.0, 0.0],
                target: vec![1.0],
            },
            Example {
                input: vec![1.0, 1.0],
                target: vec![0.0],
            },
        ]
    }

    #[test]
    fn learns_xor() {
        let mut rng = Pcg32::seed_from_u64(1);
        let mut net = Mlp::builder(2)
            .dense(8)
            .tanh()
            .dense(1)
            .build(&mut rng)
            .unwrap();
        let mut opt = Adam::new(0.02).unwrap();
        let history = train(
            &mut net,
            &xor_examples(),
            &Mse,
            &mut opt,
            &TrainConfig {
                epochs: 600,
                batch_size: 4,
                shuffle: true,
            },
            &mut rng,
        )
        .unwrap();
        assert!(
            history.last().unwrap() < &0.01,
            "final loss {:?}",
            history.last()
        );
        // Predictions round to the right class.
        for ex in xor_examples() {
            let y = net.forward(&ex.input, Mode::Deterministic, &mut rng);
            assert!(
                (y[0] - ex.target[0]).abs() < 0.2,
                "{:?} -> {:?}",
                ex.input,
                y
            );
        }
    }

    #[test]
    fn loss_decreases_on_linear_regression() {
        let mut rng = Pcg32::seed_from_u64(2);
        use navicim_math::rng::SampleExt;
        let examples: Vec<Example> = (0..200)
            .map(|_| {
                let x = rng.sample_uniform(-1.0, 1.0);
                let y = rng.sample_uniform(-1.0, 1.0);
                Example {
                    input: vec![x, y],
                    target: vec![2.0 * x - 0.5 * y + 0.25],
                }
            })
            .collect();
        let mut net = Mlp::builder(2).dense(1).build(&mut rng).unwrap();
        let mut opt = Adam::new(0.05).unwrap();
        let history = train(
            &mut net,
            &examples,
            &Mse,
            &mut opt,
            &TrainConfig {
                epochs: 60,
                ..TrainConfig::default()
            },
            &mut rng,
        )
        .unwrap();
        assert!(history[0] > history[history.len() - 1] * 10.0);
        assert!(evaluate(&mut net, &examples, &Mse, &mut rng) < 1e-3);
    }

    #[test]
    fn shape_validation() {
        let mut rng = Pcg32::seed_from_u64(3);
        let mut net = Mlp::builder(2).dense(1).build(&mut rng).unwrap();
        let mut opt = Adam::new(0.01).unwrap();
        let bad_input = vec![Example {
            input: vec![1.0],
            target: vec![0.0],
        }];
        assert!(matches!(
            train(
                &mut net,
                &bad_input,
                &Mse,
                &mut opt,
                &TrainConfig::default(),
                &mut rng
            ),
            Err(NnError::ShapeMismatch { .. })
        ));
        let bad_target = vec![Example {
            input: vec![1.0, 2.0],
            target: vec![0.0, 1.0],
        }];
        assert!(train(
            &mut net,
            &bad_target,
            &Mse,
            &mut opt,
            &TrainConfig::default(),
            &mut rng
        )
        .is_err());
        assert!(train(
            &mut net,
            &[],
            &Mse,
            &mut opt,
            &TrainConfig::default(),
            &mut rng
        )
        .is_err());
    }

    #[test]
    fn empty_validation_set_scores_zero() {
        let mut rng = Pcg32::seed_from_u64(4);
        let mut net = Mlp::builder(2).dense(1).build(&mut rng).unwrap();
        assert_eq!(evaluate(&mut net, &[], &Mse, &mut rng), 0.0);
    }
}
