//! Bernoulli dropout with explicit-mask support.
//!
//! Besides ordinary sampled dropout (training and MC-Dropout inference),
//! the layer accepts *externally supplied* masks through
//! [`Dropout::forward_with_mask`]. This is the hook the SRAM CIM path uses:
//! in the paper, dropout bits come from the SRAM-embedded RNG and are
//! AND-gated onto the column/row lines, and the compute-reuse scheduler
//! must see (and reorder) the very same masks.

use crate::{NnError, Result};
use navicim_math::rng::{Rng64, SampleExt};

/// Inverted-dropout layer: kept units are scaled by `1/(1-p)` so the
/// expected activation is unchanged.
#[derive(Debug, Clone, PartialEq)]
pub struct Dropout {
    p: f64,
    mask_cache: Vec<bool>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidArgument`] unless `0 <= p < 1`.
    pub fn new(p: f64) -> Result<Self> {
        if !(0.0..1.0).contains(&p) {
            return Err(NnError::InvalidArgument(format!(
                "dropout probability must be in [0, 1), got {p}"
            )));
        }
        Ok(Self {
            p,
            mask_cache: Vec::new(),
        })
    }

    /// Drop probability.
    pub fn probability(&self) -> f64 {
        self.p
    }

    /// Samples a fresh mask of the given length (`true` = keep).
    pub fn sample_mask<R: Rng64 + ?Sized>(&self, len: usize, rng: &mut R) -> Vec<bool> {
        (0..len).map(|_| !rng.sample_bool(self.p)).collect()
    }

    /// Forward pass with a sampled mask (training / MC sample).
    pub fn forward<R: Rng64 + ?Sized>(&mut self, x: &[f64], rng: &mut R) -> Vec<f64> {
        let mask = self.sample_mask(x.len(), rng);
        self.forward_with_mask(x, &mask)
    }

    /// Forward pass with an externally supplied mask (`true` = keep).
    ///
    /// # Panics
    ///
    /// Panics on mask/input length mismatch.
    pub fn forward_with_mask(&mut self, x: &[f64], mask: &[bool]) -> Vec<f64> {
        assert_eq!(x.len(), mask.len(), "dropout mask length mismatch");
        self.mask_cache = mask.to_vec();
        let scale = 1.0 / (1.0 - self.p);
        x.iter()
            .zip(mask)
            .map(|(&v, &keep)| if keep { v * scale } else { 0.0 })
            .collect()
    }

    /// Identity forward (deterministic inference).
    pub fn forward_identity(&mut self, x: &[f64]) -> Vec<f64> {
        self.mask_cache = vec![true; x.len()];
        x.to_vec()
    }

    /// Allocation-free sampled forward pass into a reused buffer.
    ///
    /// Draws the mask element-by-element from `rng` in the same order as
    /// [`Dropout::sample_mask`], so the output (and the RNG stream) is
    /// bit-identical to [`Dropout::forward`]. Skips the backward-pass mask
    /// cache — inference only.
    pub fn forward_sampled_into<R: Rng64 + ?Sized>(
        &self,
        x: &[f64],
        rng: &mut R,
        y: &mut Vec<f64>,
    ) {
        let scale = 1.0 / (1.0 - self.p);
        y.clear();
        y.extend(x.iter().map(|&v| {
            let keep = !rng.sample_bool(self.p);
            if keep {
                v * scale
            } else {
                0.0
            }
        }));
    }

    /// Allocation-free identity forward pass (deterministic inference).
    pub fn forward_identity_into(&self, x: &[f64], y: &mut Vec<f64>) {
        y.clear();
        y.extend_from_slice(x);
    }

    /// Backward pass through the cached mask.
    ///
    /// # Panics
    ///
    /// Panics without a preceding forward pass or on dimension mismatch.
    pub fn backward(&mut self, grad_out: &[f64]) -> Vec<f64> {
        assert_eq!(
            grad_out.len(),
            self.mask_cache.len(),
            "dropout backward requires a preceding forward pass"
        );
        let scale = 1.0 / (1.0 - self.p);
        grad_out
            .iter()
            .zip(&self.mask_cache)
            .map(|(&g, &keep)| if keep { g * scale } else { 0.0 })
            .collect()
    }

    /// The mask used by the most recent forward pass.
    pub fn last_mask(&self) -> &[bool] {
        &self.mask_cache
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use navicim_math::rng::Pcg32;
    use navicim_math::stats;

    #[test]
    fn probability_validation() {
        assert!(Dropout::new(-0.1).is_err());
        assert!(Dropout::new(1.0).is_err());
        assert!(Dropout::new(0.0).is_ok());
        assert!(Dropout::new(0.5).is_ok());
    }

    #[test]
    fn mask_fraction_matches_probability() {
        let layer = Dropout::new(0.3).unwrap();
        let mut rng = Pcg32::seed_from_u64(1);
        let mask = layer.sample_mask(100_000, &mut rng);
        let kept = mask.iter().filter(|&&k| k).count() as f64 / mask.len() as f64;
        assert!((kept - 0.7).abs() < 0.01, "kept {kept}");
    }

    #[test]
    fn expectation_preserved_by_inverted_scaling() {
        let mut layer = Dropout::new(0.5).unwrap();
        let mut rng = Pcg32::seed_from_u64(2);
        let x = vec![1.0; 64];
        let mut means = Vec::new();
        for _ in 0..2000 {
            let y = layer.forward(&x, &mut rng);
            means.push(y.iter().sum::<f64>() / y.len() as f64);
        }
        assert!((stats::mean(&means) - 1.0).abs() < 0.01);
    }

    #[test]
    fn explicit_mask_respected() {
        let mut layer = Dropout::new(0.5).unwrap();
        let y = layer.forward_with_mask(&[1.0, 2.0, 3.0], &[true, false, true]);
        assert_eq!(y, vec![2.0, 0.0, 6.0]);
        assert_eq!(layer.last_mask(), &[true, false, true]);
    }

    #[test]
    fn backward_blocks_dropped_units() {
        let mut layer = Dropout::new(0.5).unwrap();
        layer.forward_with_mask(&[1.0, 1.0], &[false, true]);
        let g = layer.backward(&[5.0, 5.0]);
        assert_eq!(g, vec![0.0, 10.0]);
    }

    #[test]
    fn identity_mode_passes_through() {
        let mut layer = Dropout::new(0.5).unwrap();
        let x = [0.1, -0.2, 0.3];
        assert_eq!(layer.forward_identity(&x), x.to_vec());
        let g = layer.backward(&[1.0, 1.0, 1.0]);
        // Identity forward marks all units kept: gradient scaled by 1/(1-p).
        assert_eq!(g, vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn zero_probability_never_drops() {
        let mut layer = Dropout::new(0.0).unwrap();
        let mut rng = Pcg32::seed_from_u64(3);
        let x = vec![1.5; 32];
        let y = layer.forward(&x, &mut rng);
        assert_eq!(y, x);
    }
}
