//! Regression losses.

/// A differentiable scalar loss over prediction/target vectors.
pub trait Loss {
    /// Loss value.
    ///
    /// # Panics
    ///
    /// Implementations panic on length mismatch.
    fn value(&self, prediction: &[f64], target: &[f64]) -> f64;

    /// Gradient of the loss with respect to the prediction.
    fn gradient(&self, prediction: &[f64], target: &[f64]) -> Vec<f64>;
}

/// Mean squared error: `L = (1/n) Σ (y − t)²`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Mse;

impl Loss for Mse {
    fn value(&self, prediction: &[f64], target: &[f64]) -> f64 {
        assert_eq!(prediction.len(), target.len(), "loss length mismatch");
        let n = prediction.len().max(1) as f64;
        prediction
            .iter()
            .zip(target)
            .map(|(y, t)| (y - t) * (y - t))
            .sum::<f64>()
            / n
    }

    fn gradient(&self, prediction: &[f64], target: &[f64]) -> Vec<f64> {
        assert_eq!(prediction.len(), target.len(), "loss length mismatch");
        let n = prediction.len().max(1) as f64;
        prediction
            .iter()
            .zip(target)
            .map(|(y, t)| 2.0 * (y - t) / n)
            .collect()
    }
}

/// Huber loss with threshold `delta`: quadratic near zero, linear beyond.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Huber {
    /// Transition point between quadratic and linear regimes.
    pub delta: f64,
}

impl Default for Huber {
    fn default() -> Self {
        Self { delta: 1.0 }
    }
}

impl Loss for Huber {
    fn value(&self, prediction: &[f64], target: &[f64]) -> f64 {
        assert_eq!(prediction.len(), target.len(), "loss length mismatch");
        let n = prediction.len().max(1) as f64;
        prediction
            .iter()
            .zip(target)
            .map(|(y, t)| {
                let e = (y - t).abs();
                if e <= self.delta {
                    0.5 * e * e
                } else {
                    self.delta * (e - 0.5 * self.delta)
                }
            })
            .sum::<f64>()
            / n
    }

    fn gradient(&self, prediction: &[f64], target: &[f64]) -> Vec<f64> {
        assert_eq!(prediction.len(), target.len(), "loss length mismatch");
        let n = prediction.len().max(1) as f64;
        prediction
            .iter()
            .zip(target)
            .map(|(y, t)| {
                let e = y - t;
                if e.abs() <= self.delta {
                    e / n
                } else {
                    self.delta * e.signum() / n
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use navicim_math::approx_eq;

    #[test]
    fn mse_values() {
        let mse = Mse;
        assert_eq!(mse.value(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!(approx_eq(mse.value(&[2.0, 0.0], &[0.0, 0.0]), 2.0, 1e-12));
        assert_eq!(mse.gradient(&[2.0, 0.0], &[0.0, 0.0]), vec![2.0, 0.0]);
    }

    #[test]
    fn huber_transitions_at_delta() {
        let h = Huber { delta: 1.0 };
        // Quadratic region.
        assert!(approx_eq(h.value(&[0.5], &[0.0]), 0.125, 1e-12));
        // Linear region.
        assert!(approx_eq(h.value(&[3.0], &[0.0]), 2.5, 1e-12));
        // Gradient saturates at delta.
        assert_eq!(h.gradient(&[10.0], &[0.0]), vec![1.0]);
        assert_eq!(h.gradient(&[-10.0], &[0.0]), vec![-1.0]);
    }

    #[test]
    fn gradients_match_finite_difference() {
        let eps = 1e-7;
        let target = [0.3, -0.6, 1.0];
        let pred = [0.5, -1.8, 0.9];
        let losses: Vec<Box<dyn Loss>> = vec![Box::new(Mse), Box::new(Huber { delta: 0.5 })];
        for loss in &losses {
            let g = loss.gradient(&pred, &target);
            for i in 0..pred.len() {
                let mut p = pred;
                p[i] += eps;
                let up = loss.value(&p, &target);
                p[i] -= 2.0 * eps;
                let dn = loss.value(&p, &target);
                let num = (up - dn) / (2.0 * eps);
                assert!(
                    (num - g[i]).abs() < 1e-6,
                    "component {i}: {num} vs {}",
                    g[i]
                );
            }
        }
    }

    #[test]
    fn loss_is_object_safe() {
        let l: Box<dyn Loss> = Box::new(Mse);
        assert_eq!(l.value(&[1.0], &[1.0]), 0.0);
    }
}
