//! MC-Dropout inference: predictive mean and variance from repeated
//! stochastic forward passes (Gal & Ghahramani 2016; paper Section III-C).

use crate::mlp::{ForwardScratch, Mlp};
use crate::{Mode, NnError, Result};
use navicim_backend::PointBatch;
use navicim_math::rng::Rng64;

/// The outcome of an MC-Dropout prediction.
///
/// Construct an empty one with [`Default`] and reuse it across
/// [`crate::mc`]-style `predict_into` calls: the mean/variance/sample
/// buffers are rewritten in place, so a frame loop allocates nothing
/// after warmup — even when the per-call iteration count *varies*
/// (compute-adaptive inference): [`McPrediction::resize_samples`]
/// retires surplus sample buffers to an internal pool on shrink and
/// revives them on growth, so heap traffic happens only past the
/// high-water mark.
#[derive(Debug, Clone, Default)]
pub struct McPrediction {
    /// Predictive mean per output.
    pub mean: Vec<f64>,
    /// Predictive variance per output (the paper's uncertainty signal).
    pub variance: Vec<f64>,
    /// All raw samples (`iterations × out_dim`).
    pub samples: Vec<Vec<f64>>,
    /// Pre-quantization logit samples (`iterations × out_dim`), filled
    /// only by quantized producers that capture the output layer's
    /// full-precision shadow (e.g. `BayesianVo`); empty on
    /// full-precision paths.
    pub logit_samples: Vec<Vec<f64>>,
    /// Predictive mean of the pre-quantization logits (empty when
    /// [`Self::logit_samples`] is empty).
    pub logit_mean: Vec<f64>,
    /// Predictive variance of the pre-quantization logits — the
    /// uncertainty signal that survives narrow output quantization,
    /// where [`Self::variance`] can collapse because different dropout
    /// masks round onto the same output codes.
    pub logit_variance: Vec<f64>,
    /// Retired per-iteration buffers kept warm for reuse when the
    /// iteration count shrinks. Not part of the prediction's value (the
    /// manual [`PartialEq`] ignores it). Shared between sample and
    /// logit-sample slots (same shape).
    spare: Vec<Vec<f64>>,
}

/// Equality is over the prediction's value — moments and the active
/// sample sets (quantized and logit) — not over pooled spare capacity,
/// so a pooled prediction compares equal to a freshly allocated one.
impl PartialEq for McPrediction {
    fn eq(&self, other: &Self) -> bool {
        self.mean == other.mean
            && self.variance == other.variance
            && self.samples == other.samples
            && self.logit_samples == other.logit_samples
            && self.logit_mean == other.logit_mean
            && self.logit_variance == other.logit_variance
    }
}

impl McPrediction {
    /// Total predictive uncertainty: the summed per-output variance.
    pub fn total_variance(&self) -> f64 {
        self.variance.iter().sum()
    }

    /// Total pre-quantization predictive uncertainty: the summed
    /// per-output logit variance, or `None` when the producing path did
    /// not capture logit samples. Consumers that need a live
    /// uncertainty signal from a quantized network should prefer
    /// `total_logit_variance().unwrap_or(total_variance())`.
    pub fn total_logit_variance(&self) -> Option<f64> {
        if self.logit_variance.is_empty() {
            None
        } else {
            Some(self.logit_variance.iter().sum())
        }
    }

    /// Per-output standard deviations.
    pub fn std_devs(&self) -> Vec<f64> {
        self.variance.iter().map(|v| v.sqrt()).collect()
    }

    /// Sets the number of active sample slots to `iterations`.
    ///
    /// Shrinking moves surplus buffers into the spare pool (no
    /// deallocation); growing pulls buffers back out (allocating only
    /// when the pool is exhausted, i.e. past the lifetime high-water
    /// mark). Slot contents are stale afterwards — callers overwrite
    /// every active slot before reading.
    pub fn resize_samples(&mut self, iterations: usize) {
        while self.samples.len() > iterations {
            self.spare
                .push(self.samples.pop().expect("len checked above"));
        }
        while self.samples.len() < iterations {
            self.samples.push(self.spare.pop().unwrap_or_default());
        }
    }

    /// Sets the number of active logit-sample slots, with the same
    /// pooling semantics as [`Self::resize_samples`] (the spare pool is
    /// shared). Producers that do not capture logits call this with 0
    /// so no stale shadow moments survive from a previous prediction.
    pub fn resize_logit_samples(&mut self, iterations: usize) {
        while self.logit_samples.len() > iterations {
            self.spare
                .push(self.logit_samples.pop().expect("len checked above"));
        }
        while self.logit_samples.len() < iterations {
            self.logit_samples
                .push(self.spare.pop().unwrap_or_default());
        }
    }
}

/// MC-Dropout inference engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McDropout {
    iterations: usize,
}

impl McDropout {
    /// Creates an engine drawing the given number of stochastic samples
    /// (the paper uses 30).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidArgument`] for fewer than 2 iterations.
    pub fn new(iterations: usize) -> Result<Self> {
        if iterations < 2 {
            return Err(NnError::InvalidArgument(
                "mc-dropout requires at least 2 iterations".into(),
            ));
        }
        Ok(Self { iterations })
    }

    /// Number of samples per prediction.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Runs the Monte-Carlo prediction for one input.
    ///
    /// Scalar adapter over [`McDropout::predict_batch`] (a batch of one),
    /// so scalar and batched prediction consume the identical dropout-RNG
    /// stream and arithmetic.
    pub fn predict<R: Rng64>(&self, net: &mut Mlp, input: &[f64], rng: &mut R) -> McPrediction {
        let mut batch = PointBatch::new(input.len());
        batch.push(input);
        self.predict_batch(net, &batch, rng)
            .pop()
            .expect("batch of one yields one prediction")
    }

    /// Runs Monte-Carlo predictions for a whole batch of inputs.
    ///
    /// All `iterations × batch` stochastic passes share one set of
    /// ping-pong activation buffers ([`Mlp::forward_into`]), so the heap
    /// traffic of the scalar path (one vector per layer per pass) is paid
    /// once per batch. Inputs are processed in order and, per input,
    /// iterations in order — the dropout masks drawn from `rng` are
    /// bit-identical to sequential [`McDropout::predict`] calls.
    ///
    /// # Panics
    ///
    /// Panics if the batch dimension differs from the network input
    /// dimension.
    pub fn predict_batch<R: Rng64>(
        &self,
        net: &Mlp,
        inputs: &PointBatch,
        rng: &mut R,
    ) -> Vec<McPrediction> {
        assert_eq!(
            inputs.dim(),
            net.in_dim(),
            "batch dimension must match network input dimension"
        );
        let mut scratch = ForwardScratch::default();
        let mut sample = Vec::with_capacity(net.out_dim());
        let mut predictions = Vec::with_capacity(inputs.len());
        for input in inputs.iter() {
            let mut samples = Vec::with_capacity(self.iterations);
            for _ in 0..self.iterations {
                net.forward_into(input, Mode::McSample, rng, &mut scratch, &mut sample);
                samples.push(sample.clone());
            }
            predictions.push(mc_moments(samples));
        }
        predictions
    }

    /// Pooled scalar prediction at the engine's fixed depth: the scratch
    /// and the [`McPrediction`] buffers are caller-owned and reused, so a
    /// steady-state frame loop allocates nothing. Bit-identical (values
    /// and RNG stream) to [`McDropout::predict`].
    pub fn predict_into<R: Rng64>(
        &self,
        net: &Mlp,
        input: &[f64],
        rng: &mut R,
        scratch: &mut ForwardScratch,
        pred: &mut McPrediction,
    ) {
        self.predict_n_into(net, input, self.iterations, rng, scratch, pred);
    }

    /// Variable-depth pooled prediction: `iterations` overrides the
    /// engine's fixed count for this call — the compute-adaptive knob
    /// (paper Section III) that lets a frame loop spend fewer stochastic
    /// passes when the previous frame's predictive variance was low.
    /// Sample buffers come from the prediction's pool
    /// ([`McPrediction::resize_samples`]), so varying the depth per call
    /// causes no steady-state reallocation.
    ///
    /// # Panics
    ///
    /// Panics for fewer than 2 iterations or an input dimension mismatch.
    pub fn predict_n_into<R: Rng64>(
        &self,
        net: &Mlp,
        input: &[f64],
        iterations: usize,
        rng: &mut R,
        scratch: &mut ForwardScratch,
        pred: &mut McPrediction,
    ) {
        assert!(iterations >= 2, "mc-dropout requires at least 2 iterations");
        assert_eq!(
            input.len(),
            net.in_dim(),
            "input dimension must match network input dimension"
        );
        pred.resize_samples(iterations);
        // Full-precision networks have no quantization to shadow.
        pred.resize_logit_samples(0);
        for sample in pred.samples.iter_mut() {
            net.forward_into(input, Mode::McSample, rng, scratch, sample);
        }
        mc_moments_in_place(pred);
    }
}

/// Predictive mean/variance from raw MC samples (shared by the scalar and
/// batched paths and by the VO pipeline).
pub fn mc_moments(samples: Vec<Vec<f64>>) -> McPrediction {
    let mut pred = McPrediction {
        samples,
        ..McPrediction::default()
    };
    mc_moments_in_place(&mut pred);
    pred
}

/// Recomputes [`McPrediction::mean`] and [`McPrediction::variance`] from
/// [`McPrediction::samples`], reusing the moment buffers — the pooled
/// counterpart of [`mc_moments`] (identical arithmetic, zero
/// allocations once the buffers have their capacity).
///
/// # Panics
///
/// Panics if `pred.samples` is empty.
pub fn mc_moments_in_place(pred: &mut McPrediction) {
    moments(&pred.samples, &mut pred.mean, &mut pred.variance);
    if pred.logit_samples.is_empty() {
        pred.logit_mean.clear();
        pred.logit_variance.clear();
    } else {
        assert_eq!(
            pred.logit_samples.len(),
            pred.samples.len(),
            "logit samples must pair 1:1 with quantized samples"
        );
        moments(
            &pred.logit_samples,
            &mut pred.logit_mean,
            &mut pred.logit_variance,
        );
    }
}

/// Unbiased per-output mean/variance over `samples`, into reused buffers.
fn moments(samples: &[Vec<f64>], mean: &mut Vec<f64>, variance: &mut Vec<f64>) {
    let out_dim = samples[0].len();
    let n = samples.len() as f64;
    mean.clear();
    mean.resize(out_dim, 0.0);
    for s in samples {
        for (m, &v) in mean.iter_mut().zip(s) {
            *m += v / n;
        }
    }
    variance.clear();
    variance.resize(out_dim, 0.0);
    for s in samples {
        for ((var, &v), &m) in variance.iter_mut().zip(s).zip(mean.iter()) {
            *var += (v - m) * (v - m) / (n - 1.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use navicim_math::rng::Pcg32;

    fn dropout_net(seed: u64) -> Mlp {
        let mut rng = Pcg32::seed_from_u64(seed);
        Mlp::builder(2)
            .dense(16)
            .relu()
            .dropout(0.5)
            .dense(8)
            .relu()
            .dropout(0.5)
            .dense(1)
            .build(&mut rng)
            .unwrap()
    }

    #[test]
    fn validation() {
        assert!(McDropout::new(1).is_err());
        assert!(McDropout::new(2).is_ok());
    }

    #[test]
    fn prediction_shapes() {
        let mut net = dropout_net(1);
        let mc = McDropout::new(20).unwrap();
        let mut rng = Pcg32::seed_from_u64(2);
        let pred = mc.predict(&mut net, &[0.5, -0.5], &mut rng);
        assert_eq!(pred.mean.len(), 1);
        assert_eq!(pred.variance.len(), 1);
        assert_eq!(pred.samples.len(), 20);
        assert!(pred.variance[0] >= 0.0);
        assert_eq!(pred.std_devs().len(), 1);
    }

    #[test]
    fn dropout_produces_nonzero_variance() {
        let mut net = dropout_net(3);
        let mc = McDropout::new(30).unwrap();
        let mut rng = Pcg32::seed_from_u64(4);
        let pred = mc.predict(&mut net, &[1.0, 1.0], &mut rng);
        assert!(pred.total_variance() > 0.0);
    }

    #[test]
    fn no_dropout_means_zero_variance() {
        let mut rng = Pcg32::seed_from_u64(5);
        let mut net = Mlp::builder(2)
            .dense(4)
            .tanh()
            .dense(1)
            .build(&mut rng)
            .unwrap();
        let mc = McDropout::new(10).unwrap();
        let pred = mc.predict(&mut net, &[0.3, 0.7], &mut rng);
        assert_eq!(pred.total_variance(), 0.0);
    }

    #[test]
    fn batch_matches_sequential_scalar_bit_for_bit() {
        let mut net = dropout_net(11);
        let mc = McDropout::new(12).unwrap();
        let inputs: Vec<Vec<f64>> = vec![
            vec![0.5, -0.5],
            vec![1.0, 1.0],
            vec![-0.3, 0.7],
            vec![0.0, 0.0],
        ];
        let mut rng_scalar = Pcg32::seed_from_u64(21);
        let scalar: Vec<McPrediction> = inputs
            .iter()
            .map(|x| mc.predict(&mut net, x, &mut rng_scalar))
            .collect();
        let mut rng_batch = Pcg32::seed_from_u64(21);
        let batch = navicim_backend::PointBatch::from_rows(2, &inputs);
        let batched = mc.predict_batch(&net, &batch, &mut rng_batch);
        assert_eq!(scalar, batched);
        // The RNG streams advanced identically, too.
        assert_eq!(rng_scalar, rng_batch);
    }

    #[test]
    fn in_place_moments_match_owned_and_reuse_buffers() {
        let samples = vec![vec![1.0, 2.0], vec![3.0, 6.0], vec![5.0, 4.0]];
        let owned = mc_moments(samples.clone());
        let mut pooled = McPrediction {
            // Stale content from a previous, wider frame must be
            // overwritten, not appended to.
            mean: vec![9.0; 5],
            variance: vec![9.0; 5],
            samples,
            ..McPrediction::default()
        };
        mc_moments_in_place(&mut pooled);
        assert_eq!(pooled, owned);
        assert_eq!(pooled.mean, vec![3.0, 4.0]);
    }

    #[test]
    fn pooled_predict_into_matches_owned() {
        let net = dropout_net(21);
        let mc = McDropout::new(9).unwrap();
        let mut rng_owned = Pcg32::seed_from_u64(31);
        let mut rng_pooled = Pcg32::seed_from_u64(31);
        let mut scratch = ForwardScratch::default();
        let mut pooled = McPrediction::default();
        for x in [[0.1, -0.2], [0.9, 0.4], [-1.0, 0.0]] {
            let mut net_owned = net.clone();
            let owned = mc.predict(&mut net_owned, &x, &mut rng_owned);
            mc.predict_into(&net, &x, &mut rng_pooled, &mut scratch, &mut pooled);
            assert_eq!(owned, pooled);
        }
        assert_eq!(rng_owned, rng_pooled);
    }

    #[test]
    fn variable_depth_reuses_pooled_buffers() {
        let net = dropout_net(22);
        let mc = McDropout::new(30).unwrap();
        let mut rng = Pcg32::seed_from_u64(5);
        let mut scratch = ForwardScratch::default();
        let mut pred = McPrediction::default();
        // Grow to 16, shrink to 4, grow back to 10: each call's result
        // must match a fresh prediction at that depth with the same RNG
        // stream position.
        for &iters in &[16usize, 4, 10] {
            let mut rng_fresh = rng;
            mc.predict_n_into(&net, &[0.5, -0.5], iters, &mut rng, &mut scratch, &mut pred);
            assert_eq!(pred.samples.len(), iters);
            let mut fresh = McPrediction::default();
            let mut fresh_scratch = ForwardScratch::default();
            mc.predict_n_into(
                &net,
                &[0.5, -0.5],
                iters,
                &mut rng_fresh,
                &mut fresh_scratch,
                &mut fresh,
            );
            assert_eq!(pred, fresh);
            assert_eq!(rng, rng_fresh);
        }
        // Shrinking retired buffers instead of freeing them: growing back
        // to the high-water mark needs no new allocation. Observable via
        // resize_samples round-tripping the same buffers.
        pred.resize_samples(2);
        pred.resize_samples(16);
        assert_eq!(pred.samples.len(), 16);
        assert!(pred.samples.iter().all(|s| s.capacity() > 0));
    }

    #[test]
    #[should_panic(expected = "at least 2 iterations")]
    fn variable_depth_rejects_single_iteration() {
        let net = dropout_net(23);
        let mc = McDropout::new(2).unwrap();
        let mut rng = Pcg32::seed_from_u64(1);
        let mut scratch = ForwardScratch::default();
        let mut pred = McPrediction::default();
        mc.predict_n_into(&net, &[0.0, 0.0], 1, &mut rng, &mut scratch, &mut pred);
    }

    #[test]
    fn spare_pool_does_not_affect_equality() {
        let samples = vec![vec![1.0], vec![2.0]];
        let a = mc_moments(samples.clone());
        let mut b = mc_moments(samples);
        // Retire and revive a slot: value unchanged, pool non-empty in
        // between.
        b.resize_samples(1);
        b.resize_samples(2);
        b.samples[0] = vec![1.0];
        b.samples[1] = vec![2.0];
        mc_moments_in_place(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn logit_moments_follow_logit_samples() {
        let mut pred = mc_moments(vec![vec![1.0], vec![1.0]]);
        assert_eq!(pred.total_logit_variance(), None);
        pred.resize_logit_samples(2);
        pred.logit_samples[0] = vec![1.0];
        pred.logit_samples[1] = vec![3.0];
        mc_moments_in_place(&mut pred);
        assert_eq!(pred.logit_mean, vec![2.0]);
        assert_eq!(pred.logit_variance, vec![2.0]);
        assert_eq!(pred.total_logit_variance(), Some(2.0));
        // Dropping the logit samples removes the shadow moments too —
        // no stale uncertainty survives a producer switch.
        pred.resize_logit_samples(0);
        mc_moments_in_place(&mut pred);
        assert_eq!(pred.total_logit_variance(), None);
        assert!(pred.logit_mean.is_empty());
    }

    #[test]
    fn mean_converges_with_more_samples() {
        // The spread of the MC mean estimate shrinks as iterations grow.
        let mut net = dropout_net(6);
        let mut rng = Pcg32::seed_from_u64(7);
        let estimate_spread = |iters: usize, net: &mut Mlp, rng: &mut Pcg32| {
            let mc = McDropout::new(iters).unwrap();
            let means: Vec<f64> = (0..20)
                .map(|_| mc.predict(net, &[0.5, 0.5], rng).mean[0])
                .collect();
            navicim_math::stats::std_dev(&means)
        };
        let spread_small = estimate_spread(5, &mut net, &mut rng);
        let spread_large = estimate_spread(100, &mut net, &mut rng);
        assert!(
            spread_large < spread_small * 0.6,
            "{spread_small} -> {spread_large}"
        );
    }
}
