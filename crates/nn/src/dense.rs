//! Fully connected layer with manual backpropagation.

use crate::{NnError, Result};
use navicim_math::rng::{Rng64, SampleExt};

/// A dense (fully connected) layer: `y = W x + b`.
///
/// Weights are stored row-major (`out_dim × in_dim`). The layer caches its
/// last input during training forward passes and accumulates gradients
/// until [`Dense::zero_grad`].
#[derive(Debug, Clone, PartialEq)]
pub struct Dense {
    in_dim: usize,
    out_dim: usize,
    w: Vec<f64>,
    b: Vec<f64>,
    grad_w: Vec<f64>,
    grad_b: Vec<f64>,
    input_cache: Vec<f64>,
}

impl Dense {
    /// Creates a layer with Kaiming-uniform initialized weights.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidArgument`] for zero dimensions.
    pub fn new<R: Rng64 + ?Sized>(in_dim: usize, out_dim: usize, rng: &mut R) -> Result<Self> {
        if in_dim == 0 || out_dim == 0 {
            return Err(NnError::InvalidArgument(
                "dense dimensions must be positive".into(),
            ));
        }
        let bound = (6.0 / in_dim as f64).sqrt();
        let w = (0..in_dim * out_dim)
            .map(|_| rng.sample_uniform(-bound, bound))
            .collect();
        Ok(Self {
            in_dim,
            out_dim,
            w,
            b: vec![0.0; out_dim],
            grad_w: vec![0.0; in_dim * out_dim],
            grad_b: vec![0.0; out_dim],
            input_cache: Vec::new(),
        })
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Row-major weights (`out_dim × in_dim`).
    pub fn weights(&self) -> &[f64] {
        &self.w
    }

    /// Biases.
    pub fn biases(&self) -> &[f64] {
        &self.b
    }

    /// Forward pass; caches the input when `train` is set.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the input dimension.
    pub fn forward(&mut self, x: &[f64], train: bool) -> Vec<f64> {
        if train {
            self.input_cache = x.to_vec();
        }
        let mut y = Vec::new();
        self.forward_into(x, &mut y);
        y
    }

    /// Allocation-free inference forward pass into a reused buffer.
    ///
    /// Bit-identical to [`Dense::forward`] (which delegates here); used by
    /// the batched inference path, which pays for output buffers once per
    /// batch instead of once per pass.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the input dimension.
    pub fn forward_into(&self, x: &[f64], y: &mut Vec<f64>) {
        assert_eq!(x.len(), self.in_dim, "dense input dimension mismatch");
        y.clear();
        y.extend_from_slice(&self.b);
        for (o, yo) in y.iter_mut().enumerate() {
            let row = &self.w[o * self.in_dim..(o + 1) * self.in_dim];
            *yo += row.iter().zip(x).map(|(w, xi)| w * xi).sum::<f64>();
        }
    }

    /// Backward pass: accumulates weight/bias gradients from the cached
    /// input and returns the gradient with respect to the input.
    ///
    /// # Panics
    ///
    /// Panics if no forward pass with `train = true` preceded this call or
    /// the gradient dimension is wrong.
    pub fn backward(&mut self, grad_out: &[f64]) -> Vec<f64> {
        assert_eq!(
            grad_out.len(),
            self.out_dim,
            "dense gradient dimension mismatch"
        );
        assert_eq!(
            self.input_cache.len(),
            self.in_dim,
            "backward requires a cached training forward pass"
        );
        let mut grad_in = vec![0.0; self.in_dim];
        for (o, &g) in grad_out.iter().enumerate() {
            self.grad_b[o] += g;
            let row_start = o * self.in_dim;
            for i in 0..self.in_dim {
                self.grad_w[row_start + i] += g * self.input_cache[i];
                grad_in[i] += g * self.w[row_start + i];
            }
        }
        grad_in
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.grad_w.iter_mut().for_each(|g| *g = 0.0);
        self.grad_b.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Visits `(parameter, gradient)` pairs in a stable order.
    pub fn visit_params<F: FnMut(&mut f64, &mut f64)>(&mut self, mut f: F) {
        for (w, g) in self.w.iter_mut().zip(self.grad_w.iter_mut()) {
            f(w, g);
        }
        for (b, g) in self.b.iter_mut().zip(self.grad_b.iter_mut()) {
            f(b, g);
        }
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use navicim_math::rng::Pcg32;

    #[test]
    fn forward_known_values() {
        let mut rng = Pcg32::seed_from_u64(1);
        let mut layer = Dense::new(2, 2, &mut rng).unwrap();
        // Overwrite weights deterministically: W = [[1, 2], [3, 4]], b = [0.5, -0.5].
        let mut idx = 0;
        layer.visit_params(|p, _| {
            *p = match idx {
                0 => 1.0,
                1 => 2.0,
                2 => 3.0,
                3 => 4.0,
                4 => 0.5,
                _ => -0.5,
            };
            idx += 1;
        });
        let y = layer.forward(&[1.0, 1.0], false);
        assert_eq!(y, vec![3.5, 6.5]);
    }

    #[test]
    fn gradient_check_finite_difference() {
        // Compare backprop gradients against central differences on a
        // scalar loss L = Σ y².
        let mut rng = Pcg32::seed_from_u64(2);
        let mut layer = Dense::new(3, 2, &mut rng).unwrap();
        let x = [0.3, -0.7, 1.1];

        // Analytic gradients.
        let y = layer.forward(&x, true);
        let grad_out: Vec<f64> = y.iter().map(|&v| 2.0 * v).collect();
        let grad_in = layer.backward(&grad_out);

        // Finite-difference wrt each parameter.
        let eps = 1e-6;
        let mut param_idx = 0;
        let mut analytic = Vec::new();
        layer.visit_params(|_, g| analytic.push(*g));
        let n_params = analytic.len();
        for k in 0..n_params {
            let probe = |delta: f64, layer: &mut Dense| -> f64 {
                let mut idx = 0;
                layer.visit_params(|p, _| {
                    if idx == k {
                        *p += delta;
                    }
                    idx += 1;
                });
                let y = layer.forward(&x, false);
                let loss: f64 = y.iter().map(|v| v * v).sum();
                let mut idx2 = 0;
                layer.visit_params(|p, _| {
                    if idx2 == k {
                        *p -= delta;
                    }
                    idx2 += 1;
                });
                loss
            };
            let num = (probe(eps, &mut layer) - probe(-eps, &mut layer)) / (2.0 * eps);
            assert!(
                (num - analytic[k]).abs() < 1e-6,
                "param {k}: numeric {num} analytic {}",
                analytic[k]
            );
            param_idx += 1;
        }
        assert_eq!(param_idx, n_params);

        // Finite-difference wrt the input.
        for i in 0..3 {
            let mut xp = x;
            xp[i] += eps;
            let yp: f64 = layer.forward(&xp, false).iter().map(|v| v * v).sum();
            let mut xm = x;
            xm[i] -= eps;
            let ym: f64 = layer.forward(&xm, false).iter().map(|v| v * v).sum();
            let num = (yp - ym) / (2.0 * eps);
            assert!(
                (num - grad_in[i]).abs() < 1e-6,
                "input {i}: numeric {num} analytic {}",
                grad_in[i]
            );
        }
    }

    #[test]
    fn gradients_accumulate_until_zeroed() {
        let mut rng = Pcg32::seed_from_u64(3);
        let mut layer = Dense::new(2, 1, &mut rng).unwrap();
        let x = [1.0, 2.0];
        layer.forward(&x, true);
        layer.backward(&[1.0]);
        let mut first = Vec::new();
        layer.visit_params(|_, g| first.push(*g));
        layer.forward(&x, true);
        layer.backward(&[1.0]);
        let mut second = Vec::new();
        layer.visit_params(|_, g| second.push(*g));
        for (a, b) in first.iter().zip(&second) {
            assert!((b - 2.0 * a).abs() < 1e-12);
        }
        layer.zero_grad();
        layer.visit_params(|_, g| assert_eq!(*g, 0.0));
    }

    #[test]
    fn zero_dims_rejected() {
        let mut rng = Pcg32::seed_from_u64(4);
        assert!(Dense::new(0, 2, &mut rng).is_err());
        assert!(Dense::new(2, 0, &mut rng).is_err());
    }

    #[test]
    fn param_count() {
        let mut rng = Pcg32::seed_from_u64(5);
        let layer = Dense::new(10, 4, &mut rng).unwrap();
        assert_eq!(layer.param_count(), 44);
    }
}
