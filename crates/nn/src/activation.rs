//! Elementwise activation functions.

/// An elementwise activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

impl Activation {
    /// Applies the activation to one value.
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
        }
    }

    /// Derivative expressed in terms of the *pre-activation* input.
    pub fn derivative(self, x: f64) -> f64 {
        match self {
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            Activation::Sigmoid => {
                let s = self.apply(x);
                s * (1.0 - s)
            }
        }
    }

    /// Applies the activation to a slice.
    pub fn apply_all(self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.apply(x)).collect()
    }

    /// Applies the activation elementwise in place (the allocation-free
    /// twin of [`Activation::apply_all`]).
    pub fn apply_in_place(self, xs: &mut [f64]) {
        for x in xs {
            *x = self.apply(*x);
        }
    }
}

/// An activation layer instance caching its pre-activation input.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivationLayer {
    kind: Activation,
    input_cache: Vec<f64>,
}

impl ActivationLayer {
    /// Creates an activation layer.
    pub fn new(kind: Activation) -> Self {
        Self {
            kind,
            input_cache: Vec::new(),
        }
    }

    /// The activation kind.
    pub fn kind(&self) -> Activation {
        self.kind
    }

    /// Forward pass; caches pre-activations when `train` is set.
    pub fn forward(&mut self, x: &[f64], train: bool) -> Vec<f64> {
        if train {
            self.input_cache = x.to_vec();
        }
        self.kind.apply_all(x)
    }

    /// Allocation-free inference forward pass into a reused buffer;
    /// bit-identical to [`ActivationLayer::forward`] without caching.
    pub fn forward_into(&self, x: &[f64], y: &mut Vec<f64>) {
        y.clear();
        y.extend(x.iter().map(|&v| self.kind.apply(v)));
    }

    /// Backward pass through the cached pre-activations.
    ///
    /// # Panics
    ///
    /// Panics without a preceding training forward pass or on dimension
    /// mismatch.
    pub fn backward(&mut self, grad_out: &[f64]) -> Vec<f64> {
        assert_eq!(
            grad_out.len(),
            self.input_cache.len(),
            "activation backward requires a cached training forward pass"
        );
        grad_out
            .iter()
            .zip(&self.input_cache)
            .map(|(&g, &x)| g * self.kind.derivative(x))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use navicim_math::approx_eq;

    #[test]
    fn relu_values_and_derivative() {
        assert_eq!(Activation::Relu.apply(-1.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.0), 2.0);
        assert_eq!(Activation::Relu.derivative(-1.0), 0.0);
        assert_eq!(Activation::Relu.derivative(1.0), 1.0);
    }

    #[test]
    fn tanh_and_sigmoid_reference_points() {
        assert!(approx_eq(Activation::Tanh.apply(0.0), 0.0, 1e-12));
        assert!(approx_eq(Activation::Sigmoid.apply(0.0), 0.5, 1e-12));
        assert!(approx_eq(Activation::Sigmoid.derivative(0.0), 0.25, 1e-12));
        assert!(approx_eq(Activation::Tanh.derivative(0.0), 1.0, 1e-12));
    }

    #[test]
    fn derivatives_match_finite_difference() {
        let eps = 1e-7;
        for act in [Activation::Relu, Activation::Tanh, Activation::Sigmoid] {
            for &x in &[-2.0f64, -0.5, 0.3, 1.7] {
                if act == Activation::Relu && x.abs() < eps {
                    continue; // kink
                }
                let num = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
                assert!(
                    (num - act.derivative(x)).abs() < 1e-6,
                    "{act:?} at {x}: {num} vs {}",
                    act.derivative(x)
                );
            }
        }
    }

    #[test]
    fn layer_backward_chains_gradient() {
        let mut layer = ActivationLayer::new(Activation::Tanh);
        let x = [0.5, -1.0];
        layer.forward(&x, true);
        let grads = layer.backward(&[1.0, 2.0]);
        assert!(approx_eq(grads[0], Activation::Tanh.derivative(0.5), 1e-12));
        assert!(approx_eq(
            grads[1],
            2.0 * Activation::Tanh.derivative(-1.0),
            1e-12
        ));
    }
}
