//! A from-scratch neural-network library for Bayesian visual odometry
//! (paper Section III).
//!
//! The paper accelerates *MC-Dropout* — the variational-inference
//! approximation of Gal & Ghahramani — on an SRAM CIM macro. This crate
//! provides everything up to the hardware boundary:
//!
//! - [`mlp`] — multilayer perceptrons from [`dense::Dense`],
//!   [`activation::Activation`] and [`dropout::Dropout`] layers, with
//!   manual backpropagation,
//! - [`loss`] / [`optim`] / [`train`] — MSE/Huber losses, SGD and Adam,
//!   and a shuffling epoch trainer,
//! - [`mc`] — MC-Dropout inference: repeated stochastic forward passes
//!   yielding predictive mean *and* variance,
//! - [`quant`] — the quantized inference path: weights/activations
//!   quantized to 4/6/8 bits, all matrix-vector products delegated to a
//!   pluggable [`quant::QuantBackend`] so that the SRAM CIM model (crate
//!   `navicim-sram`) can execute them with bitline/ADC effects and
//!   compute reuse.
//!
//! # Example
//!
//! ```
//! use navicim_nn::mlp::Mlp;
//! use navicim_nn::Mode;
//! use navicim_math::rng::Pcg32;
//!
//! let mut rng = Pcg32::seed_from_u64(1);
//! let mut net = Mlp::builder(2)
//!     .dense(8)
//!     .relu()
//!     .dropout(0.5)
//!     .dense(1)
//!     .build(&mut rng)
//!     .unwrap();
//! let y = net.forward(&[0.5, -0.5], Mode::Deterministic, &mut rng);
//! assert_eq!(y.len(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod activation;
pub mod dense;
pub mod dropout;
pub mod loss;
pub mod mc;
pub mod mlp;
pub mod optim;
pub mod quant;
pub mod train;

use std::error::Error;
use std::fmt;

/// Forward-pass mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Training: dropout active, caches kept for backprop.
    Train,
    /// Deterministic inference: dropout layers are identity.
    Deterministic,
    /// One MC-Dropout sample: dropout active, no caches needed.
    McSample,
}

impl Mode {
    /// Whether dropout layers sample masks in this mode.
    pub fn dropout_active(self) -> bool {
        matches!(self, Mode::Train | Mode::McSample)
    }
}

/// Error type for network construction and training.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// An argument was outside its valid domain.
    InvalidArgument(String),
    /// Layer shapes are incompatible.
    ShapeMismatch {
        /// Expected input dimension.
        expected: usize,
        /// Provided dimension.
        found: usize,
    },
    /// The network has no layers or no trainable parameters.
    EmptyNetwork,
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            NnError::ShapeMismatch { expected, found } => {
                write!(
                    f,
                    "shape mismatch: expected dimension {expected}, found {found}"
                )
            }
            NnError::EmptyNetwork => write!(f, "network has no layers"),
        }
    }
}

impl Error for NnError {}

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, NnError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_dropout_activity() {
        assert!(Mode::Train.dropout_active());
        assert!(Mode::McSample.dropout_active());
        assert!(!Mode::Deterministic.dropout_active());
    }

    #[test]
    fn error_display() {
        let e = NnError::ShapeMismatch {
            expected: 4,
            found: 3,
        };
        assert!(e.to_string().contains('4'));
    }
}
