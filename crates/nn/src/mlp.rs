//! Multilayer perceptrons: layer stack, builder, forward/backward.

use crate::activation::{Activation, ActivationLayer};
use crate::dense::Dense;
use crate::dropout::Dropout;
use crate::{Mode, NnError, Result};
use navicim_math::rng::Rng64;

/// One layer of an [`Mlp`].
#[derive(Debug, Clone, PartialEq)]
pub enum Layer {
    /// Fully connected layer.
    Dense(Dense),
    /// Elementwise activation.
    Activation(ActivationLayer),
    /// Bernoulli dropout.
    Dropout(Dropout),
}

/// A sequential multilayer perceptron.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    layers: Vec<Layer>,
    in_dim: usize,
    out_dim: usize,
}

impl Mlp {
    /// Starts building a network with the given input dimension.
    pub fn builder(in_dim: usize) -> MlpBuilder {
        MlpBuilder {
            in_dim,
            current_dim: in_dim,
            specs: Vec::new(),
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The layer stack.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable layer access (used by the quantized-export path).
    pub fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers
            .iter()
            .map(|l| match l {
                Layer::Dense(d) => d.param_count(),
                _ => 0,
            })
            .sum()
    }

    /// Forward pass in the given mode.
    ///
    /// Inference modes delegate to the allocation-free batched path
    /// ([`Mlp::forward_into`]), so scalar and batched inference are
    /// bit-identical; `Mode::Train` walks the caching layer path needed by
    /// backprop.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the input dimension.
    pub fn forward<R: Rng64 + ?Sized>(&mut self, x: &[f64], mode: Mode, rng: &mut R) -> Vec<f64> {
        assert_eq!(x.len(), self.in_dim, "network input dimension mismatch");
        if mode != Mode::Train {
            let mut scratch = ForwardScratch::default();
            let mut out = Vec::with_capacity(self.out_dim);
            self.forward_into(x, mode, rng, &mut scratch, &mut out);
            return out;
        }
        let mut h = x.to_vec();
        for layer in &mut self.layers {
            h = match layer {
                Layer::Dense(d) => d.forward(&h, true),
                Layer::Activation(a) => a.forward(&h, true),
                Layer::Dropout(d) => d.forward(&h, rng),
            };
        }
        h
    }

    /// Allocation-free inference forward pass.
    ///
    /// Activations ping-pong between the two `scratch` buffers and the
    /// result lands in `out`; across a batch of passes every buffer is
    /// reused, so the per-pass heap traffic of [`Mlp::forward`] (one fresh
    /// vector per layer) disappears. The arithmetic and the dropout-RNG
    /// stream are bit-identical to scalar forwards.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the input dimension or if called
    /// with `Mode::Train` (training needs the caching path).
    pub fn forward_into<R: Rng64 + ?Sized>(
        &self,
        x: &[f64],
        mode: Mode,
        rng: &mut R,
        scratch: &mut ForwardScratch,
        out: &mut Vec<f64>,
    ) {
        assert_eq!(x.len(), self.in_dim, "network input dimension mismatch");
        assert_ne!(mode, Mode::Train, "forward_into is inference-only");
        let ForwardScratch { cur, next } = scratch;
        cur.clear();
        cur.extend_from_slice(x);
        for layer in &self.layers {
            match layer {
                Layer::Dense(d) => d.forward_into(cur, next),
                Layer::Activation(a) => a.forward_into(cur, next),
                Layer::Dropout(d) => {
                    if mode.dropout_active() {
                        d.forward_sampled_into(cur, rng, next)
                    } else {
                        d.forward_identity_into(cur, next)
                    }
                }
            }
            std::mem::swap(cur, next);
        }
        out.clear();
        out.extend_from_slice(cur);
    }

    /// Backward pass: propagates `grad_out` (dL/dy) through the stack,
    /// accumulating parameter gradients. Returns dL/dx.
    ///
    /// # Panics
    ///
    /// Panics unless a `Mode::Train` forward pass preceded this call.
    pub fn backward(&mut self, grad_out: &[f64]) -> Vec<f64> {
        let mut g = grad_out.to_vec();
        for layer in self.layers.iter_mut().rev() {
            g = match layer {
                Layer::Dense(d) => d.backward(&g),
                Layer::Activation(a) => a.backward(&g),
                Layer::Dropout(d) => d.backward(&g),
            };
        }
        g
    }

    /// Clears all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            if let Layer::Dense(d) = layer {
                d.zero_grad();
            }
        }
    }

    /// Visits every `(parameter, gradient)` pair in a stable order.
    pub fn visit_params<F: FnMut(&mut f64, &mut f64)>(&mut self, mut f: F) {
        for layer in &mut self.layers {
            if let Layer::Dense(d) = layer {
                d.visit_params(&mut f);
            }
        }
    }
}

/// Reusable ping-pong activation buffers for [`Mlp::forward_into`].
#[derive(Debug, Clone, Default)]
pub struct ForwardScratch {
    cur: Vec<f64>,
    next: Vec<f64>,
}

enum LayerSpec {
    Dense(usize),
    Activation(Activation),
    Dropout(f64),
}

/// Builder for [`Mlp`] (see [`Mlp::builder`]).
pub struct MlpBuilder {
    in_dim: usize,
    current_dim: usize,
    specs: Vec<LayerSpec>,
}

impl MlpBuilder {
    /// Appends a dense layer with `out_dim` outputs.
    pub fn dense(mut self, out_dim: usize) -> Self {
        self.specs.push(LayerSpec::Dense(out_dim));
        self.current_dim = out_dim;
        self
    }

    /// Appends a ReLU activation.
    pub fn relu(mut self) -> Self {
        self.specs.push(LayerSpec::Activation(Activation::Relu));
        self
    }

    /// Appends a tanh activation.
    pub fn tanh(mut self) -> Self {
        self.specs.push(LayerSpec::Activation(Activation::Tanh));
        self
    }

    /// Appends a sigmoid activation.
    pub fn sigmoid(mut self) -> Self {
        self.specs.push(LayerSpec::Activation(Activation::Sigmoid));
        self
    }

    /// Appends a dropout layer with drop probability `p`.
    pub fn dropout(mut self, p: f64) -> Self {
        self.specs.push(LayerSpec::Dropout(p));
        self
    }

    /// Builds the network, initializing weights from `rng`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::EmptyNetwork`] for a network with no dense layer
    /// and propagates layer-construction errors.
    pub fn build<R: Rng64 + ?Sized>(self, rng: &mut R) -> Result<Mlp> {
        if self.in_dim == 0 {
            return Err(NnError::InvalidArgument(
                "input dimension must be positive".into(),
            ));
        }
        if !self.specs.iter().any(|s| matches!(s, LayerSpec::Dense(_))) {
            return Err(NnError::EmptyNetwork);
        }
        let mut layers = Vec::with_capacity(self.specs.len());
        let mut dim = self.in_dim;
        for spec in self.specs {
            match spec {
                LayerSpec::Dense(out) => {
                    layers.push(Layer::Dense(Dense::new(dim, out, rng)?));
                    dim = out;
                }
                LayerSpec::Activation(a) => layers.push(Layer::Activation(ActivationLayer::new(a))),
                LayerSpec::Dropout(p) => layers.push(Layer::Dropout(Dropout::new(p)?)),
            }
        }
        Ok(Mlp {
            layers,
            in_dim: self.in_dim,
            out_dim: dim,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use navicim_math::rng::Pcg32;

    fn small_net(seed: u64) -> Mlp {
        let mut rng = Pcg32::seed_from_u64(seed);
        Mlp::builder(3)
            .dense(5)
            .tanh()
            .dropout(0.5)
            .dense(2)
            .build(&mut rng)
            .unwrap()
    }

    #[test]
    fn builder_shapes() {
        let net = small_net(1);
        assert_eq!(net.in_dim(), 3);
        assert_eq!(net.out_dim(), 2);
        assert_eq!(net.param_count(), 3 * 5 + 5 + 5 * 2 + 2);
        assert_eq!(net.layers().len(), 4);
    }

    #[test]
    fn builder_validation() {
        let mut rng = Pcg32::seed_from_u64(2);
        assert!(matches!(
            Mlp::builder(3).relu().build(&mut rng),
            Err(NnError::EmptyNetwork)
        ));
        assert!(Mlp::builder(0).dense(2).build(&mut rng).is_err());
        assert!(Mlp::builder(3)
            .dense(2)
            .dropout(1.5)
            .build(&mut rng)
            .is_err());
    }

    #[test]
    fn deterministic_mode_is_repeatable() {
        let mut net = small_net(3);
        let mut rng = Pcg32::seed_from_u64(4);
        let a = net.forward(&[0.1, 0.2, 0.3], Mode::Deterministic, &mut rng);
        let b = net.forward(&[0.1, 0.2, 0.3], Mode::Deterministic, &mut rng);
        assert_eq!(a, b);
    }

    #[test]
    fn mc_mode_is_stochastic() {
        let mut net = small_net(5);
        let mut rng = Pcg32::seed_from_u64(6);
        let outs: Vec<Vec<f64>> = (0..8)
            .map(|_| net.forward(&[0.5, -0.5, 1.0], Mode::McSample, &mut rng))
            .collect();
        let distinct = outs
            .iter()
            .filter(|o| o.as_slice() != outs[0].as_slice())
            .count();
        assert!(distinct > 0, "MC samples should vary");
    }

    #[test]
    fn forward_into_matches_forward_bit_for_bit() {
        let mut net = small_net(20);
        for mode in [Mode::Deterministic, Mode::McSample] {
            let mut rng_a = Pcg32::seed_from_u64(30);
            let mut rng_b = Pcg32::seed_from_u64(30);
            let x = [0.4, -0.8, 1.2];
            let expected = net.forward(&x, mode, &mut rng_a);
            let mut scratch = ForwardScratch::default();
            let mut out = Vec::new();
            net.forward_into(&x, mode, &mut rng_b, &mut scratch, &mut out);
            assert_eq!(expected, out, "{mode:?}");
            assert_eq!(rng_a, rng_b, "{mode:?} rng stream diverged");
        }
    }

    #[test]
    #[should_panic(expected = "inference-only")]
    fn forward_into_rejects_train_mode() {
        let net = small_net(21);
        let mut rng = Pcg32::seed_from_u64(1);
        let mut scratch = ForwardScratch::default();
        let mut out = Vec::new();
        net.forward_into(
            &[0.0, 0.0, 0.0],
            Mode::Train,
            &mut rng,
            &mut scratch,
            &mut out,
        );
    }

    #[test]
    fn full_network_gradient_check() {
        // Finite-difference check through dense + tanh + dense (no dropout
        // to keep it deterministic).
        let mut rng = Pcg32::seed_from_u64(7);
        let mut net = Mlp::builder(3)
            .dense(4)
            .tanh()
            .dense(2)
            .build(&mut rng)
            .unwrap();
        let x = [0.2, -0.4, 0.8];
        let mut rng2 = Pcg32::seed_from_u64(8);
        let y = net.forward(&x, Mode::Train, &mut rng2);
        let grad: Vec<f64> = y.iter().map(|&v| 2.0 * v).collect();
        net.zero_grad();
        let y2 = net.forward(&x, Mode::Train, &mut rng2);
        assert_eq!(y, y2);
        net.backward(&grad);
        let mut analytic = Vec::new();
        net.visit_params(|_, g| analytic.push(*g));
        let eps = 1e-6;
        for k in 0..analytic.len() {
            let mut loss_at = |delta: f64, net: &mut Mlp| {
                let mut idx = 0;
                net.visit_params(|p, _| {
                    if idx == k {
                        *p += delta;
                    }
                    idx += 1;
                });
                let y = net.forward(&x, Mode::Deterministic, &mut rng2);
                let loss: f64 = y.iter().map(|v| v * v).sum();
                let mut idx2 = 0;
                net.visit_params(|p, _| {
                    if idx2 == k {
                        *p -= delta;
                    }
                    idx2 += 1;
                });
                loss
            };
            let num = (loss_at(eps, &mut net) - loss_at(-eps, &mut net)) / (2.0 * eps);
            assert!(
                (num - analytic[k]).abs() < 1e-5,
                "param {k}: numeric {num} analytic {}",
                analytic[k]
            );
        }
    }

    #[test]
    fn dropout_gradient_respects_mask() {
        // With dropout in the stack, backward must route gradients only
        // through kept units — verified via the chained finite difference
        // using identical masks (fixed rng seed replay).
        let mut net = small_net(9);
        let x = [1.0, 0.5, -0.5];
        let mut rng = Pcg32::seed_from_u64(10);
        let y = net.forward(&x, Mode::Train, &mut rng);
        net.zero_grad();
        let g = net.backward(&vec![1.0; y.len()]);
        assert_eq!(g.len(), 3);
        assert!(g.iter().all(|v| v.is_finite()));
    }
}
