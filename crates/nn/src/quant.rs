//! Quantized inference with a pluggable MAC backend.
//!
//! The paper's SRAM CIM macro executes dense-layer matrix-vector products
//! on quantized weights and activations (4/6/8 bits), with dropout bits
//! AND-gated onto the lines and partial sums digitized by ADCs. This
//! module provides:
//!
//! - [`QuantMatrix`] — a weight matrix quantized to signed codes,
//! - [`QuantBackend`] — the execution interface; `navicim-sram` implements
//!   it with bitline/ADC effects and the compute-reuse scheduler, while
//!   [`ExactBackend`] is the ideal software reference,
//! - [`QuantizedMlp`] — a trained [`Mlp`] exported to the quantized
//!   representation (activation ranges calibrated on sample data), able to
//!   run deterministic or MC-Dropout inference through any backend,
//! - [`ForwardWorkspace`] — caller-owned scratch making the per-frame
//!   inference path allocation-free after warmup
//!   ([`QuantizedMlp::forward_with_masks_into`]).
//!
//! Dropout masks are folded into the activation *codes* (dropped units
//! quantize to zero). Because the inverted-dropout scale is constant, a
//! kept unit produces the same code in every MC iteration whenever its
//! upstream values are unchanged — which is exactly what makes the paper's
//! `P_i = P_{i-1} + W·I_A_i − W·I_D_i` compute reuse effective on the
//! first layer (fixed frame, changing masks). Backends discover reusable
//! work by diffing consecutive input codes per layer, which generalizes
//! that expression.

use crate::activation::Activation;
use crate::mc::McPrediction;
use crate::mlp::{Layer, Mlp};
use crate::{Mode, NnError, Result};
use navicim_math::quant::Quantizer;
use navicim_math::rng::{Rng64, SampleExt};

/// A weight matrix quantized to signed integer codes.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantMatrix {
    rows: usize,
    cols: usize,
    codes: Vec<i64>,
    step: f64,
    bits: u32,
}

impl QuantMatrix {
    /// Quantizes a row-major `rows × cols` weight slice.
    ///
    /// # Errors
    ///
    /// Propagates quantizer-construction errors and rejects shape
    /// mismatches.
    pub fn from_weights(weights: &[f64], rows: usize, cols: usize, bits: u32) -> Result<Self> {
        if weights.len() != rows * cols {
            return Err(NnError::InvalidArgument(format!(
                "expected {} weights, got {}",
                rows * cols,
                weights.len()
            )));
        }
        let q =
            Quantizer::fit(bits, weights).map_err(|e| NnError::InvalidArgument(e.to_string()))?;
        Ok(Self {
            rows,
            cols,
            codes: q.quantize_all(weights),
            step: q.step(),
            bits,
        })
    }

    /// Number of rows (outputs).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (inputs).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Weight bit-width.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Quantization step (code → weight scale factor).
    pub fn step(&self) -> f64 {
        self.step
    }

    /// Row `r` of codes.
    ///
    /// # Panics
    ///
    /// Panics when `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[i64] {
        assert!(r < self.rows, "row out of bounds");
        &self.codes[r * self.cols..(r + 1) * self.cols]
    }

    /// All codes, row-major.
    pub fn codes(&self) -> &[i64] {
        &self.codes
    }
}

/// Executes quantized matrix-vector products — the hardware boundary.
///
/// [`QuantBackend::matvec_into`] is the primitive: it writes into a
/// caller-reused accumulator buffer, which is what lets the per-frame
/// inference path run allocation-free. [`QuantBackend::matvec`] is the
/// provided allocating convenience wrapper.
pub trait QuantBackend {
    /// Computes `acc[o] = Σᵢ W[o,i]·x[i]` over integer codes for every row
    /// with `out_mask[o]` set (masked rows yield 0), writing one value per
    /// row into `acc` (cleared first). `layer_id` identifies the weight
    /// array so stateful backends can cache per-layer state.
    fn matvec_into(
        &mut self,
        layer_id: usize,
        matrix: &QuantMatrix,
        input: &[i64],
        out_mask: &[bool],
        acc: &mut Vec<i64>,
    );

    /// Allocating wrapper over [`QuantBackend::matvec_into`].
    fn matvec(
        &mut self,
        layer_id: usize,
        matrix: &QuantMatrix,
        input: &[i64],
        out_mask: &[bool],
    ) -> Vec<i64> {
        let mut acc = Vec::with_capacity(matrix.rows());
        self.matvec_into(layer_id, matrix, input, out_mask, &mut acc);
        acc
    }

    /// Marks the beginning of one MC-Dropout iteration.
    fn begin_pass(&mut self) {}

    /// Marks the arrival of a new input frame (stateful backends clear
    /// their reuse caches).
    fn reset(&mut self) {}
}

/// Ideal software backend: exact integer arithmetic, full recompute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExactBackend {
    /// Total scalar multiply-accumulates executed.
    pub macs: u64,
}

impl ExactBackend {
    /// Creates a zero-counter backend.
    pub fn new() -> Self {
        Self::default()
    }
}

impl QuantBackend for ExactBackend {
    fn matvec_into(
        &mut self,
        _layer_id: usize,
        matrix: &QuantMatrix,
        input: &[i64],
        out_mask: &[bool],
        acc: &mut Vec<i64>,
    ) {
        assert_eq!(input.len(), matrix.cols(), "input length mismatch");
        assert_eq!(out_mask.len(), matrix.rows(), "mask length mismatch");
        acc.clear();
        acc.extend((0..matrix.rows()).map(|o| {
            if !out_mask[o] {
                return 0;
            }
            self.macs += matrix.cols() as u64;
            matrix
                .row(o)
                .iter()
                .zip(input)
                .map(|(&w, &x)| w * x)
                .sum::<i64>()
        }));
    }
}

/// Reusable per-inference scratch for [`QuantizedMlp`] forward passes.
///
/// Holds the activation ping-pong buffers, the quantized input codes, the
/// backend accumulator and the row mask. After one pass has grown each
/// buffer to its layer's width, subsequent passes through
/// [`QuantizedMlp::forward_with_masks_into`] allocate nothing — the
/// per-frame invariant `bench_mcdropout` tracks.
#[derive(Debug, Clone, Default)]
pub struct ForwardWorkspace {
    /// Current activations.
    h: Vec<f64>,
    /// Next-layer activations (swapped with `h` after each dense layer).
    h_next: Vec<f64>,
    /// Quantized input codes of the current dense layer.
    codes: Vec<i64>,
    /// Backend accumulator output.
    acc: Vec<i64>,
    /// Lookahead row mask of the current dense layer.
    out_mask: Vec<bool>,
}

impl ForwardWorkspace {
    /// An empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// One layer of a [`QuantizedMlp`].
#[derive(Debug, Clone, PartialEq)]
pub enum QuantLayer {
    /// Quantized dense layer with its input-activation quantizer.
    Dense {
        /// Quantized weights.
        matrix: QuantMatrix,
        /// Full-precision biases (added after dequantization, as done by
        /// the digital periphery).
        bias: Vec<f64>,
        /// Calibrated quantizer for this layer's input activations.
        act_quant: Quantizer,
    },
    /// Elementwise activation, evaluated by the digital periphery.
    Activation(Activation),
    /// Dropout with the given probability.
    Dropout {
        /// Drop probability.
        p: f64,
    },
}

/// A trained network exported to quantized form.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedMlp {
    layers: Vec<QuantLayer>,
    in_dim: usize,
    out_dim: usize,
    weight_bits: u32,
    act_bits: u32,
}

impl QuantizedMlp {
    /// Exports `net` at the given precisions, calibrating activation
    /// ranges on `calibration` inputs run in deterministic mode.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidArgument`] for an empty calibration set
    /// or unsupported precision, and propagates shape errors.
    pub fn from_mlp(
        net: &Mlp,
        weight_bits: u32,
        act_bits: u32,
        calibration: &[Vec<f64>],
    ) -> Result<Self> {
        if calibration.is_empty() {
            return Err(NnError::InvalidArgument(
                "calibration requires at least one input".into(),
            ));
        }
        // Gather per-dense-layer input |max| by replaying the stack.
        let mut net_clone = net.clone();
        let mut max_abs: Vec<f64> = Vec::new();
        for x in calibration {
            if x.len() != net.in_dim() {
                return Err(NnError::ShapeMismatch {
                    expected: net.in_dim(),
                    found: x.len(),
                });
            }
            let mut h = x.clone();
            let mut dense_idx = 0;
            for layer in net_clone.layers_mut() {
                match layer {
                    Layer::Dense(d) => {
                        if max_abs.len() <= dense_idx {
                            max_abs.push(0.0);
                        }
                        let m = h.iter().fold(0.0f64, |m, v| m.max(v.abs()));
                        max_abs[dense_idx] = max_abs[dense_idx].max(m);
                        dense_idx += 1;
                        h = d.forward(&h, false);
                    }
                    Layer::Activation(a) => h = a.forward(&h, false),
                    Layer::Dropout(d) => h = d.forward_identity(&h),
                }
            }
        }

        let mut layers = Vec::with_capacity(net.layers().len());
        let mut dense_idx = 0;
        for layer in net.layers() {
            match layer {
                Layer::Dense(d) => {
                    let matrix = QuantMatrix::from_weights(
                        d.weights(),
                        d.out_dim(),
                        d.in_dim(),
                        weight_bits,
                    )?;
                    let range = max_abs[dense_idx].max(1e-9);
                    let act_quant = Quantizer::new(act_bits, range)
                        .map_err(|e| NnError::InvalidArgument(e.to_string()))?;
                    layers.push(QuantLayer::Dense {
                        matrix,
                        bias: d.biases().to_vec(),
                        act_quant,
                    });
                    dense_idx += 1;
                }
                Layer::Activation(a) => layers.push(QuantLayer::Activation(a.kind())),
                Layer::Dropout(d) => layers.push(QuantLayer::Dropout { p: d.probability() }),
            }
        }
        Ok(Self {
            layers,
            in_dim: net.in_dim(),
            out_dim: net.out_dim(),
            weight_bits,
            act_bits,
        })
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Weight precision in bits.
    pub fn weight_bits(&self) -> u32 {
        self.weight_bits
    }

    /// Activation precision in bits.
    pub fn act_bits(&self) -> u32 {
        self.act_bits
    }

    /// The quantized layer stack.
    pub fn layers(&self) -> &[QuantLayer] {
        &self.layers
    }

    /// Number of dropout layers (one mask each per MC pass).
    pub fn num_dropout_layers(&self) -> usize {
        self.layers
            .iter()
            .filter(|l| matches!(l, QuantLayer::Dropout { .. }))
            .count()
    }

    /// Dimensions at each dropout layer, in order.
    pub fn dropout_dims(&self) -> Vec<usize> {
        let mut dims = Vec::new();
        let mut dim = self.in_dim;
        for layer in &self.layers {
            match layer {
                QuantLayer::Dense { matrix, .. } => dim = matrix.rows(),
                QuantLayer::Dropout { .. } => dims.push(dim),
                QuantLayer::Activation(_) => {}
            }
        }
        dims
    }

    /// Samples one set of dropout masks (`true` = keep) for a pass.
    pub fn sample_masks<R: Rng64 + ?Sized>(&self, rng: &mut R) -> Vec<Vec<bool>> {
        let mut masks = Vec::new();
        self.sample_masks_into(rng, &mut masks);
        masks
    }

    /// Samples one set of dropout masks into a reused buffer (outer and
    /// inner allocations are kept across calls). The RNG consumption is
    /// identical to [`Self::sample_masks`].
    pub fn sample_masks_into<R: Rng64 + ?Sized>(&self, rng: &mut R, masks: &mut Vec<Vec<bool>>) {
        masks.resize_with(self.num_dropout_layers(), Vec::new);
        let mut dims = self.dropout_dims().into_iter();
        let mut slot = masks.iter_mut();
        for layer in &self.layers {
            if let QuantLayer::Dropout { p } = layer {
                let d = dims.next().expect("dims align with dropout layers");
                let mask = slot.next().expect("buffer sized above");
                mask.clear();
                mask.extend((0..d).map(|_| !rng.sample_bool(*p)));
            }
        }
    }

    /// Runs one forward pass with explicit dropout masks (one per dropout
    /// layer; pass an empty slice for deterministic inference).
    ///
    /// Allocating wrapper over [`Self::forward_with_masks_into`]; hot
    /// callers hold a [`ForwardWorkspace`] instead.
    ///
    /// # Panics
    ///
    /// Panics on input/mask shape mismatches.
    pub fn forward_with_masks<B: QuantBackend>(
        &self,
        backend: &mut B,
        x: &[f64],
        masks: &[Vec<bool>],
    ) -> Vec<f64> {
        let mut ws = ForwardWorkspace::default();
        let mut out = Vec::with_capacity(self.out_dim);
        self.forward_with_masks_into(backend, x, masks, &mut ws, &mut out);
        out
    }

    /// Runs one forward pass through caller-owned scratch buffers,
    /// writing the output activations into `out`.
    ///
    /// After the first call has warmed the workspace up to the network's
    /// layer widths, the pass performs **no heap allocation**: activation
    /// codes, accumulators, row masks and the activation ping-pong all
    /// live in `ws`, and every [`QuantBackend`] receives its accumulator
    /// buffer through [`QuantBackend::matvec_into`]. Results are
    /// bit-identical to [`Self::forward_with_masks`].
    ///
    /// # Panics
    ///
    /// Panics on input/mask shape mismatches.
    pub fn forward_with_masks_into<B: QuantBackend>(
        &self,
        backend: &mut B,
        x: &[f64],
        masks: &[Vec<bool>],
        ws: &mut ForwardWorkspace,
        out: &mut Vec<f64>,
    ) {
        self.forward_impl(backend, x, masks, ws, out, None);
    }

    /// [`Self::forward_with_masks_into`] that additionally captures the
    /// output layer's **pre-quantization logits**: the final dense
    /// product recomputed from the full-precision input activations
    /// (dequantized weights, same row mask and bias, no activation-code
    /// rounding).
    ///
    /// At narrow activation widths the quantized outputs of different
    /// dropout masks often collapse onto the same codes, flattening the
    /// MC-Dropout predictive variance to numerical dust; the shadow
    /// logits keep the mask-induced spread visible, which is what the
    /// uncertainty consumers (VO noise inflation, gating) need. The
    /// quantized output in `out` is bit-identical to
    /// [`Self::forward_with_masks_into`] — the shadow product touches no
    /// backend or workspace state used by the quantized path.
    pub fn forward_with_masks_logits_into<B: QuantBackend>(
        &self,
        backend: &mut B,
        x: &[f64],
        masks: &[Vec<bool>],
        ws: &mut ForwardWorkspace,
        out: &mut Vec<f64>,
        logits: &mut Vec<f64>,
    ) {
        self.forward_impl(backend, x, masks, ws, out, Some(logits));
    }

    fn forward_impl<B: QuantBackend>(
        &self,
        backend: &mut B,
        x: &[f64],
        masks: &[Vec<bool>],
        ws: &mut ForwardWorkspace,
        out: &mut Vec<f64>,
        mut logits: Option<&mut Vec<f64>>,
    ) {
        assert_eq!(x.len(), self.in_dim, "input dimension mismatch");
        let last_dense_li = self
            .layers
            .iter()
            .rposition(|l| matches!(l, QuantLayer::Dense { .. }));
        let deterministic = masks.is_empty();
        if !deterministic {
            assert_eq!(
                masks.len(),
                self.num_dropout_layers(),
                "one mask required per dropout layer"
            );
        }
        backend.begin_pass();
        ws.h.clear();
        ws.h.extend_from_slice(x);
        let mut dense_idx = 0;
        let mut dropout_idx = 0;
        for (li, layer) in self.layers.iter().enumerate() {
            match layer {
                QuantLayer::Dense {
                    matrix,
                    bias,
                    act_quant,
                } => {
                    act_quant.quantize_all_into(&ws.h, &mut ws.codes);
                    self.lookahead_mask_into(
                        li,
                        matrix.rows(),
                        masks,
                        dropout_idx,
                        &mut ws.out_mask,
                    );
                    // Shadow the output layer in full precision before
                    // the quantized product overwrites `ws.h`.
                    if Some(li) == last_dense_li {
                        if let Some(logits) = logits.as_deref_mut() {
                            logits.clear();
                            let w_step = matrix.step();
                            for (r, (&b, &keep)) in bias.iter().zip(&ws.out_mask).enumerate() {
                                if keep {
                                    let acc: f64 = matrix
                                        .row(r)
                                        .iter()
                                        .zip(&ws.h)
                                        .map(|(&c, &h)| c as f64 * h)
                                        .sum();
                                    logits.push(acc * w_step + b);
                                } else {
                                    logits.push(0.0);
                                }
                            }
                        }
                    }
                    backend.matvec_into(dense_idx, matrix, &ws.codes, &ws.out_mask, &mut ws.acc);
                    let scale = matrix.step() * act_quant.step();
                    ws.h_next.clear();
                    ws.h_next.extend(
                        ws.acc
                            .iter()
                            .zip(bias)
                            .zip(&ws.out_mask)
                            .map(|((&a, &b), &keep)| if keep { a as f64 * scale + b } else { 0.0 }),
                    );
                    std::mem::swap(&mut ws.h, &mut ws.h_next);
                    dense_idx += 1;
                }
                QuantLayer::Activation(a) => a.apply_in_place(&mut ws.h),
                QuantLayer::Dropout { p } => {
                    if !deterministic {
                        let mask = &masks[dropout_idx];
                        assert_eq!(mask.len(), ws.h.len(), "dropout mask length mismatch");
                        let s = 1.0 / (1.0 - p);
                        for (v, &keep) in ws.h.iter_mut().zip(mask) {
                            *v = if keep { *v * s } else { 0.0 };
                        }
                    }
                    dropout_idx += 1;
                }
            }
        }
        out.clear();
        out.extend_from_slice(&ws.h);
    }

    /// Runs one forward pass in the given mode, sampling masks from `rng`
    /// when dropout is active.
    pub fn forward<B: QuantBackend, R: Rng64 + ?Sized>(
        &self,
        backend: &mut B,
        x: &[f64],
        mode: Mode,
        rng: &mut R,
    ) -> Vec<f64> {
        if mode.dropout_active() {
            let masks = self.sample_masks(rng);
            self.forward_with_masks(backend, x, &masks)
        } else {
            self.forward_with_masks(backend, x, &[])
        }
    }

    /// MC-Dropout prediction through the backend: `iterations` stochastic
    /// passes on one input frame (the backend's reuse cache is reset
    /// first).
    ///
    /// # Panics
    ///
    /// Panics if `iterations < 2`.
    pub fn mc_predict<B: QuantBackend, R: Rng64 + ?Sized>(
        &self,
        backend: &mut B,
        x: &[f64],
        iterations: usize,
        rng: &mut R,
    ) -> McPrediction {
        assert!(iterations >= 2, "mc_predict requires at least 2 iterations");
        backend.reset();
        // One workspace and mask buffer serve every iteration; only the
        // returned samples themselves are allocated.
        let mut ws = ForwardWorkspace::default();
        let mut masks: Vec<Vec<bool>> = Vec::new();
        let samples: Vec<Vec<f64>> = (0..iterations)
            .map(|_| {
                self.sample_masks_into(rng, &mut masks);
                let mut y = Vec::with_capacity(self.out_dim);
                self.forward_with_masks_into(backend, x, &masks, &mut ws, &mut y);
                y
            })
            .collect();
        crate::mc::mc_moments(samples)
    }

    /// The output mask for the dense layer at stack position `li`: the mask
    /// of the next dropout layer separated only by elementwise layers
    /// (whose dropped rows need not be computed at all — the paper's
    /// row-line gating), or all-true. Written into the reused `out`
    /// buffer.
    fn lookahead_mask_into(
        &self,
        li: usize,
        rows: usize,
        masks: &[Vec<bool>],
        dropout_idx: usize,
        out: &mut Vec<bool>,
    ) {
        out.clear();
        if !masks.is_empty() {
            for layer in &self.layers[li + 1..] {
                match layer {
                    QuantLayer::Activation(_) => continue,
                    QuantLayer::Dropout { .. } => {
                        let m = &masks[dropout_idx];
                        if m.len() == rows {
                            out.extend_from_slice(m);
                            return;
                        }
                        break;
                    }
                    QuantLayer::Dense { .. } => break,
                }
            }
        }
        out.resize(rows, true);
    }

    /// Dense-layer MAC count of one full (non-reused, unmasked) pass.
    pub fn macs_per_pass(&self) -> u64 {
        self.layers
            .iter()
            .map(|l| match l {
                QuantLayer::Dense { matrix, .. } => (matrix.rows() * matrix.cols()) as u64,
                _ => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use navicim_math::rng::Pcg32;

    fn trained_like_net(seed: u64) -> Mlp {
        let mut rng = Pcg32::seed_from_u64(seed);
        Mlp::builder(4)
            .dense(8)
            .relu()
            .dropout(0.5)
            .dense(3)
            .build(&mut rng)
            .unwrap()
    }

    fn calib() -> Vec<Vec<f64>> {
        vec![
            vec![0.5, -0.5, 0.25, 1.0],
            vec![-1.0, 0.3, 0.8, -0.2],
            vec![0.1, 0.9, -0.7, 0.4],
        ]
    }

    #[test]
    fn logit_capture_leaves_quantized_output_bit_identical() {
        let net = trained_like_net(31);
        let q = QuantizedMlp::from_mlp(&net, 4, 4, &calib()).unwrap();
        let mut rng = Pcg32::seed_from_u64(7);
        let masks = q.sample_masks(&mut rng);
        let x = [0.5, -0.5, 0.25, 1.0];
        let mut plain_backend = ExactBackend::new();
        let mut shadow_backend = ExactBackend::new();
        let mut plain_ws = ForwardWorkspace::default();
        let mut shadow_ws = ForwardWorkspace::default();
        let (mut plain, mut shadowed, mut logits) = (Vec::new(), Vec::new(), Vec::new());
        q.forward_with_masks_into(&mut plain_backend, &x, &masks, &mut plain_ws, &mut plain);
        q.forward_with_masks_logits_into(
            &mut shadow_backend,
            &x,
            &masks,
            &mut shadow_ws,
            &mut shadowed,
            &mut logits,
        );
        assert_eq!(
            plain, shadowed,
            "the shadow must not perturb the quantized path"
        );
        assert_eq!(logits.len(), q.out_dim());
        // The shadow is the same dense product minus input-activation
        // rounding, so it lands near the quantized output.
        for (l, o) in logits.iter().zip(&plain) {
            assert!(l.is_finite());
            assert!(
                (l - o).abs() < 1.0,
                "logit {l} far from quantized output {o}"
            );
        }
    }

    #[test]
    fn quant_matrix_roundtrip() {
        let w = [0.5, -1.0, 0.25, 0.75];
        let m = QuantMatrix::from_weights(&w, 2, 2, 8).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        for (code, &orig) in m.codes().iter().zip(&w) {
            assert!((*code as f64 * m.step() - orig).abs() < m.step());
        }
    }

    #[test]
    fn exact_backend_counts_macs() {
        let w = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let m = QuantMatrix::from_weights(&w, 2, 3, 8).unwrap();
        let mut backend = ExactBackend::new();
        let out = backend.matvec(0, &m, &[1, 1, 1], &[true, true]);
        assert_eq!(out.len(), 2);
        assert_eq!(backend.macs, 6);
        // Masked row skips its MACs and returns zero.
        let out2 = backend.matvec(0, &m, &[1, 1, 1], &[true, false]);
        assert_eq!(out2[1], 0);
        assert_eq!(backend.macs, 9);
    }

    #[test]
    fn high_precision_matches_float_network() {
        let mut net = trained_like_net(1);
        let qnet = QuantizedMlp::from_mlp(&net, 12, 12, &calib()).unwrap();
        let mut backend = ExactBackend::new();
        let mut rng = Pcg32::seed_from_u64(2);
        for x in calib() {
            let y_fp = net.forward(&x, Mode::Deterministic, &mut rng);
            let y_q = qnet.forward(&mut backend, &x, Mode::Deterministic, &mut rng);
            for (a, b) in y_fp.iter().zip(&y_q) {
                assert!((a - b).abs() < 0.01, "fp {a} vs quant {b}");
            }
        }
    }

    #[test]
    fn lower_precision_increases_error() {
        let mut net = trained_like_net(3);
        let mut rng = Pcg32::seed_from_u64(4);
        let x = vec![0.5, -0.5, 0.25, 1.0];
        let y_fp = net.forward(&x, Mode::Deterministic, &mut rng);
        let mut err_at = |bits: u32| {
            let qnet = QuantizedMlp::from_mlp(&net, bits, bits, &calib()).unwrap();
            let mut backend = ExactBackend::new();
            let y = qnet.forward(&mut backend, &x, Mode::Deterministic, &mut rng);
            y.iter()
                .zip(&y_fp)
                .map(|(a, b): (&f64, &f64)| (a - b).abs())
                .fold(0.0f64, f64::max)
        };
        let e4 = err_at(4);
        let e10 = err_at(10);
        assert!(e10 < e4, "4-bit error {e4} vs 10-bit {e10}");
    }

    #[test]
    fn masks_gate_rows_and_inputs() {
        let net = trained_like_net(5);
        let qnet = QuantizedMlp::from_mlp(&net, 8, 8, &calib()).unwrap();
        assert_eq!(qnet.num_dropout_layers(), 1);
        assert_eq!(qnet.dropout_dims(), vec![8]);
        let mut backend = ExactBackend::new();
        // All-dropped mask: hidden layer fully gated, output = bias-only
        // path through the second dense.
        let mask = vec![vec![false; 8]];
        let y = qnet.forward_with_masks(&mut backend, &[0.5, 0.5, 0.5, 0.5], &mask);
        assert_eq!(y.len(), 3);
        // First dense layer computed nothing (all rows masked).
        // Second dense still ran on the zero vector.
        assert_eq!(backend.macs, 3 * 8);
    }

    #[test]
    fn mc_predict_through_backend() {
        let net = trained_like_net(6);
        let qnet = QuantizedMlp::from_mlp(&net, 6, 6, &calib()).unwrap();
        let mut backend = ExactBackend::new();
        let mut rng = Pcg32::seed_from_u64(7);
        let pred = qnet.mc_predict(&mut backend, &[0.5, -0.5, 0.25, 1.0], 20, &mut rng);
        assert_eq!(pred.mean.len(), 3);
        assert!(pred.total_variance() > 0.0);
        assert_eq!(pred.samples.len(), 20);
    }

    #[test]
    fn macs_per_pass_accounting() {
        let net = trained_like_net(8);
        let qnet = QuantizedMlp::from_mlp(&net, 8, 8, &calib()).unwrap();
        assert_eq!(qnet.macs_per_pass(), (4 * 8 + 8 * 3) as u64);
    }

    #[test]
    fn calibration_validation() {
        let net = trained_like_net(9);
        assert!(QuantizedMlp::from_mlp(&net, 8, 8, &[]).is_err());
        assert!(QuantizedMlp::from_mlp(&net, 8, 8, &[vec![1.0]]).is_err());
    }

    #[test]
    fn workspace_path_matches_allocating_path() {
        // forward_with_masks_into through one long-lived workspace is
        // bit-identical to forward_with_masks, pass after pass, including
        // backend MAC accounting.
        let net = trained_like_net(11);
        let qnet = QuantizedMlp::from_mlp(&net, 6, 6, &calib()).unwrap();
        let mut rng = Pcg32::seed_from_u64(12);
        let mut ws = ForwardWorkspace::new();
        let mut b_ws = ExactBackend::new();
        let mut b_alloc = ExactBackend::new();
        let mut y = Vec::new();
        for x in calib() {
            let masks = qnet.sample_masks(&mut rng);
            qnet.forward_with_masks_into(&mut b_ws, &x, &masks, &mut ws, &mut y);
            let expected = qnet.forward_with_masks(&mut b_alloc, &x, &masks);
            assert_eq!(y, expected);
            assert_eq!(b_ws.macs, b_alloc.macs);
            // Deterministic pass through the same workspace.
            qnet.forward_with_masks_into(&mut b_ws, &x, &[], &mut ws, &mut y);
            assert_eq!(y, qnet.forward_with_masks(&mut b_alloc, &x, &[]));
        }
    }

    #[test]
    fn sample_masks_into_matches_sample_masks() {
        let net = trained_like_net(12);
        let qnet = QuantizedMlp::from_mlp(&net, 6, 6, &calib()).unwrap();
        let mut rng_a = Pcg32::seed_from_u64(3);
        let mut rng_b = Pcg32::seed_from_u64(3);
        let mut reused = Vec::new();
        for _ in 0..5 {
            qnet.sample_masks_into(&mut rng_a, &mut reused);
            assert_eq!(reused, qnet.sample_masks(&mut rng_b));
        }
        assert_eq!(rng_a, rng_b, "identical RNG consumption");
    }

    #[test]
    fn workspace_buffers_stop_growing_after_warmup() {
        // After one pass the workspace holds every layer's width; later
        // passes must not grow any buffer (the zero-alloc invariant).
        let net = trained_like_net(13);
        let qnet = QuantizedMlp::from_mlp(&net, 6, 6, &calib()).unwrap();
        let mut ws = ForwardWorkspace::new();
        let mut backend = ExactBackend::new();
        let mut rng = Pcg32::seed_from_u64(14);
        let mut y = Vec::new();
        let masks = qnet.sample_masks(&mut rng);
        qnet.forward_with_masks_into(&mut backend, &calib()[0], &masks, &mut ws, &mut y);
        let caps = (
            ws.h.capacity(),
            ws.h_next.capacity(),
            ws.codes.capacity(),
            ws.acc.capacity(),
            ws.out_mask.capacity(),
        );
        for x in calib() {
            let masks = qnet.sample_masks(&mut rng);
            qnet.forward_with_masks_into(&mut backend, &x, &masks, &mut ws, &mut y);
        }
        assert_eq!(
            caps,
            (
                ws.h.capacity(),
                ws.h_next.capacity(),
                ws.codes.capacity(),
                ws.acc.capacity(),
                ws.out_mask.capacity(),
            )
        );
    }

    #[test]
    fn kept_codes_stable_across_iterations() {
        // The property compute reuse relies on: with a fixed input frame,
        // the first dense layer's input codes are identical across MC
        // iterations (dropout only zeroes them).
        let net = trained_like_net(10);
        let qnet = QuantizedMlp::from_mlp(&net, 6, 6, &calib()).unwrap();
        // Input layer has no dropout before it, so codes are trivially
        // stable; verify via two identical deterministic passes.
        let mut b1 = ExactBackend::new();
        let mut b2 = ExactBackend::new();
        let x = vec![0.3, 0.1, -0.2, 0.7];
        let y1 = qnet.forward_with_masks(&mut b1, &x, &[]);
        let y2 = qnet.forward_with_masks(&mut b2, &x, &[]);
        assert_eq!(y1, y2);
    }
}
