//! Shape diagnostics behind the paper's Fig. 2(b–d).
//!
//! - [`fit_gaussian_1d`] quantifies how Gaussian-like a measured bell curve
//!   is (Fig. 2(b)),
//! - [`rectilinearity`] and [`superellipse_exponent`] quantify the contour
//!   shape of 2-D kernels: 2.0 for elliptical (Gaussian) contours, larger
//!   as the contours square off toward the HMG's rectilinear tails
//!   (Fig. 2(c,d)).

use crate::{AnalogError, Result};

/// Result of a least-squares Gaussian fit to samples of a bell curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianFit {
    /// Fitted centre.
    pub mean: f64,
    /// Fitted standard deviation.
    pub sigma: f64,
    /// Fitted peak amplitude.
    pub amplitude: f64,
    /// Coefficient of determination of the fit in the linear domain.
    pub r_squared: f64,
}

/// Fits `y ≈ A·exp(−(x−μ)²/2σ²)` by Caruana's method: a weighted parabola
/// fit to `ln y` (weights `y²` emphasize the bell core and de-emphasize the
/// noisy tail).
///
/// # Errors
///
/// Returns [`AnalogError::InvalidArgument`] for fewer than 4 samples,
/// non-positive `y` values, or data without curvature (no bell).
pub fn fit_gaussian_1d(xs: &[f64], ys: &[f64]) -> Result<GaussianFit> {
    if xs.len() != ys.len() || xs.len() < 4 {
        return Err(AnalogError::InvalidArgument(
            "gaussian fit requires at least 4 matched samples".into(),
        ));
    }
    if ys.iter().any(|&y| y <= 0.0) {
        return Err(AnalogError::InvalidArgument(
            "gaussian fit requires positive samples".into(),
        ));
    }
    // Weighted normal equations for ln y = a + b x + c x².
    let mut s = [[0.0f64; 3]; 3];
    let mut t = [0.0f64; 3];
    for (&x, &y) in xs.iter().zip(ys) {
        let w = y * y;
        let ln_y = y.ln();
        let basis = [1.0, x, x * x];
        for i in 0..3 {
            for j in 0..3 {
                s[i][j] += w * basis[i] * basis[j];
            }
            t[i] += w * basis[i] * ln_y;
        }
    }
    let m = navicim_math::linalg::Matrix::from_rows(&[&s[0][..], &s[1][..], &s[2][..]])
        .expect("3x3 system");
    let coef = m
        .solve(&t)
        .map_err(|_| AnalogError::InvalidArgument("degenerate gaussian fit system".into()))?;
    let (a, b, c) = (coef[0], coef[1], coef[2]);
    if c >= 0.0 {
        return Err(AnalogError::InvalidArgument(
            "data has no downward curvature; not a bell".into(),
        ));
    }
    let sigma = (-1.0 / (2.0 * c)).sqrt();
    let mean = -b / (2.0 * c);
    let amplitude = (a - b * b / (4.0 * c)).exp();

    // R² in the linear domain.
    let mean_y: f64 = ys.iter().sum::<f64>() / ys.len() as f64;
    let mut ss_res = 0.0;
    let mut ss_tot = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        let pred = amplitude * (-0.5 * ((x - mean) / sigma).powi(2)).exp();
        ss_res += (y - pred) * (y - pred);
        ss_tot += (y - mean_y) * (y - mean_y);
    }
    let r_squared = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        0.0
    };
    Ok(GaussianFit {
        mean,
        sigma,
        amplitude,
        r_squared,
    })
}

/// Distance from `center` along unit `direction` at which `f` first drops
/// below `level`, or `None` within `max_r`.
pub fn contour_crossing<F>(
    f: F,
    center: (f64, f64),
    direction: (f64, f64),
    level: f64,
    max_r: f64,
) -> Option<f64>
where
    F: Fn(f64, f64) -> f64,
{
    let norm = (direction.0 * direction.0 + direction.1 * direction.1).sqrt();
    let (dx, dy) = (direction.0 / norm, direction.1 / norm);
    let step = max_r / 4000.0;
    let mut r = 0.0;
    while r <= max_r {
        if f(center.0 + r * dx, center.1 + r * dy) < level {
            return Some(r);
        }
        r += step;
    }
    None
}

/// Ratio of the diagonal to the axis contour-crossing distance for a 2-D
/// kernel centred at `center`, measured at `level`.
///
/// 1.0 for circular/elliptical contours; √2 in the rectilinear (square)
/// limit of HMG tails.
///
/// # Errors
///
/// Returns [`AnalogError::InvalidArgument`] when either crossing is not
/// found within `max_r`.
pub fn rectilinearity<F>(f: F, center: (f64, f64), level: f64, max_r: f64) -> Result<f64>
where
    F: Fn(f64, f64) -> f64,
{
    let axis = contour_crossing(&f, center, (1.0, 0.0), level, max_r)
        .ok_or_else(|| AnalogError::InvalidArgument("axis contour crossing not found".into()))?;
    let diag = contour_crossing(&f, center, (1.0, 1.0), level, max_r).ok_or_else(|| {
        AnalogError::InvalidArgument("diagonal contour crossing not found".into())
    })?;
    if axis <= 0.0 {
        return Err(AnalogError::InvalidArgument(
            "contour collapses at the centre".into(),
        ));
    }
    Ok(diag / axis)
}

/// Superellipse exponent `p` implied by a [`rectilinearity`] ratio: the
/// contour `|x/a|^p + |y/a|^p = 1` has diagonal/axis ratio `√2·2^(−1/p)`.
///
/// `p = 2` is an ellipse; `p → ∞` is the rectilinear square.
///
/// # Errors
///
/// Returns [`AnalogError::InvalidArgument`] for ratios outside `(0, √2)`.
pub fn superellipse_exponent(ratio: f64) -> Result<f64> {
    let sqrt2 = std::f64::consts::SQRT_2;
    if !(ratio > 0.0 && ratio < sqrt2) {
        return Err(AnalogError::InvalidArgument(format!(
            "ratio must lie in (0, √2), got {ratio}"
        )));
    }
    Ok(std::f64::consts::LN_2 / (sqrt2 / ratio).ln())
}

#[cfg(test)]
mod tests {
    use super::*;
    use navicim_device::inverter::GaussianLikeCell;
    use navicim_device::params::TechParams;
    use navicim_math::approx_eq;

    #[test]
    fn fit_recovers_exact_gaussian() {
        let (mu, sigma, amp) = (0.4, 0.07, 2.5e-6);
        let xs: Vec<f64> = (0..80).map(|i| 0.1 + i as f64 * 0.0075).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| amp * f64::exp(-0.5 * ((x - mu) / sigma).powi(2)))
            .collect();
        let fit = fit_gaussian_1d(&xs, &ys).unwrap();
        assert!(approx_eq(fit.mean, mu, 1e-6));
        assert!(approx_eq(fit.sigma, sigma, 1e-6));
        assert!(approx_eq(fit.amplitude, amp, 1e-6));
        assert!(fit.r_squared > 0.999_999);
    }

    #[test]
    fn fit_rejects_bad_input() {
        assert!(fit_gaussian_1d(&[0.0, 1.0], &[1.0, 2.0]).is_err());
        assert!(fit_gaussian_1d(&[0.0, 1.0, 2.0, 3.0], &[1.0, -1.0, 1.0, 1.0]).is_err());
        // Upward curvature (valley) is not a bell.
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| f64::exp((x - 2.0) * (x - 2.0)))
            .collect();
        assert!(fit_gaussian_1d(&xs, &ys).is_err());
    }

    #[test]
    fn inverter_bell_is_gaussian_like() {
        // The paper's Fig. 2(b): the device bell fits a Gaussian with high
        // R² over its core.
        let tech = TechParams::cmos_45nm();
        let cell = GaussianLikeCell::with_center(&tech, 0.5);
        let sigma = cell.effective_sigma();
        let xs: Vec<f64> = (0..121)
            .map(|i| 0.5 + (i as f64 - 60.0) / 60.0 * 2.5 * sigma)
            .collect();
        let ys: Vec<f64> = xs.iter().map(|&x| cell.current(x)).collect();
        let fit = fit_gaussian_1d(&xs, &ys).unwrap();
        assert!(fit.r_squared > 0.97, "R² = {}", fit.r_squared);
        assert!(approx_eq(fit.mean, 0.5, 0.02));
    }

    #[test]
    fn gaussian_contours_are_circular() {
        let g = |x: f64, y: f64| f64::exp(-0.5 * (x * x + y * y));
        let ratio = rectilinearity(g, (0.0, 0.0), g(2.5, 0.0), 8.0).unwrap();
        assert!(approx_eq(ratio, 1.0, 0.01), "ratio {ratio}");
        let p = superellipse_exponent(ratio).unwrap();
        assert!((p - 2.0).abs() < 0.1, "exponent {p}");
    }

    #[test]
    fn hmg_contours_are_rectilinear() {
        // Harmonic composition of two unit Gaussians.
        let h = |x: f64, y: f64| {
            let g1 = f64::exp(-0.5 * x * x).max(1e-300);
            let g2 = f64::exp(-0.5 * y * y).max(1e-300);
            2.0 / (1.0 / g1 + 1.0 / g2)
        };
        let ratio = rectilinearity(h, (0.0, 0.0), h(3.0, 0.0), 10.0).unwrap();
        assert!(ratio > 1.2, "ratio {ratio}");
        let p = superellipse_exponent(ratio).unwrap();
        assert!(p > 4.0, "exponent {p} should be far above the ellipse's 2");
    }

    #[test]
    fn device_2d_contours_squarer_than_gaussian() {
        // Fig. 2(c,d) on the actual device model: the two-input inverter's
        // iso-current contours are measurably more rectilinear than the
        // product-Gaussian reference.
        let tech = TechParams::cmos_45nm();
        let a = GaussianLikeCell::with_center(&tech, 0.5);
        let b = GaussianLikeCell::with_center(&tech, 0.5);
        let dev = move |x: f64, y: f64| 1.0 / (1.0 / a.current(x) + 1.0 / b.current(y));
        let level = dev(0.5 + 0.25, 0.5);
        let ratio = rectilinearity(dev, (0.5, 0.5), level, 0.5).unwrap();
        assert!(ratio > 1.15, "device ratio {ratio}");
    }

    #[test]
    fn crossing_none_when_level_too_low() {
        let g = |x: f64, y: f64| f64::exp(-0.5 * (x * x + y * y));
        assert!(contour_crossing(g, (0.0, 0.0), (1.0, 0.0), 1e-30, 1.0).is_none());
    }

    #[test]
    fn superellipse_exponent_bounds() {
        assert!(superellipse_exponent(0.0).is_err());
        assert!(superellipse_exponent(1.5).is_err());
        assert!(superellipse_exponent(1.0).unwrap() - 2.0 < 1e-12);
    }
}
