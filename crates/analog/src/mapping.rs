//! Affine mapping between world coordinates and gate voltages.
//!
//! The HMGM map lives in metres; the inverter array lives in volts. Each
//! axis gets an affine map chosen so the spatial extent of the flying
//! domain fills the usable voltage window, which in turn determines which
//! spatial kernel widths the device can realize.

use crate::{AnalogError, Result};

/// Affine map for one axis: `[x_lo, x_hi]` (world) ↔ `[v_lo, v_hi]` (gate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AxisMap {
    x_lo: f64,
    x_hi: f64,
    v_lo: f64,
    v_hi: f64,
}

impl AxisMap {
    /// Creates an axis map.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidArgument`] unless both intervals are
    /// non-degenerate and increasing.
    pub fn new(x_lo: f64, x_hi: f64, v_lo: f64, v_hi: f64) -> Result<Self> {
        if !(x_lo < x_hi && v_lo < v_hi) {
            return Err(AnalogError::InvalidArgument(format!(
                "axis map requires increasing intervals, got x:[{x_lo},{x_hi}] v:[{v_lo},{v_hi}]"
            )));
        }
        Ok(Self {
            x_lo,
            x_hi,
            v_lo,
            v_hi,
        })
    }

    /// Volts per metre.
    pub fn scale(&self) -> f64 {
        (self.v_hi - self.v_lo) / (self.x_hi - self.x_lo)
    }

    /// World interval covered by the map.
    pub fn world_range(&self) -> (f64, f64) {
        (self.x_lo, self.x_hi)
    }

    /// Voltage interval covered by the map.
    pub fn voltage_range(&self) -> (f64, f64) {
        (self.v_lo, self.v_hi)
    }

    /// World coordinate → gate voltage (clamped to the voltage window).
    pub fn to_voltage(&self, x: f64) -> f64 {
        (self.v_lo + (x - self.x_lo) * self.scale()).clamp(self.v_lo, self.v_hi)
    }

    /// Gate voltage → world coordinate.
    pub fn to_world(&self, v: f64) -> f64 {
        self.x_lo + (v - self.v_lo) / self.scale()
    }

    /// Converts a spatial sigma (metres) to a voltage-domain sigma.
    pub fn sigma_to_voltage(&self, sigma_x: f64) -> f64 {
        sigma_x * self.scale()
    }

    /// Converts a voltage-domain sigma to a spatial sigma.
    pub fn sigma_to_world(&self, sigma_v: f64) -> f64 {
        sigma_v / self.scale()
    }
}

/// Per-axis maps for a full query space (typically 3-D).
#[derive(Debug, Clone, PartialEq)]
pub struct SpaceMap {
    axes: Vec<AxisMap>,
}

impl SpaceMap {
    /// Creates a space map from per-axis maps.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidArgument`] for an empty axis list.
    pub fn new(axes: Vec<AxisMap>) -> Result<Self> {
        if axes.is_empty() {
            return Err(AnalogError::InvalidArgument(
                "space map requires at least one axis".into(),
            ));
        }
        Ok(Self { axes })
    }

    /// Builds a map covering the axis-aligned bounding box of `points`,
    /// with a margin, onto a common voltage window.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidArgument`] for empty/degenerate data.
    pub fn fit_to_points(points: &[Vec<f64>], v_lo: f64, v_hi: f64, margin: f64) -> Result<Self> {
        let dim = points
            .first()
            .map(|p| p.len())
            .filter(|&d| d > 0)
            .ok_or_else(|| {
                AnalogError::InvalidArgument("fit_to_points requires non-empty data".into())
            })?;
        let mut axes = Vec::with_capacity(dim);
        for d in 0..dim {
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for p in points {
                if p.len() != dim {
                    return Err(AnalogError::InvalidArgument(
                        "fit_to_points requires consistent dimensions".into(),
                    ));
                }
                lo = lo.min(p[d]);
                hi = hi.max(p[d]);
            }
            if !(lo < hi) {
                // Degenerate axis: widen artificially.
                lo -= 0.5;
                hi += 0.5;
            }
            let pad = (hi - lo) * margin;
            axes.push(AxisMap::new(lo - pad, hi + pad, v_lo, v_hi)?);
        }
        Self::new(axes)
    }

    /// Number of axes.
    pub fn dim(&self) -> usize {
        self.axes.len()
    }

    /// Per-axis maps.
    pub fn axes(&self) -> &[AxisMap] {
        &self.axes
    }

    /// Maps a world point to gate voltages.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the map dimension.
    pub fn to_voltages(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.dim(), "point dimension mismatch");
        x.iter()
            .zip(&self.axes)
            .map(|(&xi, a)| a.to_voltage(xi))
            .collect()
    }

    /// Maps gate voltages back to a world point.
    ///
    /// # Panics
    ///
    /// Panics if `v.len()` differs from the map dimension.
    pub fn to_world(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.dim(), "voltage dimension mismatch");
        v.iter()
            .zip(&self.axes)
            .map(|(&vi, a)| a.to_world(vi))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use navicim_math::approx_eq;

    #[test]
    fn axis_roundtrip() {
        let m = AxisMap::new(-2.0, 6.0, 0.1, 0.9).unwrap();
        for &x in &[-2.0, 0.0, 3.3, 6.0] {
            assert!(approx_eq(m.to_world(m.to_voltage(x)), x, 1e-12));
        }
    }

    #[test]
    fn axis_clamps_out_of_domain() {
        let m = AxisMap::new(0.0, 1.0, 0.2, 0.8).unwrap();
        assert_eq!(m.to_voltage(-10.0), 0.2);
        assert_eq!(m.to_voltage(10.0), 0.8);
    }

    #[test]
    fn sigma_scaling_consistent() {
        let m = AxisMap::new(0.0, 4.0, 0.0, 1.0).unwrap();
        assert!(approx_eq(m.scale(), 0.25, 1e-12));
        assert!(approx_eq(m.sigma_to_voltage(0.8), 0.2, 1e-12));
        assert!(approx_eq(m.sigma_to_world(0.2), 0.8, 1e-12));
    }

    #[test]
    fn validation() {
        assert!(AxisMap::new(1.0, 1.0, 0.0, 1.0).is_err());
        assert!(AxisMap::new(0.0, 1.0, 0.5, 0.5).is_err());
        assert!(SpaceMap::new(vec![]).is_err());
    }

    #[test]
    fn fit_to_points_covers_data() {
        let pts = vec![
            vec![0.0, -1.0, 5.0],
            vec![2.0, 3.0, 5.5],
            vec![1.0, 1.0, 4.5],
        ];
        let m = SpaceMap::fit_to_points(&pts, 0.1, 0.9, 0.1).unwrap();
        assert_eq!(m.dim(), 3);
        for p in &pts {
            let vs = m.to_voltages(p);
            for v in &vs {
                assert!(*v > 0.1 && *v < 0.9, "interior points avoid the rails");
            }
            let back = m.to_world(&vs);
            for (a, b) in back.iter().zip(p) {
                assert!(approx_eq(*a, *b, 1e-9));
            }
        }
    }

    #[test]
    fn degenerate_axis_widened() {
        let pts = vec![vec![1.0, 7.0], vec![2.0, 7.0]];
        let m = SpaceMap::fit_to_points(&pts, 0.0, 1.0, 0.05).unwrap();
        // The constant axis still yields a usable map.
        let (lo, hi) = m.axes()[1].world_range();
        assert!(lo < 7.0 && hi > 7.0);
    }

    #[test]
    fn fit_rejects_bad_input() {
        assert!(SpaceMap::fit_to_points(&[], 0.0, 1.0, 0.1).is_err());
        let ragged = vec![vec![1.0], vec![1.0, 2.0]];
        assert!(SpaceMap::fit_to_points(&ragged, 0.0, 1.0, 0.1).is_err());
    }
}
