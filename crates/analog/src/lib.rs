//! Analog compute-in-memory likelihood engine (paper Section II).
//!
//! This crate compiles a Harmonic-Mean-of-Gaussian mixture map
//! ([`navicim_gmm::hmg::HmgmModel`]) onto an array of floating-gate
//! multi-input inverters and evaluates map likelihoods in the analog
//! domain:
//!
//! 1. a query point is mapped to gate voltages ([`mapping`]) and quantized
//!    by the input DACs ([`dac`]),
//! 2. every programmed column conducts its kernel current simultaneously;
//!    the per-column currents sum on a shared line by Kirchhoff's current
//!    law ([`array`]),
//! 3. the summed current — proportional to the mixture likelihood — is
//!    digitized by a logarithmic ADC ([`adc`]), yielding the log-likelihood
//!    directly,
//! 4. [`engine::HmgmCimEngine`] wires the steps together and keeps the
//!    operation counts needed by the energy model.
//!
//! [`diagnostics`] provides the Gaussian-fit and contour-shape analyses
//! behind the paper's Fig. 2(b–d).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod adc;
pub mod array;
pub mod dac;
pub mod diagnostics;
pub mod engine;
pub mod mapping;

use std::error::Error;
use std::fmt;

/// Error type for analog-CIM construction and programming.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalogError {
    /// An argument was outside its valid domain.
    InvalidArgument(String),
    /// A kernel could not be realized on the device (e.g. sigma outside the
    /// programmable window after mapping).
    Unrealizable(String),
    /// Propagated device-model error.
    Device(navicim_device::DeviceError),
}

impl fmt::Display for AnalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalogError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            AnalogError::Unrealizable(msg) => write!(f, "kernel not realizable: {msg}"),
            AnalogError::Device(e) => write!(f, "device error: {e}"),
        }
    }
}

impl Error for AnalogError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AnalogError::Device(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<navicim_device::DeviceError> for AnalogError {
    fn from(e: navicim_device::DeviceError) -> Self {
        AnalogError::Device(e)
    }
}

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, AnalogError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        use std::error::Error as _;
        let e = AnalogError::Unrealizable("sigma too small".into());
        assert!(e.to_string().contains("sigma too small"));
        let d: AnalogError = navicim_device::DeviceError::InvalidParameter("x".into()).into();
        assert!(d.source().is_some());
    }
}
