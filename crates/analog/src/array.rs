//! The inverter-column array and its Kirchhoff current summation.
//!
//! One column holds one multi-input inverter programmed to an HMG kernel;
//! mixture weights are realized by replicating a column (the paper's setup
//! uses 500 inverter columns to emulate 100 mixture components, i.e. up to
//! five replicas per component). All columns share the query voltages and
//! their output currents sum on a single line — the entire mixture
//! likelihood is produced in one analog step.

use crate::{AnalogError, Result};
use navicim_device::inverter::{GaussianLikeCell, MultiInputInverter};
use navicim_device::params::TechParams;
use navicim_device::variation::ProcessVariation;
use navicim_math::rng::Rng64;

/// Smallest programmable conduction-window width, in volts.
pub const MIN_OVERLAP: f64 = 0.05;

/// Finds the conduction-window width (`overlap`) whose Gaussian-like cell
/// has the requested voltage-domain sigma, by bisection.
///
/// # Errors
///
/// Returns [`AnalogError::Unrealizable`] when the requested sigma lies
/// outside the device's programmable range for this technology.
pub fn calibrate_overlap(tech: &TechParams, sigma_v: f64) -> Result<f64> {
    let sigma_at = |overlap: f64| -> f64 {
        GaussianLikeCell::with_center_width(tech, tech.vdd * 0.5, overlap)
            .expect("overlap kept in range by caller")
            .effective_sigma()
    };
    let (lo, hi) = (MIN_OVERLAP, tech.vdd);
    let (s_lo, s_hi) = (sigma_at(lo), sigma_at(hi));
    if sigma_v < s_lo || sigma_v > s_hi {
        return Err(AnalogError::Unrealizable(format!(
            "sigma {sigma_v:.4} V outside device range [{s_lo:.4}, {s_hi:.4}] V"
        )));
    }
    let (mut lo, mut hi) = (lo, hi);
    for _ in 0..60 {
        let mid = 0.5 * (lo + hi);
        if sigma_at(mid) < sigma_v {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(0.5 * (lo + hi))
}

/// Device-achievable voltage-domain sigma range for a technology.
pub fn device_sigma_range(tech: &TechParams) -> (f64, f64) {
    let s = |overlap: f64| {
        GaussianLikeCell::with_center_width(tech, tech.vdd * 0.5, overlap)
            .expect("bounds are valid overlaps")
            .effective_sigma()
    };
    (s(MIN_OVERLAP), s(tech.vdd))
}

/// One programmed column: a multi-input inverter plus its replica count.
#[derive(Debug, Clone, PartialEq)]
pub struct CimColumn {
    inverter: MultiInputInverter,
    replicas: u32,
}

impl CimColumn {
    /// Creates a column from a programmed inverter and a replica count.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidArgument`] for a zero replica count.
    pub fn new(inverter: MultiInputInverter, replicas: u32) -> Result<Self> {
        if replicas == 0 {
            return Err(AnalogError::InvalidArgument(
                "replica count must be at least 1".into(),
            ));
        }
        Ok(Self { inverter, replicas })
    }

    /// The programmed inverter.
    pub fn inverter(&self) -> &MultiInputInverter {
        &self.inverter
    }

    /// Number of physical replicas implementing the mixture weight.
    pub fn replicas(&self) -> u32 {
        self.replicas
    }

    /// Column output current at the given gate voltages.
    pub fn current(&self, voltages: &[f64]) -> f64 {
        self.replicas as f64 * self.inverter.current(voltages)
    }

    /// Peak column current (all inputs at their centres).
    pub fn peak_current(&self) -> f64 {
        self.replicas as f64 * self.inverter.peak_current()
    }
}

/// The full array: columns sharing input lines and an output current line.
#[derive(Debug, Clone, PartialEq)]
pub struct CimArray {
    columns: Vec<CimColumn>,
    num_inputs: usize,
}

impl CimArray {
    /// Assembles an array from programmed columns.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidArgument`] for an empty column list or
    /// inconsistent input counts.
    pub fn new(columns: Vec<CimColumn>) -> Result<Self> {
        let num_inputs = columns
            .first()
            .map(|c| c.inverter.num_inputs())
            .ok_or_else(|| {
                AnalogError::InvalidArgument("array requires at least one column".into())
            })?;
        if columns
            .iter()
            .any(|c| c.inverter.num_inputs() != num_inputs)
        {
            return Err(AnalogError::InvalidArgument(
                "all columns must share the input count".into(),
            ));
        }
        Ok(Self {
            columns,
            num_inputs,
        })
    }

    /// Number of logical columns (mixture components).
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Number of physical inverter columns, counting replicas — the
    /// paper's "500 columns for 100 components" figure of merit.
    pub fn num_physical_columns(&self) -> usize {
        self.columns.iter().map(|c| c.replicas as usize).sum()
    }

    /// Number of shared input lines.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Programmed columns.
    pub fn columns(&self) -> &[CimColumn] {
        &self.columns
    }

    /// Total output current for the shared gate voltages — the Kirchhoff
    /// sum over all columns, proportional to the mixture likelihood.
    ///
    /// # Panics
    ///
    /// Panics if `voltages.len()` differs from the input count.
    pub fn total_current(&self, voltages: &[f64]) -> f64 {
        assert_eq!(
            voltages.len(),
            self.num_inputs,
            "voltage count must match input lines"
        );
        self.columns.iter().map(|c| c.current(voltages)).sum()
    }

    /// Maximum possible output current (upper ADC range bound).
    pub fn max_current(&self) -> f64 {
        self.columns.iter().map(|c| c.peak_current()).sum()
    }

    /// Applies process variation to every cell of every column in place.
    pub fn apply_variation<R: Rng64 + ?Sized>(&mut self, pv: &ProcessVariation, rng: &mut R) {
        for col in &mut self.columns {
            let cells: Vec<GaussianLikeCell> = col
                .inverter
                .cells()
                .iter()
                .map(|&cell| pv.perturb_cell(cell, rng))
                .collect();
            col.inverter =
                MultiInputInverter::new(cells).expect("cell count preserved by perturbation");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use navicim_math::rng::Pcg32;

    fn tech() -> TechParams {
        TechParams::cmos_45nm()
    }

    fn simple_array() -> CimArray {
        let t = tech();
        let inv1 = MultiInputInverter::from_centers(&t, &[0.3, 0.5, 0.7], 0.3).unwrap();
        let inv2 = MultiInputInverter::from_centers(&t, &[0.6, 0.4, 0.5], 0.3).unwrap();
        CimArray::new(vec![
            CimColumn::new(inv1, 2).unwrap(),
            CimColumn::new(inv2, 1).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn calibrate_overlap_roundtrip() {
        let t = tech();
        let (s_min, s_max) = device_sigma_range(&t);
        assert!(s_min < s_max);
        for frac in [0.2, 0.5, 0.8] {
            let target = s_min + frac * (s_max - s_min);
            let overlap = calibrate_overlap(&t, target).unwrap();
            let got = GaussianLikeCell::with_center_width(&t, 0.5, overlap)
                .unwrap()
                .effective_sigma();
            assert!(
                (got / target - 1.0).abs() < 0.02,
                "target {target} got {got}"
            );
        }
    }

    #[test]
    fn calibrate_rejects_out_of_range() {
        let t = tech();
        let (s_min, s_max) = device_sigma_range(&t);
        assert!(matches!(
            calibrate_overlap(&t, s_min * 0.5),
            Err(AnalogError::Unrealizable(_))
        ));
        assert!(matches!(
            calibrate_overlap(&t, s_max * 2.0),
            Err(AnalogError::Unrealizable(_))
        ));
    }

    #[test]
    fn replicas_scale_current() {
        let t = tech();
        let inv = MultiInputInverter::from_centers(&t, &[0.5], 0.3).unwrap();
        let c1 = CimColumn::new(inv.clone(), 1).unwrap();
        let c3 = CimColumn::new(inv, 3).unwrap();
        let v = [0.5];
        assert!((c3.current(&v) / c1.current(&v) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_replicas_rejected() {
        let t = tech();
        let inv = MultiInputInverter::from_centers(&t, &[0.5], 0.3).unwrap();
        assert!(CimColumn::new(inv, 0).is_err());
    }

    #[test]
    fn kirchhoff_sum() {
        let array = simple_array();
        let v = [0.45, 0.5, 0.55];
        let total = array.total_current(&v);
        let manual: f64 = array.columns().iter().map(|c| c.current(&v)).sum();
        assert_eq!(total, manual);
        assert!(total > 0.0);
    }

    #[test]
    fn physical_column_count() {
        let array = simple_array();
        assert_eq!(array.num_columns(), 2);
        assert_eq!(array.num_physical_columns(), 3);
    }

    #[test]
    fn max_current_bounds_outputs() {
        let array = simple_array();
        let max = array.max_current();
        for vset in [[0.3, 0.5, 0.7], [0.5, 0.5, 0.5], [0.1, 0.9, 0.5]] {
            assert!(array.total_current(&vset) <= max * 1.0001);
        }
    }

    #[test]
    fn inconsistent_inputs_rejected() {
        let t = tech();
        let a = MultiInputInverter::from_centers(&t, &[0.5], 0.3).unwrap();
        let b = MultiInputInverter::from_centers(&t, &[0.5, 0.5], 0.3).unwrap();
        let cols = vec![CimColumn::new(a, 1).unwrap(), CimColumn::new(b, 1).unwrap()];
        assert!(CimArray::new(cols).is_err());
        assert!(CimArray::new(vec![]).is_err());
    }

    #[test]
    fn variation_perturbs_currents() {
        let mut array = simple_array();
        let before = array.total_current(&[0.45, 0.5, 0.55]);
        let pv = ProcessVariation::from_tech(&tech());
        let mut rng = Pcg32::seed_from_u64(7);
        array.apply_variation(&pv, &mut rng);
        let after = array.total_current(&[0.45, 0.5, 0.55]);
        assert_ne!(before, after);
        // Perturbation is bounded: same order of magnitude.
        assert!((after / before) > 0.2 && (after / before) < 5.0);
    }
}
