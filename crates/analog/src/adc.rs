//! Output analog-to-digital converter models.
//!
//! The paper converts the summed column current to the digital domain with
//! a *logarithmic* ADC, so that the produced code is directly proportional
//! to the log-likelihood needed by the particle filter — one more workload
//! reduction from co-design. A linear ADC is provided for comparison and
//! for the SRAM partial-sum path.

use crate::{AnalogError, Result};

/// Logarithmic current-input ADC: codes are uniform in `ln(I)` between
/// `i_min` and `i_max`.
///
/// ```
/// use navicim_analog::adc::LogAdc;
/// let adc = LogAdc::new(8, 1e-12, 1e-4).unwrap();
/// let code = adc.code_for(1e-8);
/// let back = adc.log_current(code);
/// assert!((back - (1e-8f64).ln()).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogAdc {
    bits: u32,
    ln_min: f64,
    ln_max: f64,
}

impl LogAdc {
    /// Creates a log-ADC covering currents `[i_min, i_max]`.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidArgument`] unless `1 <= bits <= 16`
    /// and `0 < i_min < i_max`.
    pub fn new(bits: u32, i_min: f64, i_max: f64) -> Result<Self> {
        if !(1..=16).contains(&bits) {
            return Err(AnalogError::InvalidArgument(format!(
                "adc bits must be in [1, 16], got {bits}"
            )));
        }
        if !(i_min > 0.0 && i_min < i_max && i_max.is_finite()) {
            return Err(AnalogError::InvalidArgument(format!(
                "adc range requires 0 < i_min < i_max, got [{i_min}, {i_max}]"
            )));
        }
        Ok(Self {
            bits,
            ln_min: i_min.ln(),
            ln_max: i_max.ln(),
        })
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of codes (`2^bits`).
    pub fn levels(&self) -> u64 {
        1u64 << self.bits
    }

    /// Log-domain step per code.
    pub fn log_lsb(&self) -> f64 {
        (self.ln_max - self.ln_min) / (self.levels() - 1) as f64
    }

    /// Code for a current (clamped into range).
    pub fn code_for(&self, current: f64) -> u64 {
        let ln_i = current.max(1e-300).ln().clamp(self.ln_min, self.ln_max);
        let frac = (ln_i - self.ln_min) / (self.ln_max - self.ln_min);
        ((frac * (self.levels() - 1) as f64).round() as u64).min(self.levels() - 1)
    }

    /// Reconstructed `ln(I)` for a code.
    ///
    /// # Panics
    ///
    /// Panics if `code` exceeds the code range.
    pub fn log_current(&self, code: u64) -> f64 {
        assert!(code < self.levels(), "code out of range");
        self.ln_min + code as f64 * self.log_lsb()
    }

    /// One-step conversion: current → reconstructed `ln(I)`.
    pub fn convert(&self, current: f64) -> f64 {
        self.log_current(self.code_for(current))
    }
}

/// Linear current-input ADC used by the digital partial-sum path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearAdc {
    bits: u32,
    i_max: f64,
}

impl LinearAdc {
    /// Creates a linear ADC spanning `[0, i_max]`.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidArgument`] unless `1 <= bits <= 16`
    /// and `i_max > 0`.
    pub fn new(bits: u32, i_max: f64) -> Result<Self> {
        if !(1..=16).contains(&bits) {
            return Err(AnalogError::InvalidArgument(format!(
                "adc bits must be in [1, 16], got {bits}"
            )));
        }
        if !(i_max > 0.0 && i_max.is_finite()) {
            return Err(AnalogError::InvalidArgument(format!(
                "adc range must be positive, got {i_max}"
            )));
        }
        Ok(Self { bits, i_max })
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of codes.
    pub fn levels(&self) -> u64 {
        1u64 << self.bits
    }

    /// Step size in amperes.
    pub fn lsb(&self) -> f64 {
        self.i_max / (self.levels() - 1) as f64
    }

    /// Code for a current (clamped into `[0, i_max]`).
    pub fn code_for(&self, current: f64) -> u64 {
        let i = current.clamp(0.0, self.i_max);
        ((i / self.i_max * (self.levels() - 1) as f64).round() as u64).min(self.levels() - 1)
    }

    /// Reconstructed current for a code.
    ///
    /// # Panics
    ///
    /// Panics if `code` exceeds the code range.
    pub fn current(&self, code: u64) -> f64 {
        assert!(code < self.levels(), "code out of range");
        code as f64 * self.lsb()
    }

    /// One-step conversion: current → reconstructed current.
    pub fn convert(&self, current: f64) -> f64 {
        self.current(self.code_for(current))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_adc_validation() {
        assert!(LogAdc::new(0, 1e-12, 1e-4).is_err());
        assert!(LogAdc::new(8, 0.0, 1e-4).is_err());
        assert!(LogAdc::new(8, 1e-4, 1e-12).is_err());
    }

    #[test]
    fn log_adc_roundtrip_error_bounded() {
        let adc = LogAdc::new(8, 1e-12, 1e-4).unwrap();
        for k in 0..100 {
            let i = 1e-12 * 10f64.powf(k as f64 * 8.0 / 100.0);
            let err = (adc.convert(i) - i.ln()).abs();
            assert!(err <= adc.log_lsb() * 0.5 + 1e-12, "err {err} at {i}");
        }
    }

    #[test]
    fn log_adc_clamps() {
        let adc = LogAdc::new(6, 1e-10, 1e-5).unwrap();
        assert_eq!(adc.code_for(1e-20), 0);
        assert_eq!(adc.code_for(1.0), adc.levels() - 1);
    }

    #[test]
    fn log_adc_resolution_improves_with_bits() {
        let a4 = LogAdc::new(4, 1e-12, 1e-4).unwrap();
        let a8 = LogAdc::new(8, 1e-12, 1e-4).unwrap();
        assert!(a8.log_lsb() < a4.log_lsb());
    }

    #[test]
    fn log_adc_codes_monotone_in_current() {
        let adc = LogAdc::new(6, 1e-12, 1e-4).unwrap();
        let mut prev = 0;
        for k in 0..50 {
            let i = 1e-12 * 10f64.powf(k as f64 * 8.0 / 50.0);
            let code = adc.code_for(i);
            assert!(code >= prev);
            prev = code;
        }
    }

    #[test]
    fn linear_adc_roundtrip() {
        let adc = LinearAdc::new(8, 1e-4).unwrap();
        for k in 0..=100 {
            let i = k as f64 / 100.0 * 1e-4;
            assert!((adc.convert(i) - i).abs() <= adc.lsb() * 0.5 + 1e-18);
        }
    }

    #[test]
    fn linear_adc_clamps_negative() {
        let adc = LinearAdc::new(8, 1e-4).unwrap();
        assert_eq!(adc.code_for(-1.0), 0);
    }
}
