//! The end-to-end analog likelihood engine.
//!
//! [`HmgmCimEngine`] programs a fitted HMG mixture onto a [`CimArray`] and
//! serves log-likelihood queries through the DAC → array → log-ADC chain,
//! while counting the operations the energy model needs.
//!
//! The engine is split into two layers so many sessions can share one
//! fabricated substrate:
//!
//! - [`CimCompute`] is the immutable compiled fabric (array, DACs, ADC,
//!   space map, noise model, code LUT) held behind an `Arc`. It is `Sync`
//!   and evaluates batches purely — every mutable bit of an evaluation
//!   (noise index, counters) is passed in.
//! - [`HmgmCimEngine`] is one *session* over that fabric: it owns the
//!   counter-based [`NoiseStream`] cursor and the [`EngineStats`].
//!   [`HmgmCimEngine::fork_session`] spawns additional sessions that share
//!   the `Arc`'d fabric, and a serving layer can coalesce many sessions'
//!   queries into one [`CimCompute::eval_segments`] call (each segment
//!   carrying its own stream) with bit-identical per-session results.

use std::sync::Arc;

use crate::adc::LogAdc;
use crate::array::{calibrate_overlap, device_sigma_range, CimArray, CimColumn};
use crate::dac::Dac;
use crate::mapping::SpaceMap;
use crate::{AnalogError, Result};
use navicim_backend::{check_batch_shape, par, LikelihoodBackend, PointBatch};
use navicim_device::inverter::{GaussianLikeCell, MultiInputInverter};
use navicim_device::noise::{NoiseModel, NoiseStream};
use navicim_device::params::TechParams;
use navicim_device::variation::ProcessVariation;
use navicim_gmm::hmg::HmgmModel;
use navicim_gmm::prune::{PruneConfig, PruneIndex, PruneScratch, PRUNE_TILE};
use navicim_math::rng::Pcg32;
use navicim_math::simd::{F64x4, LANES};
use std::sync::atomic::{AtomicU64, Ordering};

/// Device slack (nats) in the CIM column-gating margin, which totals
/// `ln K +` this value (see
/// [`PruneIndex::for_hmg_parts_with_margin`]).
///
/// The index bounds the *mathematical* replica-weighted HMG mixture, but
/// the array evaluates its device realization — process variation,
/// DAC/ADC quantization and inverter-bell shape mismatch all perturb
/// per-column contributions. The log-ADC resolves ~0.08-nat steps, so a
/// column is visible only when its relative contribution reaches ~4%;
/// with this slack the summed dropped columns stay below `e⁻¹² ≈ 6·10⁻⁶`
/// relative, leaving ~3 decades of head-room for device-induced swing
/// while still gating on device-constrained sigma floors (the minimum
/// programmable kernel width is a fixed fraction of the map span, so
/// margins in the digital `ln(K/ε)` regime would rarely gate anything).
/// One residual: gated far columns stop conducting their leakage-level
/// currents, so deep-tail evaluations — where the total current is
/// itself near the leakage floor — may shift by an ADC step;
/// likelihoods there are floor-dominated noise either way. Gating
/// defaults off.
pub const CIM_PRUNE_SLACK_NATS: f64 = 12.0;

/// Configuration of a CIM likelihood engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CimEngineConfig {
    /// Technology node parameters.
    pub tech: TechParams,
    /// Input DAC resolution in bits (the paper operates at 4 bits).
    pub dac_bits: u32,
    /// Log-ADC resolution in bits.
    pub adc_bits: u32,
    /// Maximum replica count available per component for weight encoding.
    pub max_replicas: u32,
    /// Process-variation severity (0 = ideal, 1 = nominal process).
    pub variation_severity: f64,
    /// Evaluation bandwidth for the noise model, in hertz.
    pub noise_bandwidth: f64,
    /// Seed for variation sampling and per-evaluation noise.
    pub seed: u64,
}

impl Default for CimEngineConfig {
    fn default() -> Self {
        Self {
            tech: TechParams::cmos_45nm(),
            dac_bits: 4,
            adc_bits: 8,
            max_replicas: 5,
            variation_severity: 1.0,
            noise_bandwidth: 1e8,
            seed: 0x5eed_c1a0,
        }
    }
}

/// Operation counters exposed to the energy model.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EngineStats {
    /// Likelihood evaluations served.
    pub evaluations: u64,
    /// Input DAC conversions performed (one per axis per evaluation).
    pub dac_conversions: u64,
    /// ADC conversions performed (one per evaluation).
    pub adc_conversions: u64,
    /// Sum of total array currents over all evaluations, in amperes
    /// (divide by `evaluations` for the average conduction current).
    pub current_sum: f64,
    /// Analog column activations actually driven. Column gating skips
    /// the DAC→array drive of pruned columns, so this falls below
    /// [`Self::column_slots`] exactly by the skipped activations.
    pub column_activations: u64,
    /// Column activation slots offered (evaluations × array columns);
    /// equals [`Self::column_activations`] whenever gating is off.
    pub column_slots: u64,
}

impl EngineStats {
    /// Average total array current per evaluation, in amperes.
    pub fn avg_current(&self) -> f64 {
        if self.evaluations == 0 {
            0.0
        } else {
            self.current_sum / self.evaluations as f64
        }
    }

    /// Fraction of offered column slots actually driven — the factor the
    /// energy model scales per-evaluation DAC drive energy by. `1.0`
    /// when no slots were offered (ungated or idle engines).
    pub fn active_column_fraction(&self) -> f64 {
        if self.column_slots == 0 {
            1.0
        } else {
            self.column_activations as f64 / self.column_slots as f64
        }
    }
}

/// Domain separator between the build-time variation RNG and the
/// evaluation noise stream, both derived from [`CimEngineConfig::seed`].
const NOISE_STREAM_SALT: u64 = 0xa0a1_0c1a_77ab_1e5e;

/// Precomputed per-DAC-code reciprocal cell currents.
///
/// The DAC quantizes every axis to `2^dac_bits` output voltages, so the
/// device model's EKV exponentials only ever see a finite set of inputs.
/// This table caches `1/I_cell(dac.output(code))` for every
/// `(column, axis, code)` triple after process variation is applied —
/// the *exact* reciprocal the direct path divides by, so replaying the
/// direct path's summation order over table entries reproduces its
/// total current bit for bit while skipping all per-evaluation device
/// math. Built once per engine; disabled (falling back to the direct
/// path) when the code space is too large to cache.
#[derive(Debug, Clone)]
struct CodeLut {
    /// `1/I_cell` laid out as `(column × axis) × code` strips:
    /// index `(col·dim + axis)·levels + code`.
    recips: Vec<f64>,
    /// Per-column replica counts as f64 — the exact factor
    /// `CimColumn::current` multiplies by.
    replicas: Vec<f64>,
    levels: usize,
    dim: usize,
}

impl CodeLut {
    /// Cap on cached entries (8 MiB of f64): a 4-bit DAC over 100
    /// components × 3 axes needs just 4.8 k entries, but a 16-bit DAC
    /// would need ~20 M — past the cap the direct path wins on locality.
    const MAX_ENTRIES: usize = 1 << 20;

    fn build(array: &CimArray, dacs: &[Dac]) -> Option<Self> {
        let dim = array.num_inputs();
        let levels = dacs.first()?.levels() as usize;
        if dacs.len() != dim || dacs.iter().any(|d| d.levels() as usize != levels) {
            return None;
        }
        let entries = array.num_columns().checked_mul(dim)?.checked_mul(levels)?;
        if entries > Self::MAX_ENTRIES {
            return None;
        }
        let mut recips = Vec::with_capacity(entries);
        for col in array.columns() {
            for (axis, cell) in col.inverter().cells().iter().enumerate() {
                for code in 0..levels {
                    recips.push(1.0 / cell.current(dacs[axis].output(code as u64)));
                }
            }
        }
        let replicas = array
            .columns()
            .iter()
            .map(|c| c.replicas() as f64)
            .collect();
        Some(Self {
            recips,
            replicas,
            levels,
            dim,
        })
    }

    /// Total array current for one point's DAC codes (`codes[axis]`).
    ///
    /// Reproduces `CimArray::total_current` exactly: per-column
    /// reciprocal sum in axis order, `replicas · (1/Σ)` per column,
    /// column-order total — all from 0.0, mul *then* add.
    fn total_current(&self, codes: &[usize]) -> f64 {
        let mut i_total = 0.0;
        for (j, &repl) in self.replicas.iter().enumerate() {
            let col = j * self.dim * self.levels;
            let mut inv_sum = 0.0;
            for (axis, &code) in codes.iter().enumerate() {
                inv_sum += self.recips[col + axis * self.levels + code];
            }
            i_total += repl * (1.0 / inv_sum);
        }
        i_total
    }

    /// Total current over a gated column subset (`cols` ascending), one
    /// point. Per-column math and iteration order match
    /// [`Self::total_current`] exactly, so the full-set subset
    /// reproduces it bit for bit.
    fn total_current_cols(&self, codes: &[usize], cols: &[u32]) -> f64 {
        let mut i_total = 0.0;
        for &j in cols {
            let col = j as usize * self.dim * self.levels;
            let mut inv_sum = 0.0;
            for (axis, &code) in codes.iter().enumerate() {
                inv_sum += self.recips[col + axis * self.levels + code];
            }
            i_total += self.replicas[j as usize] * (1.0 / inv_sum);
        }
        i_total
    }

    /// Gated-subset counterpart of [`Self::total_current4`]: four points,
    /// columns restricted to `cols`, each lane bit-identical to the
    /// scalar [`Self::total_current_cols`].
    fn total_current4_cols(&self, codes: &[usize], cols: &[u32]) -> [f64; LANES] {
        debug_assert_eq!(codes.len(), LANES * self.dim);
        let mut i_total = F64x4::splat(0.0);
        for &j in cols {
            let col = j as usize * self.dim * self.levels;
            let mut inv_sum = F64x4::splat(0.0);
            for axis in 0..self.dim {
                let strip = col + axis * self.levels;
                let g = F64x4::new([
                    self.recips[strip + codes[axis]],
                    self.recips[strip + codes[self.dim + axis]],
                    self.recips[strip + codes[2 * self.dim + axis]],
                    self.recips[strip + codes[3 * self.dim + axis]],
                ]);
                inv_sum = inv_sum + g;
            }
            i_total =
                i_total + F64x4::splat(self.replicas[j as usize]) * (F64x4::splat(1.0) / inv_sum);
        }
        i_total.to_array()
    }

    /// Total array currents for four points at once (`codes[p·dim + axis]`)
    /// through explicit f64 lanes.
    ///
    /// Each lane applies the scalar [`Self::total_current`] operation
    /// sequence verbatim (same gathers, same addition order, same
    /// mul-then-add), so every lane result is bit-identical to evaluating
    /// that point alone — and therefore to the direct device-model path.
    fn total_current4(&self, codes: &[usize]) -> [f64; LANES] {
        debug_assert_eq!(codes.len(), LANES * self.dim);
        let mut i_total = F64x4::splat(0.0);
        for (j, &repl) in self.replicas.iter().enumerate() {
            let col = j * self.dim * self.levels;
            let mut inv_sum = F64x4::splat(0.0);
            for axis in 0..self.dim {
                let strip = col + axis * self.levels;
                let g = F64x4::new([
                    self.recips[strip + codes[axis]],
                    self.recips[strip + codes[self.dim + axis]],
                    self.recips[strip + codes[2 * self.dim + axis]],
                    self.recips[strip + codes[3 * self.dim + axis]],
                ]);
                inv_sum = inv_sum + g;
            }
            i_total = i_total + F64x4::splat(repl) * (F64x4::splat(1.0) / inv_sum);
        }
        i_total.to_array()
    }
}

/// One session's slice of a coalesced batch: points
/// `[start, next segment's start)` draw their noise from `stream`,
/// session-locally — point `start + k` uses stream index `cursor + k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoiseSegment {
    /// Batch index at which this segment begins.
    pub start: usize,
    /// The owning session's noise stream, cursor positioned at the
    /// segment's first evaluation.
    pub stream: NoiseStream,
}

/// Reusable DAC scratch buffers for [`CimCompute::eval_segments`]
/// (sequential single-chunk path only; threaded chunks carry their own).
#[derive(Debug, Default)]
pub struct EvalScratch {
    voltages: Vec<f64>,
    codes: Vec<usize>,
    prune: PruneScratch,
    /// Per-segment column-activation tallies of the gated LUT path,
    /// zeroed each call (atomics: one segment's tiles may land in
    /// concurrently-running chunks).
    acts: Vec<AtomicU64>,
}

// Manual impl: `AtomicU64` is not `Clone`; snapshot the tallies.
impl Clone for EvalScratch {
    fn clone(&self) -> Self {
        Self {
            voltages: self.voltages.clone(),
            codes: self.codes.clone(),
            prune: self.prune.clone(),
            acts: self
                .acts
                .iter()
                .map(|a| AtomicU64::new(a.load(Ordering::Relaxed)))
                .collect(),
        }
    }
}

/// Column-gating state compiled alongside the fabric: the spatial index
/// over the *programmed* columns plus the query conditioning that maps
/// tile AABBs onto what the DACs actually evaluate.
#[derive(Debug, Clone)]
struct CimPrune {
    /// Culling index over the column centers, weighted by replica counts
    /// (the factors the array multiplies by), at a `ln K +`
    /// [`CIM_PRUNE_SLACK_NATS`] total margin.
    index: PruneIndex,
    /// Per-axis world ranges of the space map — the window the DAC input
    /// clamp folds every query into before conversion.
    ranges: Vec<(f64, f64)>,
    /// Per-axis pad of one DAC step in world units, absorbing input
    /// quantization after the clamp.
    pad: Vec<f64>,
}

/// The immutable compiled CIM fabric: fabricated array, converters, the
/// world→voltage map and the per-code current table.
///
/// Every field is fixed at build time (process variation is drawn once in
/// [`HmgmCimEngine::build`]), so a `CimCompute` is freely shared across
/// threads behind an `Arc` — sessions own only their noise cursor and
/// counters. Evaluation is pure: the caller passes the noise assignment
/// ([`NoiseSegment`]s) and receives pre-noise currents for its own
/// bookkeeping.
#[derive(Debug, Clone)]
pub struct CimCompute {
    array: CimArray,
    dacs: Vec<Dac>,
    adc: LogAdc,
    map: SpaceMap,
    noise: NoiseModel,
    tech: TechParams,
    /// Per-DAC-code reciprocal current table; `None` forces the direct
    /// device-model path (see [`HmgmCimEngine::with_direct_eval`]). Both
    /// paths produce bit-identical outputs.
    lut: Option<CodeLut>,
    /// Column gating (see [`HmgmCimEngine::build_with_pruning`]); `None`
    /// drives every column. Gating applies only on the LUT path — the
    /// direct device-model path always evaluates the full array, serving
    /// as the physical reference the gate approximates.
    prune: Option<CimPrune>,
    /// Seed every session's evaluation [`NoiseStream`] starts from
    /// (`config.seed ^ NOISE_STREAM_SALT`).
    noise_seed: u64,
}

impl CimCompute {
    /// Query dimensionality.
    pub fn dim(&self) -> usize {
        self.map.dim()
    }

    /// The compiled array (for inspection and energy accounting).
    pub fn array(&self) -> &CimArray {
        &self.array
    }

    /// The output ADC.
    pub fn adc(&self) -> &LogAdc {
        &self.adc
    }

    /// The seed sessions forked from this fabric start their noise
    /// streams on.
    pub fn noise_seed(&self) -> u64 {
        self.noise_seed
    }

    /// Evaluates a (possibly multi-session) batch against the fabric.
    ///
    /// `segments` assigns noise: the points of `[seg.start, next.start)`
    /// belong to the session whose stream is `seg.stream`, and point
    /// `seg.start + k` draws `seg.stream.at(cursor + k)`. With a single
    /// segment this is exactly the engine's own batch evaluation; with
    /// many, each segment's outputs are bit-identical to the owning
    /// session evaluating its sub-batch alone — the invariant the serving
    /// layer's cross-agent batcher is built on. Pre-noise currents land in
    /// `currents` so each session can fold its slice into its stats in
    /// index order (see [`HmgmCimEngine::absorb_served_evals`]).
    ///
    /// Segments must start at 0, be strictly increasing, and lie inside
    /// the batch. Nothing in `self` mutates; `scratch` is buffer reuse
    /// only.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch, output/current length mismatch, or an
    /// invalid segment list.
    pub fn eval_segments(
        &self,
        batch: &PointBatch,
        segments: &[NoiseSegment],
        out: &mut [f64],
        currents: &mut [f64],
        policy: par::ChunkPolicy,
        scratch: &mut EvalScratch,
    ) {
        self.eval_segments_counted(batch, segments, out, currents, policy, scratch, None);
    }

    /// [`Self::eval_segments`] that additionally reports per-segment
    /// column activations into `seg_activations` (same length as
    /// `segments`), so each owning session can price its gated DAC drive
    /// (see [`HmgmCimEngine::absorb_served_evals_gated`]). Without
    /// gating every segment reports `len × columns`.
    ///
    /// Column gating, when compiled in ([`HmgmCimEngine::build_with_pruning`])
    /// and on the LUT path, works in fixed tiles of [`PRUNE_TILE`]
    /// consecutive points anchored at each segment's start: the tile's
    /// clamped+padded AABB is intersected with the culling index and only
    /// surviving columns are driven. Anchoring at segment starts makes
    /// the gating decisions — and therefore the output bits — invariant
    /// under chunk policy *and* under coalescing (a segment's points see
    /// the same tiles whether served solo or inside a mega-batch), while
    /// noise draws stay tied to per-session absolute indices as always.
    /// A tile containing any non-finite coordinate falls back to the
    /// full column set, bit-identical to the ungated path.
    #[allow(clippy::too_many_arguments)]
    pub fn eval_segments_counted(
        &self,
        batch: &PointBatch,
        segments: &[NoiseSegment],
        out: &mut [f64],
        currents: &mut [f64],
        policy: par::ChunkPolicy,
        scratch: &mut EvalScratch,
        seg_activations: Option<&mut [u64]>,
    ) {
        check_batch_shape(self.map.dim(), batch, out);
        assert_eq!(
            out.len(),
            currents.len(),
            "currents scratch must match batch length"
        );
        let n = batch.len();
        if n == 0 {
            if let Some(acts_out) = seg_activations {
                acts_out.fill(0);
            }
            return;
        }
        assert!(
            !segments.is_empty() && segments[0].start == 0,
            "segments must cover the batch from index 0"
        );
        assert!(
            segments.windows(2).all(|w| w[0].start < w[1].start),
            "segment starts must be strictly increasing"
        );
        assert!(
            segments[segments.len() - 1].start < n,
            "segment start past the end of the batch"
        );
        let dim = self.dacs.len();
        scratch.voltages.resize(dim, 0.0);
        scratch.codes.resize(LANES * dim, 0);
        let array = &self.array;
        let dacs = &self.dacs;
        let adc = &self.adc;
        let axes = self.map.axes();
        let noise = &self.noise;
        let lut = self.lut.as_ref();
        let i_floor = self.tech.i_leak * 0.01;
        let gm_denom = self.tech.slope_n * self.tech.u_t;
        // The standard normal for batch point `idx`, resolved through a
        // monotone segment cursor: every evaluation path consumes its
        // chunk's indices in increasing order, so after one binary
        // search at the chunk's first point the cursor only ever steps
        // forward — O(1) amortized per point, where a per-point
        // `partition_point` becomes a visible share of noise lookup
        // once a coalesced batch carries many sessions' segments. The
        // lookup stays pure in (segments, idx), so chunk boundaries and
        // thread counts remain unobservable in the output bits.
        struct SegCursor<'a> {
            segments: &'a [NoiseSegment],
            pos: usize,
        }
        impl SegCursor<'_> {
            fn z(&mut self, idx: usize) -> f64 {
                while self.pos + 1 < self.segments.len() && self.segments[self.pos + 1].start <= idx
                {
                    self.pos += 1;
                }
                let seg = &self.segments[self.pos];
                seg.stream
                    .at(seg.stream.cursor() + (idx - seg.start) as u64)
            }
        }
        let cursor_at = |idx: usize| SegCursor {
            segments,
            pos: segments.partition_point(|s| s.start <= idx) - 1,
        };
        // Noise + ADC stage, shared by every evaluation path; pure in
        // (index, pre-noise current).
        let finish = |cursor: &mut SegCursor<'_>, idx: usize, i_total: f64| -> (f64, f64) {
            // Subthreshold-style transconductance estimate for the
            // noise scale; the counter-based z keeps the draw tied
            // to the absolute evaluation index of the owning session.
            let gm = i_total / gm_denom;
            let z = cursor.z(idx);
            let i_noisy = (i_total + noise.sample_with_z(gm, i_total, z)).max(i_floor);
            (adc.convert(i_noisy), i_total)
        };
        // Direct device-model evaluation of one point.
        let eval_direct = |cursor: &mut SegCursor<'_>, idx: usize, voltages: &mut [f64]| {
            for ((v, &x), (axis, dac)) in voltages
                .iter_mut()
                .zip(batch.point(idx))
                .zip(axes.iter().zip(dacs))
            {
                *v = dac.convert(axis.to_voltage(x));
            }
            finish(cursor, idx, array.total_current(voltages))
        };
        // DAC codes of point `idx` into `codes[p*dim..]`.
        let codes_for = |idx: usize, p: usize, codes: &mut [usize]| {
            for ((c, &x), (axis, dac)) in codes[p * dim..(p + 1) * dim]
                .iter_mut()
                .zip(batch.point(idx))
                .zip(axes.iter().zip(dacs))
            {
                *c = dac.code_for(axis.to_voltage(x)) as usize;
            }
        };
        if let (Some(gate), Some(lut)) = (self.prune.as_ref(), lut) {
            // Column-gated LUT path. Tiles anchor at segment starts (see
            // the method docs); pieces are chunk ∩ segment ∩ tile, each
            // evaluated over the full tile's survivor set so chunk and
            // segment geometry never leak into the gating decision.
            // Activations are counted per segment through atomics because
            // one segment's tiles may land in concurrently-running
            // chunks; the sums are exact u64 counts, so the tally is
            // deterministic regardless of interleaving.
            let k_cols = self.array.num_columns() as u64;
            // Per-segment tallies live in the reusable scratch so the
            // steady state stays allocation-free once the scratch has
            // grown to the segment count.
            scratch.acts.clear();
            scratch
                .acts
                .resize_with(segments.len(), || AtomicU64::new(0));
            let acts = &scratch.acts;
            let seg_end_of = |si: usize| segments.get(si + 1).map_or(n, |s| s.start);
            let run_range_gated = |start: usize,
                                   out_chunk: &mut [f64],
                                   cur_chunk: &mut [f64],
                                   codes: &mut [usize],
                                   pscratch: &mut PruneScratch| {
                let mut cursor = cursor_at(start);
                let end = start + out_chunk.len();
                let mut si = segments.partition_point(|s| s.start <= start) - 1;
                let mut pos = start;
                while pos < end {
                    let seg_start = segments[si].start;
                    let seg_end = seg_end_of(si);
                    let tile_lo = seg_start + ((pos - seg_start) / PRUNE_TILE) * PRUNE_TILE;
                    let tile_hi = (tile_lo + PRUNE_TILE).min(seg_end);
                    let piece_end = end.min(tile_hi);
                    let cands = gate.index.candidates_for_points_clamped(
                        batch.flat_range(tile_lo, tile_hi),
                        &gate.pad,
                        &gate.ranges,
                        pscratch,
                    );
                    let piece = (piece_end - pos) as u64;
                    let mut i = pos;
                    match cands {
                        Some(cols) => {
                            acts[si].fetch_add(piece * cols.len() as u64, Ordering::Relaxed);
                            while i + LANES <= piece_end {
                                for p in 0..LANES {
                                    codes_for(i + p, p, codes);
                                }
                                let totals = lut.total_current4_cols(codes, cols);
                                for (p, &i_total) in totals.iter().enumerate() {
                                    let (o, cur) = finish(&mut cursor, i + p, i_total);
                                    out_chunk[i + p - start] = o;
                                    cur_chunk[i + p - start] = cur;
                                }
                                i += LANES;
                            }
                            for idx in i..piece_end {
                                codes_for(idx, 0, codes);
                                let (o, cur) = finish(
                                    &mut cursor,
                                    idx,
                                    lut.total_current_cols(&codes[..dim], cols),
                                );
                                out_chunk[idx - start] = o;
                                cur_chunk[idx - start] = cur;
                            }
                        }
                        None => {
                            // Non-finite tile: full-array evaluation,
                            // bit-identical to the ungated path.
                            acts[si].fetch_add(piece * k_cols, Ordering::Relaxed);
                            while i + LANES <= piece_end {
                                for p in 0..LANES {
                                    codes_for(i + p, p, codes);
                                }
                                let totals = lut.total_current4(codes);
                                for (p, &i_total) in totals.iter().enumerate() {
                                    let (o, cur) = finish(&mut cursor, i + p, i_total);
                                    out_chunk[i + p - start] = o;
                                    cur_chunk[i + p - start] = cur;
                                }
                                i += LANES;
                            }
                            for idx in i..piece_end {
                                codes_for(idx, 0, codes);
                                let (o, cur) =
                                    finish(&mut cursor, idx, lut.total_current(&codes[..dim]));
                                out_chunk[idx - start] = o;
                                cur_chunk[idx - start] = cur;
                            }
                        }
                    }
                    pos = piece_end;
                    if pos >= seg_end {
                        si += 1;
                    }
                }
            };
            if policy.is_single_chunk(n) {
                run_range_gated(0, out, currents, &mut scratch.codes, &mut scratch.prune);
            } else {
                par::zip_chunks_policy(policy, out, currents, |start, out_chunk, cur_chunk| {
                    let mut codes = vec![0usize; LANES * dim];
                    let mut pscratch = PruneScratch::default();
                    run_range_gated(start, out_chunk, cur_chunk, &mut codes, &mut pscratch);
                });
            }
            if let Some(acts_out) = seg_activations {
                assert_eq!(acts_out.len(), segments.len(), "seg_activations length");
                for (o, a) in acts_out.iter_mut().zip(acts) {
                    *o = a.load(Ordering::Relaxed);
                }
            }
            return;
        }
        // One chunk of evaluations. The 4-wide LUT body is the
        // vectorization seam: grouping is per-chunk-internal and the
        // lane math is per-point identical to the scalar/direct path,
        // so chunk boundaries, thread counts and the LUT toggle are
        // all unobservable in the output bits. Noise stays tied to
        // per-session absolute indices either way.
        let run_range = |start: usize,
                         out_chunk: &mut [f64],
                         cur_chunk: &mut [f64],
                         voltages: &mut [f64],
                         codes: &mut [usize]| {
            let mut cursor = cursor_at(start);
            match lut {
                Some(lut) => {
                    let mut k = 0;
                    while k + LANES <= out_chunk.len() {
                        for p in 0..LANES {
                            codes_for(start + k + p, p, codes);
                        }
                        let totals = lut.total_current4(codes);
                        for (p, &i_total) in totals.iter().enumerate() {
                            let (o, cur) = finish(&mut cursor, start + k + p, i_total);
                            out_chunk[k + p] = o;
                            cur_chunk[k + p] = cur;
                        }
                        k += LANES;
                    }
                    // Scalar remainder tail through the same table.
                    for i in k..out_chunk.len() {
                        codes_for(start + i, 0, codes);
                        let (o, cur) =
                            finish(&mut cursor, start + i, lut.total_current(&codes[..dim]));
                        out_chunk[i] = o;
                        cur_chunk[i] = cur;
                    }
                }
                None => {
                    for (i, (o, cur)) in out_chunk.iter_mut().zip(cur_chunk.iter_mut()).enumerate()
                    {
                        (*o, *cur) = eval_direct(&mut cursor, start + i, voltages);
                    }
                }
            }
        };
        if policy.is_single_chunk(n) {
            // Sequential path: reuse the caller's scratch — zero
            // allocation per batch.
            run_range(0, out, currents, &mut scratch.voltages, &mut scratch.codes);
        } else {
            par::zip_chunks_policy(policy, out, currents, |start, out_chunk, cur_chunk| {
                // Per-chunk scratch (chunks may run concurrently).
                let mut voltages = vec![0.0; dim];
                let mut codes = vec![0usize; LANES * dim];
                run_range(start, out_chunk, cur_chunk, &mut voltages, &mut codes);
            });
        }
        if let Some(acts_out) = seg_activations {
            // Ungated (or direct-path): every evaluation drives every
            // column.
            assert_eq!(acts_out.len(), segments.len(), "seg_activations length");
            let k_cols = self.array.num_columns() as u64;
            for (si, o) in acts_out.iter_mut().enumerate() {
                let seg_len = segments.get(si + 1).map_or(n, |s| s.start) - segments[si].start;
                *o = seg_len as u64 * k_cols;
            }
        }
    }
}

/// An HMG mixture compiled onto an inverter array.
///
/// One value of this type is one evaluation *session*: the compiled
/// fabric lives in a shared [`CimCompute`] behind an `Arc` (see
/// [`Self::fork_session`]), while the session owns its noise cursor,
/// operation counters and scratch.
#[derive(Debug, Clone)]
pub struct HmgmCimEngine {
    compute: Arc<CimCompute>,
    /// Counter-based evaluation noise: evaluation `i` (over the session's
    /// lifetime) is perturbed by `noise_stream.at(i)` regardless of how
    /// queries are batched, chunked or threaded.
    noise_stream: NoiseStream,
    stats: EngineStats,
    /// Reused per-evaluation array-current scratch (stats are merged from
    /// it in index order after each batch).
    currents: Vec<f64>,
    /// Reused DAC scratch for the sequential single-chunk path.
    scratch: EvalScratch,
}

impl HmgmCimEngine {
    /// Compiles `model` onto an inverter array using the world→voltage
    /// `map`, applying programming calibration and process variation.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidArgument`] on dimension mismatch and
    /// [`AnalogError::Unrealizable`] when a kernel sigma falls outside the
    /// device's programmable range (constrain the fit with
    /// [`recommended_sigma_bounds`] to avoid this).
    pub fn build(model: &HmgmModel, map: SpaceMap, config: CimEngineConfig) -> Result<Self> {
        if model.dim() != map.dim() {
            return Err(AnalogError::InvalidArgument(format!(
                "model dim {} does not match map dim {}",
                model.dim(),
                map.dim()
            )));
        }
        let tech = config.tech;
        let mut rng = Pcg32::seed_from_u64(config.seed);

        // Program one column per mixture component.
        // lint: reduction-order max-fold is order-insensitive up to NaN, excluded by model validation
        let w_max = model
            .weights()
            .iter()
            .cloned()
            .fold(f64::MIN, f64::max)
            .max(1e-300);
        let mut columns = Vec::with_capacity(model.num_components());
        for (w, kernel) in model.weights().iter().zip(model.kernels()) {
            let mut cells = Vec::with_capacity(kernel.dim());
            for axis in 0..kernel.dim() {
                let center_v = map.axes()[axis].to_voltage(kernel.means()[axis]);
                let sigma_v = map.axes()[axis].sigma_to_voltage(kernel.sigmas()[axis]);
                let overlap = calibrate_overlap(&tech, sigma_v)?;
                cells.push(GaussianLikeCell::with_center_width(
                    &tech, center_v, overlap,
                )?);
            }
            let inverter = MultiInputInverter::new(cells)?;
            let replicas = ((w / w_max * config.max_replicas as f64).round() as u32)
                .clamp(1, config.max_replicas.max(1));
            columns.push(CimColumn::new(inverter, replicas)?);
        }
        let mut array = CimArray::new(columns)?;

        // Fabrication: draw the process-variation corner once.
        if config.variation_severity > 0.0 {
            let pv = ProcessVariation::from_tech(&tech).with_severity(config.variation_severity);
            array.apply_variation(&pv, &mut rng);
        }

        // ADC range: from the deepest plausible tail to the summed peak.
        let i_max = array.max_current() * 1.1;
        let i_min = (i_max * 1e-9).max(tech.i_leak * 0.1);
        let adc = LogAdc::new(config.adc_bits, i_min, i_max)?;
        let dacs = map
            .axes()
            .iter()
            .map(|a| {
                let (lo, hi) = a.voltage_range();
                Dac::new(config.dac_bits, lo, hi)
            })
            .collect::<Result<Vec<_>>>()?;

        // Cache per-code cell currents (post-variation) for the fast
        // evaluation path; exact, so no behavior change.
        let lut = CodeLut::build(&array, &dacs);

        // The evaluation-noise seed comes from the config seed directly
        // (not from `rng`), so the noise sequence does not depend on how
        // many draws fabrication-time variation consumed.
        let noise_seed = config.seed ^ NOISE_STREAM_SALT;
        Ok(Self {
            compute: Arc::new(CimCompute {
                array,
                dacs,
                adc,
                map,
                noise: NoiseModel::room_temperature(config.noise_bandwidth),
                tech,
                lut,
                prune: None,
                noise_seed,
            }),
            noise_stream: NoiseStream::new(noise_seed),
            stats: EngineStats::default(),
            currents: Vec::new(),
            scratch: EvalScratch::default(),
        })
    }

    /// As [`Self::build`], compiling a column-gating index alongside the
    /// fabric when `prune` is enabled.
    ///
    /// The index is built over the *programmed* columns — kernel
    /// geometry from the model, weights replaced by the replica counts
    /// the array actually multiplies by — at a `ln K +`
    /// [`CIM_PRUNE_SLACK_NATS`] total margin tuned to log-ADC visibility
    /// rather than the digital gate. At evaluation time (LUT path only),
    /// tiles of
    /// [`PRUNE_TILE`] points are intersected with the index after
    /// clamping their AABB to each axis's world range (mirroring the DAC
    /// input clamp) and padding by one DAC step (absorbing input
    /// quantization); gated columns are simply not driven, and the
    /// skipped activations are reported through [`EngineStats`] for
    /// energy pricing. With `prune` disabled this is exactly
    /// [`Self::build`].
    pub fn build_with_pruning(
        model: &HmgmModel,
        map: SpaceMap,
        config: CimEngineConfig,
        prune: PruneConfig,
    ) -> Result<Self> {
        let mut engine = Self::build(model, map, config)?;
        if prune.enabled {
            let compute = Arc::make_mut(&mut engine.compute);
            let replica_weights: Vec<f64> = compute
                .array
                .columns()
                .iter()
                .map(|c| c.replicas() as f64)
                .collect();
            if let Some(index) = PruneIndex::for_hmg_parts_with_margin(
                &replica_weights,
                model.kernels(),
                prune,
                (model.num_components() as f64).ln() + CIM_PRUNE_SLACK_NATS,
            ) {
                let ranges = compute.map.axes().iter().map(|a| a.world_range()).collect();
                let pad = compute
                    .map
                    .axes()
                    .iter()
                    .zip(&compute.dacs)
                    .map(|(a, d)| a.sigma_to_world(d.lsb()))
                    .collect();
                compute.prune = Some(CimPrune { index, ranges, pad });
            }
        }
        Ok(engine)
    }

    /// Disables the per-code current table, forcing every evaluation
    /// through the direct DAC → device-model → Kirchhoff-sum path.
    ///
    /// The table caches the *exact* per-code reciprocal currents, so both
    /// paths are bit-identical — this hook exists for parity tests and as
    /// the pre-optimization baseline of the kernel benchmarks.
    ///
    /// Copy-on-write: if the fabric is shared with forked sessions, they
    /// keep the table.
    pub fn with_direct_eval(mut self) -> Self {
        Arc::make_mut(&mut self.compute).lut = None;
        self
    }

    /// A fresh evaluation session over the same compiled fabric.
    ///
    /// Shares the fabricated array / converters / LUT via `Arc` and
    /// resets the session state (noise cursor to the stream's origin,
    /// counters to zero) — bit-identical to building a new engine from
    /// the same model, map and config, without re-fabrication. This is
    /// how a serving layer runs many agents on one substrate.
    pub fn fork_session(&self) -> Self {
        Self {
            compute: Arc::clone(&self.compute),
            noise_stream: NoiseStream::new(self.compute.noise_seed),
            stats: EngineStats::default(),
            currents: Vec::new(),
            scratch: EvalScratch::default(),
        }
    }

    /// The shared compiled fabric this session evaluates on.
    pub fn compute(&self) -> &Arc<CimCompute> {
        &self.compute
    }

    /// The session's noise stream (seed + cursor), e.g. for building the
    /// [`NoiseSegment`] of a coalesced batch.
    pub fn noise_stream(&self) -> NoiseStream {
        self.noise_stream
    }

    /// Evaluates a coalesced multi-session batch against the shared
    /// fabric (see [`CimCompute::eval_segments`]). This instance acts as
    /// the *evaluator* — its own cursor and counters are untouched; each
    /// owning session commits its slice of `currents` through
    /// [`Self::absorb_served_evals`] afterwards.
    pub fn serve_segments(
        &mut self,
        batch: &PointBatch,
        segments: &[NoiseSegment],
        out: &mut [f64],
        currents: &mut [f64],
        policy: par::ChunkPolicy,
    ) {
        self.compute
            .eval_segments(batch, segments, out, currents, policy, &mut self.scratch);
    }

    /// [`Self::serve_segments`] that also reports per-segment column
    /// activations (see [`CimCompute::eval_segments_counted`]), so each
    /// owning session can commit its slice through
    /// [`Self::absorb_served_evals_gated`].
    pub fn serve_segments_counted(
        &mut self,
        batch: &PointBatch,
        segments: &[NoiseSegment],
        out: &mut [f64],
        currents: &mut [f64],
        policy: par::ChunkPolicy,
        seg_activations: &mut [u64],
    ) {
        self.compute.eval_segments_counted(
            batch,
            segments,
            out,
            currents,
            policy,
            &mut self.scratch,
            Some(seg_activations),
        );
    }

    /// Commits `currents.len()` externally served evaluations (this
    /// session's slice of a coalesced batch) into the session state:
    /// advances the noise cursor past the served range and folds the
    /// pre-noise currents into the stats in index order — exactly the
    /// bookkeeping [`Self::log_likelihood_into_chunked`] performs after
    /// evaluating the same points itself, so a served session's state
    /// stays bit-identical to a solo run.
    pub fn absorb_served_evals(&mut self, currents: &[f64]) {
        let slots = currents.len() as u64 * self.compute.array.num_columns() as u64;
        self.absorb_served_evals_gated(currents, slots);
    }

    /// [`Self::absorb_served_evals`] with an explicit column-activation
    /// count for the served range (from
    /// [`Self::serve_segments_counted`]), so gated sessions price only
    /// the columns actually driven. `absorb_served_evals` is the
    /// all-columns special case.
    pub fn absorb_served_evals_gated(&mut self, currents: &[f64], column_activations: u64) {
        let n = currents.len();
        // lint: allow(noise-stream-seq) post-batch cursor commit: the batch already drew .at(cursor + k); advance only publishes the watermark
        self.noise_stream.advance(n as u64);
        // Index-order merge: the same left-to-right association scalar
        // calls would produce, independent of how chunks were assigned.
        for &i_total in currents {
            self.stats.current_sum += i_total;
        }
        self.stats.evaluations += n as u64;
        self.stats.dac_conversions += (n * self.compute.dacs.len()) as u64;
        self.stats.adc_conversions += n as u64;
        self.stats.column_slots += n as u64 * self.compute.array.num_columns() as u64;
        self.stats.column_activations += column_activations;
    }

    /// Per-axis `(floors, ceilings)` in *world* units for a given map —
    /// each axis has its own voltage scale, so thin kernels remain
    /// realizable on short axes even when long axes cannot support them.
    pub fn recommended_sigma_bounds_per_axis(
        tech: &TechParams,
        map: &SpaceMap,
    ) -> (Vec<f64>, Vec<f64>) {
        let (s_lo_v, s_hi_v) = device_sigma_range(tech);
        let floors = map
            .axes()
            .iter()
            .map(|a| a.sigma_to_world(s_lo_v) * 1.05)
            .collect();
        let ceilings = map
            .axes()
            .iter()
            .map(|a| a.sigma_to_world(s_hi_v) * 0.95)
            .collect();
        (floors, ceilings)
    }

    /// Suggested `(sigma_floor, sigma_ceiling)` in *world* units for a
    /// given map, so HMGM fitting stays within the device's range.
    pub fn recommended_sigma_bounds(tech: &TechParams, map: &SpaceMap) -> (f64, f64) {
        let (s_lo_v, s_hi_v) = device_sigma_range(tech);
        // The most restrictive axis decides (largest floor, smallest ceiling).
        let mut floor = f64::MIN;
        let mut ceil = f64::MAX;
        for axis in map.axes() {
            floor = floor.max(axis.sigma_to_world(s_lo_v));
            ceil = ceil.min(axis.sigma_to_world(s_hi_v));
        }
        // Keep a safety margin against variation-induced width changes.
        (floor * 1.05, ceil * 0.95)
    }

    /// Serves one log-likelihood query: DAC conversion of the mapped
    /// voltages, array read with sampled noise, log-ADC conversion.
    ///
    /// The returned value is `ln(I_total)` as reconstructed by the ADC —
    /// proportional (up to an additive constant) to the map log-likelihood,
    /// which is all a particle filter needs.
    ///
    /// Scalar adapter over [`Self::log_likelihood_into`]: a single-point
    /// batch consumes exactly the same noise-RNG stream, so mixing scalar
    /// and batch queries is bit-reproducible.
    ///
    /// # Panics
    ///
    /// Panics if `point.len()` differs from the engine dimension.
    pub fn log_likelihood(&mut self, point: &[f64]) -> f64 {
        let mut batch = PointBatch::new(self.compute.dim());
        batch.push(point);
        let mut out = [0.0];
        self.log_likelihood_into(&batch, &mut out);
        out[0]
    }

    /// Serves a whole batch of log-likelihood queries.
    ///
    /// Delegates to [`Self::log_likelihood_into_chunked`] with the auto
    /// [`par::ChunkPolicy`], which spreads the batch across worker
    /// threads when the `parallel` feature is enabled and the batch is
    /// large enough to amortize them.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or if `out.len() != batch.len()`.
    pub fn log_likelihood_into(&mut self, batch: &PointBatch, out: &mut [f64]) {
        self.log_likelihood_into_chunked(batch, out, par::ChunkPolicy::auto());
    }

    /// Serves a batch under an explicit chunking policy.
    ///
    /// The result — outputs *and* [`EngineStats`] — is bit-identical for
    /// every `(chunk_len, workers)` pair, to each other and to one-by-one
    /// scalar queries:
    ///
    /// - evaluation `i` of the batch claims absolute index `base + i` of
    ///   the engine's counter-based [`NoiseStream`], so its noise value
    ///   does not depend on which chunk or thread serves it (and matches
    ///   the value the pre-batch sequential draw at the same evaluation
    ///   count would deliver from this stream);
    /// - each evaluation writes its pre-noise array current into a
    ///   per-evaluation scratch slot, and the stats are folded from that
    ///   scratch *in index order* after all chunks complete, so even the
    ///   floating-point `current_sum` association is chunking-invariant.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or if `out.len() != batch.len()`.
    pub fn log_likelihood_into_chunked(
        &mut self,
        batch: &PointBatch,
        out: &mut [f64],
        policy: par::ChunkPolicy,
    ) {
        let n = batch.len();
        self.currents.resize(n, 0.0);
        let mut currents = std::mem::take(&mut self.currents);
        // A solo batch is a one-segment coalesced batch: this session's
        // stream covers everything from index 0.
        let segments = [NoiseSegment {
            start: 0,
            stream: self.noise_stream,
        }];
        let mut seg_acts = [0u64];
        self.compute.eval_segments_counted(
            batch,
            &segments,
            out,
            &mut currents,
            policy,
            &mut self.scratch,
            Some(&mut seg_acts),
        );
        self.absorb_served_evals_gated(&currents, seg_acts[0]);
        self.currents = currents;
    }

    /// Sum of per-point log-likelihoods for a scan (batch-evaluated; an
    /// empty scan sums to zero).
    pub fn scan_log_likelihood(&mut self, points: &[Vec<f64>]) -> f64 {
        let batch = PointBatch::from_rows(self.compute.dim(), points);
        self.log_likelihood_batch(&batch).iter().sum()
    }

    /// Query dimensionality.
    pub fn dim(&self) -> usize {
        self.compute.dim()
    }

    /// The compiled array (for inspection and energy accounting).
    pub fn array(&self) -> &CimArray {
        &self.compute.array
    }

    /// The output ADC.
    pub fn adc(&self) -> &LogAdc {
        &self.compute.adc
    }

    /// Operation counters accumulated since construction or the last
    /// [`Self::reset_stats`].
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Clears the operation counters.
    pub fn reset_stats(&mut self) {
        self.stats = EngineStats::default();
    }
}

impl LikelihoodBackend for HmgmCimEngine {
    fn dim(&self) -> usize {
        HmgmCimEngine::dim(self)
    }

    fn log_likelihood_into(&mut self, batch: &PointBatch, out: &mut [f64]) {
        HmgmCimEngine::log_likelihood_into(self, batch, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use navicim_gmm::hmg::{fit_hmgm, HmgKernel, HmgmFitConfig};
    use navicim_math::rng::SampleExt;

    fn test_map() -> SpaceMap {
        let pts = vec![vec![-1.0, -1.0, -1.0], vec![1.0, 1.0, 1.0]];
        SpaceMap::fit_to_points(&pts, 0.15, 0.85, 0.2).unwrap()
    }

    fn test_model(map: &SpaceMap) -> HmgmModel {
        let tech = TechParams::cmos_45nm();
        let (floor, ceil) = HmgmCimEngine::recommended_sigma_bounds(&tech, map);
        let sigma = (floor * 2.0).min(ceil);
        let k1 = HmgKernel::new(vec![-0.5, 0.0, 0.2], vec![sigma; 3], 1.0).unwrap();
        let k2 = HmgKernel::new(vec![0.6, 0.3, -0.4], vec![sigma; 3], 1.0).unwrap();
        HmgmModel::new(vec![1.0, 0.5], vec![k1, k2]).unwrap()
    }

    #[test]
    fn build_and_query() {
        let map = test_map();
        let model = test_model(&map);
        let mut engine = HmgmCimEngine::build(&model, map, CimEngineConfig::default()).unwrap();
        // Likelihood at a kernel centre beats a far-away point.
        let near = engine.log_likelihood(&[-0.5, 0.0, 0.2]);
        let far = engine.log_likelihood(&[1.0, -1.0, 1.0]);
        assert!(near > far, "near {near} vs far {far}");
    }

    #[test]
    fn engine_tracks_model_ordering() {
        // CIM log-likelihood ordering should agree with the mathematical
        // HMGM model on clearly separated queries.
        let map = test_map();
        let model = test_model(&map);
        let config = CimEngineConfig {
            variation_severity: 0.0,
            dac_bits: 8,
            adc_bits: 12,
            ..CimEngineConfig::default()
        };
        let mut engine = HmgmCimEngine::build(&model, map, config).unwrap();
        let queries: Vec<Vec<f64>> = vec![
            vec![-0.5, 0.0, 0.2],
            vec![-0.3, 0.1, 0.1],
            vec![0.6, 0.3, -0.4],
            vec![0.9, 0.9, 0.9],
        ];
        let cim: Vec<f64> = queries.iter().map(|q| engine.log_likelihood(q)).collect();
        let math: Vec<f64> = queries.iter().map(|q| model.log_likelihood(q)).collect();
        let r = navicim_math::stats::spearman(&cim, &math).unwrap();
        assert!(r > 0.99, "rank correlation {r}");
    }

    #[test]
    fn stats_count_operations() {
        let map = test_map();
        let model = test_model(&map);
        let mut engine = HmgmCimEngine::build(&model, map, CimEngineConfig::default()).unwrap();
        let _ = engine.log_likelihood(&[0.0, 0.0, 0.0]);
        let _ = engine.scan_log_likelihood(&[vec![0.1, 0.0, 0.0], vec![0.2, 0.0, 0.0]]);
        let s = engine.stats();
        assert_eq!(s.evaluations, 3);
        assert_eq!(s.adc_conversions, 3);
        assert_eq!(s.dac_conversions, 9);
        engine.reset_stats();
        assert_eq!(engine.stats().evaluations, 0);
    }

    #[test]
    fn replica_counts_encode_weights() {
        let map = test_map();
        let model = test_model(&map); // weights 1.0 and 0.5
        let engine = HmgmCimEngine::build(&model, map, CimEngineConfig::default()).unwrap();
        let reps: Vec<u32> = engine
            .array()
            .columns()
            .iter()
            .map(|c| c.replicas())
            .collect();
        assert_eq!(reps, vec![5, 3]); // 5·(1.0/1.0)=5, round(5·0.5)=3 (ties-away)
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let map = test_map();
        let bad = HmgmModel::new(
            vec![1.0],
            vec![HmgKernel::new(vec![0.0], vec![0.1], 1.0).unwrap()],
        )
        .unwrap();
        assert!(HmgmCimEngine::build(&bad, map, CimEngineConfig::default()).is_err());
    }

    #[test]
    fn unrealizable_sigma_rejected() {
        let map = test_map();
        let too_narrow = HmgmModel::new(
            vec![1.0],
            vec![HmgKernel::new(vec![0.0, 0.0, 0.0], vec![1e-6; 3], 1.0).unwrap()],
        )
        .unwrap();
        assert!(matches!(
            HmgmCimEngine::build(&too_narrow, map, CimEngineConfig::default()),
            Err(AnalogError::Unrealizable(_))
        ));
    }

    #[test]
    fn batch_matches_sequential_scalar_bit_for_bit() {
        // The batch path must consume the identical noise-RNG stream and
        // arithmetic as one-by-one scalar queries.
        let map = test_map();
        let model = test_model(&map);
        let config = CimEngineConfig::default();
        let mut scalar_engine = HmgmCimEngine::build(&model, map.clone(), config).unwrap();
        let mut batch_engine = HmgmCimEngine::build(&model, map, config).unwrap();
        let mut rng = Pcg32::seed_from_u64(99);
        let mut batch = PointBatch::new(3);
        for _ in 0..64 {
            batch.push(&[
                rng.sample_uniform(-1.0, 1.0),
                rng.sample_uniform(-1.0, 1.0),
                rng.sample_uniform(-1.0, 1.0),
            ]);
        }
        let scalar: Vec<f64> = batch
            .iter()
            .map(|p| scalar_engine.log_likelihood(p))
            .collect();
        let batched = batch_engine.log_likelihood_batch(&batch);
        assert_eq!(scalar, batched);
        assert_eq!(scalar_engine.stats(), batch_engine.stats());
        assert_eq!(batch_engine.stats().evaluations, 64);
        assert_eq!(batch_engine.stats().dac_conversions, 64 * 3);
    }

    #[test]
    fn chunked_evaluation_is_bit_identical() {
        // Any (chunk_len, workers) policy — and any split of the batch
        // into consecutive sub-batches — produces the same outputs and
        // the same EngineStats as the auto policy.
        let map = test_map();
        let model = test_model(&map);
        let config = CimEngineConfig::default();
        let mut rng = Pcg32::seed_from_u64(5);
        let mut batch = PointBatch::new(3);
        for _ in 0..97 {
            batch.push(&[
                rng.sample_uniform(-1.0, 1.0),
                rng.sample_uniform(-1.0, 1.0),
                rng.sample_uniform(-1.0, 1.0),
            ]);
        }
        let mut reference = HmgmCimEngine::build(&model, map.clone(), config).unwrap();
        let mut expected = vec![0.0; batch.len()];
        reference.log_likelihood_into(&batch, &mut expected);
        for chunk_len in [1usize, 7, 64, batch.len()] {
            for workers in [1usize, 2, 4] {
                let mut engine = HmgmCimEngine::build(&model, map.clone(), config).unwrap();
                let mut out = vec![0.0; batch.len()];
                engine.log_likelihood_into_chunked(
                    &batch,
                    &mut out,
                    par::ChunkPolicy::exact(chunk_len, workers),
                );
                assert_eq!(out, expected, "chunk {chunk_len}, workers {workers}");
                assert_eq!(engine.stats(), reference.stats());
            }
        }
        // Splitting into two consecutive batch calls consumes consecutive
        // stream ranges, so the concatenation matches one big call.
        let mut split_engine = HmgmCimEngine::build(&model, map, config).unwrap();
        let mut first = PointBatch::new(3);
        let mut second = PointBatch::new(3);
        for (i, p) in batch.iter().enumerate() {
            if i < 40 {
                first.push(p);
            } else {
                second.push(p);
            }
        }
        let mut out = split_engine.log_likelihood_batch(&first);
        out.extend(split_engine.log_likelihood_batch(&second));
        assert_eq!(out, expected);
        assert_eq!(split_engine.stats(), reference.stats());
    }

    #[test]
    fn lut_and_direct_paths_are_bit_identical() {
        // The per-code current table must be a pure cache: outputs and
        // stats agree bitwise with the direct device-model path for every
        // batch size around the lane width.
        let map = test_map();
        let model = test_model(&map);
        let config = CimEngineConfig::default();
        for n in [1usize, 3, 4, 5, 7, 64] {
            let mut fast = HmgmCimEngine::build(&model, map.clone(), config).unwrap();
            assert!(
                fast.compute.lut.is_some(),
                "default config should build the LUT"
            );
            let mut direct = HmgmCimEngine::build(&model, map.clone(), config)
                .unwrap()
                .with_direct_eval();
            let mut rng = Pcg32::seed_from_u64(31 + n as u64);
            let mut batch = PointBatch::new(3);
            for _ in 0..n {
                batch.push(&[
                    rng.sample_uniform(-1.0, 1.0),
                    rng.sample_uniform(-1.0, 1.0),
                    rng.sample_uniform(-1.0, 1.0),
                ]);
            }
            assert_eq!(
                fast.log_likelihood_batch(&batch),
                direct.log_likelihood_batch(&batch),
                "n = {n}"
            );
            assert_eq!(fast.stats(), direct.stats(), "n = {n}");
        }
    }

    /// Many well-separated kernels on the test map, so a tight particle
    /// cloud's tile AABB excludes most columns by a wide margin.
    fn spread_model(map: &SpaceMap, k: usize) -> HmgmModel {
        let tech = TechParams::cmos_45nm();
        let (floor, _ceil) = HmgmCimEngine::recommended_sigma_bounds(&tech, map);
        let sigma = floor;
        let mut rng = Pcg32::seed_from_u64(41);
        let mut kernels = Vec::new();
        let mut weights = Vec::new();
        for _ in 0..k {
            let mean = vec![
                rng.sample_uniform(-0.95, 0.95),
                rng.sample_uniform(-0.95, 0.95),
                rng.sample_uniform(-0.95, 0.95),
            ];
            kernels.push(HmgKernel::new(mean, vec![sigma; 3], 1.0).unwrap());
            weights.push(rng.sample_uniform(0.2, 1.0));
        }
        HmgmModel::new(weights, kernels).unwrap()
    }

    fn clustered_batch(center: &[f64], n: usize, spread: f64, seed: u64) -> PointBatch {
        let mut rng = Pcg32::seed_from_u64(seed);
        let mut batch = PointBatch::new(center.len());
        let mut p = vec![0.0; center.len()];
        for _ in 0..n {
            for (v, &c) in p.iter_mut().zip(center) {
                *v = rng.sample_normal(c, spread);
            }
            batch.push(&p);
        }
        batch
    }

    #[test]
    fn prune_off_build_is_the_plain_build() {
        let map = test_map();
        let model = test_model(&map);
        let config = CimEngineConfig::default();
        let mut plain = HmgmCimEngine::build(&model, map.clone(), config).unwrap();
        let mut off =
            HmgmCimEngine::build_with_pruning(&model, map, config, PruneConfig::default()).unwrap();
        assert!(off.compute.prune.is_none());
        let batch = clustered_batch(&[-0.5, 0.0, 0.2], 40, 0.1, 50);
        assert_eq!(
            plain.log_likelihood_batch(&batch),
            off.log_likelihood_batch(&batch)
        );
        assert_eq!(plain.stats(), off.stats());
        assert_eq!(plain.stats().column_activations, 40 * 2);
        assert_eq!(plain.stats().column_slots, 40 * 2);
    }

    #[test]
    fn gated_with_all_columns_surviving_is_bit_identical() {
        // Two near kernels and a huge margin: nothing ever prunes, so the
        // gated engine must reproduce the ungated one bit for bit —
        // outputs, noise consumption and stats.
        let map = test_map();
        let model = test_model(&map);
        let config = CimEngineConfig::default();
        let mut plain = HmgmCimEngine::build(&model, map.clone(), config).unwrap();
        let mut gated =
            HmgmCimEngine::build_with_pruning(&model, map, config, PruneConfig::enabled()).unwrap();
        assert!(gated.compute.prune.is_some());
        let mut rng = Pcg32::seed_from_u64(51);
        let mut batch = PointBatch::new(3);
        for _ in 0..300 {
            batch.push(&[
                rng.sample_uniform(-1.0, 1.0),
                rng.sample_uniform(-1.0, 1.0),
                rng.sample_uniform(-1.0, 1.0),
            ]);
        }
        assert_eq!(
            plain.log_likelihood_batch(&batch),
            gated.log_likelihood_batch(&batch)
        );
        assert_eq!(plain.stats(), gated.stats());
        assert_eq!(gated.stats().column_activations, 300 * 2);
    }

    #[test]
    fn gating_drops_columns_and_stays_accurate() {
        let map = test_map();
        let model = spread_model(&map, 24);
        let config = CimEngineConfig::default();
        let mut plain = HmgmCimEngine::build(&model, map.clone(), config).unwrap();
        let mut gated =
            HmgmCimEngine::build_with_pruning(&model, map, config, PruneConfig::enabled()).unwrap();
        // Tight cloud around one kernel center: far columns gate out.
        let center = model.kernels()[0].means().to_vec();
        let batch = clustered_batch(&center, 200, 0.01, 52);
        let full = plain.log_likelihood_batch(&batch);
        let pruned = gated.log_likelihood_batch(&batch);
        let slots = gated.stats().column_slots;
        let acts = gated.stats().column_activations;
        assert_eq!(slots, 200 * 24);
        assert!(acts < slots, "expected gating: {acts} of {slots} slots");
        assert!(acts >= 200, "survivor set is never empty");
        // Near a peak the gated current differs from the full current by
        // far less than one log-ADC step, so outputs agree to within a
        // single code boundary flip.
        let step = gated.adc().log_lsb();
        for (i, (p, f)) in pruned.iter().zip(&full).enumerate() {
            assert!(
                (p - f).abs() <= step * 1.5 + 1e-12,
                "point {i}: gated {p} vs full {f} (step {step})"
            );
        }
        // Ungated counters are untouched by gating.
        assert_eq!(plain.stats().evaluations, gated.stats().evaluations);
        assert_eq!(plain.stats().dac_conversions, gated.stats().dac_conversions);
    }

    #[test]
    fn gated_outputs_are_chunking_invariant() {
        let map = test_map();
        let model = spread_model(&map, 24);
        let config = CimEngineConfig::default();
        let prune = PruneConfig::enabled();
        let center = model.kernels()[0].means().to_vec();
        let mut batch = clustered_batch(&center, 300, 0.01, 53);
        // A few far outliers so tiles mix survivor sets.
        let mut rng = Pcg32::seed_from_u64(54);
        for _ in 0..17 {
            batch.push(&[
                rng.sample_uniform(-1.0, 1.0),
                rng.sample_uniform(-1.0, 1.0),
                rng.sample_uniform(-1.0, 1.0),
            ]);
        }
        let mut reference =
            HmgmCimEngine::build_with_pruning(&model, map.clone(), config, prune).unwrap();
        let mut expected = vec![0.0; batch.len()];
        reference.log_likelihood_into(&batch, &mut expected);
        for chunk_len in [1usize, 7, 64, batch.len()] {
            for workers in [1usize, 2, 4] {
                let mut engine =
                    HmgmCimEngine::build_with_pruning(&model, map.clone(), config, prune).unwrap();
                let mut out = vec![0.0; batch.len()];
                engine.log_likelihood_into_chunked(
                    &batch,
                    &mut out,
                    par::ChunkPolicy::exact(chunk_len, workers),
                );
                assert_eq!(out, expected, "chunk {chunk_len}, workers {workers}");
                assert_eq!(engine.stats(), reference.stats());
            }
        }
    }

    #[test]
    fn gated_coalesced_segments_match_solo_sessions() {
        // Noise-index invariance under gating: a coalesced two-session
        // mega-batch reproduces each session's solo gated run bit for
        // bit — tiles anchor at segment starts and noise draws address
        // per-session absolute indices, so neither coalescing nor gating
        // perturbs the other.
        let map = test_map();
        let model = spread_model(&map, 24);
        let config = CimEngineConfig::default();
        let root =
            HmgmCimEngine::build_with_pruning(&model, map, config, PruneConfig::enabled()).unwrap();
        let c0 = model.kernels()[0].means().to_vec();
        let c1 = model.kernels()[1].means().to_vec();
        let a = clustered_batch(&c0, 300, 0.01, 55);
        let b = clustered_batch(&c1, 277, 0.01, 56);
        // Solo runs on fresh sessions.
        let mut solo_a = root.fork_session();
        let mut solo_b = root.fork_session();
        let want_a = solo_a.log_likelihood_batch(&a);
        let want_b = solo_b.log_likelihood_batch(&b);
        // Coalesced run: one mega-batch, two noise segments.
        let mut sess_a = root.fork_session();
        let mut sess_b = root.fork_session();
        let mut evaluator = root.fork_session();
        let mut mega = PointBatch::new(3);
        for p in a.iter() {
            mega.push(p);
        }
        for p in b.iter() {
            mega.push(p);
        }
        let segments = [
            NoiseSegment {
                start: 0,
                stream: sess_a.noise_stream(),
            },
            NoiseSegment {
                start: a.len(),
                stream: sess_b.noise_stream(),
            },
        ];
        let mut out = vec![0.0; mega.len()];
        let mut currents = vec![0.0; mega.len()];
        let mut acts = [0u64; 2];
        evaluator.serve_segments_counted(
            &mega,
            &segments,
            &mut out,
            &mut currents,
            par::ChunkPolicy::exact(37, 3),
            &mut acts,
        );
        assert_eq!(&out[..a.len()], &want_a[..]);
        assert_eq!(&out[a.len()..], &want_b[..]);
        sess_a.absorb_served_evals_gated(&currents[..a.len()], acts[0]);
        sess_b.absorb_served_evals_gated(&currents[a.len()..], acts[1]);
        assert_eq!(sess_a.stats(), solo_a.stats());
        assert_eq!(sess_b.stats(), solo_b.stats());
        assert!(sess_a.stats().column_activations < sess_a.stats().column_slots);
    }

    #[test]
    fn fitted_model_compiles_end_to_end() {
        // Fit an HMGM on synthetic data with device-derived sigma bounds,
        // then compile and query — the full Section II flow.
        let mut rng = Pcg32::seed_from_u64(11);
        let mut pts = Vec::new();
        for _ in 0..300 {
            pts.push(vec![
                rng.sample_normal(0.0, 0.3),
                rng.sample_normal(0.5, 0.25),
                rng.sample_normal(-0.5, 0.3),
            ]);
            pts.push(vec![
                rng.sample_normal(2.0, 0.3),
                rng.sample_normal(-1.0, 0.25),
                rng.sample_normal(0.5, 0.3),
            ]);
        }
        let map = SpaceMap::fit_to_points(&pts, 0.15, 0.85, 0.15).unwrap();
        let tech = TechParams::cmos_45nm();
        let (floor, ceil) = HmgmCimEngine::recommended_sigma_bounds(&tech, &map);
        let config = HmgmFitConfig {
            sigma_floor: floor,
            sigma_ceiling: Some(ceil),
            ..HmgmFitConfig::default()
        };
        let mut rng2 = Pcg32::seed_from_u64(12);
        let model = fit_hmgm(&pts, 4, &config, &mut rng2).unwrap();
        let mut engine = HmgmCimEngine::build(&model, map, CimEngineConfig::default()).unwrap();
        let on_data = engine.log_likelihood(&[0.0, 0.5, -0.5]);
        let off_data = engine.log_likelihood(&[1.0, 2.0, 2.0]);
        assert!(on_data > off_data);
    }
}
