//! Input digital-to-analog converter model.
//!
//! Query coordinates reach the inverter gates through per-axis DACs. The
//! model captures the two effects that matter for the co-design study:
//! finite resolution (uniform code quantization across the output span)
//! and static nonlinearity (INL), modeled as a smooth bowed error profile.

use crate::{AnalogError, Result};

/// A voltage-output DAC.
///
/// ```
/// use navicim_analog::dac::Dac;
/// let dac = Dac::new(8, 0.0, 1.0).unwrap();
/// let v = dac.convert(0.5);
/// assert!((v - 0.5).abs() <= dac.lsb());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dac {
    bits: u32,
    v_lo: f64,
    v_hi: f64,
    /// Peak integral nonlinearity in LSBs.
    inl_lsb: f64,
}

impl Dac {
    /// Creates an ideal DAC with the given resolution and output span.
    ///
    /// # Errors
    ///
    /// Returns [`AnalogError::InvalidArgument`] unless `1 <= bits <= 16`
    /// and `v_lo < v_hi`.
    pub fn new(bits: u32, v_lo: f64, v_hi: f64) -> Result<Self> {
        if !(1..=16).contains(&bits) {
            return Err(AnalogError::InvalidArgument(format!(
                "dac bits must be in [1, 16], got {bits}"
            )));
        }
        if !(v_lo < v_hi) {
            return Err(AnalogError::InvalidArgument(format!(
                "dac span requires v_lo < v_hi, got [{v_lo}, {v_hi}]"
            )));
        }
        Ok(Self {
            bits,
            v_lo,
            v_hi,
            inl_lsb: 0.0,
        })
    }

    /// Returns a copy with the given peak INL (in LSBs).
    pub fn with_inl(mut self, inl_lsb: f64) -> Self {
        self.inl_lsb = inl_lsb;
        self
    }

    /// Resolution in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Output step size in volts.
    pub fn lsb(&self) -> f64 {
        (self.v_hi - self.v_lo) / (self.levels() - 1) as f64
    }

    /// Number of output levels (`2^bits`).
    pub fn levels(&self) -> u64 {
        1u64 << self.bits
    }

    /// Code corresponding to a target voltage (clamped to the span).
    pub fn code_for(&self, v_target: f64) -> u64 {
        let v = v_target.clamp(self.v_lo, self.v_hi);
        let frac = (v - self.v_lo) / (self.v_hi - self.v_lo);
        ((frac * (self.levels() - 1) as f64).round() as u64).min(self.levels() - 1)
    }

    /// Output voltage for a code, including the INL bow.
    ///
    /// # Panics
    ///
    /// Panics if `code` exceeds the DAC's code range.
    pub fn output(&self, code: u64) -> f64 {
        assert!(code < self.levels(), "code out of range");
        let frac = code as f64 / (self.levels() - 1) as f64;
        let ideal = self.v_lo + frac * (self.v_hi - self.v_lo);
        // Parabolic INL bow peaking mid-scale.
        let inl = self.inl_lsb * self.lsb() * 4.0 * frac * (1.0 - frac);
        ideal + inl
    }

    /// One-step conversion: target voltage → quantized output voltage.
    pub fn convert(&self, v_target: f64) -> f64 {
        self.output(self.code_for(v_target))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(Dac::new(0, 0.0, 1.0).is_err());
        assert!(Dac::new(17, 0.0, 1.0).is_err());
        assert!(Dac::new(8, 1.0, 1.0).is_err());
    }

    #[test]
    fn endpoints_exact_for_ideal_dac() {
        let dac = Dac::new(6, 0.2, 0.9).unwrap();
        assert!((dac.convert(0.2) - 0.2).abs() < 1e-12);
        assert!((dac.convert(0.9) - 0.9).abs() < 1e-12);
        // Out-of-span targets clamp.
        assert!((dac.convert(-1.0) - 0.2).abs() < 1e-12);
        assert!((dac.convert(2.0) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn quantization_error_bounded_by_half_lsb() {
        let dac = Dac::new(8, 0.0, 1.0).unwrap();
        for i in 0..1000 {
            let v = i as f64 / 999.0;
            assert!((dac.convert(v) - v).abs() <= dac.lsb() * 0.5 + 1e-12);
        }
    }

    #[test]
    fn more_bits_smaller_lsb() {
        let d4 = Dac::new(4, 0.0, 1.0).unwrap();
        let d8 = Dac::new(8, 0.0, 1.0).unwrap();
        assert!(d8.lsb() < d4.lsb());
        assert!((d4.lsb() / d8.lsb() - 17.0).abs() < 1.0); // (2^8-1)/(2^4-1) = 17
    }

    #[test]
    fn inl_bows_midscale_only() {
        let dac = Dac::new(8, 0.0, 1.0).unwrap().with_inl(2.0);
        // Endpoints unaffected.
        assert_eq!(dac.output(0), 0.0);
        assert_eq!(dac.output(dac.levels() - 1), 1.0);
        // Mid-scale shifted by ~2 LSB.
        let mid = dac.levels() / 2;
        let ideal = mid as f64 / (dac.levels() - 1) as f64;
        assert!((dac.output(mid) - ideal) > 1.5 * dac.lsb());
    }

    #[test]
    fn codes_are_monotone() {
        let dac = Dac::new(5, 0.0, 1.0).unwrap().with_inl(0.5);
        let mut prev = f64::NEG_INFINITY;
        for code in 0..dac.levels() {
            let v = dac.output(code);
            assert!(v > prev);
            prev = v;
        }
    }
}
