//! Small, deterministic pseudo-random number generators and samplers.
//!
//! All stochastic components of navicim (device noise, particle filters,
//! dropout masks, …) draw from the [`Rng64`] trait so that every experiment
//! is reproducible from a single seed. Two generators are provided:
//!
//! - [`SplitMix64`] — ultra-cheap, used for seeding and for independent
//!   noise streams,
//! - [`Pcg32`] — the default general-purpose generator (PCG-XSH-RR).
//!
//! The [`SampleExt`] extension trait adds distribution sampling on top of
//! any [`Rng64`].

/// A minimal source of pseudo-random 64-bit words.
///
/// Implementors must be deterministic functions of their seed. This trait is
/// object-safe so simulation components can hold `Box<dyn Rng64>`.
pub trait Rng64 {
    /// Returns the next pseudo-random 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform `f64` in the half-open interval `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 high-quality mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng64 + ?Sized> Rng64 for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: Rng64 + ?Sized> Rng64 for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// SplitMix64 generator (Steele, Lea, Flood 2014).
///
/// Extremely fast with a 64-bit state; primarily used to expand one user
/// seed into many independent stream seeds.
///
/// ```
/// use navicim_math::rng::{Rng64, SplitMix64};
/// let mut a = SplitMix64::seed_from_u64(1);
/// let mut b = SplitMix64::seed_from_u64(1);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl Rng64 for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// PCG-XSH-RR 64/32 generator (O'Neill 2014), widened to produce 64-bit
/// output by concatenating two 32-bit draws.
///
/// The default generator for all navicim simulations: small state, good
/// statistical quality, cheap jump-ahead via re-seeding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6_364_136_223_846_793_005;

impl Pcg32 {
    /// Creates a generator from a seed and a stream selector.
    ///
    /// Distinct `stream` values yield statistically independent sequences
    /// even for identical seeds.
    pub fn new(seed: u64, stream: u64) -> Self {
        let mut rng = Self {
            state: 0,
            inc: (stream << 1) | 1,
        };
        rng.step();
        rng.state = rng.state.wrapping_add(seed);
        rng.step();
        rng
    }

    /// Creates a generator from a 64-bit seed on the default stream.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self::new(seed, 0xda3e_39cb_94b9_5bdb)
    }

    /// Derives `n` independent child generators, e.g. one per particle or
    /// per Monte-Carlo chain.
    pub fn split(&mut self, n: usize) -> Vec<Pcg32> {
        let mut seeder = SplitMix64::seed_from_u64(self.next_u64());
        (0..n)
            .map(|i| Pcg32::new(seeder.next_u64(), i as u64))
            .collect()
    }

    fn step(&mut self) {
        self.state = self.state.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
    }

    fn output(&self) -> u32 {
        let old = self.state;
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }
}

impl Rng64 for Pcg32 {
    fn next_u64(&mut self) -> u64 {
        self.step();
        let hi = self.output() as u64;
        self.step();
        let lo = self.output() as u64;
        (hi << 32) | lo
    }
}

/// Distribution sampling on top of any [`Rng64`].
///
/// Provided as an extension trait (blanket-implemented) so samplers are
/// available on every generator without wrapper types.
pub trait SampleExt: Rng64 {
    /// Uniform sample in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `low > high`.
    fn sample_uniform(&mut self, low: f64, high: f64) -> f64 {
        debug_assert!(low <= high, "sample_uniform requires low <= high");
        low + (high - low) * self.next_f64()
    }

    /// Uniform integer in `[0, n)` using Lemire-style rejection-free scaling.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    fn sample_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "sample_index requires n > 0");
        // 53-bit mantissa scaling is unbiased for practical n (< 2^32 here).
        (self.next_f64() * n as f64) as usize % n
    }

    /// Standard normal sample via the Box–Muller transform.
    fn sample_standard_normal(&mut self) -> f64 {
        // Draw u in (0, 1] to keep ln(u) finite.
        let u = 1.0 - self.next_f64();
        let v = self.next_f64();
        (-2.0 * u.ln()).sqrt() * (2.0 * std::f64::consts::PI * v).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    fn sample_normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.sample_standard_normal()
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn sample_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Exponential sample with the given rate parameter `lambda`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `lambda <= 0`.
    fn sample_exponential(&mut self, lambda: f64) -> f64 {
        debug_assert!(lambda > 0.0, "sample_exponential requires lambda > 0");
        -(1.0 - self.next_f64()).ln() / lambda
    }

    /// Samples an index from an unnormalized weight vector.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to a non-positive value.
    fn sample_weighted(&mut self, weights: &[f64]) -> usize {
        assert!(!weights.is_empty(), "sample_weighted requires weights");
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0,
            "sample_weighted requires positive total weight"
        );
        let mut target = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            target -= w;
            if target <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle of a slice, in place.
    fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.sample_index(i + 1);
            items.swap(i, j);
        }
    }
}

impl<R: Rng64 + ?Sized> SampleExt for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;

    #[test]
    fn splitmix_reference_values() {
        // Reference outputs for seed 1234567 from the public-domain
        // reference implementation.
        let mut rng = SplitMix64::seed_from_u64(1234567);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert_ne!(a, b);
        // Determinism.
        let mut rng2 = SplitMix64::seed_from_u64(1234567);
        assert_eq!(rng2.next_u64(), a);
        assert_eq!(rng2.next_u64(), b);
    }

    #[test]
    fn pcg_streams_differ() {
        let mut a = Pcg32::new(42, 1);
        let mut b = Pcg32::new(42, 2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Pcg32::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = Pcg32::seed_from_u64(11);
        let xs: Vec<f64> = (0..50_000).map(|_| rng.sample_normal(3.0, 0.5)).collect();
        assert!((stats::mean(&xs) - 3.0).abs() < 0.02);
        assert!((stats::std_dev(&xs) - 0.5).abs() < 0.02);
    }

    #[test]
    fn uniform_mean() {
        let mut rng = Pcg32::seed_from_u64(5);
        let xs: Vec<f64> = (0..50_000).map(|_| rng.sample_uniform(-1.0, 3.0)).collect();
        assert!((stats::mean(&xs) - 1.0).abs() < 0.03);
    }

    #[test]
    fn weighted_sampling_respects_weights() {
        let mut rng = Pcg32::seed_from_u64(2);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[rng.sample_weighted(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.2, "ratio was {ratio}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Pcg32::seed_from_u64(3);
        let mut items: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut items);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn split_children_are_independent() {
        let mut parent = Pcg32::seed_from_u64(77);
        let mut children = parent.split(4);
        let outs: Vec<u64> = children.iter_mut().map(|c| c.next_u64()).collect();
        for i in 0..outs.len() {
            for j in (i + 1)..outs.len() {
                assert_ne!(outs[i], outs[j]);
            }
        }
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut rng = Pcg32::seed_from_u64(13);
        let xs: Vec<f64> = (0..50_000).map(|_| rng.sample_exponential(4.0)).collect();
        assert!((stats::mean(&xs) - 0.25).abs() < 0.01);
    }

    #[test]
    fn trait_object_usable() {
        let mut boxed: Box<dyn Rng64> = Box::new(Pcg32::seed_from_u64(1));
        let _ = boxed.next_u64();
        let _ = boxed.next_f64();
    }
}
