//! Lightweight randomness test battery for hardware bitstreams.
//!
//! The SRAM-embedded RNG of the paper's Section III must produce unbiased,
//! uncorrelated dropout bits. This module implements the classical tests
//! used to validate such generators: monobit frequency, runs, serial
//! (overlapping pairs), block frequency and lag autocorrelation — each
//! returning a p-value-style statistic.

use crate::stats::normal_cdf;

/// Outcome of one randomness test.
#[derive(Debug, Clone, PartialEq)]
pub struct TestOutcome {
    /// Test name.
    pub name: &'static str,
    /// Test statistic (z-score or χ²-like, see each test).
    pub statistic: f64,
    /// Two-sided p-value; small values indicate non-randomness.
    pub p_value: f64,
    /// Pass at the 1% significance level.
    pub pass: bool,
}

impl TestOutcome {
    fn from_z(name: &'static str, z: f64) -> Self {
        let p = 2.0 * (1.0 - normal_cdf(z.abs()));
        Self {
            name,
            statistic: z,
            p_value: p,
            pass: p > 0.01,
        }
    }
}

/// Fraction of ones in a bitstream.
///
/// Returns `0.5` for an empty stream (unbiased by convention).
pub fn ones_fraction(bits: &[bool]) -> f64 {
    if bits.is_empty() {
        return 0.5;
    }
    bits.iter().filter(|&&b| b).count() as f64 / bits.len() as f64
}

/// Monobit frequency test (NIST SP 800-22 §2.1).
///
/// # Panics
///
/// Panics if the stream is empty.
pub fn monobit(bits: &[bool]) -> TestOutcome {
    assert!(!bits.is_empty(), "monobit requires bits");
    let n = bits.len() as f64;
    let s: f64 = bits.iter().map(|&b| if b { 1.0 } else { -1.0 }).sum();
    TestOutcome::from_z("monobit", s / n.sqrt())
}

/// Runs test (NIST SP 800-22 §2.3): counts maximal runs of identical bits
/// and compares with the expectation under independence.
///
/// # Panics
///
/// Panics if the stream has fewer than 2 bits.
pub fn runs(bits: &[bool]) -> TestOutcome {
    assert!(bits.len() >= 2, "runs test requires at least 2 bits");
    let n = bits.len() as f64;
    let pi = ones_fraction(bits);
    // Degenerate streams (all equal) fail outright.
    if pi == 0.0 || pi == 1.0 {
        return TestOutcome {
            name: "runs",
            statistic: f64::INFINITY,
            p_value: 0.0,
            pass: false,
        };
    }
    let v = 1 + bits.windows(2).filter(|w| w[0] != w[1]).count();
    let expected = 2.0 * n * pi * (1.0 - pi) + 1.0;
    let sd = (2.0 * n * pi * (1.0 - pi) * (2.0 * n * pi * (1.0 - pi) - 1.0) / (n - 1.0)).sqrt();
    let z = (v as f64 - expected) / sd;
    TestOutcome::from_z("runs", z)
}

/// Lag-`k` autocorrelation test: correlation between the stream and a
/// shifted copy of itself.
///
/// # Panics
///
/// Panics unless `0 < lag < bits.len()`.
pub fn autocorrelation(bits: &[bool], lag: usize) -> TestOutcome {
    assert!(lag > 0 && lag < bits.len(), "lag must be in (0, n)");
    let n = bits.len() - lag;
    // Count agreements between b[i] and b[i+lag]; expect n/2.
    let agree = (0..n).filter(|&i| bits[i] == bits[i + lag]).count() as f64;
    let z = (2.0 * agree - n as f64) / (n as f64).sqrt();
    TestOutcome::from_z("autocorrelation", z)
}

/// Serial (overlapping 2-bit pattern) test: checks that the four patterns
/// 00/01/10/11 occur with equal frequency. The statistic is a χ² with 2
/// degrees of freedom mapped through a normal approximation.
///
/// # Panics
///
/// Panics if the stream has fewer than 3 bits.
pub fn serial_pairs(bits: &[bool]) -> TestOutcome {
    assert!(bits.len() >= 3, "serial test requires at least 3 bits");
    let n = (bits.len() - 1) as f64;
    let mut counts = [0.0f64; 4];
    for w in bits.windows(2) {
        let idx = (w[0] as usize) << 1 | (w[1] as usize);
        counts[idx] += 1.0;
    }
    let expected = n / 4.0;
    let chi2: f64 = counts
        .iter()
        .map(|c| (c - expected) * (c - expected) / expected)
        .sum();
    // Wilson–Hilferty cube-root normal approximation for χ²(k=3).
    let k = 3.0;
    let z = ((chi2 / k).powf(1.0 / 3.0) - (1.0 - 2.0 / (9.0 * k))) / (2.0 / (9.0 * k)).sqrt();
    TestOutcome::from_z("serial", z)
}

/// Block frequency test: splits into blocks of `block_len` bits and checks
/// the per-block ones-fraction.
///
/// # Panics
///
/// Panics unless the stream contains at least one full block.
pub fn block_frequency(bits: &[bool], block_len: usize) -> TestOutcome {
    assert!(block_len > 0, "block_len must be positive");
    let nblocks = bits.len() / block_len;
    assert!(nblocks > 0, "stream shorter than one block");
    let mut chi2 = 0.0;
    for b in 0..nblocks {
        let pi = ones_fraction(&bits[b * block_len..(b + 1) * block_len]);
        chi2 += 4.0 * block_len as f64 * (pi - 0.5) * (pi - 0.5);
    }
    let k = nblocks as f64;
    let z = ((chi2 / k).powf(1.0 / 3.0) - (1.0 - 2.0 / (9.0 * k))) / (2.0 / (9.0 * k)).sqrt();
    TestOutcome::from_z("block_frequency", z)
}

/// Runs the full battery with standard parameters and returns all outcomes.
///
/// # Panics
///
/// Panics if the stream has fewer than 128 bits (too short for meaningful
/// statistics).
pub fn battery(bits: &[bool]) -> Vec<TestOutcome> {
    assert!(bits.len() >= 128, "battery requires at least 128 bits");
    vec![
        monobit(bits),
        runs(bits),
        serial_pairs(bits),
        block_frequency(bits, 32),
        autocorrelation(bits, 1),
        autocorrelation(bits, 2),
        autocorrelation(bits, 8),
    ]
}

/// Returns `true` when every test in the battery passes at 1%.
pub fn battery_passes(bits: &[bool]) -> bool {
    battery(bits).iter().all(|o| o.pass)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Pcg32, Rng64, SampleExt};

    fn random_bits(n: usize, seed: u64) -> Vec<bool> {
        let mut rng = Pcg32::seed_from_u64(seed);
        (0..n).map(|_| rng.next_f64() < 0.5).collect()
    }

    #[test]
    fn good_generator_passes_battery() {
        let bits = random_bits(8192, 42);
        for outcome in battery(&bits) {
            assert!(outcome.pass, "{outcome:?}");
        }
    }

    #[test]
    fn constant_stream_fails() {
        let bits = vec![true; 4096];
        assert!(!monobit(&bits).pass);
        assert!(!runs(&bits).pass);
        assert!(!battery_passes(&bits));
    }

    #[test]
    fn alternating_stream_fails_runs_and_autocorr() {
        let bits: Vec<bool> = (0..4096).map(|i| i % 2 == 0).collect();
        // Perfectly balanced, so monobit passes...
        assert!(monobit(&bits).pass);
        // ...but structure is detected elsewhere.
        assert!(!runs(&bits).pass);
        assert!(!autocorrelation(&bits, 1).pass);
        assert!(!serial_pairs(&bits).pass);
    }

    #[test]
    fn biased_stream_fails_monobit() {
        let mut rng = Pcg32::seed_from_u64(3);
        let bits: Vec<bool> = (0..4096).map(|_| rng.sample_bool(0.6)).collect();
        assert!(!monobit(&bits).pass);
    }

    #[test]
    fn slightly_biased_long_stream_detected() {
        // 52% ones is invisible in 100 bits but obvious in 100k bits.
        let mut rng = Pcg32::seed_from_u64(4);
        let bits: Vec<bool> = (0..100_000).map(|_| rng.sample_bool(0.52)).collect();
        assert!(!monobit(&bits).pass);
    }

    #[test]
    fn ones_fraction_counts() {
        assert_eq!(ones_fraction(&[true, true, false, false]), 0.5);
        assert_eq!(ones_fraction(&[]), 0.5);
        assert_eq!(ones_fraction(&[true]), 1.0);
    }

    #[test]
    fn lagged_copy_fails_autocorrelation_at_that_lag() {
        // Stream where bit i == bit i-4: strong lag-4 correlation.
        let mut rng = Pcg32::seed_from_u64(5);
        let mut bits = Vec::with_capacity(4096);
        for i in 0..4096 {
            if i < 4 {
                bits.push(rng.sample_bool(0.5));
            } else {
                let prev: bool = bits[i - 4];
                bits.push(if rng.sample_bool(0.9) { prev } else { !prev });
            }
        }
        assert!(!autocorrelation(&bits, 4).pass);
        // Other lags remain plausible.
        assert!(autocorrelation(&bits, 3).p_value > 1e-4);
    }

    #[test]
    fn battery_outcome_count() {
        let bits = random_bits(1024, 9);
        assert_eq!(battery(&bits).len(), 7);
    }
}
