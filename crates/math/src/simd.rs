//! Explicit 4-wide f64 lanes for the likelihood hot paths.
//!
//! Stable Rust has no portable SIMD type yet, so this module provides the
//! small slice of one the navicim kernels need: a `[f64; 4]` wrapper
//! ([`F64x4`]) whose lane-wise operations are written so LLVM reliably
//! auto-vectorizes them (256-bit AVX / 512-bit AVX-512 with
//! `-C target-cpu=native`, 2×128-bit SSE2 otherwise), plus a fast
//! vectorizable exponential ([`exp_fast`]).
//!
//! # The lane-purity contract
//!
//! Every operation on [`F64x4`] is defined *per lane* as exactly the
//! scalar operation on that lane's value — no horizontal reductions, no
//! re-association, no contraction beyond what the scalar code also does.
//! A kernel that processes points in groups of four lanes plus a scalar
//! remainder tail therefore produces bit-identical results for a point
//! regardless of which lane (or the tail) served it, which is what keeps
//! the batched backends invariant under arbitrary chunk splits (see
//! `navicim_backend::par`).
//!
//! # `exp_fast` and the ulp gate
//!
//! [`exp_fast`] is a branch-free Cody–Waite + degree-13 Horner
//! exponential. It is **not** bit-identical to [`f64::exp`]; its contract
//! is instead an error bound: at most [`EXP_FAST_MAX_ULP`] ulp from the
//! correctly rounded result for finite inputs with normal results
//! (subnormal results may round with larger relative error; `NaN`, `±inf`
//! and over/underflow behave like `f64::exp`). Digital kernels that adopt
//! it (the GMM evaluation plan, the HMG axis loop) remain bit-identical
//! between their SIMD bodies and scalar tails — both call `exp_fast` —
//! but carry this documented ulp-bounded tolerance relative to a
//! `f64::exp` reference implementation. The property-test suite enforces
//! the bound (`tests/property_tests.rs` and the tests below).

use std::ops::{Add, Div, Mul, Sub};

/// Number of lanes in [`F64x4`].
pub const LANES: usize = 4;

/// Documented accuracy gate for [`exp_fast`]: maximum distance from the
/// correctly rounded `f64::exp`, in units in the last place, for finite
/// inputs with normal (non-subnormal) results.
pub const EXP_FAST_MAX_ULP: u64 = 4;

/// Four f64 lanes with strictly per-lane arithmetic.
///
/// ```
/// use navicim_math::simd::F64x4;
/// let a = F64x4::new([1.0, 2.0, 3.0, 4.0]);
/// let b = F64x4::splat(0.5);
/// assert_eq!((a * b).to_array(), [0.5, 1.0, 1.5, 2.0]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F64x4([f64; 4]);

impl F64x4 {
    /// Builds a vector from its four lane values.
    #[inline(always)]
    pub fn new(lanes: [f64; 4]) -> Self {
        Self(lanes)
    }

    /// Broadcasts one value to all lanes.
    #[inline(always)]
    pub fn splat(v: f64) -> Self {
        Self([v; 4])
    }

    /// Loads four consecutive values from a slice.
    ///
    /// # Panics
    ///
    /// Panics if `s.len() < 4`.
    #[inline(always)]
    pub fn load(s: &[f64]) -> Self {
        Self([s[0], s[1], s[2], s[3]])
    }

    /// Stores the four lanes into a slice.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() < 4`.
    #[inline(always)]
    pub fn store(self, out: &mut [f64]) {
        out[..4].copy_from_slice(&self.0);
    }

    /// The lane values as an array.
    #[inline(always)]
    pub fn to_array(self) -> [f64; 4] {
        self.0
    }

    /// One lane value.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= 4`.
    #[inline(always)]
    pub fn lane(self, lane: usize) -> f64 {
        self.0[lane]
    }

    /// Per-lane fused multiply-add: `self * b + c` with a single rounding
    /// per lane ([`f64::mul_add`] semantics — correctly rounded on every
    /// target, hardware FMA or soft fallback).
    #[inline(always)]
    pub fn mul_add(self, b: Self, c: Self) -> Self {
        Self([
            self.0[0].mul_add(b.0[0], c.0[0]),
            self.0[1].mul_add(b.0[1], c.0[1]),
            self.0[2].mul_add(b.0[2], c.0[2]),
            self.0[3].mul_add(b.0[3], c.0[3]),
        ])
    }

    /// Per-lane maximum with [`f64::max`] NaN semantics (NaN lanes yield
    /// the other operand).
    #[inline(always)]
    pub fn max(self, o: Self) -> Self {
        Self([
            self.0[0].max(o.0[0]),
            self.0[1].max(o.0[1]),
            self.0[2].max(o.0[2]),
            self.0[3].max(o.0[3]),
        ])
    }

    /// Per-lane [`exp_fast`].
    #[inline(always)]
    pub fn exp(self) -> Self {
        Self([
            exp_fast(self.0[0]),
            exp_fast(self.0[1]),
            exp_fast(self.0[2]),
            exp_fast(self.0[3]),
        ])
    }
}

macro_rules! lane_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait for F64x4 {
            type Output = Self;
            #[inline(always)]
            fn $method(self, r: Self) -> Self {
                Self([
                    self.0[0] $op r.0[0],
                    self.0[1] $op r.0[1],
                    self.0[2] $op r.0[2],
                    self.0[3] $op r.0[3],
                ])
            }
        }
    };
}

lane_binop!(Add, add, +);
lane_binop!(Sub, sub, -);
lane_binop!(Mul, mul, *);
lane_binop!(Div, div, /);

/// log2(e), the reduction constant for `exp_fast`.
const LOG2_E: f64 = std::f64::consts::LOG2_E;
/// High part of ln(2) with 20 trailing zero mantissa bits, so
/// `k * LN2_HI` is exact for |k| < 2^20 (Cody–Waite split, musl values).
const LN2_HI: f64 = 6.931_471_803_691_238e-1;
/// Low part of ln(2): `LN2_HI + LN2_LO` ≈ ln(2) to ~2^-102.
const LN2_LO: f64 = 1.908_214_929_270_587_7e-10;

/// Inputs above this map to `+inf` (`exp` overflows at ≈709.78).
const EXP_OVERFLOW: f64 = 710.0;
/// Inputs below this map to `0.0` (`exp` underflows below ≈-745.13).
const EXP_UNDERFLOW: f64 = -746.0;

/// Fast exponential: branch-free argument reduction + degree-13 Horner
/// polynomial, within [`EXP_FAST_MAX_ULP`] ulp of `f64::exp` (see the
/// module docs for the exact contract).
///
/// Written so that mapping it over four lanes auto-vectorizes: the input
/// is clamped into the finite-result window, the core runs unconditionally
/// on every lane, and the overflow/underflow/NaN cases are repaired by
/// per-lane selects at the end.
///
/// ```
/// use navicim_math::simd::exp_fast;
/// assert_eq!(exp_fast(0.0), 1.0);
/// assert_eq!(exp_fast(f64::NEG_INFINITY), 0.0);
/// assert_eq!(exp_fast(f64::INFINITY), f64::INFINITY);
/// assert!(exp_fast(f64::NAN).is_nan());
/// assert!((exp_fast(1.0) - std::f64::consts::E).abs() < 1e-15);
/// ```
#[inline(always)]
pub fn exp_fast(x: f64) -> f64 {
    // Clamp into the window where the core produces a finite result; the
    // clamp propagates NaN, and out-of-window inputs are repaired below.
    let c = x.clamp(EXP_UNDERFLOW, EXP_OVERFLOW);
    // x = k·ln2 + r with k integral and |r| ≤ ln2/2 ≈ 0.3466.
    let kf = (c * LOG2_E).round();
    let r = (-kf).mul_add(LN2_HI, c);
    let r = (-kf).mul_add(LN2_LO, r);
    // exp(r) by a degree-13 Taylor polynomial (truncation < 0.02 ulp on
    // the reduced range), evaluated with Estrin's scheme: Horner's serial
    // fma chain is 13 fma latencies deep, which dominates the kernel when
    // mapped over lanes; Estrin's pairwise tree cuts the critical path to
    // ~5 fma latencies at the cost of three extra multiplies.
    let r2 = r * r;
    let r4 = r2 * r2;
    let r8 = r4 * r4;
    // Pairs c_i + c_{i+1}·r (coefficients 1/i!).
    let q0 = r.mul_add(1.0, 1.0);
    let q1 = r.mul_add(1.0 / 6.0, 0.5);
    let q2 = r.mul_add(1.0 / 120.0, 1.0 / 24.0);
    let q3 = r.mul_add(1.0 / 5_040.0, 1.0 / 720.0);
    let q4 = r.mul_add(1.0 / 362_880.0, 1.0 / 40_320.0);
    let q5 = r.mul_add(1.0 / 39_916_800.0, 1.0 / 3_628_800.0);
    let q6 = r.mul_add(1.0 / 6_227_020_800.0, 1.0 / 479_001_600.0);
    // Combine pairs with r², quads with r⁴, halves with r⁸.
    let h0 = r2.mul_add(q1, q0);
    let h1 = r2.mul_add(q3, q2);
    let h2 = r2.mul_add(q5, q4);
    let g0 = r4.mul_add(h1, h0);
    let g1 = r4.mul_add(q6, h2);
    let p = r8.mul_add(g1, g0);
    // Scale by 2^k in two exact steps so results down in the subnormal
    // range degrade gracefully instead of the single-step scale flushing
    // to zero. The split and the 2^k construction stay in the float
    // domain: a saturating `as i64` cast does not vectorize (LLVM lowers
    // it to per-lane `cvttsd2si` plus fixups), while floor and the 2^52
    // magic-bias trick below compile to packed instructions. For the
    // clamped range, `floor(kf/2)` equals the arithmetic shift `k >> 1`
    // and adding 2^52 to the small integer `kf + 1023` lands it exactly
    // in the low mantissa bits, so `bits << 52` is the wanted exponent
    // field — bit-identical to the integer construction. NaN reaches
    // here as NaN in both `p` and the scales and propagates through the
    // multiplies.
    const MANTISSA_MAGIC: f64 = 4_503_599_627_370_496.0; // 2^52
    let kf1 = (kf * 0.5).floor();
    let kf2 = kf - kf1;
    let s1 = f64::from_bits(((kf1 + 1023.0) + MANTISSA_MAGIC).to_bits() << 52);
    let s2 = f64::from_bits(((kf2 + 1023.0) + MANTISSA_MAGIC).to_bits() << 52);
    let v = p * s1 * s2;
    // Repair the clamped lanes (NaN fails both comparisons and keeps v).
    let v = if x < EXP_UNDERFLOW { 0.0 } else { v };
    if x > EXP_OVERFLOW {
        f64::INFINITY
    } else {
        v
    }
}

/// Numerically stable `log(Σ exp(x_i))` using [`exp_fast`] for the
/// rescaled exponentials.
///
/// Same structure and edge-case semantics as
/// [`crate::stats::log_sum_exp`] — `max` fold (NaN terms are skipped by
/// the fold; an all-NaN or empty slice yields `-inf`), early `-inf`
/// return, `m + ln Σ exp(x−m)` otherwise — but inherits `exp_fast`'s
/// ulp-bounded tolerance instead of being bit-identical to the `f64::exp`
/// version. A NaN term alongside finite terms still poisons the sum to
/// NaN, exactly as in the reference.
///
/// ```
/// use navicim_math::simd::log_sum_exp_fast;
/// let v = log_sum_exp_fast(&[0.0, 0.0]);
/// assert!((v - std::f64::consts::LN_2).abs() < 1e-14);
/// assert_eq!(log_sum_exp_fast(&[]), f64::NEG_INFINITY);
/// ```
pub fn log_sum_exp_fast(xs: &[f64]) -> f64 {
    // lint: reduction-order max-fold is order-insensitive up to NaN, which callers exclude
    let m = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    let mut s = 0.0;
    for &x in xs {
        s += exp_fast(x - m);
    }
    m + s.ln()
}

/// Distance between two floats in units in the last place, treating the
/// pair `(a, b)` as points on the integer number line of ordered f64 bit
/// patterns. Equal values (including `-0.0` vs `0.0`) give 0; any
/// comparison involving NaN gives `u64::MAX` unless both are NaN.
pub fn ulp_distance(a: f64, b: f64) -> u64 {
    if a.is_nan() || b.is_nan() {
        return if a.is_nan() && b.is_nan() {
            0
        } else {
            u64::MAX
        };
    }
    // Map the f64 bit pattern to a monotone integer line.
    fn ordered(x: f64) -> i64 {
        let bits = x.to_bits() as i64;
        if bits < 0 {
            i64::MIN.wrapping_add(1).wrapping_sub(bits).wrapping_sub(1)
        } else {
            bits
        }
    }
    ordered(a).abs_diff(ordered(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_ops_match_scalar_bitwise() {
        let a = F64x4::new([1.5, -2.25, 1e-300, 3.7e15]);
        let b = F64x4::new([-0.3, 7.125, 4.0e299, -1.1]);
        let c = F64x4::splat(0.875);
        for i in 0..LANES {
            assert_eq!((a + b).lane(i), a.lane(i) + b.lane(i));
            assert_eq!((a - b).lane(i), a.lane(i) - b.lane(i));
            assert_eq!((a * b).lane(i), a.lane(i) * b.lane(i));
            assert_eq!((a / b).lane(i), a.lane(i) / b.lane(i));
            assert_eq!(
                a.mul_add(b, c).lane(i),
                a.lane(i).mul_add(b.lane(i), c.lane(i))
            );
            assert_eq!(a.max(b).lane(i), a.lane(i).max(b.lane(i)));
            assert_eq!(a.exp().lane(i), exp_fast(a.lane(i)));
        }
    }

    #[test]
    fn load_store_roundtrip() {
        let src = [0.1, 0.2, 0.3, 0.4, 0.5];
        let v = F64x4::load(&src);
        assert_eq!(v.to_array(), [0.1, 0.2, 0.3, 0.4]);
        let mut out = [0.0; 4];
        v.store(&mut out);
        assert_eq!(out, [0.1, 0.2, 0.3, 0.4]);
        assert_eq!(F64x4::splat(7.0).lane(3), 7.0);
    }

    #[test]
    fn exp_fast_specials() {
        assert_eq!(exp_fast(0.0), 1.0);
        assert_eq!(exp_fast(-0.0), 1.0);
        assert_eq!(exp_fast(f64::NEG_INFINITY), 0.0);
        assert_eq!(exp_fast(f64::INFINITY), f64::INFINITY);
        assert!(exp_fast(f64::NAN).is_nan());
        assert_eq!(exp_fast(-1e4), 0.0);
        assert_eq!(exp_fast(1e4), f64::INFINITY);
        // Overflow threshold: exp overflows just below 709.79.
        assert_eq!(exp_fast(709.9), f64::INFINITY);
        assert!(exp_fast(709.7).is_finite());
    }

    #[test]
    fn exp_fast_within_ulp_gate() {
        // Dense deterministic sweep over the whole finite-result range
        // (the property suite adds randomized coverage).
        let mut worst = 0u64;
        for k in -7400..7100 {
            let x = k as f64 * 0.1;
            let d = ulp_distance(exp_fast(x), x.exp());
            if x.exp().is_normal() {
                worst = worst.max(d);
            }
        }
        assert!(worst <= EXP_FAST_MAX_ULP, "worst ulp distance {worst}");
    }

    #[test]
    fn exp_fast_subnormal_tail_is_sane() {
        // Deep-tail results stay tiny and non-negative even where the
        // ulp gate does not apply.
        for k in 0..40 {
            let x = -744.0 - k as f64 * 0.05;
            let v = exp_fast(x);
            assert!((0.0..1e-300).contains(&v), "exp_fast({x}) = {v}");
        }
    }

    #[test]
    fn lse_fast_tracks_reference_and_keeps_edge_cases() {
        let xs = [-3.2, 0.5, 1.7, -100.0];
        let d = ulp_distance(log_sum_exp_fast(&xs), crate::stats::log_sum_exp(&xs));
        assert!(d <= 8, "lse drift {d} ulp");
        assert_eq!(log_sum_exp_fast(&[f64::NEG_INFINITY; 3]), f64::NEG_INFINITY);
        assert_eq!(log_sum_exp_fast(&[f64::NAN, f64::NAN]), f64::NEG_INFINITY);
        assert!(log_sum_exp_fast(&[f64::NAN, 0.0]).is_nan());
    }

    #[test]
    fn ulp_distance_basics() {
        assert_eq!(ulp_distance(1.0, 1.0), 0);
        assert_eq!(ulp_distance(0.0, -0.0), 0);
        assert_eq!(ulp_distance(1.0, 1.0 + f64::EPSILON), 1);
        assert_eq!(ulp_distance(-1.0, -1.0 - f64::EPSILON), 1);
        assert!(ulp_distance(1.0, 2.0) > 1_000_000);
        assert_eq!(ulp_distance(f64::NAN, f64::NAN), 0);
        assert_eq!(ulp_distance(f64::NAN, 1.0), u64::MAX);
        // Across zero: adjacent subnormals of opposite sign are 2 apart.
        let tiny = f64::from_bits(1);
        assert_eq!(ulp_distance(tiny, -tiny), 2);
    }
}
