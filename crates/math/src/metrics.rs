//! Trajectory and regression error metrics (RMSE, MAE, ATE, drift).
//!
//! Used by the localization and visual-odometry experiments to score
//! estimated trajectories against ground truth.

use crate::geom::Pose;

/// Root-mean-square error between two equal-length sequences.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn rmse(estimates: &[f64], truths: &[f64]) -> f64 {
    assert_eq!(estimates.len(), truths.len(), "rmse requires equal lengths");
    if estimates.is_empty() {
        return 0.0;
    }
    let sum_sq: f64 = estimates
        .iter()
        .zip(truths)
        .map(|(e, t)| (e - t) * (e - t))
        .sum();
    (sum_sq / estimates.len() as f64).sqrt()
}

/// Mean absolute error between two equal-length sequences.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mae(estimates: &[f64], truths: &[f64]) -> f64 {
    assert_eq!(estimates.len(), truths.len(), "mae requires equal lengths");
    if estimates.is_empty() {
        return 0.0;
    }
    estimates
        .iter()
        .zip(truths)
        .map(|(e, t)| (e - t).abs())
        .sum::<f64>()
        / estimates.len() as f64
}

/// Summary of a trajectory comparison.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TrajectoryError {
    /// Absolute trajectory error: RMSE over per-frame translation errors.
    pub ate_rmse: f64,
    /// Mean per-frame translation error.
    pub ate_mean: f64,
    /// Maximum per-frame translation error.
    pub ate_max: f64,
    /// RMSE over per-frame rotation geodesic angles (radians).
    pub rot_rmse: f64,
    /// Final-frame translation error (odometry drift).
    pub final_drift: f64,
}

/// Computes the absolute trajectory error between estimated and ground-truth
/// pose sequences.
///
/// # Panics
///
/// Panics if the sequences have different lengths or are empty.
pub fn trajectory_error(estimates: &[Pose], truths: &[Pose]) -> TrajectoryError {
    assert_eq!(
        estimates.len(),
        truths.len(),
        "trajectory_error requires equal lengths"
    );
    assert!(!estimates.is_empty(), "trajectory_error requires poses");
    let mut sum_sq = 0.0;
    let mut sum = 0.0;
    let mut max = 0.0f64;
    let mut rot_sum_sq = 0.0;
    for (e, t) in estimates.iter().zip(truths) {
        let d = e.translation_distance(*t);
        sum_sq += d * d;
        sum += d;
        max = max.max(d);
        let a = e.rotation_distance(*t);
        rot_sum_sq += a * a;
    }
    let n = estimates.len() as f64;
    TrajectoryError {
        ate_rmse: (sum_sq / n).sqrt(),
        ate_mean: sum / n,
        ate_max: max,
        rot_rmse: (rot_sum_sq / n).sqrt(),
        final_drift: estimates
            .last()
            .expect("non-empty")
            .translation_distance(*truths.last().expect("non-empty")),
    }
}

/// Per-frame translation errors between two pose sequences.
///
/// # Panics
///
/// Panics if the sequences have different lengths.
pub fn per_frame_errors(estimates: &[Pose], truths: &[Pose]) -> Vec<f64> {
    assert_eq!(
        estimates.len(),
        truths.len(),
        "per_frame_errors requires equal lengths"
    );
    estimates
        .iter()
        .zip(truths)
        .map(|(e, t)| e.translation_distance(*t))
        .collect()
}

/// Relative pose error: translation error of consecutive-frame deltas,
/// which isolates odometry quality from accumulated drift.
///
/// Returns an empty vector for sequences shorter than 2.
///
/// # Panics
///
/// Panics if the sequences have different lengths.
pub fn relative_pose_errors(estimates: &[Pose], truths: &[Pose]) -> Vec<f64> {
    assert_eq!(
        estimates.len(),
        truths.len(),
        "relative_pose_errors requires equal lengths"
    );
    if estimates.len() < 2 {
        return Vec::new();
    }
    (1..estimates.len())
        .map(|i| {
            let est_delta = estimates[i - 1].delta_to(estimates[i]);
            let true_delta = truths[i - 1].delta_to(truths[i]);
            est_delta.translation_distance(true_delta)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use crate::geom::Vec3;

    #[test]
    fn rmse_and_mae_basics() {
        let est = [1.0, 2.0, 3.0];
        let truth = [1.0, 2.0, 3.0];
        assert_eq!(rmse(&est, &truth), 0.0);
        assert_eq!(mae(&est, &truth), 0.0);
        let est2 = [2.0, 2.0, 5.0];
        assert!(approx_eq(rmse(&est2, &truth), (5.0f64 / 3.0).sqrt(), 1e-12));
        assert!(approx_eq(mae(&est2, &truth), 1.0, 1e-12));
    }

    #[test]
    fn trajectory_error_identity() {
        let poses: Vec<Pose> = (0..5)
            .map(|i| Pose::from_position_euler(Vec3::new(i as f64, 0.0, 0.0), 0.0, 0.0, 0.1))
            .collect();
        let e = trajectory_error(&poses, &poses);
        assert_eq!(e.ate_rmse, 0.0);
        assert_eq!(e.final_drift, 0.0);
        assert_eq!(e.rot_rmse, 0.0);
    }

    #[test]
    fn trajectory_error_constant_offset() {
        let truths: Vec<Pose> = (0..4)
            .map(|i| Pose::from_position_euler(Vec3::new(i as f64, 0.0, 0.0), 0.0, 0.0, 0.0))
            .collect();
        let estimates: Vec<Pose> = truths
            .iter()
            .map(|p| Pose::new(p.rotation, p.translation + Vec3::new(0.0, 3.0, 4.0)))
            .collect();
        let e = trajectory_error(&estimates, &truths);
        assert!(approx_eq(e.ate_rmse, 5.0, 1e-12));
        assert!(approx_eq(e.ate_mean, 5.0, 1e-12));
        assert!(approx_eq(e.ate_max, 5.0, 1e-12));
        assert!(approx_eq(e.final_drift, 5.0, 1e-12));
    }

    #[test]
    fn relative_errors_ignore_global_offset() {
        // A rigid offset applied to the whole estimated trajectory leaves
        // consecutive deltas unchanged.
        let truths: Vec<Pose> = (0..6)
            .map(|i| {
                Pose::from_position_euler(
                    Vec3::new(i as f64, (i * i) as f64 * 0.1, 0.0),
                    0.0,
                    0.0,
                    0.0,
                )
            })
            .collect();
        let estimates: Vec<Pose> = truths
            .iter()
            .map(|p| Pose::new(p.rotation, p.translation + Vec3::new(10.0, -5.0, 2.0)))
            .collect();
        for e in relative_pose_errors(&estimates, &truths) {
            assert!(e < 1e-10);
        }
    }

    #[test]
    fn per_frame_errors_lengths() {
        let poses = vec![Pose::IDENTITY; 3];
        assert_eq!(per_frame_errors(&poses, &poses).len(), 3);
        assert_eq!(relative_pose_errors(&poses, &poses).len(), 2);
        let single = vec![Pose::IDENTITY];
        assert!(relative_pose_errors(&single, &single).is_empty());
    }
}
