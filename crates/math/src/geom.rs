//! 3-D geometry primitives: vectors, rotation matrices, quaternions, rigid
//! poses (SE(3)) and rays.
//!
//! These types are the lingua franca between the synthetic scene simulator,
//! the camera projection model and the localization pipelines.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A 3-component vector / point.
///
/// ```
/// use navicim_math::geom::Vec3;
/// let v = Vec3::new(1.0, 2.0, 2.0);
/// assert_eq!(v.norm(), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
    /// Z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Unit vector along +X.
    pub const X: Vec3 = Vec3 {
        x: 1.0,
        y: 0.0,
        z: 0.0,
    };

    /// Unit vector along +Y.
    pub const Y: Vec3 = Vec3 {
        x: 0.0,
        y: 1.0,
        z: 0.0,
    };

    /// Unit vector along +Z.
    pub const Z: Vec3 = Vec3 {
        x: 0.0,
        y: 0.0,
        z: 1.0,
    };

    /// Creates a vector from components.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// Creates a vector with all components equal to `v`.
    pub const fn splat(v: f64) -> Self {
        Self { x: v, y: v, z: v }
    }

    /// Dot product.
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product.
    pub fn cross(self, other: Vec3) -> Vec3 {
        Vec3::new(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm.
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Returns the unit vector in this direction.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when called on a (near-)zero vector.
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        debug_assert!(n > 1e-300, "cannot normalize a zero vector");
        self / n
    }

    /// Distance to another point.
    pub fn distance(self, other: Vec3) -> f64 {
        (self - other).norm()
    }

    /// Component-wise minimum.
    pub fn min(self, other: Vec3) -> Vec3 {
        Vec3::new(
            self.x.min(other.x),
            self.y.min(other.y),
            self.z.min(other.z),
        )
    }

    /// Component-wise maximum.
    pub fn max(self, other: Vec3) -> Vec3 {
        Vec3::new(
            self.x.max(other.x),
            self.y.max(other.y),
            self.z.max(other.z),
        )
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    pub fn lerp(self, other: Vec3, t: f64) -> Vec3 {
        self + (other - self) * t
    }

    /// Components as a `[x, y, z]` array.
    pub fn to_array(self) -> [f64; 3] {
        [self.x, self.y, self.z]
    }

    /// Creates a vector from a `[x, y, z]` array.
    pub fn from_array(a: [f64; 3]) -> Self {
        Self::new(a[0], a[1], a[2])
    }

    /// Returns `true` when every component is finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.4}, {:.4}, {:.4})", self.x, self.y, self.z)
    }
}

/// A 3×3 matrix, primarily used as a rotation matrix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat3 {
    /// Row-major entries.
    pub m: [[f64; 3]; 3],
}

impl Mat3 {
    /// The identity matrix.
    pub const IDENTITY: Mat3 = Mat3 {
        m: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
    };

    /// Creates a matrix from row-major entries.
    pub const fn from_rows(m: [[f64; 3]; 3]) -> Self {
        Self { m }
    }

    /// Rotation about the X axis by `angle` radians.
    pub fn rotation_x(angle: f64) -> Self {
        let (s, c) = angle.sin_cos();
        Self::from_rows([[1.0, 0.0, 0.0], [0.0, c, -s], [0.0, s, c]])
    }

    /// Rotation about the Y axis by `angle` radians.
    pub fn rotation_y(angle: f64) -> Self {
        let (s, c) = angle.sin_cos();
        Self::from_rows([[c, 0.0, s], [0.0, 1.0, 0.0], [-s, 0.0, c]])
    }

    /// Rotation about the Z axis by `angle` radians.
    pub fn rotation_z(angle: f64) -> Self {
        let (s, c) = angle.sin_cos();
        Self::from_rows([[c, -s, 0.0], [s, c, 0.0], [0.0, 0.0, 1.0]])
    }

    /// Matrix transpose (equals the inverse for rotations).
    pub fn transpose(self) -> Mat3 {
        let mut t = [[0.0; 3]; 3];
        for (i, row) in self.m.iter().enumerate() {
            for (j, &v) in row.iter().enumerate() {
                t[j][i] = v;
            }
        }
        Mat3::from_rows(t)
    }

    /// Matrix-vector product.
    pub fn mul_vec(self, v: Vec3) -> Vec3 {
        Vec3::new(
            self.m[0][0] * v.x + self.m[0][1] * v.y + self.m[0][2] * v.z,
            self.m[1][0] * v.x + self.m[1][1] * v.y + self.m[1][2] * v.z,
            self.m[2][0] * v.x + self.m[2][1] * v.y + self.m[2][2] * v.z,
        )
    }

    /// Matrix-matrix product.
    pub fn mul_mat(self, o: Mat3) -> Mat3 {
        let mut out = [[0.0; 3]; 3];
        for i in 0..3 {
            for j in 0..3 {
                out[i][j] =
                    self.m[i][0] * o.m[0][j] + self.m[i][1] * o.m[1][j] + self.m[i][2] * o.m[2][j];
            }
        }
        Mat3::from_rows(out)
    }

    /// Determinant.
    pub fn det(self) -> f64 {
        let m = &self.m;
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    }
}

impl Default for Mat3 {
    fn default() -> Self {
        Self::IDENTITY
    }
}

/// Unit quaternion representing a 3-D rotation (scalar-first `w, x, y, z`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quat {
    /// Scalar part.
    pub w: f64,
    /// Vector part, x.
    pub x: f64,
    /// Vector part, y.
    pub y: f64,
    /// Vector part, z.
    pub z: f64,
}

impl Quat {
    /// The identity rotation.
    pub const IDENTITY: Quat = Quat {
        w: 1.0,
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a quaternion from components (not normalized).
    pub const fn new(w: f64, x: f64, y: f64, z: f64) -> Self {
        Self { w, x, y, z }
    }

    /// Rotation of `angle` radians about the (not necessarily unit) `axis`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds for a zero axis.
    pub fn from_axis_angle(axis: Vec3, angle: f64) -> Self {
        let axis = axis.normalized();
        let (s, c) = (angle * 0.5).sin_cos();
        Self::new(c, axis.x * s, axis.y * s, axis.z * s)
    }

    /// Rotation from intrinsic yaw (Z), pitch (Y), roll (X) Euler angles.
    pub fn from_euler(roll: f64, pitch: f64, yaw: f64) -> Self {
        let (sr, cr) = (roll * 0.5).sin_cos();
        let (sp, cp) = (pitch * 0.5).sin_cos();
        let (sy, cy) = (yaw * 0.5).sin_cos();
        Self::new(
            cr * cp * cy + sr * sp * sy,
            sr * cp * cy - cr * sp * sy,
            cr * sp * cy + sr * cp * sy,
            cr * cp * sy - sr * sp * cy,
        )
    }

    /// Extracts `(roll, pitch, yaw)` Euler angles.
    pub fn to_euler(self) -> (f64, f64, f64) {
        let q = self.normalized();
        let sinr_cosp = 2.0 * (q.w * q.x + q.y * q.z);
        let cosr_cosp = 1.0 - 2.0 * (q.x * q.x + q.y * q.y);
        let roll = sinr_cosp.atan2(cosr_cosp);
        let sinp = 2.0 * (q.w * q.y - q.z * q.x);
        let pitch = if sinp.abs() >= 1.0 {
            std::f64::consts::FRAC_PI_2.copysign(sinp)
        } else {
            sinp.asin()
        };
        let siny_cosp = 2.0 * (q.w * q.z + q.x * q.y);
        let cosy_cosp = 1.0 - 2.0 * (q.y * q.y + q.z * q.z);
        let yaw = siny_cosp.atan2(cosy_cosp);
        (roll, pitch, yaw)
    }

    /// Quaternion norm.
    pub fn norm(self) -> f64 {
        (self.w * self.w + self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Returns the normalized (unit) quaternion.
    ///
    /// # Panics
    ///
    /// Panics in debug builds for a zero quaternion.
    pub fn normalized(self) -> Quat {
        let n = self.norm();
        debug_assert!(n > 1e-300, "cannot normalize a zero quaternion");
        Quat::new(self.w / n, self.x / n, self.y / n, self.z / n)
    }

    /// The inverse rotation (conjugate, assuming unit norm).
    pub fn conjugate(self) -> Quat {
        Quat::new(self.w, -self.x, -self.y, -self.z)
    }

    /// Hamilton product `self * other` (apply `other` first).
    pub fn mul_quat(self, o: Quat) -> Quat {
        Quat::new(
            self.w * o.w - self.x * o.x - self.y * o.y - self.z * o.z,
            self.w * o.x + self.x * o.w + self.y * o.z - self.z * o.y,
            self.w * o.y - self.x * o.z + self.y * o.w + self.z * o.x,
            self.w * o.z + self.x * o.y - self.y * o.x + self.z * o.w,
        )
    }

    /// Rotates a vector by this quaternion.
    pub fn rotate(self, v: Vec3) -> Vec3 {
        // v' = v + 2 u × (u × v + w v)  with u the vector part.
        let u = Vec3::new(self.x, self.y, self.z);
        let t = u.cross(v) * 2.0;
        v + t * self.w + u.cross(t)
    }

    /// Converts to a rotation matrix.
    pub fn to_mat3(self) -> Mat3 {
        let q = self.normalized();
        let (w, x, y, z) = (q.w, q.x, q.y, q.z);
        Mat3::from_rows([
            [
                1.0 - 2.0 * (y * y + z * z),
                2.0 * (x * y - w * z),
                2.0 * (x * z + w * y),
            ],
            [
                2.0 * (x * y + w * z),
                1.0 - 2.0 * (x * x + z * z),
                2.0 * (y * z - w * x),
            ],
            [
                2.0 * (x * z - w * y),
                2.0 * (y * z + w * x),
                1.0 - 2.0 * (x * x + y * y),
            ],
        ])
    }

    /// Builds a quaternion from a rotation matrix (Shepperd's method).
    pub fn from_mat3(m: Mat3) -> Quat {
        let t = m.m[0][0] + m.m[1][1] + m.m[2][2];
        let q = if t > 0.0 {
            let s = (t + 1.0).sqrt() * 2.0;
            Quat::new(
                0.25 * s,
                (m.m[2][1] - m.m[1][2]) / s,
                (m.m[0][2] - m.m[2][0]) / s,
                (m.m[1][0] - m.m[0][1]) / s,
            )
        } else if m.m[0][0] > m.m[1][1] && m.m[0][0] > m.m[2][2] {
            let s = (1.0 + m.m[0][0] - m.m[1][1] - m.m[2][2]).sqrt() * 2.0;
            Quat::new(
                (m.m[2][1] - m.m[1][2]) / s,
                0.25 * s,
                (m.m[0][1] + m.m[1][0]) / s,
                (m.m[0][2] + m.m[2][0]) / s,
            )
        } else if m.m[1][1] > m.m[2][2] {
            let s = (1.0 + m.m[1][1] - m.m[0][0] - m.m[2][2]).sqrt() * 2.0;
            Quat::new(
                (m.m[0][2] - m.m[2][0]) / s,
                (m.m[0][1] + m.m[1][0]) / s,
                0.25 * s,
                (m.m[1][2] + m.m[2][1]) / s,
            )
        } else {
            let s = (1.0 + m.m[2][2] - m.m[0][0] - m.m[1][1]).sqrt() * 2.0;
            Quat::new(
                (m.m[1][0] - m.m[0][1]) / s,
                (m.m[0][2] + m.m[2][0]) / s,
                (m.m[1][2] + m.m[2][1]) / s,
                0.25 * s,
            )
        };
        q.normalized()
    }

    /// Spherical linear interpolation between two rotations.
    pub fn slerp(self, other: Quat, t: f64) -> Quat {
        let a = self.normalized();
        let mut b = other.normalized();
        let mut cos_theta = a.w * b.w + a.x * b.x + a.y * b.y + a.z * b.z;
        if cos_theta < 0.0 {
            b = Quat::new(-b.w, -b.x, -b.y, -b.z);
            cos_theta = -cos_theta;
        }
        if cos_theta > 0.9995 {
            // Nearly identical: fall back to lerp + renormalize.
            return Quat::new(
                a.w + (b.w - a.w) * t,
                a.x + (b.x - a.x) * t,
                a.y + (b.y - a.y) * t,
                a.z + (b.z - a.z) * t,
            )
            .normalized();
        }
        let theta = cos_theta.acos();
        let sin_theta = theta.sin();
        let wa = ((1.0 - t) * theta).sin() / sin_theta;
        let wb = (t * theta).sin() / sin_theta;
        Quat::new(
            a.w * wa + b.w * wb,
            a.x * wa + b.x * wb,
            a.y * wa + b.y * wb,
            a.z * wa + b.z * wb,
        )
    }

    /// Geodesic angle (radians) between two rotations.
    pub fn angle_to(self, other: Quat) -> f64 {
        let a = self.normalized();
        let b = other.normalized();
        let dot = (a.w * b.w + a.x * b.x + a.y * b.y + a.z * b.z)
            .abs()
            .min(1.0);
        2.0 * dot.acos()
    }
}

impl Default for Quat {
    fn default() -> Self {
        Self::IDENTITY
    }
}

/// A rigid-body pose: rotation + translation (an element of SE(3)).
///
/// The convention throughout navicim is *body-to-world*: `transform_point`
/// maps a point expressed in the body/camera frame into the world frame.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Pose {
    /// Rotation (body to world).
    pub rotation: Quat,
    /// Translation: the body origin expressed in world coordinates.
    pub translation: Vec3,
}

impl Pose {
    /// The identity pose.
    pub const IDENTITY: Pose = Pose {
        rotation: Quat::IDENTITY,
        translation: Vec3::ZERO,
    };

    /// Creates a pose from rotation and translation.
    pub fn new(rotation: Quat, translation: Vec3) -> Self {
        Self {
            rotation,
            translation,
        }
    }

    /// Creates a pose from a position and yaw/pitch/roll Euler angles.
    pub fn from_position_euler(position: Vec3, roll: f64, pitch: f64, yaw: f64) -> Self {
        Self::new(Quat::from_euler(roll, pitch, yaw), position)
    }

    /// Builds a camera pose at `eye` looking toward `target`.
    ///
    /// Uses the computer-vision camera convention: body +Z is the viewing
    /// direction, +X points right and +Y points down, with `up` giving the
    /// world's up direction.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `eye == target` or the view direction is
    /// parallel to `up`.
    pub fn looking_at(eye: Vec3, target: Vec3, up: Vec3) -> Pose {
        let z_c = (target - eye).normalized();
        let x_c = z_c.cross(up.normalized());
        debug_assert!(
            x_c.norm() > 1e-9,
            "view direction must not be parallel to up"
        );
        let x_c = x_c.normalized();
        let y_c = z_c.cross(x_c);
        let m = Mat3::from_rows([
            [x_c.x, y_c.x, z_c.x],
            [x_c.y, y_c.y, z_c.y],
            [x_c.z, y_c.z, z_c.z],
        ]);
        Pose::new(Quat::from_mat3(m), eye)
    }

    /// Maps a body-frame point into the world frame.
    pub fn transform_point(self, p: Vec3) -> Vec3 {
        self.rotation.rotate(p) + self.translation
    }

    /// Maps a world-frame point into the body frame.
    pub fn inverse_transform_point(self, p: Vec3) -> Vec3 {
        self.rotation.conjugate().rotate(p - self.translation)
    }

    /// Composition: `self ∘ other` (apply `other` in `self`'s frame).
    pub fn compose(self, other: Pose) -> Pose {
        Pose::new(
            self.rotation.mul_quat(other.rotation).normalized(),
            self.transform_point(other.translation),
        )
    }

    /// The inverse pose.
    pub fn inverse(self) -> Pose {
        let inv_rot = self.rotation.conjugate();
        Pose::new(inv_rot, inv_rot.rotate(-self.translation))
    }

    /// Relative pose taking `self` to `other`: `self.compose(delta) == other`.
    pub fn delta_to(self, other: Pose) -> Pose {
        self.inverse().compose(other)
    }

    /// Euclidean distance between the translations of two poses.
    pub fn translation_distance(self, other: Pose) -> f64 {
        self.translation.distance(other.translation)
    }

    /// Geodesic rotation angle between two poses, in radians.
    pub fn rotation_distance(self, other: Pose) -> f64 {
        self.rotation.angle_to(other.rotation)
    }
}

impl fmt::Display for Pose {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (roll, pitch, yaw) = self.rotation.to_euler();
        write!(
            f,
            "t={} rpy=({:.3}, {:.3}, {:.3})",
            self.translation, roll, pitch, yaw
        )
    }
}

/// A ray with origin and (unit) direction, used for depth rendering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ray {
    /// Ray origin.
    pub origin: Vec3,
    /// Unit direction.
    pub dir: Vec3,
}

impl Ray {
    /// Creates a ray, normalizing the direction.
    ///
    /// # Panics
    ///
    /// Panics in debug builds for a zero direction.
    pub fn new(origin: Vec3, dir: Vec3) -> Self {
        Self {
            origin,
            dir: dir.normalized(),
        }
    }

    /// Point at parameter `t` along the ray.
    pub fn at(self, t: f64) -> Vec3 {
        self.origin + self.dir * t
    }
}

/// Axis-aligned bounding box.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
}

impl Aabb {
    /// Creates a box from two corners (components are sorted).
    pub fn new(a: Vec3, b: Vec3) -> Self {
        Self {
            min: a.min(b),
            max: a.max(b),
        }
    }

    /// Box center.
    pub fn center(self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Box extents (full side lengths).
    pub fn size(self) -> Vec3 {
        self.max - self.min
    }

    /// Returns `true` when `p` lies inside (inclusive).
    pub fn contains(self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.x <= self.max.x
            && p.y >= self.min.y
            && p.y <= self.max.y
            && p.z >= self.min.z
            && p.z <= self.max.z
    }

    /// Grows the box to include `p`.
    pub fn expand(self, p: Vec3) -> Aabb {
        Aabb {
            min: self.min.min(p),
            max: self.max.max(p),
        }
    }

    /// Slab-method ray intersection; returns the entry distance if hit.
    pub fn intersect_ray(self, ray: Ray) -> Option<f64> {
        let mut tmin = 0.0f64;
        let mut tmax = f64::INFINITY;
        for axis in 0..3 {
            let (o, d, lo, hi) = match axis {
                0 => (ray.origin.x, ray.dir.x, self.min.x, self.max.x),
                1 => (ray.origin.y, ray.dir.y, self.min.y, self.max.y),
                _ => (ray.origin.z, ray.dir.z, self.min.z, self.max.z),
            };
            if d.abs() < 1e-12 {
                if o < lo || o > hi {
                    return None;
                }
            } else {
                let inv = 1.0 / d;
                let (mut t0, mut t1) = ((lo - o) * inv, (hi - o) * inv);
                if t0 > t1 {
                    std::mem::swap(&mut t0, &mut t1);
                }
                tmin = tmin.max(t0);
                tmax = tmax.min(t1);
                if tmin > tmax {
                    return None;
                }
            }
        }
        Some(tmin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn vec_close(a: Vec3, b: Vec3, tol: f64) -> bool {
        approx_eq(a.x, b.x, tol) && approx_eq(a.y, b.y, tol) && approx_eq(a.z, b.z, tol)
    }

    #[test]
    fn vec3_arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::splat(3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(a.dot(b), 32.0);
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
    }

    #[test]
    fn vec3_norm_and_lerp() {
        assert_eq!(Vec3::new(3.0, 4.0, 0.0).norm(), 5.0);
        let m = Vec3::ZERO.lerp(Vec3::new(2.0, 4.0, 6.0), 0.5);
        assert_eq!(m, Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn mat3_rotations_are_orthonormal() {
        for r in [
            Mat3::rotation_x(0.7),
            Mat3::rotation_y(-1.2),
            Mat3::rotation_z(2.9),
        ] {
            assert!(approx_eq(r.det(), 1.0, 1e-12));
            let rt = r.mul_mat(r.transpose());
            for i in 0..3 {
                for j in 0..3 {
                    let expect = if i == j { 1.0 } else { 0.0 };
                    assert!(approx_eq(rt.m[i][j], expect, 1e-12));
                }
            }
        }
    }

    #[test]
    fn mat3_rotation_z_quarter_turn() {
        let r = Mat3::rotation_z(FRAC_PI_2);
        assert!(vec_close(r.mul_vec(Vec3::X), Vec3::Y, 1e-12));
    }

    #[test]
    fn quat_axis_angle_matches_mat3() {
        let q = Quat::from_axis_angle(Vec3::Z, FRAC_PI_2);
        let v = q.rotate(Vec3::X);
        assert!(vec_close(v, Vec3::Y, 1e-12));
        let m = q.to_mat3();
        assert!(vec_close(m.mul_vec(Vec3::X), Vec3::Y, 1e-12));
    }

    #[test]
    fn quat_euler_roundtrip() {
        let (roll, pitch, yaw) = (0.3, -0.4, 1.2);
        let q = Quat::from_euler(roll, pitch, yaw);
        let (r2, p2, y2) = q.to_euler();
        assert!(approx_eq(roll, r2, 1e-10));
        assert!(approx_eq(pitch, p2, 1e-10));
        assert!(approx_eq(yaw, y2, 1e-10));
    }

    #[test]
    fn quat_composition_order() {
        // Rotate about Z then about the new X; check against matrices.
        let qz = Quat::from_axis_angle(Vec3::Z, 0.5);
        let qx = Quat::from_axis_angle(Vec3::X, 0.25);
        let q = qz.mul_quat(qx);
        let m = qz.to_mat3().mul_mat(qx.to_mat3());
        let v = Vec3::new(0.3, -1.0, 2.0);
        assert!(vec_close(q.rotate(v), m.mul_vec(v), 1e-12));
    }

    #[test]
    fn quat_conjugate_inverts() {
        let q = Quat::from_euler(0.1, 0.2, 0.3);
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert!(vec_close(q.conjugate().rotate(q.rotate(v)), v, 1e-12));
    }

    #[test]
    fn quat_slerp_endpoints_and_midpoint() {
        let a = Quat::IDENTITY;
        let b = Quat::from_axis_angle(Vec3::Z, PI / 2.0);
        assert!(approx_eq(a.slerp(b, 0.0).angle_to(a), 0.0, 1e-9));
        assert!(approx_eq(a.slerp(b, 1.0).angle_to(b), 0.0, 1e-9));
        let mid = a.slerp(b, 0.5);
        assert!(approx_eq(mid.angle_to(a), PI / 4.0, 1e-9));
    }

    #[test]
    fn pose_transform_roundtrip() {
        let pose = Pose::from_position_euler(Vec3::new(1.0, 2.0, 3.0), 0.1, 0.2, 0.3);
        let p = Vec3::new(-0.5, 0.7, 2.0);
        let world = pose.transform_point(p);
        let back = pose.inverse_transform_point(world);
        assert!(vec_close(back, p, 1e-12));
        // inverse() agrees with inverse_transform_point.
        let inv = pose.inverse();
        assert!(vec_close(inv.transform_point(world), p, 1e-12));
    }

    #[test]
    fn pose_compose_and_delta() {
        let a = Pose::from_position_euler(Vec3::new(1.0, 0.0, 0.0), 0.0, 0.0, 0.4);
        let b = Pose::from_position_euler(Vec3::new(2.0, 1.0, -1.0), 0.1, -0.2, 0.9);
        let delta = a.delta_to(b);
        let recon = a.compose(delta);
        assert!(vec_close(recon.translation, b.translation, 1e-12));
        assert!(approx_eq(recon.rotation_distance(b), 0.0, 1e-9));
    }

    #[test]
    fn pose_distances() {
        let a = Pose::IDENTITY;
        let b = Pose::from_position_euler(Vec3::new(3.0, 4.0, 0.0), 0.0, 0.0, PI / 2.0);
        assert!(approx_eq(a.translation_distance(b), 5.0, 1e-12));
        assert!(approx_eq(a.rotation_distance(b), PI / 2.0, 1e-9));
    }

    #[test]
    fn quat_from_mat3_roundtrip() {
        for q in [
            Quat::from_euler(0.3, -0.4, 1.2),
            Quat::from_euler(3.0, 0.1, -2.9),
            Quat::from_axis_angle(Vec3::new(1.0, 1.0, 1.0), 2.5),
            Quat::IDENTITY,
        ] {
            let m = q.to_mat3();
            let q2 = Quat::from_mat3(m);
            assert!(q.angle_to(q2) < 1e-9, "roundtrip failed for {q:?}");
        }
    }

    #[test]
    fn looking_at_convention() {
        // Camera at origin looking along +X with world up +Z:
        // body +Z (forward) maps to world +X, body +Y (down) to world -Z.
        let pose = Pose::looking_at(Vec3::ZERO, Vec3::X, Vec3::Z);
        assert!(vec_close(pose.rotation.rotate(Vec3::Z), Vec3::X, 1e-12));
        assert!(vec_close(pose.rotation.rotate(Vec3::Y), -Vec3::Z, 1e-12));
        // A point straight ahead in camera frame lands in front of the eye.
        let p = pose.transform_point(Vec3::new(0.0, 0.0, 2.0));
        assert!(vec_close(p, Vec3::new(2.0, 0.0, 0.0), 1e-12));
    }

    #[test]
    fn looking_at_keeps_target_centered() {
        let eye = Vec3::new(1.0, -2.0, 3.0);
        let target = Vec3::new(-2.0, 4.0, 0.5);
        let pose = Pose::looking_at(eye, target, Vec3::Z);
        let cam = pose.inverse_transform_point(target);
        // Target lies on the optical axis (+Z), at the right distance.
        assert!(cam.x.abs() < 1e-9 && cam.y.abs() < 1e-9);
        assert!(approx_eq(cam.z, eye.distance(target), 1e-9));
    }

    #[test]
    fn ray_at() {
        let r = Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, 2.0));
        assert!(vec_close(r.at(3.0), Vec3::new(0.0, 0.0, 3.0), 1e-12));
    }

    #[test]
    fn aabb_contains_and_ray() {
        let b = Aabb::new(Vec3::ZERO, Vec3::splat(1.0));
        assert!(b.contains(Vec3::splat(0.5)));
        assert!(!b.contains(Vec3::splat(1.5)));
        let r = Ray::new(Vec3::new(0.5, 0.5, -1.0), Vec3::Z);
        let t = b.intersect_ray(r).unwrap();
        assert!(approx_eq(t, 1.0, 1e-12));
        let miss = Ray::new(Vec3::new(5.0, 5.0, -1.0), Vec3::Z);
        assert!(b.intersect_ray(miss).is_none());
    }

    #[test]
    fn aabb_ray_from_inside_hits_at_zero() {
        let b = Aabb::new(Vec3::ZERO, Vec3::splat(2.0));
        let r = Ray::new(Vec3::splat(1.0), Vec3::X);
        assert_eq!(b.intersect_ray(r), Some(0.0));
    }
}
