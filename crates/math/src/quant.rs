//! Fixed-point quantization used to model low-precision CIM datapaths.
//!
//! The paper evaluates its CIM macros at 4-, 6- and 8-bit precision. This
//! module provides a symmetric uniform [`Quantizer`] (signed two's-complement
//! codes), bit-plane decomposition for bit-serial CIM MACs, and saturating
//! integer helpers.

use crate::{MathError, Result};

/// Symmetric uniform quantizer mapping `f64` values to signed integer codes
/// of a configurable bit-width.
///
/// Codes span `[-(2^(bits-1) - 1), 2^(bits-1) - 1]`; the most negative code
/// is unused so the grid is symmetric around zero (standard practice for
/// weight quantization).
///
/// ```
/// use navicim_math::quant::Quantizer;
/// let q = Quantizer::new(4, 1.0).unwrap();
/// assert_eq!(q.quantize(1.0), 7);
/// assert_eq!(q.quantize(-1.0), -7);
/// assert_eq!(q.quantize(0.0), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantizer {
    bits: u32,
    scale: f64,
    max_code: i64,
}

impl Quantizer {
    /// Creates a quantizer with the given bit-width covering `[-range, range]`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidArgument`] unless `2 <= bits <= 31` and
    /// `range > 0`.
    pub fn new(bits: u32, range: f64) -> Result<Self> {
        if !(2..=31).contains(&bits) {
            return Err(MathError::InvalidArgument(format!(
                "quantizer bits must be in [2, 31], got {bits}"
            )));
        }
        if !(range > 0.0 && range.is_finite()) {
            return Err(MathError::InvalidArgument(format!(
                "quantizer range must be positive and finite, got {range}"
            )));
        }
        let max_code = (1i64 << (bits - 1)) - 1;
        Ok(Self {
            bits,
            scale: range / max_code as f64,
            max_code,
        })
    }

    /// Creates a quantizer whose range covers the maximum absolute value of
    /// `data` (falling back to 1.0 for all-zero data).
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidArgument`] for an unsupported bit-width.
    pub fn fit(bits: u32, data: &[f64]) -> Result<Self> {
        let max_abs = data.iter().fold(0.0f64, |m, x| m.max(x.abs()));
        Self::new(bits, if max_abs > 0.0 { max_abs } else { 1.0 })
    }

    /// Bit-width of the codes.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Quantization step size (LSB) in input units.
    pub fn step(&self) -> f64 {
        self.scale
    }

    /// Largest representable code magnitude.
    pub fn max_code(&self) -> i64 {
        self.max_code
    }

    /// Quantizes one value to its integer code (round-to-nearest, saturate).
    pub fn quantize(&self, x: f64) -> i64 {
        let code = (x / self.scale).round() as i64;
        code.clamp(-self.max_code, self.max_code)
    }

    /// Reconstructs the real value of a code.
    pub fn dequantize(&self, code: i64) -> f64 {
        code as f64 * self.scale
    }

    /// Quantize-dequantize round trip ("fake quantization").
    pub fn fake_quantize(&self, x: f64) -> f64 {
        self.dequantize(self.quantize(x))
    }

    /// Quantizes a slice into codes.
    pub fn quantize_all(&self, xs: &[f64]) -> Vec<i64> {
        xs.iter().map(|&x| self.quantize(x)).collect()
    }

    /// Quantizes a slice into a reused code buffer (allocation-free once
    /// the buffer has warmed up to the layer width).
    pub fn quantize_all_into(&self, xs: &[f64], codes: &mut Vec<i64>) {
        codes.clear();
        codes.extend(xs.iter().map(|&x| self.quantize(x)));
    }

    /// Applies fake quantization to a slice.
    pub fn fake_quantize_all(&self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.fake_quantize(x)).collect()
    }

    /// Worst-case quantization error (half a step, before saturation).
    pub fn max_round_error(&self) -> f64 {
        self.scale * 0.5
    }
}

/// Decomposes a non-negative code into `bits` binary planes, LSB first.
///
/// Bit-serial CIM macros stream input bits plane by plane; this is the
/// software model of that decomposition.
///
/// # Panics
///
/// Panics if `code` is negative or does not fit in `bits` bits.
pub fn to_bit_planes(code: u64, bits: u32) -> Vec<bool> {
    assert!(
        bits == 64 || code < (1u64 << bits),
        "code {code} does not fit in {bits} bits"
    );
    (0..bits).map(|b| (code >> b) & 1 == 1).collect()
}

/// Recomposes a code from LSB-first bit planes.
pub fn from_bit_planes(planes: &[bool]) -> u64 {
    planes
        .iter()
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc | ((b as u64) << i))
}

/// Splits a signed code into `(sign, magnitude)` for sign-magnitude CIM
/// arrays.
pub fn to_sign_magnitude(code: i64) -> (i64, u64) {
    (code.signum(), code.unsigned_abs())
}

/// Saturating signed accumulation to a given accumulator bit-width, modeling
/// limited-precision partial-sum registers.
///
/// # Panics
///
/// Panics if `acc_bits` is zero or greater than 63.
pub fn saturating_acc(acc: i64, add: i64, acc_bits: u32) -> i64 {
    assert!((1..=63).contains(&acc_bits), "acc_bits must be in [1, 63]");
    let max = (1i64 << (acc_bits - 1)) - 1;
    (acc.saturating_add(add)).clamp(-max, max)
}

/// Mean squared quantization error of a quantizer over a data set.
pub fn quantization_mse(q: &Quantizer, data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    data.iter()
        .map(|&x| {
            let e = x - q.fake_quantize(x);
            e * e
        })
        .sum::<f64>()
        / data.len() as f64
}

/// Signal-to-quantization-noise ratio in dB over a data set.
///
/// Returns `f64::INFINITY` when the quantization error is exactly zero.
pub fn sqnr_db(q: &Quantizer, data: &[f64]) -> f64 {
    let signal: f64 = data.iter().map(|x| x * x).sum();
    let noise: f64 = data
        .iter()
        .map(|&x| {
            let e = x - q.fake_quantize(x);
            e * e
        })
        .sum();
    if noise == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (signal / noise).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Pcg32, SampleExt};

    #[test]
    fn quantizer_rejects_bad_args() {
        assert!(Quantizer::new(1, 1.0).is_err());
        assert!(Quantizer::new(32, 1.0).is_err());
        assert!(Quantizer::new(8, 0.0).is_err());
        assert!(Quantizer::new(8, f64::NAN).is_err());
    }

    #[test]
    fn four_bit_codes() {
        let q = Quantizer::new(4, 1.0).unwrap();
        assert_eq!(q.max_code(), 7);
        assert_eq!(q.quantize(1.0), 7);
        assert_eq!(q.quantize(-1.0), -7);
        assert_eq!(q.quantize(2.0), 7); // saturation
        assert_eq!(q.quantize(0.07), 0); // below half step (step = 1/7)
        assert_eq!(q.quantize(0.08), 1);
    }

    #[test]
    fn dequantize_roundtrip_on_grid() {
        let q = Quantizer::new(6, 2.0).unwrap();
        for code in -q.max_code()..=q.max_code() {
            let x = q.dequantize(code);
            assert_eq!(q.quantize(x), code);
        }
    }

    #[test]
    fn fit_covers_data() {
        let data = [0.5, -3.0, 1.0];
        let q = Quantizer::fit(8, &data).unwrap();
        assert_eq!(q.quantize(-3.0), -q.max_code());
        // In-range values stay unsaturated.
        assert!(q.quantize(1.0).abs() < q.max_code());
    }

    #[test]
    fn fit_all_zero_data() {
        let q = Quantizer::fit(8, &[0.0, 0.0]).unwrap();
        assert_eq!(q.quantize(0.0), 0);
    }

    #[test]
    fn error_bounded_by_half_step() {
        let q = Quantizer::new(5, 1.5).unwrap();
        let mut rng = Pcg32::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.sample_uniform(-1.5, 1.5);
            assert!((x - q.fake_quantize(x)).abs() <= q.max_round_error() + 1e-12);
        }
    }

    #[test]
    fn bit_planes_roundtrip() {
        for code in 0u64..64 {
            let planes = to_bit_planes(code, 6);
            assert_eq!(planes.len(), 6);
            assert_eq!(from_bit_planes(&planes), code);
        }
    }

    #[test]
    fn sign_magnitude() {
        assert_eq!(to_sign_magnitude(-5), (-1, 5));
        assert_eq!(to_sign_magnitude(0), (0, 0));
        assert_eq!(to_sign_magnitude(9), (1, 9));
    }

    #[test]
    fn saturating_acc_clamps() {
        let max = (1i64 << 7) - 1;
        assert_eq!(saturating_acc(120, 100, 8), max);
        assert_eq!(saturating_acc(-120, -100, 8), -max);
        assert_eq!(saturating_acc(5, 3, 8), 8);
    }

    #[test]
    fn sqnr_improves_with_bits() {
        let mut rng = Pcg32::seed_from_u64(2);
        let data: Vec<f64> = (0..2000).map(|_| rng.sample_uniform(-1.0, 1.0)).collect();
        let q4 = Quantizer::new(4, 1.0).unwrap();
        let q8 = Quantizer::new(8, 1.0).unwrap();
        let s4 = sqnr_db(&q4, &data);
        let s8 = sqnr_db(&q8, &data);
        // ~6 dB per bit: expect roughly 24 dB improvement.
        assert!(s8 - s4 > 18.0, "s4={s4}, s8={s8}");
    }

    #[test]
    fn mse_decreases_with_bits() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64 / 50.0) - 1.0).collect();
        let q4 = Quantizer::new(4, 1.0).unwrap();
        let q6 = Quantizer::new(6, 1.0).unwrap();
        assert!(quantization_mse(&q6, &data) < quantization_mse(&q4, &data));
    }
}
