//! Counting global allocator: the runtime half of the workspace's
//! zero-alloc contract.
//!
//! The hot paths of this workspace — `LocalizationPipeline::step`,
//! `Fleet::step_round`, and the three batch likelihood kernels — claim an
//! allocation-free steady state: after a warm-up pass has sized every
//! reusable buffer, further frames must not touch the heap. The static
//! side of that contract is checked by `navicim-lint` (rule
//! `hot-path-alloc`); this module is the *runtime* side: a counting
//! wrapper around the system allocator that lets a test assert, to the
//! exact event, that a region of code performed zero heap operations.
//!
//! Compiled only under the `alloc-audit` feature, which registers the
//! counter as the process-wide `#[global_allocator]`. The counters are
//! process-global and count *every* thread's traffic, so audited regions
//! must run while no other thread allocates — the `tests/alloc_audit.rs`
//! harness serializes its cases behind a mutex and pins fleet rounds to
//! one worker for exactly this reason.
//!
//! Overhead is one relaxed atomic increment per heap event, so the full
//! test suite can run under the audit allocator unchanged.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Heap events since process start, split by kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocCounts {
    /// `alloc` + `alloc_zeroed` calls.
    pub allocs: u64,
    /// `realloc` calls (growth *and* shrink — either may move or split a
    /// heap block, so a zero-alloc region admits neither).
    pub reallocs: u64,
    /// `dealloc` calls.
    pub deallocs: u64,
}

impl AllocCounts {
    /// Total heap events: allocations, reallocations and frees.
    pub fn total(&self) -> u64 {
        self.allocs + self.reallocs + self.deallocs
    }

    /// Events that acquire or resize heap memory (frees excluded) — the
    /// quantity a *zero-alloc* steady state pins to zero. Frees are
    /// reported separately: a steady state that frees without
    /// allocating is shrinking, which is legal but worth seeing.
    pub fn acquisitions(&self) -> u64 {
        self.allocs + self.reallocs
    }

    /// Component-wise difference against an earlier snapshot.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is ahead of `self` (swapped
    /// snapshots).
    pub fn since(&self, earlier: &AllocCounts) -> AllocCounts {
        debug_assert!(
            self.allocs >= earlier.allocs
                && self.reallocs >= earlier.reallocs
                && self.deallocs >= earlier.deallocs,
            "allocation snapshots out of order"
        );
        AllocCounts {
            allocs: self.allocs - earlier.allocs,
            reallocs: self.reallocs - earlier.reallocs,
            deallocs: self.deallocs - earlier.deallocs,
        }
    }
}

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static REALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);

/// The counting allocator: delegates every operation to [`System`] and
/// tallies it. Registered as the global allocator by this module, so
/// simply enabling the `alloc-audit` feature puts the whole process
/// under audit.
pub struct CountingAllocator;

// SAFETY: every method delegates verbatim to `System`, which upholds the
// `GlobalAlloc` contract; the only addition is a relaxed counter bump,
// which neither allocates nor observes the returned memory.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: counter bump then verbatim delegation; `layout` obligations pass through to `System`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded unchanged; caller guarantees `layout` has
        // non-zero size per the `GlobalAlloc` contract.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: counter bump then verbatim delegation; same contract as `alloc`.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded unchanged; same contract as `alloc`.
        unsafe { System.alloc_zeroed(layout) }
    }

    // SAFETY: counter bump then verbatim delegation; `ptr`/`layout`/`new_size` obligations pass through to `System`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        REALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded unchanged; caller guarantees `ptr` was
        // allocated with `layout` by this allocator and `new_size` is
        // non-zero.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    // SAFETY: counter bump then verbatim delegation; `ptr`/`layout` obligations pass through to `System`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: forwarded unchanged; caller guarantees `ptr`/`layout`
        // match the original allocation.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Snapshot of the process-wide heap-event counters.
///
/// Counters are read individually with relaxed ordering: the snapshot is
/// exact whenever no *other* thread is mid-heap-operation, which is the
/// regime audited tests run in (see the module docs).
pub fn counts() -> AllocCounts {
    AllocCounts {
        allocs: ALLOCS.load(Ordering::Relaxed),
        reallocs: REALLOCS.load(Ordering::Relaxed),
        deallocs: DEALLOCS.load(Ordering::Relaxed),
    }
}

/// Runs `f` and returns the heap events it performed (including any
/// other thread's traffic in the window — audited regions run
/// single-threaded).
pub fn audited<T>(f: impl FnOnce() -> T) -> (T, AllocCounts) {
    let before = counts();
    let out = f();
    (out, counts().since(&before))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_a_boxed_allocation_and_free() {
        let ((), delta) = audited(|| {
            let b = Box::new([0u8; 64]);
            std::hint::black_box(&b);
        });
        assert!(delta.allocs >= 1, "Box::new must count as an allocation");
        assert!(delta.deallocs >= 1, "drop must count as a free");
    }

    // Exact-zero steady-state assertions live in the workspace-level
    // `tests/alloc_audit.rs` harness, whose cases serialize behind a
    // mutex: these module tests share a process (and therefore the
    // global counters) with the rest of the crate's parallel suite, so
    // only monotone `>=` claims are meaningful here.
    #[test]
    fn counts_vec_growth_as_acquisition() {
        let mut v: Vec<u64> = Vec::new();
        let ((), delta) = audited(|| {
            for i in 0..1000 {
                v.push(i);
            }
        });
        assert!(delta.acquisitions() >= 1, "growth must be visible");
        drop(v);
    }
}
