//! Descriptive statistics, correlation measures and Gaussian densities.

use crate::linalg::Matrix;
use crate::{MathError, Result};

/// Natural log of 2π, used by Gaussian log-densities.
pub const LN_2PI: f64 = 1.837_877_066_409_345_6;

/// Arithmetic mean of a slice; `0.0` for an empty slice.
///
/// ```
/// assert_eq!(navicim_math::stats::mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance; `0.0` for slices shorter than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Unbiased sample standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Minimum of a slice; `f64::INFINITY` for an empty slice.
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::INFINITY, f64::min)
}

/// Maximum of a slice; `f64::NEG_INFINITY` for an empty slice.
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}

/// Median of a slice (average of the two central order statistics for even
/// lengths); `0.0` for an empty slice.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("median requires non-NaN data"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// Linear-interpolated percentile (`p` in `[0, 100]`).
///
/// # Panics
///
/// Panics if `xs` is empty or `p` is outside `[0, 100]`.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile requires data");
    assert!(
        (0.0..=100.0).contains(&p),
        "percentile requires 0 <= p <= 100"
    );
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("percentile requires non-NaN data"));
    let rank = p / 100.0 * (v.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    v[lo] * (1.0 - frac) + v[hi] * frac
}

/// Pearson linear correlation coefficient between two equal-length slices.
///
/// # Errors
///
/// Returns [`MathError::DimensionMismatch`] when lengths differ and
/// [`MathError::InvalidArgument`] when either input is constant (undefined
/// correlation).
pub fn pearson(xs: &[f64], ys: &[f64]) -> Result<f64> {
    if xs.len() != ys.len() {
        return Err(MathError::DimensionMismatch {
            expected: format!("{} samples", xs.len()),
            found: format!("{} samples", ys.len()),
        });
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return Err(MathError::InvalidArgument(
            "correlation of a constant sequence is undefined".into(),
        ));
    }
    Ok(sxy / (sxx * syy).sqrt())
}

/// Spearman rank correlation coefficient.
///
/// Ties receive the average of their rank range.
///
/// # Errors
///
/// Same failure modes as [`pearson`].
pub fn spearman(xs: &[f64], ys: &[f64]) -> Result<f64> {
    pearson(&ranks(xs), &ranks(ys))
}

/// Average ranks (1-based) of the values in `xs`, with ties sharing the
/// mean rank of their run.
pub fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| {
        xs[a]
            .partial_cmp(&xs[b])
            .expect("ranks require non-NaN data")
    });
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg_rank;
        }
        i = j + 1;
    }
    out
}

/// Online accumulator for mean/variance (Welford's algorithm).
///
/// ```
/// use navicim_math::stats::RunningStats;
/// let mut acc = RunningStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] { acc.push(x); }
/// assert_eq!(acc.mean(), 2.5);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Current mean (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased variance (`0.0` with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n as f64;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Equal-width histogram over `[lo, hi]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    outliers: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins spanning `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram requires at least one bin");
        assert!(lo < hi, "histogram requires lo < hi");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
            outliers: 0,
        }
    }

    /// Adds one observation; values outside `[lo, hi]` count as outliers.
    pub fn push(&mut self, x: f64) {
        if x < self.lo || x > self.hi || x.is_nan() {
            self.outliers += 1;
            return;
        }
        let bins = self.counts.len();
        let idx = (((x - self.lo) / (self.hi - self.lo)) * bins as f64) as usize;
        self.counts[idx.min(bins - 1)] += 1;
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations that fell outside the histogram range.
    pub fn outliers(&self) -> u64 {
        self.outliers
    }

    /// Center of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len(), "bin index out of bounds");
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }

    /// Total in-range count.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// Log-density of the univariate normal distribution.
pub fn normal_logpdf(x: f64, mean: f64, std_dev: f64) -> f64 {
    let z = (x - mean) / std_dev;
    -0.5 * (LN_2PI + z * z) - std_dev.ln()
}

/// Density of the univariate normal distribution.
pub fn normal_pdf(x: f64, mean: f64, std_dev: f64) -> f64 {
    normal_logpdf(x, mean, std_dev).exp()
}

/// Standard normal cumulative distribution function Φ(x).
///
/// Uses the Abramowitz–Stegun 7.1.26 rational approximation of `erf`
/// (absolute error < 1.5e-7), which is ample for the bias/randomness
/// statistics computed in this workspace.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Error function approximation (Abramowitz–Stegun 7.1.26).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Multivariate normal log-density with a full covariance matrix.
///
/// # Errors
///
/// Returns an error when dimensions disagree or the covariance is not
/// positive definite.
pub fn mvn_logpdf(x: &[f64], mean: &[f64], cov: &Matrix) -> Result<f64> {
    let d = mean.len();
    if x.len() != d || cov.rows() != d || cov.cols() != d {
        return Err(MathError::DimensionMismatch {
            expected: format!("x:{d}, cov:{d}x{d}"),
            found: format!("x:{}, cov:{}x{}", x.len(), cov.rows(), cov.cols()),
        });
    }
    let chol = cov.cholesky()?;
    // Solve L y = (x - mean); logdet = 2 Σ ln L_ii.
    let diff: Vec<f64> = x.iter().zip(mean).map(|(a, b)| a - b).collect();
    let y = chol.forward_substitute(&diff)?;
    let quad: f64 = y.iter().map(|v| v * v).sum();
    let logdet: f64 = 2.0 * (0..d).map(|i| chol.lower()[(i, i)].ln()).sum::<f64>();
    Ok(-0.5 * (d as f64 * LN_2PI + logdet + quad))
}

/// Multivariate normal log-density with a diagonal covariance given as
/// per-axis standard deviations.
pub fn diag_mvn_logpdf(x: &[f64], mean: &[f64], std_devs: &[f64]) -> f64 {
    debug_assert_eq!(x.len(), mean.len());
    debug_assert_eq!(x.len(), std_devs.len());
    x.iter()
        .zip(mean)
        .zip(std_devs)
        .map(|((x, m), s)| normal_logpdf(*x, *m, *s))
        .sum()
}

/// Numerically stable `log(Σ exp(x_i))`.
///
/// Returns `-inf` for an empty slice.
pub fn log_sum_exp(xs: &[f64]) -> f64 {
    let m = max(xs);
    if m == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    m + xs.iter().map(|x| (x - m).exp()).sum::<f64>().ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn basic_moments() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert!(approx_eq(variance(&xs), 32.0 / 7.0, 1e-12));
        assert_eq!(min(&xs), 2.0);
        assert_eq!(max(&xs), 9.0);
    }

    #[test]
    fn median_and_percentile() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(percentile(&[1.0, 2.0, 3.0, 4.0, 5.0], 50.0), 3.0);
        assert_eq!(percentile(&[1.0, 2.0, 3.0, 4.0, 5.0], 0.0), 1.0);
        assert_eq!(percentile(&[1.0, 2.0, 3.0, 4.0, 5.0], 100.0), 5.0);
    }

    #[test]
    fn pearson_perfect_and_anti() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!(approx_eq(pearson(&xs, &ys).unwrap(), 1.0, 1e-12));
        let zs = [8.0, 6.0, 4.0, 2.0];
        assert!(approx_eq(pearson(&xs, &zs).unwrap(), -1.0, 1e-12));
    }

    #[test]
    fn pearson_rejects_constant() {
        assert!(pearson(&[1.0, 1.0], &[2.0, 3.0]).is_err());
    }

    #[test]
    fn spearman_monotone_nonlinear() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys: Vec<f64> = xs.iter().map(|x: &f64| x.exp()).collect();
        assert!(approx_eq(spearman(&xs, &ys).unwrap(), 1.0, 1e-12));
    }

    #[test]
    fn ranks_handle_ties() {
        let r = ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn running_stats_matches_batch() {
        let xs = [1.5, -2.0, 3.25, 0.0, 9.0, -4.0];
        let mut acc = RunningStats::new();
        for &x in &xs {
            acc.push(x);
        }
        assert!(approx_eq(acc.mean(), mean(&xs), 1e-12));
        assert!(approx_eq(acc.variance(), variance(&xs), 1e-12));
        assert_eq!(acc.min(), -4.0);
        assert_eq!(acc.max(), 9.0);
    }

    #[test]
    fn running_stats_merge() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &xs[..3] {
            a.push(x);
        }
        for &x in &xs[3..] {
            b.push(x);
        }
        a.merge(&b);
        assert!(approx_eq(a.mean(), 3.5, 1e-12));
        assert!(approx_eq(a.variance(), variance(&xs), 1e-12));
    }

    #[test]
    fn histogram_bins_and_outliers() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.5, 1.5, 2.5, 9.9, 10.0, -1.0, 11.0] {
            h.push(x);
        }
        assert_eq!(h.counts(), &[2, 1, 0, 0, 2]);
        assert_eq!(h.outliers(), 2);
        assert!(approx_eq(h.bin_center(0), 1.0, 1e-12));
    }

    #[test]
    fn normal_pdf_peak() {
        assert!(approx_eq(normal_pdf(0.0, 0.0, 1.0), 0.398_942_280_4, 1e-9));
        assert!(approx_eq(
            normal_logpdf(1.0, 0.0, 1.0),
            (0.241_970_724_5f64).ln(),
            1e-8
        ));
    }

    #[test]
    fn normal_cdf_reference_points() {
        assert!(approx_eq(normal_cdf(0.0), 0.5, 1e-7));
        assert!(approx_eq(normal_cdf(1.96), 0.975, 1e-3));
        assert!(approx_eq(normal_cdf(-1.96), 0.025, 1e-3));
    }

    #[test]
    fn mvn_matches_product_of_univariates_for_diagonal() {
        let cov = Matrix::diag(&[4.0, 9.0]);
        let lp = mvn_logpdf(&[1.0, -2.0], &[0.0, 1.0], &cov).unwrap();
        let expect = normal_logpdf(1.0, 0.0, 2.0) + normal_logpdf(-2.0, 1.0, 3.0);
        assert!(approx_eq(lp, expect, 1e-10));
        let lp2 = diag_mvn_logpdf(&[1.0, -2.0], &[0.0, 1.0], &[2.0, 3.0]);
        assert!(approx_eq(lp2, expect, 1e-12));
    }

    #[test]
    fn log_sum_exp_stability() {
        let xs = [-1000.0, -1000.0];
        assert!(approx_eq(log_sum_exp(&xs), -1000.0 + (2.0f64).ln(), 1e-9));
        assert_eq!(log_sum_exp(&[]), f64::NEG_INFINITY);
    }
}
