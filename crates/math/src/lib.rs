//! Numerical foundation for the navicim workspace.
//!
//! This crate provides the dependency-free mathematical substrate used by
//! every other navicim crate:
//!
//! - [`linalg`] — dense vectors/matrices with LU, Cholesky and Jacobi
//!   eigendecomposition (used by the GMM fitter and filters),
//! - [`geom`] — 3-D geometry: [`geom::Vec3`], [`geom::Mat3`],
//!   [`geom::Quat`], rigid poses and rays (used by the scene simulator and
//!   the localization pipelines),
//! - [`stats`] — descriptive statistics, correlation and Gaussian densities,
//! - [`rng`] — small deterministic PRNGs ([`rng::SplitMix64`],
//!   [`rng::Pcg32`]) and a sampling extension trait (normal, multinomial,
//!   systematic resampling indices, …),
//! - [`quant`] — fixed-point quantization used to model low-precision CIM
//!   datapaths,
//! - [`metrics`] — trajectory/error metrics (RMSE, ATE, …),
//! - [`randtest`] — a lightweight randomness test battery for the
//!   SRAM-embedded RNG of the paper's Section III,
//! - [`simd`] — explicit 4-wide f64 lanes and a fast exponential for the
//!   likelihood hot paths (stable Rust, no intrinsics).
//!
//! # Example
//!
//! ```
//! use navicim_math::rng::{Pcg32, SampleExt};
//! use navicim_math::stats;
//!
//! let mut rng = Pcg32::seed_from_u64(7);
//! let xs: Vec<f64> = (0..1000).map(|_| rng.sample_normal(0.0, 2.0)).collect();
//! let sd = stats::std_dev(&xs);
//! assert!((sd - 2.0).abs() < 0.25);
//! ```

#![warn(missing_docs)]
// The crate is `unsafe`-free except for the opt-in counting allocator
// behind the `alloc-audit` feature, whose `GlobalAlloc` impl is the one
// place the language forces `unsafe` on us. `forbid` (unoverridable)
// stays the default; the feature downgrades it to `deny` so the audit
// module alone may opt out, with `// SAFETY:` comments on every block.
#![cfg_attr(not(feature = "alloc-audit"), forbid(unsafe_code))]
#![cfg_attr(feature = "alloc-audit", deny(unsafe_code))]

#[cfg(feature = "alloc-audit")]
pub mod alloc_audit;
pub mod geom;
pub mod linalg;
pub mod metrics;
pub mod quant;
pub mod randtest;
pub mod rng;
pub mod sample;
pub mod simd;
pub mod stats;

use std::error::Error;
use std::fmt;

/// Error type for fallible numerical routines in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum MathError {
    /// Operand dimensions are incompatible for the requested operation.
    DimensionMismatch {
        /// Human-readable description of what was expected.
        expected: String,
        /// Human-readable description of what was found.
        found: String,
    },
    /// A matrix required to be invertible was (numerically) singular.
    Singular,
    /// A matrix required to be positive definite was not.
    NotPositiveDefinite,
    /// An argument was outside its valid domain.
    InvalidArgument(String),
    /// An iterative routine failed to converge within its iteration budget.
    NoConvergence {
        /// Number of iterations performed before giving up.
        iterations: usize,
    },
}

impl fmt::Display for MathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MathError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            MathError::Singular => write!(f, "matrix is singular"),
            MathError::NotPositiveDefinite => write!(f, "matrix is not positive definite"),
            MathError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            MathError::NoConvergence { iterations } => {
                write!(f, "no convergence after {iterations} iterations")
            }
        }
    }
}

impl Error for MathError {}

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, MathError>;

/// Returns `true` when `a` and `b` are within `tol` of each other.
///
/// Uses a combined absolute/relative criterion so it behaves sensibly for
/// both tiny and large magnitudes.
///
/// ```
/// assert!(navicim_math::approx_eq(1.0, 1.0 + 1e-12, 1e-9));
/// assert!(!navicim_math::approx_eq(1.0, 1.1, 1e-9));
/// ```
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    diff <= tol || diff <= tol * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute_and_relative() {
        assert!(approx_eq(0.0, 0.0, 1e-12));
        assert!(approx_eq(1e9, 1e9 + 1.0, 1e-8));
        assert!(!approx_eq(1.0, 2.0, 1e-3));
    }

    #[test]
    fn math_error_display_is_lowercase_and_meaningful() {
        let e = MathError::Singular;
        assert_eq!(e.to_string(), "matrix is singular");
        let e = MathError::DimensionMismatch {
            expected: "3x3".into(),
            found: "2x3".into(),
        };
        assert!(e.to_string().contains("expected 3x3"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MathError>();
    }
}
