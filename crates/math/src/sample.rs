//! Weighted-resampling schemes used by the particle filter.
//!
//! Given normalized particle weights, each scheme returns the indices of the
//! particles selected for the next generation. Systematic resampling is the
//! workhorse (lowest variance, O(n)); multinomial, stratified and residual
//! variants are provided for the resampling-ablation experiments.

use crate::rng::{Rng64, SampleExt};

/// Resampling scheme selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ResampleScheme {
    /// Systematic resampling: one uniform offset, comb of n equally spaced
    /// pointers. Lowest variance, the default.
    #[default]
    Systematic,
    /// Independent multinomial draws (highest variance).
    Multinomial,
    /// Stratified resampling: one uniform per stratum.
    Stratified,
    /// Residual resampling: deterministic copies of ⌊n wᵢ⌋ then multinomial
    /// on the remainder.
    Residual,
}

impl ResampleScheme {
    /// All supported schemes, for sweep experiments.
    pub const ALL: [ResampleScheme; 4] = [
        ResampleScheme::Systematic,
        ResampleScheme::Multinomial,
        ResampleScheme::Stratified,
        ResampleScheme::Residual,
    ];

    /// Dispatches to the matching resampling function.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or does not sum to a positive value.
    pub fn resample<R: Rng64 + ?Sized>(self, weights: &[f64], rng: &mut R) -> Vec<usize> {
        let mut scratch = ResampleScratch::default();
        let mut out = Vec::new();
        self.resample_into(weights, rng, &mut scratch, &mut out);
        out
    }

    /// [`Self::resample`] into caller-owned buffers: `out` receives the
    /// selected indices, `scratch` holds the normalized weights (and any
    /// scheme-specific intermediate). Bit-identical to [`Self::resample`]
    /// — which delegates here — but allocation-free once the buffers have
    /// reached the particle count, which is what keeps the filter's
    /// resampling frames inside the workspace's zero-alloc steady-state
    /// contract.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or does not sum to a positive value.
    pub fn resample_into<R: Rng64 + ?Sized>(
        self,
        weights: &[f64],
        rng: &mut R,
        scratch: &mut ResampleScratch,
        out: &mut Vec<usize>,
    ) {
        match self {
            ResampleScheme::Systematic => systematic_into(weights, rng, scratch, out),
            ResampleScheme::Multinomial => multinomial_into(weights, rng, scratch, out),
            ResampleScheme::Stratified => stratified_into(weights, rng, scratch, out),
            ResampleScheme::Residual => residual_into(weights, rng, scratch, out),
        }
    }
}

/// Reusable buffers for [`ResampleScheme::resample_into`]: the
/// normalized-weight copy every scheme takes, plus the per-scheme
/// intermediate (multinomial's CDF, residual's remainders). Grows to the
/// particle count once, then resampling is allocation-free.
#[derive(Debug, Clone, Default)]
pub struct ResampleScratch {
    norm: Vec<f64>,
    aux: Vec<f64>,
}

impl std::fmt::Display for ResampleScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ResampleScheme::Systematic => "systematic",
            ResampleScheme::Multinomial => "multinomial",
            ResampleScheme::Stratified => "stratified",
            ResampleScheme::Residual => "residual",
        };
        f.write_str(name)
    }
}

// lint: reduction-order — the normalization total is summed in index
// order; resampling indices (and so the filter trajectory) depend on it.
fn normalized_into(weights: &[f64], norm: &mut Vec<f64>) {
    assert!(!weights.is_empty(), "resampling requires weights");
    let total: f64 = weights.iter().sum();
    assert!(
        total > 0.0 && total.is_finite(),
        "resampling requires a positive finite total weight"
    );
    norm.clear();
    norm.extend(weights.iter().map(|w| w / total));
}

/// Systematic resampling: returns `weights.len()` selected indices.
///
/// # Panics
///
/// Panics if `weights` is empty or sums to a non-positive value.
pub fn systematic<R: Rng64 + ?Sized>(weights: &[f64], rng: &mut R) -> Vec<usize> {
    let mut scratch = ResampleScratch::default();
    let mut out = Vec::new();
    systematic_into(weights, rng, &mut scratch, &mut out);
    out
}

/// [`systematic`] into caller-owned buffers (see
/// [`ResampleScheme::resample_into`]).
///
/// # Panics
///
/// Panics if `weights` is empty or sums to a non-positive value.
pub fn systematic_into<R: Rng64 + ?Sized>(
    weights: &[f64],
    rng: &mut R,
    scratch: &mut ResampleScratch,
    out: &mut Vec<usize>,
) {
    normalized_into(weights, &mut scratch.norm);
    let w = &scratch.norm;
    let n = w.len();
    let step = 1.0 / n as f64;
    let mut u = rng.next_f64() * step;
    out.clear();
    let mut cum = w[0];
    let mut i = 0;
    for _ in 0..n {
        while u > cum && i + 1 < n {
            i += 1;
            cum += w[i];
        }
        out.push(i);
        u += step;
    }
}

/// Multinomial resampling: n independent categorical draws.
///
/// # Panics
///
/// Panics if `weights` is empty or sums to a non-positive value.
pub fn multinomial<R: Rng64 + ?Sized>(weights: &[f64], rng: &mut R) -> Vec<usize> {
    let mut scratch = ResampleScratch::default();
    let mut out = Vec::new();
    multinomial_into(weights, rng, &mut scratch, &mut out);
    out
}

/// [`multinomial`] into caller-owned buffers (see
/// [`ResampleScheme::resample_into`]).
///
/// # Panics
///
/// Panics if `weights` is empty or sums to a non-positive value.
pub fn multinomial_into<R: Rng64 + ?Sized>(
    weights: &[f64],
    rng: &mut R,
    scratch: &mut ResampleScratch,
    out: &mut Vec<usize>,
) {
    normalized_into(weights, &mut scratch.norm);
    let w = &scratch.norm;
    let n = w.len();
    // Cumulative distribution + binary search per draw.
    let cdf = &mut scratch.aux;
    cdf.clear();
    let mut acc = 0.0;
    for &wi in w {
        acc += wi;
        cdf.push(acc);
    }
    out.clear();
    out.extend((0..n).map(|_| {
        let u = rng.next_f64();
        match cdf.binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite")) {
            Ok(i) => i,
            Err(i) => i.min(n - 1),
        }
    }));
}

/// Stratified resampling: one uniform draw per equal-probability stratum.
///
/// # Panics
///
/// Panics if `weights` is empty or sums to a non-positive value.
pub fn stratified<R: Rng64 + ?Sized>(weights: &[f64], rng: &mut R) -> Vec<usize> {
    let mut scratch = ResampleScratch::default();
    let mut out = Vec::new();
    stratified_into(weights, rng, &mut scratch, &mut out);
    out
}

/// [`stratified`] into caller-owned buffers (see
/// [`ResampleScheme::resample_into`]).
///
/// # Panics
///
/// Panics if `weights` is empty or sums to a non-positive value.
pub fn stratified_into<R: Rng64 + ?Sized>(
    weights: &[f64],
    rng: &mut R,
    scratch: &mut ResampleScratch,
    out: &mut Vec<usize>,
) {
    normalized_into(weights, &mut scratch.norm);
    let w = &scratch.norm;
    let n = w.len();
    out.clear();
    let mut cum = w[0];
    let mut i = 0;
    for k in 0..n {
        let u = (k as f64 + rng.next_f64()) / n as f64;
        while u > cum && i + 1 < n {
            i += 1;
            cum += w[i];
        }
        out.push(i);
    }
}

/// Residual resampling: deterministic ⌊n wᵢ⌋ copies, multinomial remainder.
///
/// # Panics
///
/// Panics if `weights` is empty or sums to a non-positive value.
pub fn residual<R: Rng64 + ?Sized>(weights: &[f64], rng: &mut R) -> Vec<usize> {
    let mut scratch = ResampleScratch::default();
    let mut out = Vec::new();
    residual_into(weights, rng, &mut scratch, &mut out);
    out
}

/// [`residual`] into caller-owned buffers (see
/// [`ResampleScheme::resample_into`]).
///
/// # Panics
///
/// Panics if `weights` is empty or sums to a non-positive value.
pub fn residual_into<R: Rng64 + ?Sized>(
    weights: &[f64],
    rng: &mut R,
    scratch: &mut ResampleScratch,
    out: &mut Vec<usize>,
) {
    normalized_into(weights, &mut scratch.norm);
    let w = &scratch.norm;
    let n = w.len();
    out.clear();
    let residuals = &mut scratch.aux;
    residuals.clear();
    for (i, &wi) in w.iter().enumerate() {
        let copies = (wi * n as f64).floor() as usize;
        for _ in 0..copies {
            out.push(i);
        }
        residuals.push(wi * n as f64 - copies as f64);
    }
    let remaining = n - out.len();
    if remaining > 0 {
        // lint: reduction-order — residual mass summed in index order.
        let total: f64 = residuals.iter().sum();
        if total <= 0.0 {
            // All mass consumed by floor copies; fill uniformly.
            for _ in 0..remaining {
                out.push(rng.sample_index(n));
            }
        } else {
            for _ in 0..remaining {
                out.push(rng.sample_weighted(residuals));
            }
        }
    }
}

/// Effective sample size `1 / Σ wᵢ²` of normalized weights.
///
/// Degenerate inputs (zero total weight) yield `0.0`.
pub fn effective_sample_size(weights: &[f64]) -> f64 {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 || !total.is_finite() {
        return 0.0;
    }
    let sum_sq: f64 = weights.iter().map(|w| (w / total) * (w / total)).sum();
    if sum_sq == 0.0 {
        0.0
    } else {
        1.0 / sum_sq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Pcg32;

    fn counts(indices: &[usize], n: usize) -> Vec<usize> {
        let mut c = vec![0; n];
        for &i in indices {
            c[i] += 1;
        }
        c
    }

    #[test]
    fn all_schemes_return_n_indices() {
        let weights = [0.1, 0.2, 0.3, 0.4];
        for scheme in ResampleScheme::ALL {
            let mut rng = Pcg32::seed_from_u64(1);
            let idx = scheme.resample(&weights, &mut rng);
            assert_eq!(idx.len(), 4, "{scheme}");
            assert!(idx.iter().all(|&i| i < 4), "{scheme}");
        }
    }

    #[test]
    fn degenerate_weight_selects_single_particle() {
        let weights = [0.0, 1.0, 0.0];
        for scheme in ResampleScheme::ALL {
            let mut rng = Pcg32::seed_from_u64(2);
            let idx = scheme.resample(&weights, &mut rng);
            assert!(idx.iter().all(|&i| i == 1), "{scheme} selected {idx:?}");
        }
    }

    #[test]
    fn proportions_track_weights() {
        // Repeat resampling on a length-1000 weight vector and check the
        // aggregate selection frequency of a heavy particle.
        let n = 1000;
        let mut weights = vec![1.0; n];
        weights[0] = 250.0; // ~20% of total mass
        let total: f64 = weights.iter().sum();
        let expect = 250.0 / total;
        for scheme in ResampleScheme::ALL {
            let mut rng = Pcg32::seed_from_u64(3);
            let mut hits = 0usize;
            let reps = 50;
            for _ in 0..reps {
                let idx = scheme.resample(&weights, &mut rng);
                hits += counts(&idx, n)[0];
            }
            let frac = hits as f64 / (reps * n) as f64;
            assert!(
                (frac - expect).abs() < 0.03,
                "{scheme}: frac {frac} expect {expect}"
            );
        }
    }

    #[test]
    fn systematic_has_low_variance() {
        // For uniform weights, systematic resampling must return every index
        // exactly once.
        let weights = vec![1.0; 64];
        let mut rng = Pcg32::seed_from_u64(4);
        let idx = systematic(&weights, &mut rng);
        let c = counts(&idx, 64);
        assert!(c.iter().all(|&k| k == 1), "{c:?}");
    }

    #[test]
    fn residual_keeps_deterministic_copies() {
        // Weight 0.5 on index 0 of 4 particles => at least 2 copies of 0.
        let weights = [0.5, 0.2, 0.2, 0.1];
        let mut rng = Pcg32::seed_from_u64(5);
        let idx = residual(&weights, &mut rng);
        assert!(counts(&idx, 4)[0] >= 2);
    }

    #[test]
    fn ess_bounds() {
        assert_eq!(effective_sample_size(&[1.0, 1.0, 1.0, 1.0]), 4.0);
        let ess = effective_sample_size(&[1.0, 0.0, 0.0, 0.0]);
        assert!((ess - 1.0).abs() < 1e-12);
        assert_eq!(effective_sample_size(&[0.0, 0.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "resampling requires weights")]
    fn empty_weights_panic() {
        let mut rng = Pcg32::seed_from_u64(6);
        let _ = systematic(&[], &mut rng);
    }
}
