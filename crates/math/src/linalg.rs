//! Dense linear algebra: a row-major [`Matrix`] with the decompositions
//! needed by the GMM fitter and the Bayesian filters (LU with partial
//! pivoting, Cholesky, symmetric Jacobi eigendecomposition).

use crate::{MathError, Result};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// Dense row-major matrix of `f64`.
///
/// ```
/// use navicim_math::linalg::Matrix;
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
/// let b = a.matmul(&a.transpose()).unwrap();
/// assert_eq!(b[(0, 0)], 5.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a square diagonal matrix from the given diagonal entries.
    pub fn diag(entries: &[f64]) -> Self {
        let mut m = Self::zeros(entries.len(), entries.len());
        for (i, &v) in entries.iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] if rows have unequal
    /// lengths, or [`MathError::InvalidArgument`] if `rows` is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(MathError::InvalidArgument(
                "from_rows requires a non-empty row set".into(),
            ));
        }
        let cols = rows[0].len();
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(MathError::DimensionMismatch {
                    expected: format!("row of length {cols}"),
                    found: format!("row {i} of length {}", r.len()),
                });
            }
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] if `data.len() != rows*cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(MathError::DimensionMismatch {
                expected: format!("{} elements", rows * cols),
                found: format!("{} elements", data.len()),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Flat row-major view of the data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "column index out of bounds");
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix product `self * other`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] when inner dimensions
    /// disagree.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(MathError::DimensionMismatch {
                expected: format!("{} rows on the right operand", self.cols),
                found: format!("{} rows", other.rows),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * x`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] when `x.len() != cols`.
    pub fn matvec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(MathError::DimensionMismatch {
                expected: format!("vector of length {}", self.cols),
                found: format!("length {}", x.len()),
            });
        }
        Ok((0..self.rows)
            .map(|r| self.row(r).iter().zip(x).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Returns `self` scaled by `s`.
    pub fn scale(&self, s: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|v| v * s).collect(),
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Returns `true` when the matrix is square and symmetric within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// LU decomposition with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::Singular`] for numerically singular matrices and
    /// [`MathError::DimensionMismatch`] for non-square inputs.
    pub fn lu(&self) -> Result<Lu> {
        if self.rows != self.cols {
            return Err(MathError::DimensionMismatch {
                expected: "square matrix".into(),
                found: format!("{}x{}", self.rows, self.cols),
            });
        }
        let n = self.rows;
        let mut lu = self.clone();
        let mut piv: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        for k in 0..n {
            // Pivot selection.
            let mut p = k;
            let mut best = lu[(k, k)].abs();
            for r in (k + 1)..n {
                let v = lu[(r, k)].abs();
                if v > best {
                    best = v;
                    p = r;
                }
            }
            if best < 1e-300 {
                return Err(MathError::Singular);
            }
            if p != k {
                for c in 0..n {
                    let tmp = lu[(k, c)];
                    lu[(k, c)] = lu[(p, c)];
                    lu[(p, c)] = tmp;
                }
                piv.swap(k, p);
                sign = -sign;
            }
            for r in (k + 1)..n {
                let factor = lu[(r, k)] / lu[(k, k)];
                lu[(r, k)] = factor;
                for c in (k + 1)..n {
                    let v = lu[(k, c)];
                    lu[(r, c)] -= factor * v;
                }
            }
        }
        Ok(Lu { lu, piv, sign })
    }

    /// Determinant via LU decomposition.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] for non-square inputs.
    pub fn det(&self) -> Result<f64> {
        match self.lu() {
            Ok(lu) => Ok(lu.det()),
            Err(MathError::Singular) => Ok(0.0),
            Err(e) => Err(e),
        }
    }

    /// Matrix inverse via LU decomposition.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::Singular`] when not invertible.
    pub fn inverse(&self) -> Result<Matrix> {
        let lu = self.lu()?;
        let n = self.rows;
        let mut inv = Matrix::zeros(n, n);
        for j in 0..n {
            let mut e = vec![0.0; n];
            e[j] = 1.0;
            let x = lu.solve(&e)?;
            for i in 0..n {
                inv[(i, j)] = x[i];
            }
        }
        Ok(inv)
    }

    /// Solves `self * x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::Singular`] for singular systems.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        self.lu()?.solve(b)
    }

    /// Cholesky decomposition `self = L Lᵀ` for symmetric positive-definite
    /// matrices.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::NotPositiveDefinite`] when a non-positive pivot
    /// is encountered.
    pub fn cholesky(&self) -> Result<Cholesky> {
        if self.rows != self.cols {
            return Err(MathError::DimensionMismatch {
                expected: "square matrix".into(),
                found: format!("{}x{}", self.rows, self.cols),
            });
        }
        let n = self.rows;
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = self[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 {
                        return Err(MathError::NotPositiveDefinite);
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Eigendecomposition of a symmetric matrix via the cyclic Jacobi
    /// method. Returns `(eigenvalues, eigenvectors)` with eigenvectors as
    /// matrix columns, sorted by descending eigenvalue.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::InvalidArgument`] when the matrix is not
    /// symmetric and [`MathError::NoConvergence`] if the sweep budget is
    /// exhausted.
    pub fn symmetric_eigen(&self) -> Result<(Vec<f64>, Matrix)> {
        if !self.is_symmetric(1e-9) {
            return Err(MathError::InvalidArgument(
                "symmetric_eigen requires a symmetric matrix".into(),
            ));
        }
        let n = self.rows;
        let mut a = self.clone();
        let mut v = Matrix::identity(n);
        let max_sweeps = 100;
        for _sweep in 0..max_sweeps {
            let mut off = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    off += a[(i, j)] * a[(i, j)];
                }
            }
            if off.sqrt() < 1e-12 {
                let mut pairs: Vec<(f64, usize)> = (0..n).map(|i| (a[(i, i)], i)).collect();
                pairs.sort_by(|x, y| y.0.partial_cmp(&x.0).expect("eigenvalues are finite"));
                let vals: Vec<f64> = pairs.iter().map(|p| p.0).collect();
                let mut vecs = Matrix::zeros(n, n);
                for (new_c, &(_, old_c)) in pairs.iter().enumerate() {
                    for r in 0..n {
                        vecs[(r, new_c)] = v[(r, old_c)];
                    }
                }
                return Ok((vals, vecs));
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    if a[(p, q)].abs() < 1e-300 {
                        continue;
                    }
                    let theta = (a[(q, q)] - a[(p, p)]) / (2.0 * a[(p, q)]);
                    let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                    let c = 1.0 / (t * t + 1.0).sqrt();
                    let s = t * c;
                    for k in 0..n {
                        let akp = a[(k, p)];
                        let akq = a[(k, q)];
                        a[(k, p)] = c * akp - s * akq;
                        a[(k, q)] = s * akp + c * akq;
                    }
                    for k in 0..n {
                        let apk = a[(p, k)];
                        let aqk = a[(q, k)];
                        a[(p, k)] = c * apk - s * aqk;
                        a[(q, k)] = s * apk + c * aqk;
                    }
                    for k in 0..n {
                        let vkp = v[(k, p)];
                        let vkq = v[(k, q)];
                        v[(k, p)] = c * vkp - s * vkq;
                        v[(k, q)] = s * vkp + c * vkq;
                    }
                }
            }
        }
        Err(MathError::NoConvergence {
            iterations: max_sweeps,
        })
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "matrix addition requires equal shapes"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "matrix subtraction requires equal shapes"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, s: f64) -> Matrix {
        self.scale(s)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            for c in 0..self.cols {
                write!(f, "{:>12.6}", self[(r, c)])?;
                if c + 1 < self.cols {
                    write!(f, " ")?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// LU decomposition with partial pivoting produced by [`Matrix::lu`].
#[derive(Debug, Clone)]
pub struct Lu {
    lu: Matrix,
    piv: Vec<usize>,
    sign: f64,
}

impl Lu {
    /// Determinant of the decomposed matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.lu.rows() {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Solves `A x = b` for the decomposed `A`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] when `b` has the wrong
    /// length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(MathError::DimensionMismatch {
                expected: format!("vector of length {n}"),
                found: format!("length {}", b.len()),
            });
        }
        // Apply permutation, then forward/backward substitution.
        let mut x: Vec<f64> = self.piv.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut sum = x[i];
            for k in 0..i {
                sum -= self.lu[(i, k)] * x[k];
            }
            x[i] = sum;
        }
        for i in (0..n).rev() {
            let mut sum = x[i];
            for k in (i + 1)..n {
                sum -= self.lu[(i, k)] * x[k];
            }
            x[i] = sum / self.lu[(i, i)];
        }
        Ok(x)
    }
}

/// Cholesky factor produced by [`Matrix::cholesky`].
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// The lower-triangular factor `L` with `A = L Lᵀ`.
    pub fn lower(&self) -> &Matrix {
        &self.l
    }

    /// Solves `L y = b` (forward substitution).
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] when `b` has the wrong
    /// length.
    pub fn forward_substitute(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.l.rows();
        if b.len() != n {
            return Err(MathError::DimensionMismatch {
                expected: format!("vector of length {n}"),
                found: format!("length {}", b.len()),
            });
        }
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l[(i, k)] * y[k];
            }
            y[i] = sum / self.l[(i, i)];
        }
        Ok(y)
    }

    /// Solves `A x = b` where `A = L Lᵀ`.
    ///
    /// # Errors
    ///
    /// Returns [`MathError::DimensionMismatch`] when `b` has the wrong
    /// length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>> {
        let n = self.l.rows();
        let y = self.forward_substitute(b)?;
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= self.l[(k, i)] * x[k];
            }
            x[i] = sum / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Log-determinant of the decomposed matrix, `ln det(A)`.
    pub fn log_det(&self) -> f64 {
        (0..self.l.rows()).map(|i| 2.0 * self.l[(i, i)].ln()).sum()
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics in debug builds on length mismatch.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dot requires equal lengths");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a slice.
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Squared Euclidean distance between two equal-length slices.
pub fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dist_sq requires equal lengths");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn mat(rows: &[&[f64]]) -> Matrix {
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn construction_and_indexing() {
        let m = mat(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m[(1, 2)], 6.0);
        assert_eq!(m.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let r1 = [1.0, 2.0];
        let r2 = [3.0];
        assert!(Matrix::from_rows(&[&r1, &r2]).is_err());
    }

    #[test]
    fn matmul_identity() {
        let m = mat(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(m.matmul(&i).unwrap(), m);
        assert_eq!(i.matmul(&m).unwrap(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = mat(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = mat(&[&[7.0, 8.0], &[9.0, 10.0], &[11.0, 12.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, mat(&[&[58.0, 64.0], &[139.0, 154.0]]));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = mat(&[&[1.0, -1.0], &[2.0, 0.5]]);
        let y = a.matvec(&[3.0, 4.0]).unwrap();
        assert_eq!(y, vec![-1.0, 8.0]);
    }

    #[test]
    fn lu_solve_roundtrip() {
        let a = mat(&[&[4.0, 3.0], &[6.0, 3.0]]);
        let x = a.solve(&[10.0, 12.0]).unwrap();
        let b = a.matvec(&x).unwrap();
        assert!(approx_eq(b[0], 10.0, 1e-10));
        assert!(approx_eq(b[1], 12.0, 1e-10));
    }

    #[test]
    fn det_known_values() {
        let a = mat(&[&[4.0, 3.0], &[6.0, 3.0]]);
        assert!(approx_eq(a.det().unwrap(), -6.0, 1e-12));
        assert!(approx_eq(Matrix::identity(5).det().unwrap(), 1.0, 1e-12));
        // Singular matrix determinant is zero, not an error.
        let s = mat(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(s.det().unwrap(), 0.0);
    }

    #[test]
    fn inverse_roundtrip() {
        let a = mat(&[&[2.0, 1.0, 0.0], &[1.0, 3.0, 1.0], &[0.0, 1.0, 2.0]]);
        let inv = a.inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!(approx_eq(prod[(i, j)], expect, 1e-10));
            }
        }
    }

    #[test]
    fn singular_inverse_fails() {
        let s = mat(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(s.inverse().unwrap_err(), MathError::Singular);
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = mat(&[&[4.0, 2.0, 0.6], &[2.0, 5.0, 1.0], &[0.6, 1.0, 3.0]]);
        let chol = a.cholesky().unwrap();
        let l = chol.lower();
        let recon = l.matmul(&l.transpose()).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                assert!(approx_eq(recon[(i, j)], a[(i, j)], 1e-10));
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = mat(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert_eq!(a.cholesky().unwrap_err(), MathError::NotPositiveDefinite);
    }

    #[test]
    fn cholesky_solve_matches_lu_solve() {
        let a = mat(&[&[4.0, 2.0], &[2.0, 5.0]]);
        let b = [1.0, 2.0];
        let x1 = a.cholesky().unwrap().solve(&b).unwrap();
        let x2 = a.solve(&b).unwrap();
        assert!(approx_eq(x1[0], x2[0], 1e-10));
        assert!(approx_eq(x1[1], x2[1], 1e-10));
    }

    #[test]
    fn cholesky_log_det() {
        let a = mat(&[&[4.0, 0.0], &[0.0, 9.0]]);
        let chol = a.cholesky().unwrap();
        assert!(approx_eq(chol.log_det(), (36.0f64).ln(), 1e-12));
    }

    #[test]
    fn jacobi_eigen_diagonal() {
        let a = Matrix::diag(&[3.0, 1.0, 2.0]);
        let (vals, _) = a.symmetric_eigen().unwrap();
        assert!(approx_eq(vals[0], 3.0, 1e-10));
        assert!(approx_eq(vals[1], 2.0, 1e-10));
        assert!(approx_eq(vals[2], 1.0, 1e-10));
    }

    #[test]
    fn jacobi_eigen_reconstruction() {
        let a = mat(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let (vals, vecs) = a.symmetric_eigen().unwrap();
        assert!(approx_eq(vals[0], 3.0, 1e-10));
        assert!(approx_eq(vals[1], 1.0, 1e-10));
        // A v = λ v for each eigenpair.
        for (k, &lambda) in vals.iter().enumerate() {
            let v = vecs.col(k);
            let av = a.matvec(&v).unwrap();
            for i in 0..2 {
                assert!(approx_eq(av[i], lambda * v[i], 1e-9));
            }
        }
    }

    #[test]
    fn add_sub_scale() {
        let a = mat(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = mat(&[&[4.0, 3.0], &[2.0, 1.0]]);
        assert_eq!(&a + &b, mat(&[&[5.0, 5.0], &[5.0, 5.0]]));
        assert_eq!(&a - &a, Matrix::zeros(2, 2));
        assert_eq!(&a * 2.0, mat(&[&[2.0, 4.0], &[6.0, 8.0]]));
    }

    #[test]
    fn vector_helpers() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!(approx_eq(norm(&[3.0, 4.0]), 5.0, 1e-12));
        assert_eq!(dist_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }

    #[test]
    fn display_contains_entries() {
        let a = mat(&[&[1.5, -2.0]]);
        let s = a.to_string();
        assert!(s.contains("1.5"));
        assert!(s.contains("-2.0"));
    }
}
