//! The uncertainty-gated streaming localization pipeline.
//!
//! [`crate::localization::CimLocalizer`] historically bound one map
//! backend at build time and ran it for the whole trajectory. The paper's
//! core argument cuts the other way: particle-spread uncertainty should
//! *drive* the compute substrate. When the cloud is wide (lost, startup,
//! kidnapped), spend energy on the accurate digital datapath; once it has
//! collapsed, the cheap analog CIM array holds the track at a fraction of
//! the energy — the wake-up/fallback pattern of the memristor front-end
//! literature.
//!
//! This module is that redesign:
//!
//! - [`LocalizationPipeline`] — owns **multiple** live backends built by
//!   name from the [`BackendRegistry`] and streams depth frames through a
//!   per-frame predict/gate/weigh/report loop,
//! - [`GatePolicy`] — the arbitration strategy (uncertainty metric →
//!   backend slot). [`HysteresisGate`] is the default co-design: spread
//!   enter/exit thresholds plus a dwell count so the gate never thrashes;
//!   [`AlwaysBackend`] pins a slot and provides the always-digital /
//!   always-analog baselines,
//! - [`FrameReport`] / [`PipelineRun`] — per-frame records of the chosen
//!   slot, the gate's uncertainty input, pose error and the Fig. 2(i)-style
//!   map-evaluation energy priced through `navicim-energy`, so a run shows
//!   the analog-mode energy savings directly.
//!
//! `CimLocalizer` is now a thin wrapper over a single-backend pipeline, so
//! the monolithic API (and its bit-exact behavior) survives unchanged.

use crate::localization::{LocalizerConfig, ScanScratch, ScanSensor, StepSummary};
use crate::registry::{BackendRegistry, BackendStats, MapBackend, MapFitContext};
use crate::reportfmt::{fmt_pct, Csv, Table};
use crate::vo::{AdaptiveMcPolicy, BayesianVo};
use crate::{CoreError, Result};
use navicim_backend::PointBatch;
use navicim_energy::analog::AnalogCimProfile;
use navicim_energy::digital::DigitalProfile;
use navicim_energy::sram::SramCimProfile;
use navicim_filter::estimate::{mean_pose, position_nees, position_spread};
use navicim_filter::filter::ParticleFilter;
pub use navicim_filter::signals::FaultDetectorConfig;
use navicim_filter::signals::{FaultDetector, InnovationTracker};
use navicim_math::geom::Pose;
use navicim_math::rng::Pcg32;
use navicim_nn::mc::McPrediction;
use navicim_scene::camera::{DepthCamera, DepthImage};
use navicim_scene::dataset::LocalizationDataset;
use navicim_sram::cim_macro::MacroStats;
use std::fmt;

/// Conventional slot of the accurate digital reference backend.
pub const DIGITAL_SLOT: usize = 0;
/// Conventional slot of the cheap analog backend.
pub const ANALOG_SLOT: usize = 1;

/// Frames of absence after which a backend slot's frozen likelihood
/// trend is stale: the slot's [`InnovationTracker`] resets to warm-up
/// instead of scoring the first frame back against ancient history
/// (roughly twice the default five-frame EWMA memory).
pub const INNOVATION_STALE_AFTER: usize = 10;

/// The per-frame uncertainty bus: every live "how lost are we" estimate,
/// gathered *before* a frame is weighed and shared — the same values —
/// by the gate policy, the frame log ([`FrameReport::signals`]) and any
/// downstream consumer (energy ablation, learned-gate training data).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UncertaintySignals {
    /// Particle-cloud positional spread (1σ radius, metres) before the
    /// motion prediction — the original gate signal.
    pub spread: f64,
    /// Effective sample size as a fraction of the particle count, in
    /// (0, 1] (scale-free, so thresholds survive population changes).
    /// Measured on the previous update *before* its resampling step —
    /// the resampler resets collapsed weights to uniform on the spot,
    /// so a post-resample reading could never show the degeneracy an
    /// ESS-triggered rescue exists to catch. Before the first update it
    /// is the live (uniform-weight) value.
    pub ess_fraction: f64,
    /// Likelihood innovation: the previous frame's mean log-likelihood
    /// minus the running EWMA *of the backend slot that served it* —
    /// each slot keeps its own trend, because digital and analog
    /// likelihoods sit on different scales and a cross-backend delta
    /// would read every slot switch as a phantom map-mismatch event.
    /// `None` during warm-up — until the serving slot has weighed two
    /// finite frames there is no trend to deviate from — and after a
    /// blind (all-`-inf`) frame, so "no reading yet" can never
    /// masquerade as a genuine `Some(0.0)` matched-the-trend-exactly
    /// reading. Negative values mean the map matched *worse* than the
    /// serving backend's recent trend — the "collapsed but biased"
    /// symptom spread alone cannot see.
    pub innovation: Option<f64>,
    /// Previous frame's VO total predictive variance (`None` before the
    /// first VO prediction, or when no [`VoStage`] rides the pipeline).
    pub vo_variance: Option<f64>,
}

impl UncertaintySignals {
    /// A spread-only bus (the other signals at their neutral values) —
    /// handy for tests and for driving spread-thresholded policies
    /// directly.
    pub fn from_spread(spread: f64) -> Self {
        Self {
            spread,
            ess_fraction: 1.0,
            innovation: None,
            vo_variance: None,
        }
    }
}

/// Everything a gate sees before a frame is weighed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateContext {
    /// 0-based index of the upcoming frame.
    pub frame: usize,
    /// The uncertainty bus for this frame.
    pub signals: UncertaintySignals,
    /// Slot that served the previous frame (the gate's start slot on
    /// frame 0).
    pub current: usize,
    /// Number of live backend slots.
    pub num_backends: usize,
}

/// Per-frame backend arbitration: an uncertainty metric in, a backend
/// slot out.
///
/// Policies are stateful (`&mut self`) so hysteresis and dwell logic can
/// live inside them; [`GatePolicy::reset`] returns a policy to its
/// initial state for a fresh run.
///
/// Policies are `Send` so whole pipelines can move across worker
/// threads in a serving fleet.
pub trait GatePolicy: Send {
    /// Policy name for reports.
    fn name(&self) -> &str;

    /// Chooses the backend slot for the upcoming frame.
    fn select(&mut self, ctx: &GateContext) -> usize;

    /// Resets internal state (dwell counters, switch counts).
    fn reset(&mut self) {}

    /// A fresh copy of this policy in its initial state, for spawning
    /// per-session pipelines off one prototype
    /// ([`LocalizationPipeline::fork_session`]). The default `None`
    /// marks a policy that cannot be duplicated; every built-in gate
    /// supports it.
    fn fork(&self) -> Option<Box<dyn GatePolicy>> {
        None
    }
}

/// The trivial policy: every frame on one pinned slot. Provides the
/// always-digital / always-analog baselines the gated runs are measured
/// against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlwaysBackend {
    slot: usize,
    name: String,
}

impl AlwaysBackend {
    /// Pins all frames to `slot`.
    pub fn new(slot: usize) -> Self {
        Self {
            slot,
            name: format!("always-slot{slot}"),
        }
    }

    /// The always-digital baseline ([`DIGITAL_SLOT`]).
    pub fn digital() -> Self {
        Self {
            slot: DIGITAL_SLOT,
            name: "always-digital".into(),
        }
    }

    /// The always-analog baseline ([`ANALOG_SLOT`]).
    pub fn analog() -> Self {
        Self {
            slot: ANALOG_SLOT,
            name: "always-analog".into(),
        }
    }

    /// The pinned slot.
    pub fn slot(&self) -> usize {
        self.slot
    }
}

impl GatePolicy for AlwaysBackend {
    fn name(&self) -> &str {
        &self.name
    }

    fn select(&mut self, _ctx: &GateContext) -> usize {
        self.slot
    }

    fn fork(&self) -> Option<Box<dyn GatePolicy>> {
        let mut g = self.clone();
        g.reset();
        Some(Box::new(g))
    }
}

/// Thresholds of the default [`HysteresisGate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HysteresisConfig {
    /// Spread at or below which frames go to the cheap analog slot (the
    /// cloud has collapsed; the approximate path can hold the track).
    pub analog_enter: f64,
    /// Spread at or above which the gate wakes the accurate digital slot
    /// (uncertainty is growing; pay for precision). Must exceed
    /// [`Self::analog_enter`]; the band between the two is the
    /// hysteresis dead zone where the gate keeps its current slot.
    pub digital_enter: f64,
    /// Minimum number of frames between switches (≥ 1). A switch locks
    /// the gate for `dwell` frames, so backend churn is bounded even on
    /// noisy spread signals.
    pub dwell: usize,
    /// Slot served on frame 0 (digital by default: the cloud starts
    /// wide).
    pub start: usize,
}

impl Default for HysteresisConfig {
    fn default() -> Self {
        Self {
            analog_enter: 0.10,
            digital_enter: 0.20,
            dwell: 3,
            start: DIGITAL_SLOT,
        }
    }
}

impl HysteresisConfig {
    /// Validates every threshold uniformly: both spread thresholds must
    /// be finite with `0 < analog_enter < digital_enter`, the dwell at
    /// least one frame, and the start slot digital or analog. Shared by
    /// [`HysteresisGate::new`] and [`MultiSignalGate::new`], so the
    /// spread band obeys one rule set wherever it appears.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] naming the offending field.
    pub fn validate(&self) -> Result<()> {
        if !self.analog_enter.is_finite()
            || !self.digital_enter.is_finite()
            || !(self.analog_enter > 0.0)
            || !(self.digital_enter > self.analog_enter)
        {
            return Err(CoreError::InvalidArgument(format!(
                "hysteresis thresholds must be finite with 0 < analog_enter < digital_enter \
                 (got {} / {})",
                self.analog_enter, self.digital_enter
            )));
        }
        if self.dwell == 0 {
            return Err(CoreError::InvalidArgument(
                "hysteresis dwell must be at least 1 frame".into(),
            ));
        }
        if self.start > ANALOG_SLOT {
            return Err(CoreError::InvalidArgument(format!(
                "hysteresis start slot {} is neither digital (0) nor analog (1)",
                self.start
            )));
        }
        Ok(())
    }

    /// The slot this spread band demands given the current slot: analog
    /// at or below `analog_enter`, digital at or above `digital_enter`,
    /// the current slot inside the dead zone. Shared by
    /// [`HysteresisGate`] and [`MultiSignalGate`] so the two gates'
    /// spread semantics cannot drift apart (their neutral-bus
    /// equivalence is property-tested).
    pub fn spread_target(&self, spread: f64, current: usize) -> usize {
        if spread <= self.analog_enter {
            ANALOG_SLOT
        } else if spread >= self.digital_enter {
            DIGITAL_SLOT
        } else {
            current
        }
    }
}

/// The default gate: particle-spread thresholds with hysteresis and a
/// dwell count.
///
/// - spread ≤ `analog_enter` → the cheap analog slot,
/// - spread ≥ `digital_enter` → the accurate digital slot,
/// - in between → keep the current slot (dead zone),
/// - after any switch the gate dwells for `dwell` frames regardless of
///   the signal, so it can never switch more than once per dwell window.
#[derive(Debug, Clone, PartialEq)]
pub struct HysteresisGate {
    config: HysteresisConfig,
    current: usize,
    since_switch: usize,
    switches: u64,
    started: bool,
}

impl HysteresisGate {
    /// Validates the thresholds and builds the gate.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] unless
    /// `0 < analog_enter < digital_enter` (both finite), `dwell ≥ 1` and
    /// the start slot is digital or analog
    /// ([`HysteresisConfig::validate`]).
    pub fn new(config: HysteresisConfig) -> Result<Self> {
        config.validate()?;
        Ok(Self {
            config,
            current: config.start,
            since_switch: 0,
            switches: 0,
            started: false,
        })
    }

    /// The gate's thresholds.
    pub fn config(&self) -> &HysteresisConfig {
        &self.config
    }

    /// Number of backend switches performed since construction/reset.
    pub fn switches(&self) -> u64 {
        self.switches
    }
}

impl GatePolicy for HysteresisGate {
    fn name(&self) -> &str {
        "hysteresis"
    }

    fn select(&mut self, ctx: &GateContext) -> usize {
        if !self.started {
            self.started = true;
            self.current = self.config.start;
            self.since_switch = 0;
            return self.current;
        }
        self.since_switch = self.since_switch.saturating_add(1);
        if self.since_switch >= self.config.dwell {
            let target = self.config.spread_target(ctx.signals.spread, self.current);
            if target != self.current {
                self.current = target;
                self.since_switch = 0;
                self.switches += 1;
            }
        }
        self.current
    }

    fn reset(&mut self) {
        self.current = self.config.start;
        self.since_switch = 0;
        self.switches = 0;
        self.started = false;
    }

    fn fork(&self) -> Option<Box<dyn GatePolicy>> {
        let mut g = self.clone();
        g.reset();
        Some(Box::new(g))
    }
}

/// Thresholds of the [`MultiSignalGate`]: the spread hysteresis band
/// plus the two digital-wake overrides that read the rest of the
/// uncertainty bus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiSignalConfig {
    /// The spread band — same semantics (and same validation) as the
    /// spread-only [`HysteresisGate`].
    pub spread: HysteresisConfig,
    /// Wake the digital slot when the likelihood innovation is at or
    /// below this (strongly negative: the map suddenly matches much
    /// worse than its recent trend) even if the cloud is tight — the
    /// "collapsed but biased" rescue. Must be finite and negative.
    pub innovation_wake: f64,
    /// Wake the digital slot when the ESS fraction is at or below this
    /// (weight mass concentrated on a sliver of the cloud). Must be in
    /// (0, 1).
    pub ess_wake: f64,
}

impl Default for MultiSignalConfig {
    fn default() -> Self {
        Self {
            spread: HysteresisConfig::default(),
            // Roughly "the frame scored one nat/point below trend" on
            // the tempered per-frame mean log-likelihood scale.
            innovation_wake: -1.0,
            ess_wake: 0.05,
        }
    }
}

/// The multi-signal gate: the [`HysteresisGate`] spread band extended
/// with digital-wake overrides on the other bus signals. A tight cloud
/// ordinarily stays on the cheap analog slot, but a strongly negative
/// likelihood innovation or a collapsed ESS fraction means the cloud is
/// confidently *wrong* — the one failure mode a spread threshold is
/// blind to (PAPERS.md: the memristor wake-up paper's
/// uncertainty-triggered escalation) — and forces the accurate digital
/// slot.
///
/// Overrides obey the same dwell lock as spread switches, so the gate
/// still switches at most once per dwell window; an innovation of
/// `None` (warm-up, blind frame) never fires the override.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiSignalGate {
    config: MultiSignalConfig,
    current: usize,
    since_switch: usize,
    switches: u64,
    rescues: u64,
    started: bool,
}

impl MultiSignalGate {
    /// Validates the thresholds and builds the gate.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] when the spread band is
    /// invalid ([`HysteresisConfig::validate`]), `innovation_wake` is
    /// not a finite negative number, or `ess_wake` is outside (0, 1).
    pub fn new(config: MultiSignalConfig) -> Result<Self> {
        config.spread.validate()?;
        if !config.innovation_wake.is_finite() || !(config.innovation_wake < 0.0) {
            return Err(CoreError::InvalidArgument(format!(
                "multi-signal innovation wake threshold must be finite and negative, got {}",
                config.innovation_wake
            )));
        }
        if !config.ess_wake.is_finite() || !(config.ess_wake > 0.0) || !(config.ess_wake < 1.0) {
            return Err(CoreError::InvalidArgument(format!(
                "multi-signal ess wake threshold must be in (0, 1), got {}",
                config.ess_wake
            )));
        }
        Ok(Self {
            config,
            current: config.spread.start,
            since_switch: 0,
            switches: 0,
            rescues: 0,
            started: false,
        })
    }

    /// The gate's thresholds.
    pub fn config(&self) -> &MultiSignalConfig {
        &self.config
    }

    /// Number of backend switches performed since construction/reset.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Number of rescue-triggered *switches* to the digital slot —
    /// switches the innovation/ESS overrides forced while the spread
    /// band alone would not have left the analog slot. Frames on which
    /// a still-firing override merely *holds* digital are not counted
    /// (the gate is already where the rescue wants it).
    pub fn rescues(&self) -> u64 {
        self.rescues
    }

    /// Whether the non-spread signals demand the digital slot.
    fn wants_rescue(&self, signals: &UncertaintySignals) -> bool {
        let innovation_fires = signals
            .innovation
            .is_some_and(|i| i.is_finite() && i <= self.config.innovation_wake);
        let ess_fires =
            signals.ess_fraction.is_finite() && signals.ess_fraction <= self.config.ess_wake;
        innovation_fires || ess_fires
    }
}

impl GatePolicy for MultiSignalGate {
    fn name(&self) -> &str {
        "multi-signal"
    }

    fn select(&mut self, ctx: &GateContext) -> usize {
        if !self.started {
            self.started = true;
            self.current = self.config.spread.start;
            self.since_switch = 0;
            return self.current;
        }
        self.since_switch = self.since_switch.saturating_add(1);
        if self.since_switch >= self.config.spread.dwell {
            let spread_target = self
                .config
                .spread
                .spread_target(ctx.signals.spread, self.current);
            let rescue = self.wants_rescue(&ctx.signals);
            let target = if rescue { DIGITAL_SLOT } else { spread_target };
            if target != self.current {
                if rescue && spread_target != DIGITAL_SLOT {
                    self.rescues += 1;
                }
                self.current = target;
                self.since_switch = 0;
                self.switches += 1;
            }
        }
        self.current
    }

    fn reset(&mut self) {
        self.current = self.config.spread.start;
        self.since_switch = 0;
        self.switches = 0;
        self.rescues = 0;
        self.started = false;
    }

    fn fork(&self) -> Option<Box<dyn GatePolicy>> {
        let mut g = self.clone();
        g.reset();
        Some(Box::new(g))
    }
}

/// Schedule of the [`PeriodicRefresh`] gate: a repeating cycle of
/// `refresh_len` digital frames followed by `period` analog frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeriodicRefreshConfig {
    /// Analog frames between digital wake-ups (≥ 1).
    pub period: usize,
    /// Consecutive digital frames per wake-up (≥ 1).
    pub refresh_len: usize,
}

impl Default for PeriodicRefreshConfig {
    fn default() -> Self {
        Self {
            period: 8,
            refresh_len: 2,
        }
    }
}

/// The uncertainty-blind duty-cycle baseline: wake the accurate digital
/// slot for `refresh_len` frames every `period` analog frames, starting
/// digital (the cloud is wide at startup), regardless of what the bus
/// says. The third baseline of the gating ablation — it shows how much
/// of the gated savings come from *reacting* to uncertainty rather than
/// from merely rationing digital frames on a timer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeriodicRefresh {
    config: PeriodicRefreshConfig,
}

impl PeriodicRefresh {
    /// Validates the schedule and builds the gate.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] when either the period or
    /// the refresh length is zero.
    pub fn new(config: PeriodicRefreshConfig) -> Result<Self> {
        if config.period == 0 || config.refresh_len == 0 {
            return Err(CoreError::InvalidArgument(format!(
                "periodic refresh needs period >= 1 and refresh_len >= 1 (got {} / {})",
                config.period, config.refresh_len
            )));
        }
        Ok(Self { config })
    }

    /// The gate's schedule.
    pub fn config(&self) -> &PeriodicRefreshConfig {
        &self.config
    }

    /// Length of one digital+analog duty cycle, in frames.
    pub fn cycle_len(&self) -> usize {
        self.config.period + self.config.refresh_len
    }
}

impl GatePolicy for PeriodicRefresh {
    fn name(&self) -> &str {
        "periodic-refresh"
    }

    /// Selection is a pure function of the frame index, so the policy is
    /// stateless and trivially deterministic: frames `0..refresh_len` of
    /// every cycle are digital, the remaining `period` frames analog.
    fn select(&mut self, ctx: &GateContext) -> usize {
        if ctx.frame % self.cycle_len() < self.config.refresh_len {
            DIGITAL_SLOT
        } else {
            ANALOG_SLOT
        }
    }

    fn fork(&self) -> Option<Box<dyn GatePolicy>> {
        let mut g = self.clone();
        g.reset();
        Some(Box::new(g))
    }
}

/// Built-in gate policies, selected through [`GateConfig`] the same way
/// backends are selected by name — no serde, plain builder calls.
#[derive(Debug, Clone, PartialEq)]
pub enum GateKind {
    /// Pin every frame to one slot.
    Always(usize),
    /// Spread-thresholded digital↔analog arbitration with hysteresis.
    Hysteresis(HysteresisConfig),
    /// The spread band plus innovation/ESS digital-wake overrides.
    MultiSignal(MultiSignalConfig),
    /// Uncertainty-blind timer: wake digital every N analog frames.
    Periodic(PeriodicRefreshConfig),
}

/// The `gate` section of [`LocalizerConfig`]: which backend slots the
/// pipeline instantiates and which built-in policy arbitrates them.
///
/// With an empty slot list (the default) the pipeline serves
/// [`LocalizerConfig::backend`] alone and the policy must be
/// `Always(0)` — exactly the monolithic behavior. Slot order is the
/// contract: slot [`DIGITAL_SLOT`] is the accurate reference, slot
/// [`ANALOG_SLOT`] the cheap alternate.
///
/// ```
/// use navicim_core::pipeline::GateConfig;
/// use navicim_core::registry::{CIM_HMGM, DIGITAL_GMM};
///
/// // Uncertainty-gated digital↔analog arbitration with the default
/// // thresholds:
/// let gate = GateConfig::gated(DIGITAL_GMM, CIM_HMGM);
/// assert_eq!(gate.backends.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GateConfig {
    /// Backend registry names, by slot. Empty = single-backend mode.
    pub backends: Vec<String>,
    /// The arbitration policy.
    pub policy: GateKind,
}

impl Default for GateConfig {
    fn default() -> Self {
        Self {
            backends: Vec::new(),
            policy: GateKind::Always(DIGITAL_SLOT),
        }
    }
}

impl GateConfig {
    /// Single-backend mode (the default): serve
    /// [`LocalizerConfig::backend`] on every frame.
    pub fn single() -> Self {
        Self::default()
    }

    /// Multi-backend slots with every frame pinned to `slot` — the
    /// baseline configurations of a gating ablation.
    pub fn always<S: Into<String>>(backends: Vec<S>, slot: usize) -> Self {
        Self {
            backends: backends.into_iter().map(Into::into).collect(),
            policy: GateKind::Always(slot),
        }
    }

    /// Hysteresis-gated `digital` ↔ `analog` arbitration with default
    /// thresholds; tune them with [`Self::with_hysteresis`].
    pub fn gated(digital: impl Into<String>, analog: impl Into<String>) -> Self {
        Self {
            backends: vec![digital.into(), analog.into()],
            policy: GateKind::Hysteresis(HysteresisConfig::default()),
        }
    }

    /// Replaces the hysteresis thresholds (builder style).
    pub fn with_hysteresis(mut self, config: HysteresisConfig) -> Self {
        self.policy = GateKind::Hysteresis(config);
        self
    }

    /// Multi-signal-gated `digital` ↔ `analog` arbitration: the spread
    /// band of [`Self::gated`] plus the innovation/ESS digital-wake
    /// overrides of [`MultiSignalGate`].
    pub fn multi_signal(
        digital: impl Into<String>,
        analog: impl Into<String>,
        config: MultiSignalConfig,
    ) -> Self {
        Self {
            backends: vec![digital.into(), analog.into()],
            policy: GateKind::MultiSignal(config),
        }
    }

    /// Timer-gated `digital` ↔ `analog` duty cycling — the
    /// uncertainty-blind [`PeriodicRefresh`] baseline.
    pub fn periodic(
        digital: impl Into<String>,
        analog: impl Into<String>,
        config: PeriodicRefreshConfig,
    ) -> Self {
        Self {
            backends: vec![digital.into(), analog.into()],
            policy: GateKind::Periodic(config),
        }
    }

    /// Registry names the pipeline will instantiate, resolving the
    /// empty-slot default against the localizer's single backend name.
    pub fn slot_names<'a>(&'a self, fallback: &'a str) -> Vec<&'a str> {
        if self.backends.is_empty() {
            vec![fallback]
        } else {
            self.backends.iter().map(String::as_str).collect()
        }
    }

    /// Builds the configured policy, validating it against the number of
    /// live slots.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] when the pinned slot is out
    /// of range or a hysteresis gate is configured without both a digital
    /// and an analog slot.
    pub fn build_policy(&self, num_slots: usize) -> Result<Box<dyn GatePolicy>> {
        match &self.policy {
            GateKind::Always(slot) => {
                if *slot >= num_slots {
                    return Err(CoreError::InvalidArgument(format!(
                        "gate pins slot {slot} but only {num_slots} backend(s) are configured"
                    )));
                }
                Ok(Box::new(match (*slot, num_slots) {
                    // Single-backend mode keeps the generic label; in
                    // multi-slot mode the conventional slots get their
                    // baseline names.
                    (_, 1) => AlwaysBackend::new(*slot),
                    (DIGITAL_SLOT, _) => AlwaysBackend::digital(),
                    (ANALOG_SLOT, _) => AlwaysBackend::analog(),
                    _ => AlwaysBackend::new(*slot),
                }))
            }
            GateKind::Hysteresis(config) => {
                if num_slots < 2 {
                    return Err(CoreError::InvalidArgument(
                        "hysteresis gating requires a digital and an analog backend slot".into(),
                    ));
                }
                Ok(Box::new(HysteresisGate::new(*config)?))
            }
            GateKind::MultiSignal(config) => {
                if num_slots < 2 {
                    return Err(CoreError::InvalidArgument(
                        "multi-signal gating requires a digital and an analog backend slot".into(),
                    ));
                }
                Ok(Box::new(MultiSignalGate::new(*config)?))
            }
            GateKind::Periodic(config) => {
                if num_slots < 2 {
                    return Err(CoreError::InvalidArgument(
                        "periodic refresh requires a digital and an analog backend slot".into(),
                    ));
                }
                Ok(Box::new(PeriodicRefresh::new(*config)?))
            }
        }
    }
}

/// What drives the particle filter's motion model each frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ControlSource {
    /// Ground-truth frame deltas (the open-loop default, bit-identical
    /// to every pre-closed-loop run): the caller's `control` argument is
    /// composed into the motion model with its configured noise.
    #[default]
    GroundTruth,
    /// The VO stage's MC-Dropout predictive mean (paper Section III →
    /// Section II fusion): the pipeline navigates on its *own* odometry
    /// estimate, with the prediction's variance inflating the motion
    /// noise through [`NoiseInflation`] so uncertain VO widens the
    /// proposal instead of silently biasing it. Requires an attached
    /// [`VoStage`].
    VisualOdometry,
}

impl ControlSource {
    /// Stable lowercase label for reports and CSV logs.
    pub fn label(&self) -> &'static str {
        match self {
            ControlSource::GroundTruth => "ground-truth",
            ControlSource::VisualOdometry => "visual-odometry",
        }
    }
}

impl fmt::Display for ControlSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Maps the VO prediction's total predictive variance onto a bounded
/// motion-noise scale: `scale = min(floor + gain · variance, ceiling)`,
/// applied to the motion model's noise standard deviations through
/// [`navicim_filter::filter::Motion::sample_scaled`].
///
/// `floor` is the trust granted a zero-variance (perfectly confident)
/// prediction; values below 1 let a VO source whose measured per-step
/// error sits well inside the modeled odometry noise *sharpen* the
/// proposal, while `gain` widens it toward the ceiling as the
/// prediction's epistemic variance grows.
///
/// The bound is the safety contract of the closed loop — for *any*
/// variance input (including `NaN`/`±inf` from a degenerate prediction,
/// and `None` before the first prediction) the returned scale is finite
/// and inside `[floor, ceiling]`, so a pathological VO frame can widen
/// the proposal to the configured ceiling but can never collapse or
/// explode it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseInflation {
    /// Noise-scale gain per unit of VO predictive variance (≥ 0,
    /// finite). 0 pins the scale to `floor`.
    pub gain: f64,
    /// The zero-variance trust level and lower bound on the scale
    /// (> 0, finite). 1.0 keeps the configured motion noise as the
    /// baseline; values below 1 sharpen it for confident predictions.
    pub floor: f64,
    /// Upper bound on the scale (≥ floor, finite) — also the scale used
    /// when no variance is available yet or the variance is non-finite
    /// (maximum distrust).
    pub ceiling: f64,
}

impl Default for NoiseInflation {
    fn default() -> Self {
        Self {
            // The VO regressor's total predictive variance on this
            // workload sits around 1e-3..1e-1; the default gain maps
            // that band onto a ~1x..4x noise inflation.
            gain: 30.0,
            floor: 1.0,
            ceiling: 4.0,
        }
    }
}

impl NoiseInflation {
    /// Validates the bounds and builds the config.
    ///
    /// # Errors
    ///
    /// See [`Self::validate`].
    pub fn new(gain: f64, floor: f64, ceiling: f64) -> Result<Self> {
        let inflation = Self {
            gain,
            floor,
            ceiling,
        };
        inflation.validate()?;
        Ok(inflation)
    }

    /// Checks the invariants [`Self::scale`] relies on. The fields are
    /// public (struct-literal construction is convenient in configs), so
    /// every consumer that accepts a `NoiseInflation` must route it
    /// through this — an unvalidated `floor > ceiling` would *panic*
    /// inside `scale`'s clamp, and a non-finite gain would leak NaN
    /// scales into the motion model.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] — one distinct message per
    /// rejection path — unless `gain` is finite and ≥ 0, `floor` is
    /// finite and > 0, and `ceiling` is finite with `ceiling >= floor`.
    pub fn validate(&self) -> Result<()> {
        if !self.gain.is_finite() {
            return Err(CoreError::InvalidArgument(format!(
                "noise-inflation gain must be finite, got {}",
                self.gain
            )));
        }
        if !(self.gain >= 0.0) {
            return Err(CoreError::InvalidArgument(format!(
                "noise-inflation gain must be >= 0, got {}",
                self.gain
            )));
        }
        if !self.floor.is_finite() || !(self.floor > 0.0) {
            return Err(CoreError::InvalidArgument(format!(
                "noise-inflation floor must be finite and > 0, got {}",
                self.floor
            )));
        }
        if !self.ceiling.is_finite() {
            return Err(CoreError::InvalidArgument(format!(
                "noise-inflation ceiling must be finite, got {}",
                self.ceiling
            )));
        }
        if !(self.ceiling >= self.floor) {
            return Err(CoreError::InvalidArgument(format!(
                "noise-inflation ceiling must be >= floor (got floor {} / ceiling {})",
                self.floor, self.ceiling
            )));
        }
        Ok(())
    }

    /// The bounded motion-noise scale for one frame's VO variance.
    /// Total for any input: `None` and non-finite variances price at
    /// the ceiling (maximum distrust), everything else at
    /// `clamp(floor + gain · variance, floor, ceiling)`.
    pub fn scale(&self, vo_variance: Option<f64>) -> f64 {
        match vo_variance {
            Some(v) if v.is_finite() => {
                let raw = self.floor + self.gain * v.max(0.0);
                if raw.is_finite() {
                    raw.clamp(self.floor, self.ceiling)
                } else {
                    self.ceiling
                }
            }
            _ => self.ceiling,
        }
    }
}

/// Tuning of the pipeline's fault-triggered safe mode
/// ([`LocalizationPipeline::with_safe_mode`]).
///
/// The response mirrors the wake-up/fallback pattern the gate already
/// implements for benign uncertainty, hardened for *faults*: when the
/// CUSUM detector over the likelihood-innovation stream alarms, the
/// pipeline overrides the gate to the accurate digital slot
/// ([`DIGITAL_SLOT`]) and clamps the motion-noise scale to the
/// [`NoiseInflation`] ceiling (maximum distrust widens the proposal so
/// the cloud can re-acquire a teleported or drifted truth). Recovery is
/// dwell-gated: safe mode holds for at least `hold_frames` and exits
/// only once a fresh innovation reading clears `recovery_innovation`,
/// at which point the detector re-arms for the next fault.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SafeModeConfig {
    /// CUSUM tuning over the serving slot's innovation stream.
    pub detector: FaultDetectorConfig,
    /// Minimum frames to dwell in safe mode once entered (≥ 1) — the
    /// re-acquisition transient itself sags the innovation, so an
    /// undwelled exit check would flap.
    pub hold_frames: usize,
    /// Innovation level (finite) a frame must reach before safe mode
    /// may exit: the first honest frame after a fault reads far *above*
    /// its poisoned trend, so a mildly negative bar (e.g. −1) means
    /// "no longer losing ground against the recent past".
    pub recovery_innovation: f64,
}

impl Default for SafeModeConfig {
    fn default() -> Self {
        Self {
            detector: FaultDetectorConfig::default(),
            hold_frames: 3,
            recovery_innovation: -1.0,
        }
    }
}

impl SafeModeConfig {
    /// Validates the response tuning (the detector validates itself in
    /// [`FaultDetector::new`]).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] unless `hold_frames >= 1`
    /// and `recovery_innovation` is finite.
    pub fn validate(&self) -> Result<()> {
        if self.hold_frames == 0 {
            return Err(CoreError::InvalidArgument(
                "safe-mode hold_frames must be >= 1".into(),
            ));
        }
        if !self.recovery_innovation.is_finite() {
            return Err(CoreError::InvalidArgument(format!(
                "safe-mode recovery innovation must be finite, got {}",
                self.recovery_innovation
            )));
        }
        Ok(())
    }
}

/// Live fault-detection / safe-mode state riding the pipeline.
#[derive(Debug, Clone)]
struct SafeModeState {
    config: SafeModeConfig,
    detector: FaultDetector,
    active: bool,
    frames_in_mode: usize,
    entries: u64,
}

impl SafeModeState {
    fn new(config: SafeModeConfig) -> Result<Self> {
        config.validate()?;
        let detector = FaultDetector::new(config.detector).map_err(CoreError::Filter)?;
        Ok(Self {
            config,
            detector,
            active: false,
            frames_in_mode: 0,
            entries: 0,
        })
    }

    /// Feeds one frame's innovation reading and advances the
    /// enter/dwell/recover state machine. Returns
    /// `(fault_alarmed, safe_mode_active)` for the frame.
    fn update(&mut self, innovation: Option<f64>) -> (bool, bool) {
        let alarm = self.detector.observe(innovation);
        if self.active {
            self.frames_in_mode += 1;
            let recovered = innovation.is_some_and(|i| i >= self.config.recovery_innovation);
            if self.frames_in_mode >= self.config.hold_frames && recovered {
                self.active = false;
                // Re-arm: the statistic and the latched alarm clear so
                // the *next* fault is a fresh detection.
                self.detector.reset();
            }
        } else if alarm {
            self.active = true;
            self.frames_in_mode = 0;
            self.entries += 1;
        }
        (self.detector.alarmed(), self.active)
    }
}

/// Fig. 2(i)-style pricing of per-frame map evaluations — analog frames
/// cost measured array current × DAC/ADC conversions, digital frames the
/// per-component GMM datapath energy — plus the Section III-D SRAM-macro
/// profile pricing the VO stage's per-frame MC-Dropout passes, so a
/// [`FrameReport`] carries the *joint* map+VO energy of the frame.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyPricing {
    /// Analog CIM cost profile.
    pub analog: AnalogCimProfile,
    /// Digital datapath cost profile.
    pub digital: DigitalProfile,
    /// Digital operand width in bits.
    pub digital_bits: u32,
    /// SRAM MC-Dropout macro profile (the VO inference path).
    pub sram: SramCimProfile,
}

impl Default for EnergyPricing {
    fn default() -> Self {
        Self {
            analog: AnalogCimProfile::paper_45nm(),
            digital: DigitalProfile::paper_calibrated_gmm_asic(),
            digital_bits: 8,
            sram: SramCimProfile::paper_16nm(),
        }
    }
}

impl EnergyPricing {
    /// Energy of one frame's map evaluations in pJ, from that frame's
    /// [`BackendStats`] delta. Analog deltas (converter activity present)
    /// are priced per evaluation at the frame's measured average array
    /// current; digital deltas at the per-point mixture datapath cost.
    ///
    /// # Errors
    ///
    /// Propagates profile validation (zero widths, negative currents).
    pub fn frame_pj(
        &self,
        delta: &BackendStats,
        components: usize,
        dim: usize,
        dac_bits: u32,
        adc_bits: u32,
    ) -> Result<f64> {
        if delta.evaluations == 0 {
            return Ok(0.0);
        }
        let per_eval = if delta.is_analog() {
            // Column gating shows up twice in the delta: the measured
            // average current already excludes gated columns, and the
            // activation fraction scales the per-column DAC drive term
            // (1.0 — bitwise the ungated price — when gating is off).
            self.analog.likelihood_eval_pj_gated(
                delta.avg_current(),
                dim,
                dac_bits,
                adc_bits,
                delta.active_column_fraction(),
            )?
        } else {
            self.digital
                .gmm_point_pj(dim, components.max(1), self.digital_bits)?
        };
        Ok(per_eval * delta.evaluations as f64)
    }

    /// Energy of one frame's VO MC-Dropout passes in pJ, from that
    /// frame's [`MacroStats`] delta: executed MACs at the weight
    /// precision, partial-sum ADC conversions at the macro resolution,
    /// plus any silicon-RNG dropout bits drawn.
    ///
    /// # Errors
    ///
    /// Propagates profile validation (zero precision).
    pub fn vo_frame_pj(
        &self,
        delta: &MacroStats,
        rng_bits: u64,
        weight_bits: u32,
        adc_bits: u32,
    ) -> Result<f64> {
        if delta.macs_executed == 0 && delta.adc_conversions == 0 && rng_bits == 0 {
            return Ok(0.0);
        }
        Ok(self.sram.inference_pj(
            delta.macs_executed,
            delta.adc_conversions,
            adc_bits,
            rng_bits,
            weight_bits,
        )?)
    }
}

/// Per-frame record of the VO stage riding the pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoFrameReport {
    /// MC-Dropout passes the depth policy granted this frame.
    pub iterations: usize,
    /// This frame's fresh total predictive variance (it enters the bus
    /// as [`UncertaintySignals::vo_variance`] on the *next* frame).
    pub variance: f64,
    /// The predictive-mean relative pose this frame's frame pair encodes
    /// — the odometry control a
    /// [`ControlSource::VisualOdometry`] pipeline feeds its motion
    /// model, and the estimate an open-loop run can score against the
    /// ground-truth delta.
    pub delta: Pose,
    /// VO inference energy this frame, in pJ.
    pub energy_pj: f64,
}

/// Everything one streamed frame produced: the gate's decision and the
/// full uncertainty bus it saw, the filter summary, and the frame's
/// evaluation/energy accounting on both compute axes (map substrate and
/// VO MC depth).
#[derive(Debug, Clone, PartialEq)]
pub struct FrameReport {
    /// 0-based frame index (the first tracked frame is dataset frame 1).
    pub frame: usize,
    /// Backend slot the gate chose for this frame.
    pub slot: usize,
    /// The uncertainty bus sampled *before* this frame's prediction —
    /// exactly what the gate saw.
    pub signals: UncertaintySignals,
    /// What drove the motion model this frame (ground-truth deltas or
    /// the VO predictive mean).
    pub control_source: ControlSource,
    /// Motion-noise scale applied to this frame's prediction (1.0 in
    /// ground-truth mode; the bounded [`NoiseInflation`] output of the
    /// frame's VO variance in closed-loop mode).
    pub noise_scale: f64,
    /// Filter summary after the update (estimate, error, post spread,
    /// ESS).
    pub summary: StepSummary,
    /// Diagonal NEES of the post-update cloud against this frame's
    /// truth ([`navicim_filter::estimate::position_nees`]): the
    /// per-frame *consistency* of the filter — squared realized error
    /// normalized by the covariance the filter itself claims. Near the
    /// position dimension (3) when healthy; far above it when the
    /// filter is confidently wrong (the fault signature).
    pub nees: f64,
    /// Whether the fault detector's alarm was latched this frame
    /// (always `false` without [`LocalizationPipeline::with_safe_mode`]).
    pub fault_active: bool,
    /// Whether the safe-mode response (digital override + noise
    /// ceiling) governed this frame (always `false` without
    /// [`LocalizationPipeline::with_safe_mode`]).
    pub safe_mode: bool,
    /// Ground-truth pose of this frame.
    pub truth: Pose,
    /// Map point evaluations served this frame.
    pub evaluations: u64,
    /// Map-evaluation energy this frame, in pJ.
    pub map_energy_pj: f64,
    /// VO stage record (`None` when no [`VoStage`] rides the pipeline).
    pub vo: Option<VoFrameReport>,
}

impl FrameReport {
    /// Gate input: the particle spread before this frame's prediction
    /// (convenience over [`Self::signals`]).
    pub fn gate_spread(&self) -> f64 {
        self.signals.spread
    }

    /// Joint map+VO energy this frame, in pJ.
    pub fn total_energy_pj(&self) -> f64 {
        self.map_energy_pj + self.vo.map_or(0.0, |v| v.energy_pj)
    }
}

/// Outcome of a gated pipeline run.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineRun {
    /// Backend names, by slot.
    pub backends: Vec<String>,
    /// Gate policy name.
    pub gate: String,
    /// MC-depth policy name of the VO stage (`None` without one).
    pub vo_policy: Option<String>,
    /// Per-frame reports, in stream order.
    pub frames: Vec<FrameReport>,
    /// Cumulative per-slot backend stats at the end of the run.
    pub stats: Vec<BackendStats>,
}

impl PipelineRun {
    /// Mean translation error over the final quarter of the run.
    pub fn steady_state_error(&self) -> f64 {
        let n = self.frames.len();
        if n == 0 {
            return 0.0;
        }
        let tail = &self.frames[n - (n / 4).max(1)..];
        tail.iter().map(|f| f.summary.error).sum::<f64>() / tail.len() as f64
    }

    /// Number of frames served by `slot`.
    pub fn frames_on(&self, slot: usize) -> usize {
        self.frames.iter().filter(|f| f.slot == slot).count()
    }

    /// Fraction of frames served by `slot` (0 for an empty run).
    pub fn slot_fraction(&self, slot: usize) -> f64 {
        if self.frames.is_empty() {
            0.0
        } else {
            self.frames_on(slot) as f64 / self.frames.len() as f64
        }
    }

    /// Fraction of frames served by an analog backend (identified by its
    /// converter counters).
    pub fn analog_fraction(&self) -> f64 {
        if self.frames.is_empty() {
            return 0.0;
        }
        let analog = self
            .frames
            .iter()
            .filter(|f| {
                self.stats
                    .get(f.slot)
                    .map(BackendStats::is_analog)
                    .unwrap_or(false)
            })
            .count();
        analog as f64 / self.frames.len() as f64
    }

    /// Total joint map+VO energy of the run, in pJ (equals the map
    /// energy when no VO stage rode along).
    pub fn total_energy_pj(&self) -> f64 {
        self.frames.iter().map(FrameReport::total_energy_pj).sum()
    }

    /// Total map-evaluation energy of the run, in pJ.
    pub fn total_map_energy_pj(&self) -> f64 {
        self.frames.iter().map(|f| f.map_energy_pj).sum()
    }

    /// Total VO inference energy of the run, in pJ (0 without a VO
    /// stage).
    pub fn total_vo_energy_pj(&self) -> f64 {
        self.frames
            .iter()
            .filter_map(|f| f.vo.map(|v| v.energy_pj))
            .sum()
    }

    /// Mean MC-Dropout depth over the frames a VO stage served (0
    /// without one).
    pub fn mean_mc_iterations(&self) -> f64 {
        let mut frames = 0usize;
        let mut total = 0usize;
        for f in &self.frames {
            if let Some(vo) = f.vo {
                frames += 1;
                total += vo.iterations;
            }
        }
        if frames == 0 {
            0.0
        } else {
            total as f64 / frames as f64
        }
    }

    /// Mean motion-noise scale over the run (1.0 for a pure
    /// ground-truth run, 0 for an empty run) — how much the closed loop
    /// widened the proposal on average.
    pub fn mean_noise_scale(&self) -> f64 {
        if self.frames.is_empty() {
            return 0.0;
        }
        self.frames.iter().map(|f| f.noise_scale).sum::<f64>() / self.frames.len() as f64
    }

    /// Mean translation error of the VO-predicted frame deltas against
    /// the ground-truth deltas between consecutive reports, in metres
    /// (`None` without a VO stage, or with fewer than two frames) — the
    /// raw odometry quality driving a closed-loop run, independent of
    /// what the filter makes of it. The first report has no in-stream
    /// predecessor to difference against and is skipped.
    pub fn mean_control_error(&self) -> Option<f64> {
        let mut n = 0usize;
        let mut total = 0.0;
        for pair in self.frames.windows(2) {
            if let Some(vo) = pair[1].vo {
                let truth_delta = pair[0].truth.delta_to(pair[1].truth);
                total += vo.delta.translation_distance(truth_delta);
                n += 1;
            }
        }
        if n == 0 {
            None
        } else {
            Some(total / n as f64)
        }
    }

    /// Total map point evaluations of the run.
    pub fn total_evaluations(&self) -> u64 {
        self.frames.iter().map(|f| f.evaluations).sum()
    }

    /// All per-slot stats merged into one total.
    pub fn merged_stats(&self) -> BackendStats {
        self.stats
            .iter()
            .fold(BackendStats::default(), |acc, s| acc.merged(s))
    }

    /// Number of frames on which the served slot differs from the
    /// previous frame's.
    pub fn switches(&self) -> usize {
        self.frames
            .windows(2)
            .filter(|w| w[0].slot != w[1].slot)
            .count()
    }

    /// Markdown summary: one row per slot with frame share, evaluations
    /// and map energy.
    pub fn summary_table(&self) -> Table {
        let mut table = Table::new(vec![
            "slot",
            "backend",
            "frames",
            "share",
            "point evals",
            "map energy (pJ)",
        ]);
        for (slot, name) in self.backends.iter().enumerate() {
            let frames = self.frames_on(slot);
            let evals: u64 = self
                .frames
                .iter()
                .filter(|f| f.slot == slot)
                .map(|f| f.evaluations)
                .sum();
            let energy: f64 = self
                .frames
                .iter()
                .filter(|f| f.slot == slot)
                .map(|f| f.map_energy_pj)
                .sum();
            table.row(vec![
                format!("{slot}"),
                name.clone(),
                format!("{frames}"),
                fmt_pct(self.slot_fraction(slot)),
                format!("{evals}"),
                format!("{energy:.1}"),
            ]);
        }
        table
    }

    /// The exact header row [`Self::to_csv`] emits — the frame-log
    /// schema contract downstream loaders (gate training, offline
    /// analysis) parse against, locked by a round-trip test.
    ///
    /// Schema v3: v2's 19 columns plus the robustness triple appended
    /// at the end (`nees`, `fault_active`, `safe_mode`), so v2 loaders
    /// reading by index keep working.
    pub const CSV_HEADER: [&'static str; 22] = [
        "frame",
        "slot",
        "backend",
        "gate",
        "control_source",
        "spread",
        "ess_fraction",
        "innovation",
        "bus_vo_variance",
        "noise_scale",
        "error_m",
        "post_spread",
        "post_ess",
        "evaluations",
        "map_energy_pj",
        "mc_iterations",
        "vo_variance",
        "vo_energy_pj",
        "total_energy_pj",
        "nees",
        "fault_active",
        "safe_mode",
    ];

    /// The run's frame log as CSV — one row per [`FrameReport`] carrying
    /// every uncertainty-bus column next to the decision and energy
    /// columns. This is the training-data path for learned gates: each
    /// row pairs what the gate *saw* (`spread`, `ess_fraction`,
    /// `innovation`, `bus_vo_variance`) with what it *did* (`slot`,
    /// `control_source`, `noise_scale`, `mc_iterations`) and what it
    /// *cost* (error and pJ columns).
    ///
    /// Finite floats render with Rust's shortest round-trip formatting,
    /// so the log is lossless; non-finite values (`NaN`, `±inf` — e.g.
    /// an all-blind frame's `-inf` mean log-likelihood) and absent
    /// optional columns both render as *empty cells*, never as `NaN`/
    /// `inf` tokens that would break numeric loaders.
    pub fn to_csv(&self) -> Csv {
        // Empty-cell sanitation for every float column: one rule for
        // "absent" and "not a number", so loaders see a single
        // missing-value convention.
        let fin = |x: f64| {
            if x.is_finite() {
                format!("{x}")
            } else {
                String::new()
            }
        };
        let opt = |v: Option<f64>| v.map(fin).unwrap_or_default();
        let mut csv = Csv::new(Self::CSV_HEADER.to_vec());
        for f in &self.frames {
            csv.row(vec![
                format!("{}", f.frame),
                format!("{}", f.slot),
                self.backends
                    .get(f.slot)
                    .cloned()
                    .unwrap_or_else(|| format!("slot{}", f.slot)),
                self.gate.clone(),
                f.control_source.label().into(),
                fin(f.signals.spread),
                fin(f.signals.ess_fraction),
                opt(f.signals.innovation),
                opt(f.signals.vo_variance),
                fin(f.noise_scale),
                fin(f.summary.error),
                fin(f.summary.spread),
                fin(f.summary.ess),
                format!("{}", f.evaluations),
                fin(f.map_energy_pj),
                f.vo.map(|v| format!("{}", v.iterations))
                    .unwrap_or_default(),
                opt(f.vo.map(|v| v.variance)),
                opt(f.vo.map(|v| v.energy_pj)),
                fin(f.total_energy_pj()),
                fin(f.nees),
                // Booleans as 0/1 so numeric loaders ingest the whole
                // row without a string column.
                format!("{}", u8::from(f.fault_active)),
                format!("{}", u8::from(f.safe_mode)),
            ]);
        }
        csv
    }
}

/// The Section III MC-Dropout VO head riding along the localization
/// stream — the pipeline's *second* gated compute axis.
///
/// Per frame it extracts grid features from the previous/current depth
/// pair (the same representation the VO regressor trains on), asks its
/// [`AdaptiveMcPolicy`] for this frame's MC-Dropout depth — driven by
/// the *previous* frame's predictive variance, the paper Section III
/// knob — runs the quantized MC prediction on the modeled SRAM macro and
/// prices the executed passes. Its fresh variance feeds the next frame's
/// [`UncertaintySignals::vo_variance`].
///
/// The stage is a pure observer of the localization side: it has its own
/// RNG/mask source and never touches the particle filter, so attaching
/// it leaves the map-side stream (gate decisions, estimates, errors,
/// map energy) bit-identical.
#[derive(Clone)]
pub struct VoStage {
    vo: BayesianVo,
    policy: AdaptiveMcPolicy,
    grid_width: usize,
    grid_height: usize,
    prev_grid: Vec<f64>,
    curr_grid: Vec<f64>,
    features: Vec<f64>,
    pred: McPrediction,
    last_variance: Option<f64>,
    last_delta: Option<Pose>,
    prev_stats: MacroStats,
    prev_silicon_bits: u64,
}

impl fmt::Debug for VoStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("VoStage")
            .field("policy", &self.policy.name())
            .field("grid", &(self.grid_width, self.grid_height))
            .field("last_variance", &self.last_variance)
            .finish_non_exhaustive()
    }
}

impl VoStage {
    /// Builds the stage around a quantized VO engine and a depth policy.
    /// `first_frame` seeds the previous-frame grid (the VO features need
    /// a frame pair), and the feature layout must match the engine:
    /// `3 · grid_width · grid_height` inputs (prev grid, current grid,
    /// difference — see `navicim_scene::dataset::make_samples`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] for zero grid dimensions or
    /// a feature/input dimension mismatch.
    pub fn new(
        vo: BayesianVo,
        policy: AdaptiveMcPolicy,
        camera: &DepthCamera,
        first_frame: &DepthImage,
        grid_width: usize,
        grid_height: usize,
    ) -> Result<Self> {
        if grid_width == 0 || grid_height == 0 {
            return Err(CoreError::InvalidArgument(
                "vo stage grid dimensions must be positive".into(),
            ));
        }
        let feature_dim = 3 * grid_width * grid_height;
        if vo.qnet().in_dim() != feature_dim {
            return Err(CoreError::InvalidArgument(format!(
                "vo stage features are {feature_dim}-dimensional (3 x {grid_width} x \
                 {grid_height}) but the network expects {} inputs",
                vo.qnet().in_dim()
            )));
        }
        if vo.qnet().out_dim() != 6 {
            return Err(CoreError::InvalidArgument(format!(
                "vo stage regressors predict a 6-DoF delta but the network has {} outputs",
                vo.qnet().out_dim()
            )));
        }
        let mut prev_grid = Vec::new();
        first_frame.grid_means_into(grid_width, grid_height, &mut prev_grid);
        for g in &mut prev_grid {
            *g /= camera.max_range;
        }
        let prev_stats = vo.macro_stats();
        let prev_silicon_bits = vo.silicon_bits().unwrap_or(0);
        Ok(Self {
            vo,
            policy,
            grid_width,
            grid_height,
            prev_grid,
            curr_grid: Vec::new(),
            features: Vec::new(),
            pred: McPrediction::default(),
            last_variance: None,
            last_delta: None,
            prev_stats,
            prev_silicon_bits,
        })
    }

    /// The most recent prediction's total variance (`None` before the
    /// first frame) — the value the bus reports as `vo_variance`.
    pub fn last_variance(&self) -> Option<f64> {
        self.last_variance
    }

    /// The most recent prediction's mean relative pose (`None` before
    /// the first frame) — the closed-loop odometry control.
    pub fn last_delta(&self) -> Option<Pose> {
        self.last_delta
    }

    /// The depth policy (current thresholds, change count).
    pub fn policy(&self) -> &AdaptiveMcPolicy {
        &self.policy
    }

    /// The underlying VO engine (macro stats, configuration).
    pub fn vo(&self) -> &BayesianVo {
        &self.vo
    }

    /// One per-frame VO step: features from the stored previous grid and
    /// `depth`, depth-policy decision, MC prediction, energy pricing.
    fn step(
        &mut self,
        depth: &DepthImage,
        camera: &DepthCamera,
        pricing: &EnergyPricing,
    ) -> Result<VoFrameReport> {
        depth.grid_means_into(self.grid_width, self.grid_height, &mut self.curr_grid);
        for g in &mut self.curr_grid {
            *g /= camera.max_range;
        }
        self.features.clear();
        self.features.extend_from_slice(&self.prev_grid);
        self.features.extend_from_slice(&self.curr_grid);
        for (c, p) in self.curr_grid.iter().zip(&self.prev_grid) {
            // lint: allow(hot-path-alloc) amortized push into a buffer cleared each frame; capacity is retained
            self.features.push(c - p);
        }
        let iterations = self.policy.next_iterations(self.last_variance);
        self.vo
            .predict_n_into(&self.features, iterations, &mut self.pred);
        // Prefer the pre-quantization logit variance: at 4-bit output
        // precision the quantized samples of different dropout masks
        // frequently round onto identical codes, collapsing
        // `total_variance()` to numerical dust and starving the noise
        // inflation and gating consumers of any signal.
        let variance = self
            .pred
            .total_logit_variance()
            .unwrap_or_else(|| self.pred.total_variance());
        let delta = crate::vo::delta_pose_from_mean(&self.pred.mean);
        self.last_variance = Some(variance);
        self.last_delta = Some(delta);
        std::mem::swap(&mut self.prev_grid, &mut self.curr_grid);
        let stats = self.vo.macro_stats();
        let stats_delta = stats.delta_since(&self.prev_stats);
        self.prev_stats = stats;
        let bits = self.vo.silicon_bits().unwrap_or(0);
        let rng_bits = bits.saturating_sub(self.prev_silicon_bits);
        self.prev_silicon_bits = bits;
        let energy_pj = pricing.vo_frame_pj(
            &stats_delta,
            rng_bits,
            self.vo.config().weight_bits,
            self.vo.config().adc_bits,
        )?;
        Ok(VoFrameReport {
            iterations,
            variance,
            delta,
            energy_pj,
        })
    }
}

/// Everything [`LocalizationPipeline::begin_frame`] decided before the
/// likelihood evaluation, carried across the externally served
/// evaluation to [`LocalizationPipeline::finish_frame`]: the gated slot,
/// the bus snapshot, the resolved noise scale and the VO report.
#[derive(Debug, Clone)]
pub struct PendingFrame {
    slot: usize,
    signals: UncertaintySignals,
    noise_scale: f64,
    vo: Option<VoFrameReport>,
    fault_active: bool,
    safe_mode: bool,
}

impl PendingFrame {
    /// The backend slot serving this frame — the gate's selection, or
    /// [`DIGITAL_SLOT`] when safe mode overrode it. The slot whose
    /// backend must evaluate the staged batch.
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// The uncertainty bus snapshot the gate saw.
    pub fn signals(&self) -> &UncertaintySignals {
        &self.signals
    }

    /// Whether the safe-mode response governs this frame.
    pub fn safe_mode(&self) -> bool {
        self.safe_mode
    }
}

/// The streaming localization pipeline: multiple live backends, a gate
/// policy arbitrating them per frame, and per-frame energy accounting.
pub struct LocalizationPipeline {
    backends: Vec<Box<dyn MapBackend>>,
    names: Vec<String>,
    gate: Box<dyn GatePolicy>,
    camera: DepthCamera,
    pf: ParticleFilter<Pose>,
    config: LocalizerConfig,
    pricing: EnergyPricing,
    rng: Pcg32,
    scratch: ScanScratch,
    prev_stats: Vec<BackendStats>,
    /// One likelihood-trend tracker per backend slot (digital and analog
    /// log-likelihoods live on different scales, so each slot's frames
    /// score against that slot's own history), the frame each slot last
    /// served (for staleness aging), and the slot whose tracker produced
    /// the most recent reading.
    innovation: Vec<InnovationTracker>,
    innovation_last_frame: Vec<Option<usize>>,
    last_served: Option<usize>,
    vo: Option<VoStage>,
    control: ControlSource,
    inflation: NoiseInflation,
    /// Fault-detection + safe-mode response state (`None` = feature off,
    /// bit-identical to every pre-safe-mode run).
    safe: Option<SafeModeState>,
    /// First frame's pose — kept so forked sessions can re-draw their
    /// own particle clouds around the same prior.
    init_prior: Pose,
    frame: usize,
    current: usize,
}

impl fmt::Debug for LocalizationPipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LocalizationPipeline")
            .field("backends", &self.names)
            .field("gate", &self.gate.name())
            .field("particles", &self.pf.particles().len())
            .field("frame", &self.frame)
            .finish_non_exhaustive()
    }
}

impl LocalizationPipeline {
    /// Builds the pipeline against the default registry.
    ///
    /// # Errors
    ///
    /// See [`Self::build_with_registry`].
    pub fn build(dataset: &LocalizationDataset, config: LocalizerConfig) -> Result<Self> {
        Self::build_with_registry(dataset, config, &BackendRegistry::with_defaults())
    }

    /// Builds every backend slot named by `config.gate` (or the single
    /// `config.backend` when the gate section is empty) from `registry`,
    /// constructs the gate policy, and initializes the particle cloud
    /// around the first frame's pose.
    ///
    /// The particle-init RNG stream is independent of how many backends
    /// are built, so a single-backend pipeline is bit-identical to the
    /// pre-pipeline `CimLocalizer`.
    ///
    /// # Errors
    ///
    /// Rejects empty datasets, unknown backend names and inconsistent
    /// gate configurations; propagates fit/compile errors.
    pub fn build_with_registry(
        dataset: &LocalizationDataset,
        config: LocalizerConfig,
        registry: &BackendRegistry,
    ) -> Result<Self> {
        let slot_names: Vec<String> = config
            .gate
            .slot_names(&config.backend)
            .into_iter()
            .map(str::to_string)
            .collect();
        let gate = config.gate.build_policy(slot_names.len())?;
        Self::with_gate(dataset, config, registry, &slot_names, gate)
    }

    /// The fully general entry point: explicit slot names and a
    /// caller-supplied [`GatePolicy`] — the hook for custom arbitration
    /// strategies (learned gates, duty-cycle schedules) without touching
    /// this crate.
    ///
    /// # Errors
    ///
    /// Rejects empty datasets and slot lists; propagates registry and
    /// fit errors.
    pub fn with_gate(
        dataset: &LocalizationDataset,
        config: LocalizerConfig,
        registry: &BackendRegistry,
        slot_names: &[String],
        gate: Box<dyn GatePolicy>,
    ) -> Result<Self> {
        if dataset.frames.is_empty() {
            return Err(CoreError::InvalidArgument("dataset has no frames".into()));
        }
        if slot_names.is_empty() {
            return Err(CoreError::InvalidArgument(
                "pipeline requires at least one backend slot".into(),
            ));
        }
        let mut rng = Pcg32::seed_from_u64(config.seed);
        let points = dataset.map_points_as_rows();
        let ctx = MapFitContext {
            points: &points,
            components: config.components,
            fit: &config.fit,
            cim: &config.cim,
            prune: config.prune,
            // Factories seed their own fit RNGs from the master seed; the
            // filter RNG below advances independently, so neither backend
            // choice nor slot count perturbs the particle stream.
            seed: config.seed,
        };
        let mut backends = Vec::with_capacity(slot_names.len());
        for name in slot_names {
            backends.push(registry.build(name, &ctx)?);
        }
        let names: Vec<String> = backends.iter().map(|b| b.name().to_string()).collect();

        let prior = dataset.frames[0].pose;
        let states: Vec<Pose> = (0..config.num_particles)
            .map(|_| {
                crate::localization::perturb_pose(
                    prior,
                    config.init_spread,
                    config.init_yaw_spread,
                    &mut rng,
                )
            })
            .collect();
        let pf = ParticleFilter::new(
            navicim_filter::particle::ParticleSet::from_states(states)
                .map_err(|e| CoreError::InvalidArgument(e.to_string()))?,
            config.filter,
        );
        let prev_stats = backends.iter().map(|b| b.stats()).collect();
        Ok(Self {
            backends,
            names,
            gate,
            camera: dataset.camera,
            pf,
            config,
            pricing: EnergyPricing::default(),
            rng,
            scratch: ScanScratch::default(),
            innovation: vec![InnovationTracker::default(); slot_names.len()],
            innovation_last_frame: vec![None; slot_names.len()],
            prev_stats,
            last_served: None,
            vo: None,
            control: ControlSource::GroundTruth,
            inflation: NoiseInflation::default(),
            safe: None,
            init_prior: prior,
            frame: 0,
            current: 0,
        })
    }

    /// Replaces the energy pricing profiles (builder style).
    pub fn with_pricing(mut self, pricing: EnergyPricing) -> Self {
        self.pricing = pricing;
        self
    }

    /// Attaches a [`VoStage`] (builder style): per-frame MC-Dropout VO
    /// with compute-adaptive depth, priced into the frame reports. The
    /// stage is a pure observer — the map-side stream is bit-identical
    /// with or without it.
    pub fn with_vo(mut self, stage: VoStage) -> Self {
        self.vo = Some(stage);
        self
    }

    /// The attached VO stage, if any.
    pub fn vo_stage(&self) -> Option<&VoStage> {
        self.vo.as_ref()
    }

    /// Selects what drives the motion model (builder style). The default
    /// is [`ControlSource::GroundTruth`] — bit-identical to every run
    /// before the loop was closed. [`ControlSource::VisualOdometry`]
    /// requires a [`VoStage`] ([`Self::with_vo`]); the mismatch is
    /// reported by the first [`Self::step`], not here, so builder order
    /// does not matter.
    pub fn with_control(mut self, source: ControlSource) -> Self {
        self.control = source;
        self
    }

    /// Replaces the closed-loop noise-inflation bounds (builder style),
    /// validating them first.
    ///
    /// # Errors
    ///
    /// Propagates [`NoiseInflation::new`] validation.
    pub fn with_noise_inflation(mut self, inflation: NoiseInflation) -> Result<Self> {
        inflation.validate()?;
        self.inflation = inflation;
        Ok(self)
    }

    /// Arms innovation-based fault detection with a safe-mode response
    /// (builder style): a [`FaultDetector`] CUSUM over the serving
    /// slot's likelihood-innovation stream which, once alarmed, forces
    /// the [`DIGITAL_SLOT`] override and clamps the motion-noise scale
    /// to the [`NoiseInflation`] ceiling until dwell-gated recovery.
    /// Off by default — an unarmed pipeline is bit-identical to every
    /// run before this feature existed.
    ///
    /// # Errors
    ///
    /// Propagates [`SafeModeConfig::validate`] and
    /// [`FaultDetector::new`] validation.
    pub fn with_safe_mode(mut self, config: SafeModeConfig) -> Result<Self> {
        self.safe = Some(SafeModeState::new(config)?);
        Ok(self)
    }

    /// The armed safe-mode tuning (`None` when fault detection is off).
    pub fn safe_mode_config(&self) -> Option<&SafeModeConfig> {
        self.safe.as_ref().map(|s| &s.config)
    }

    /// Whether the safe-mode response is currently governing frames.
    pub fn safe_mode_active(&self) -> bool {
        self.safe.as_ref().is_some_and(|s| s.active)
    }

    /// Whether the fault detector's alarm is currently latched.
    pub fn fault_alarmed(&self) -> bool {
        self.safe.as_ref().is_some_and(|s| s.detector.alarmed())
    }

    /// Number of distinct safe-mode entries so far this session.
    pub fn safe_mode_entries(&self) -> u64 {
        self.safe.as_ref().map_or(0, |s| s.entries)
    }

    /// The configured control source.
    pub fn control_source(&self) -> ControlSource {
        self.control
    }

    /// The closed-loop noise-inflation bounds.
    pub fn noise_inflation(&self) -> &NoiseInflation {
        &self.inflation
    }

    /// Backend names, by slot.
    pub fn backend_names(&self) -> &[String] {
        &self.names
    }

    /// The backend serving `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn backend(&self, slot: usize) -> &dyn MapBackend {
        self.backends[slot].as_ref()
    }

    /// Number of backend slots.
    pub fn num_backends(&self) -> usize {
        self.backends.len()
    }

    /// The gate policy name.
    pub fn gate_name(&self) -> &str {
        self.gate.name()
    }

    /// Current pose estimate (weighted mean of the cloud).
    pub fn estimate(&self) -> Pose {
        mean_pose(self.pf.particles())
    }

    /// Current particle spread — the signal the gate will see next frame.
    pub fn spread(&self) -> f64 {
        self.pf.spread(|p| p.translation.to_array())
    }

    /// The uncertainty bus as it stands right now — the signals the gate
    /// will see on the next [`Self::step`] call.
    pub fn signals(&self) -> UncertaintySignals {
        UncertaintySignals {
            spread: self.pf.spread(|p| p.translation.to_array()),
            ess_fraction: self
                .pf
                .last_pre_resample_ess_fraction()
                .unwrap_or_else(|| self.pf.ess_fraction()),
            innovation: self
                .last_served
                .and_then(|slot| self.innovation[slot].last_innovation()),
            vo_variance: self.vo.as_ref().and_then(VoStage::last_variance),
        }
    }

    /// Streams one frame: samples the uncertainty bus, lets the gate
    /// pick a slot, steps the VO stage (when attached) at its
    /// policy-selected MC depth, resolves the motion-model control from
    /// the configured [`ControlSource`] — the caller's ground-truth
    /// delta, or the fresh VO predictive mean with its variance
    /// inflating the motion noise — then runs the
    /// predict/weigh/resample step on the gated backend and prices both
    /// compute axes.
    ///
    /// In closed-loop mode the `control` argument is ignored (the
    /// pipeline navigates on its own estimate); callers without ground
    /// truth odometry may pass [`Pose::IDENTITY`].
    ///
    /// # Errors
    ///
    /// Propagates filter degeneracy and pricing errors; rejects gates
    /// that select an out-of-range slot and closed-loop mode without an
    /// attached [`VoStage`].
    pub fn step(&mut self, control: &Pose, depth: &DepthImage, truth: Pose) -> Result<FrameReport> {
        let pending = self.prepare_frame(control, depth)?;
        let mut sensor = ScanSensor::new(
            self.backends[pending.slot].as_mut(),
            &self.camera,
            self.config.pixel_stride,
            self.config.sharpness,
            self.config.weight_path,
            &mut self.scratch,
        );
        self.pf.update(depth, &mut sensor, &mut self.rng)?;
        self.report_frame(pending, truth)
    }

    /// Everything [`Self::step`] does *before* the likelihood
    /// evaluation: sample the bus, gate, step the VO stage, resolve the
    /// control and run the motion prediction. Shared verbatim by
    /// [`Self::step`] and [`Self::begin_frame`], so the split path is
    /// bit-identical by construction.
    fn prepare_frame(&mut self, control: &Pose, depth: &DepthImage) -> Result<PendingFrame> {
        let signals = self.signals();
        // Fault detection runs on the same bus snapshot the gate sees:
        // the serving slot's innovation reading from the previous frame.
        // The state machine advances *before* gating so an alarm takes
        // effect on this very frame, not one frame late.
        let (fault_active, safe_mode) = match self.safe.as_mut() {
            Some(safe) => safe.update(signals.innovation),
            None => (false, false),
        };
        let ctx = GateContext {
            frame: self.frame,
            signals,
            current: self.current,
            num_backends: self.backends.len(),
        };
        // The gate still selects (and advances its own dwell/schedule
        // state) every frame; safe mode overrides the *outcome*, so on
        // recovery the policy resumes from a coherent state instead of
        // a frozen one.
        let mut slot = self.gate.select(&ctx);
        if slot >= self.backends.len() {
            return Err(CoreError::InvalidArgument(format!(
                "gate '{}' selected slot {slot} but only {} backend(s) are live",
                self.gate.name(),
                self.backends.len()
            )));
        }
        if safe_mode {
            // Force-digital: the accurate substrate re-acquires the
            // track while the fault (or its aftermath) persists.
            slot = DIGITAL_SLOT;
        }
        // The VO stage steps *before* the filter so a closed loop can
        // feed the fresh frame-pair prediction into this frame's motion
        // model. The stage owns its RNG and never touches the filter,
        // so in ground-truth mode the reordering leaves the map-side
        // stream bit-identical (property-tested).
        let vo = match self.vo.as_mut() {
            Some(stage) => Some(stage.step(depth, &self.camera, &self.pricing)?),
            None => None,
        };
        let (control, mut noise_scale) = match self.control {
            ControlSource::GroundTruth => (*control, 1.0),
            ControlSource::VisualOdometry => {
                let vo = vo.as_ref().ok_or_else(|| {
                    CoreError::InvalidArgument(
                        "closed-loop control requires an attached VO stage \
                         (LocalizationPipeline::with_vo)"
                            .into(),
                    )
                })?;
                (vo.delta, self.inflation.scale(Some(vo.variance)))
            }
        };
        if safe_mode {
            // Maximum-distrust clamp, routed through the validated
            // NoiseInflation (scale(None) *is* the ceiling): the widened
            // proposal lets the cloud re-acquire a teleported truth.
            noise_scale = self.inflation.scale(None);
        }
        self.pf
            .predict_scaled(&control, &self.config.motion, noise_scale, &mut self.rng);
        Ok(PendingFrame {
            slot,
            signals,
            noise_scale,
            vo,
            fault_active,
            safe_mode,
        })
    }

    /// Everything [`Self::step`] does *after* the filter absorbed the
    /// frame's likelihoods: summary, innovation bookkeeping, stats
    /// deltas, stream counters, energy pricing. Shared verbatim by
    /// [`Self::step`] and [`Self::finish_frame`].
    fn report_frame(&mut self, pending: PendingFrame, truth: Pose) -> Result<FrameReport> {
        let PendingFrame {
            slot,
            signals,
            noise_scale,
            vo,
            fault_active,
            safe_mode,
        } = pending;
        let estimate = mean_pose(self.pf.particles());
        let summary = StepSummary {
            estimate,
            error: estimate.translation_distance(truth),
            spread: position_spread(self.pf.particles()),
            ess: self.pf.particles().ess(),
        };
        let nees = position_nees(self.pf.particles(), truth);
        // Fold this frame's mean log-likelihood into the serving slot's
        // innovation EWMA so the *next* frame's bus carries the delta
        // against that backend's own trend. A trend frozen while the
        // other slot served is only meaningful for a few frames — after
        // a long absence the scene has moved on and the first frame
        // back would score against ancient history — so a stale tracker
        // is reset to warm-up instead of emitting a phantom reading.
        if let Some(mean_ll) = self.pf.last_mean_log_likelihood() {
            let stale = self.innovation_last_frame[slot]
                .is_some_and(|last| self.frame - last > INNOVATION_STALE_AFTER);
            if stale {
                self.innovation[slot].reset();
            }
            self.innovation[slot].observe(mean_ll);
            self.innovation_last_frame[slot] = Some(self.frame);
        }
        self.last_served = Some(slot);
        let stats = self.backends[slot].stats();
        let delta = stats.delta_since(&self.prev_stats[slot]);
        self.prev_stats[slot] = stats;
        // The filter and the gate have both committed to this frame, so
        // advance the stream counters before anything else can fail —
        // a pricing error below must not leave `frame`/`current` out of
        // sync with the gate's internal state.
        let frame = self.frame;
        self.frame += 1;
        self.current = slot;
        let map_energy_pj = self.pricing.frame_pj(
            &delta,
            self.backends[slot].components(),
            self.backends[slot].dim(),
            self.config.cim.dac_bits,
            self.config.cim.adc_bits,
        )?;
        Ok(FrameReport {
            frame,
            slot,
            signals,
            control_source: self.control,
            noise_scale,
            summary,
            nees,
            fault_active,
            safe_mode,
            truth,
            evaluations: delta.evaluations,
            map_energy_pj,
            vo,
        })
    }

    /// Phase A of the split frame step for serving layers: runs
    /// [`Self::prepare_frame`] (bus, gate, VO, control, motion
    /// prediction) and stages the frame-wide scan batch for the
    /// predicted cloud into the pipeline's scratch, *without* evaluating
    /// it. The caller evaluates [`Self::staged_batch`] against the
    /// pending slot's backend — possibly coalesced with other sessions —
    /// commits backend state via [`MapBackend::absorb_served`] on
    /// [`Self::backend_mut`], and completes the frame with
    /// [`Self::finish_frame`]. The staged evaluation is the
    /// [`crate::localization::WeightPath::Batched`] route, which is
    /// bit-identical to the scalar route (property-tested).
    ///
    /// # Errors
    ///
    /// Same as [`Self::step`]'s pre-evaluation half: out-of-range gate
    /// slots, closed-loop mode without a VO stage.
    pub fn begin_frame(&mut self, control: &Pose, depth: &DepthImage) -> Result<PendingFrame> {
        let pending = self.prepare_frame(control, depth)?;
        crate::localization::stage_scan_batch(
            &self.camera,
            depth,
            self.config.pixel_stride,
            self.pf.particles().states(),
            &mut self.scratch,
        );
        Ok(pending)
    }

    /// The scan batch staged by the last [`Self::begin_frame`]: one
    /// projected world-frame point cloud per particle, concatenated in
    /// particle order.
    pub fn staged_batch(&self) -> &PointBatch {
        &self.scratch.batch
    }

    /// Phase B of the split frame step: takes the per-point
    /// log-likelihoods of the staged batch (aligned with
    /// [`Self::staged_batch`], as produced by the pending slot's
    /// backend), reduces them to per-particle weights, runs the filter's
    /// reweigh/resample half and emits the frame report.
    ///
    /// The caller is responsible for having committed the evaluation to
    /// the serving backend ([`MapBackend::absorb_served`]) first, so the
    /// report's stats delta and energy pricing see the frame's
    /// evaluations.
    ///
    /// # Errors
    ///
    /// Propagates filter degeneracy and pricing errors.
    ///
    /// # Panics
    ///
    /// Panics if `lls` is not aligned with the staged batch.
    pub fn finish_frame(
        &mut self,
        pending: PendingFrame,
        lls: &[f64],
        truth: Pose,
    ) -> Result<FrameReport> {
        assert_eq!(
            lls.len(),
            self.scratch.batch.len(),
            "per-point log-likelihoods must align with the staged batch"
        );
        let sharpness = self.config.sharpness;
        self.scratch
            .particle_lls
            .resize(self.pf.particles().len(), 0.0);
        let mut particle_lls = std::mem::take(&mut self.scratch.particle_lls);
        crate::localization::reduce_scan_lls(
            sharpness,
            &self.scratch.counts,
            lls,
            &mut particle_lls,
        );
        let absorbed = self.pf.absorb_log_likelihoods(&particle_lls, &mut self.rng);
        self.scratch.particle_lls = particle_lls;
        absorbed?;
        self.report_frame(pending, truth)
    }

    /// Mutable access to the backend serving `slot` — the hook a serving
    /// layer uses to commit coalesced evaluations
    /// ([`MapBackend::absorb_served`]).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn backend_mut(&mut self, slot: usize) -> &mut dyn MapBackend {
        self.backends[slot].as_mut()
    }

    /// Spawns an independent session off this pipeline: same map
    /// backends (sharing the read-only fitted models / CIM fabric via
    /// [`MapBackend::fork_session`]), same configuration, a fresh gate
    /// in its initial state, and a fresh particle cloud drawn around the
    /// dataset's first pose from `session_seed`.
    ///
    /// `fork_session(config.seed)` on a pristine pipeline is
    /// bit-identical to building a fresh pipeline from the same dataset
    /// and config — the fleet serving determinism anchor. Distinct seeds
    /// give statistically independent agents over the same map.
    ///
    /// # Errors
    ///
    /// Rejects pipelines that have already stepped (session state such
    /// as VO frame pairs and innovation trends is not rewound), gates
    /// without [`GatePolicy::fork`] support, and backends without
    /// [`MapBackend::fork_session`] support.
    pub fn fork_session(&self, session_seed: u64) -> Result<Self> {
        if self.frame != 0 {
            return Err(CoreError::InvalidArgument(format!(
                "fork_session requires a pristine pipeline, but {} frame(s) have been stepped",
                self.frame
            )));
        }
        let gate = self.gate.fork().ok_or_else(|| {
            CoreError::InvalidArgument(format!(
                "gate '{}' does not support session forking",
                self.gate.name()
            ))
        })?;
        let mut backends = Vec::with_capacity(self.backends.len());
        for (backend, name) in self.backends.iter().zip(&self.names) {
            backends.push(backend.fork_session().ok_or_else(|| {
                CoreError::InvalidArgument(format!(
                    "backend '{name}' does not support session forking"
                ))
            })?);
        }
        let mut rng = Pcg32::seed_from_u64(session_seed);
        let states: Vec<Pose> = (0..self.config.num_particles)
            .map(|_| {
                crate::localization::perturb_pose(
                    self.init_prior,
                    self.config.init_spread,
                    self.config.init_yaw_spread,
                    &mut rng,
                )
            })
            .collect();
        let pf = ParticleFilter::new(
            navicim_filter::particle::ParticleSet::from_states(states)
                .map_err(|e| CoreError::InvalidArgument(e.to_string()))?,
            self.config.filter,
        );
        let prev_stats = backends.iter().map(|b| b.stats()).collect();
        // A forked session re-arms its own detector from the validated
        // config — fault state is per-session, never inherited.
        let safe = match &self.safe {
            Some(s) => Some(SafeModeState::new(s.config)?),
            None => None,
        };
        Ok(Self {
            backends,
            names: self.names.clone(),
            gate,
            camera: self.camera,
            pf,
            config: self.config.clone(),
            pricing: self.pricing.clone(),
            rng,
            scratch: ScanScratch::default(),
            innovation: vec![InnovationTracker::default(); self.names.len()],
            innovation_last_frame: vec![None; self.names.len()],
            prev_stats,
            last_served: None,
            vo: self.vo.clone(),
            control: self.control,
            inflation: self.inflation,
            safe,
            init_prior: self.init_prior,
            frame: 0,
            current: 0,
        })
    }

    /// Streams the whole dataset. In ground-truth mode the dataset's
    /// [`LocalizationDataset::control_deltas`] drive the motion model
    /// (with its configured noise); in closed-loop mode those deltas are
    /// only the per-frame *reference* — the filter navigates on the VO
    /// stage's own predictions.
    ///
    /// # Errors
    ///
    /// Propagates step errors.
    pub fn run(&mut self, dataset: &LocalizationDataset) -> Result<PipelineRun> {
        let controls = dataset.control_deltas();
        let mut frames = Vec::with_capacity(controls.len());
        for (t, control) in controls.iter().enumerate() {
            let truth = dataset.frames[t + 1].pose;
            frames.push(self.step(control, &dataset.frames[t + 1].depth, truth)?);
        }
        Ok(PipelineRun {
            backends: self.names.clone(),
            gate: self.gate.name().to_string(),
            vo_policy: self.vo.as_ref().map(|s| s.policy.name()),
            frames,
            stats: self.backends.iter().map(|b| b.stats()).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::localization::CimLocalizer;
    use crate::registry::{CIM_HMGM, DIGITAL_GMM};
    use navicim_scene::dataset::LocalizationConfig;

    fn small_dataset() -> LocalizationDataset {
        let config = LocalizationConfig {
            image_width: 24,
            image_height: 18,
            map_points: 600,
            frames: 10,
            ..LocalizationConfig::default()
        };
        LocalizationDataset::generate(&config, 7).unwrap()
    }

    fn small_config(gate: GateConfig) -> LocalizerConfig {
        LocalizerConfig {
            num_particles: 250,
            pixel_stride: 7,
            components: 10,
            gate,
            seed: 3,
            ..LocalizerConfig::default()
        }
    }

    fn ctx(frame: usize, spread: f64, current: usize) -> GateContext {
        GateContext {
            frame,
            signals: UncertaintySignals::from_spread(spread),
            current,
            num_backends: 2,
        }
    }

    #[test]
    fn hysteresis_thresholds_and_dead_zone() {
        let mut gate = HysteresisGate::new(HysteresisConfig {
            analog_enter: 0.1,
            digital_enter: 0.2,
            dwell: 1,
            start: DIGITAL_SLOT,
        })
        .unwrap();
        // Frame 0: start slot regardless of signal.
        assert_eq!(gate.select(&ctx(0, 0.01, DIGITAL_SLOT)), DIGITAL_SLOT);
        // Collapsed spread: go analog.
        assert_eq!(gate.select(&ctx(1, 0.05, DIGITAL_SLOT)), ANALOG_SLOT);
        // Dead zone: keep the current slot.
        assert_eq!(gate.select(&ctx(2, 0.15, ANALOG_SLOT)), ANALOG_SLOT);
        // Spread grows past the digital threshold: wake the digital path.
        assert_eq!(gate.select(&ctx(3, 0.25, ANALOG_SLOT)), DIGITAL_SLOT);
        // Dead zone again: stay digital.
        assert_eq!(gate.select(&ctx(4, 0.15, DIGITAL_SLOT)), DIGITAL_SLOT);
        assert_eq!(gate.switches(), 2);
        gate.reset();
        assert_eq!(gate.switches(), 0);
        assert_eq!(gate.select(&ctx(0, 0.01, DIGITAL_SLOT)), DIGITAL_SLOT);
    }

    #[test]
    fn hysteresis_dwell_blocks_rapid_switching() {
        let mut gate = HysteresisGate::new(HysteresisConfig {
            analog_enter: 0.1,
            digital_enter: 0.2,
            dwell: 3,
            start: DIGITAL_SLOT,
        })
        .unwrap();
        // An oscillating signal that would thrash a dwell-free gate.
        let spreads = [0.05, 0.3, 0.05, 0.3, 0.05, 0.3, 0.05, 0.3, 0.05];
        let mut current = DIGITAL_SLOT;
        let mut last_switch: Option<usize> = None;
        for (frame, &s) in spreads.iter().enumerate() {
            let next = gate.select(&ctx(frame, s, current));
            if next != current {
                if let Some(prev) = last_switch {
                    assert!(
                        frame - prev >= 3,
                        "switched at {prev} and again at {frame} (dwell 3)"
                    );
                }
                last_switch = Some(frame);
            }
            current = next;
        }
        assert!(gate.switches() >= 1, "the gate did switch at least once");
    }

    #[test]
    fn hysteresis_validation() {
        let bad = |analog_enter, digital_enter, dwell| {
            HysteresisGate::new(HysteresisConfig {
                analog_enter,
                digital_enter,
                dwell,
                start: DIGITAL_SLOT,
            })
            .is_err()
        };
        assert!(bad(0.0, 0.2, 3)); // non-positive enter
        assert!(bad(0.2, 0.1, 3)); // inverted band
        assert!(bad(0.1, f64::INFINITY, 3)); // non-finite
        assert!(bad(0.1, 0.2, 0)); // zero dwell
        assert!(HysteresisGate::new(HysteresisConfig::default()).is_ok());
    }

    #[test]
    fn gate_config_validation() {
        // Pinned slot out of range.
        assert!(GateConfig::always(vec![DIGITAL_GMM], 1)
            .build_policy(1)
            .is_err());
        // Hysteresis needs two slots.
        let gated = GateConfig {
            backends: vec![DIGITAL_GMM.into()],
            policy: GateKind::Hysteresis(HysteresisConfig::default()),
        };
        assert!(gated.build_policy(1).is_err());
        assert!(GateConfig::gated(DIGITAL_GMM, CIM_HMGM)
            .build_policy(2)
            .is_ok());
        // The default single-backend config resolves to the fallback name.
        assert_eq!(GateConfig::default().slot_names("x"), vec!["x"]);
    }

    #[test]
    fn single_backend_pipeline_matches_cim_localizer() {
        // The wrapper invariant: a single-slot pipeline and the
        // monolithic localizer produce bit-identical runs.
        let ds = small_dataset();
        let run = LocalizationPipeline::build(&ds, small_config(GateConfig::default()))
            .unwrap()
            .run(&ds)
            .unwrap();
        let legacy = CimLocalizer::build(&ds, small_config(GateConfig::default()))
            .unwrap()
            .run(&ds)
            .unwrap();
        assert_eq!(run.frames.len(), legacy.errors.len());
        let errors: Vec<f64> = run.frames.iter().map(|f| f.summary.error).collect();
        assert_eq!(errors, legacy.errors);
        let spreads: Vec<f64> = run.frames.iter().map(|f| f.summary.spread).collect();
        assert_eq!(spreads, legacy.spreads);
        assert_eq!(run.merged_stats(), legacy.stats);
        assert_eq!(run.total_evaluations(), legacy.point_evaluations);
        assert_eq!(run.gate, "always-slot0");
    }

    #[test]
    fn gated_pipeline_uses_both_backends_and_prices_energy() {
        let ds = small_dataset();
        let config = small_config(GateConfig::gated(DIGITAL_GMM, CIM_HMGM).with_hysteresis(
            HysteresisConfig {
                analog_enter: 0.12,
                digital_enter: 0.2,
                dwell: 2,
                start: DIGITAL_SLOT,
            },
        ));
        let mut pipeline = LocalizationPipeline::build(&ds, config).unwrap();
        assert_eq!(pipeline.num_backends(), 2);
        assert_eq!(pipeline.gate_name(), "hysteresis");
        let run = pipeline.run(&ds).unwrap();
        assert_eq!(run.frames.len(), 9);
        // The cloud starts wide (digital) and collapses (analog).
        assert_eq!(run.frames[0].slot, DIGITAL_SLOT);
        assert!(run.frames_on(ANALOG_SLOT) > 0, "{:?}", run.frames);
        assert!(run.analog_fraction() > 0.0);
        // Every frame carries evaluations, positive energy and a fully
        // populated uncertainty bus.
        for f in &run.frames {
            assert!(f.evaluations > 0, "frame {} had no evaluations", f.frame);
            assert!(f.map_energy_pj > 0.0);
            assert_eq!(f.total_energy_pj(), f.map_energy_pj, "no VO stage");
            assert!(f.gate_spread().is_finite());
            assert!(f.signals.ess_fraction > 0.0 && f.signals.ess_fraction <= 1.0);
            assert!(f.signals.innovation.is_none_or(|i| i.is_finite()));
            assert_eq!(f.signals.vo_variance, None);
            // Open-loop run: ground-truth control at unit noise scale.
            assert_eq!(f.control_source, ControlSource::GroundTruth);
            assert_eq!(f.noise_scale, 1.0);
        }
        // The innovation warm-up is explicit and *per slot*: a frame's
        // reading comes from the previous frame's serving slot and goes
        // live once that slot has weighed its second (finite) frame —
        // never a fake 0.0 before then, and a fresh warm-up after every
        // first visit to a new backend.
        assert_eq!(run.frames[0].signals.innovation, None);
        assert_eq!(run.frames[1].signals.innovation, None);
        let mut served = [0usize; 2];
        for (i, f) in run.frames.iter().enumerate() {
            if i > 0 {
                let prev_slot = run.frames[i - 1].slot;
                assert_eq!(
                    f.signals.innovation.is_some(),
                    served[prev_slot] >= 2,
                    "frame {i}: slot {prev_slot} had {} observations",
                    served[prev_slot]
                );
            }
            served[f.slot] += 1;
        }
        assert!(run.frames.iter().any(|f| f.signals.innovation.is_some()));
        assert_eq!(run.vo_policy, None);
        // Slot stats separate digital from analog counters.
        assert!(!run.stats[DIGITAL_SLOT].is_analog());
        assert!(run.stats[ANALOG_SLOT].is_analog());
        // The summary table renders one row per slot.
        let table = run.summary_table();
        assert_eq!(table.len(), 2);
        assert!(table.to_string().contains(CIM_HMGM));
    }

    #[test]
    fn gated_runs_are_deterministic() {
        let ds = small_dataset();
        let config = || small_config(GateConfig::gated(DIGITAL_GMM, CIM_HMGM));
        let run1 = LocalizationPipeline::build(&ds, config())
            .unwrap()
            .run(&ds)
            .unwrap();
        let run2 = LocalizationPipeline::build(&ds, config())
            .unwrap()
            .run(&ds)
            .unwrap();
        assert_eq!(run1, run2);
    }

    #[test]
    fn always_analog_baseline_runs_on_the_analog_slot() {
        let ds = small_dataset();
        let config = small_config(GateConfig {
            backends: vec![DIGITAL_GMM.into(), CIM_HMGM.into()],
            policy: GateKind::Always(ANALOG_SLOT),
        });
        let run = LocalizationPipeline::build(&ds, config)
            .unwrap()
            .run(&ds)
            .unwrap();
        assert_eq!(run.frames_on(ANALOG_SLOT), run.frames.len());
        assert!((run.analog_fraction() - 1.0).abs() < 1e-12);
        assert_eq!(run.switches(), 0);
        // The digital slot was built but never served.
        assert_eq!(run.stats[DIGITAL_SLOT].evaluations, 0);
    }

    #[test]
    fn pruning_gates_cim_columns_and_lowers_priced_energy() {
        // Column gating needs query locality: the range-limited camera
        // must see a small patch of a large map, so far-wall components
        // fall outside the CIM gating margin. The default tabletop room
        // is too small for that (one scan covers half the map), hence
        // the oversized room here.
        let scene_config = LocalizationConfig {
            tabletop: navicim_scene::scene::TabletopParams {
                room_half: 12.0,
                ..navicim_scene::scene::TabletopParams::default()
            },
            image_width: 24,
            image_height: 18,
            map_points: 1800,
            frames: 10,
            ..LocalizationConfig::default()
        };
        let ds = LocalizationDataset::generate(&scene_config, 7).unwrap();
        let base = LocalizerConfig {
            num_particles: 250,
            pixel_stride: 7,
            components: 24,
            gate: GateConfig {
                backends: vec![DIGITAL_GMM.into(), CIM_HMGM.into()],
                policy: GateKind::Always(ANALOG_SLOT),
            },
            seed: 3,
            ..LocalizerConfig::default()
        };
        let full = LocalizationPipeline::build(&ds, base.clone())
            .unwrap()
            .run(&ds)
            .unwrap();
        let pruned_config = LocalizerConfig {
            prune: navicim_gmm::prune::PruneConfig::enabled(),
            ..base
        };
        let pruned = LocalizationPipeline::build(&ds, pruned_config)
            .unwrap()
            .run(&ds)
            .unwrap();
        // Same workload either way: identical frame count and evaluation
        // counts on the analog slot.
        assert_eq!(pruned.frames.len(), full.frames.len());
        assert_eq!(
            pruned.stats[ANALOG_SLOT].evaluations,
            full.stats[ANALOG_SLOT].evaluations
        );
        // Off-mode accounting drives every column slot; the pruned run
        // actually gates columns away.
        let off = &full.stats[ANALOG_SLOT];
        assert_eq!(off.column_activations, off.column_slots);
        let on = &pruned.stats[ANALOG_SLOT];
        assert!(on.column_slots > 0);
        assert!(
            on.column_activations < on.column_slots,
            "expected gating on the pipeline run: {} of {} slots driven",
            on.column_activations,
            on.column_slots
        );
        // The priced joint energy reflects the skipped DAC→array column
        // activations (and the lower measured array current).
        assert!(
            pruned.total_map_energy_pj() < full.total_map_energy_pj(),
            "pruned {} pJ should undercut full {} pJ",
            pruned.total_map_energy_pj(),
            full.total_map_energy_pj()
        );
        for f in &pruned.frames {
            assert!(f.map_energy_pj > 0.0);
        }
    }

    #[test]
    fn periodic_refresh_follows_its_schedule() {
        let mut gate = PeriodicRefresh::new(PeriodicRefreshConfig {
            period: 3,
            refresh_len: 2,
        })
        .unwrap();
        assert_eq!(gate.name(), "periodic-refresh");
        assert_eq!(gate.cycle_len(), 5);
        // Two digital frames, three analog frames, repeating — dwell-style
        // check: runs of each slot have exactly the configured length.
        let slots: Vec<usize> = (0..12).map(|f| gate.select(&ctx(f, 0.5, 0))).collect();
        assert_eq!(slots, vec![0, 0, 1, 1, 1, 0, 0, 1, 1, 1, 0, 0]);
        // The schedule ignores the uncertainty bus entirely.
        let blind: Vec<usize> = (0..12).map(|f| gate.select(&ctx(f, 1e9, 1))).collect();
        assert_eq!(slots, blind);
    }

    #[test]
    fn periodic_refresh_validation() {
        assert!(PeriodicRefresh::new(PeriodicRefreshConfig {
            period: 0,
            refresh_len: 1,
        })
        .is_err());
        assert!(PeriodicRefresh::new(PeriodicRefreshConfig {
            period: 1,
            refresh_len: 0,
        })
        .is_err());
        assert!(PeriodicRefresh::new(PeriodicRefreshConfig::default()).is_ok());
        // Needs two slots, like the hysteresis gate.
        let config = GateConfig {
            backends: vec![DIGITAL_GMM.into()],
            policy: GateKind::Periodic(PeriodicRefreshConfig::default()),
        };
        assert!(config.build_policy(1).is_err());
        assert!(
            GateConfig::periodic(DIGITAL_GMM, CIM_HMGM, PeriodicRefreshConfig::default())
                .build_policy(2)
                .is_ok()
        );
    }

    #[test]
    fn periodic_refresh_pipeline_serves_both_slots() {
        let ds = small_dataset();
        let config = small_config(GateConfig::periodic(
            DIGITAL_GMM,
            CIM_HMGM,
            PeriodicRefreshConfig {
                period: 2,
                refresh_len: 1,
            },
        ));
        let run = LocalizationPipeline::build(&ds, config)
            .unwrap()
            .run(&ds)
            .unwrap();
        assert_eq!(run.gate, "periodic-refresh");
        // 9 tracked frames with a 1+2 cycle: 3 digital, 6 analog.
        assert_eq!(run.frames_on(DIGITAL_SLOT), 3);
        assert_eq!(run.frames_on(ANALOG_SLOT), 6);
        assert_eq!(run.frames[0].slot, DIGITAL_SLOT);
    }

    fn vo_stage_for(
        ds: &LocalizationDataset,
        policy: crate::vo::AdaptiveMcPolicy,
        grid: (usize, usize),
    ) -> VoStage {
        use crate::vo::{BayesianVo, VoPipelineConfig};
        use navicim_scene::dataset::make_samples;
        // An untrained regressor suffices for plumbing tests: dropout
        // still produces nonzero predictive variance.
        let mut rng = Pcg32::seed_from_u64(40);
        let in_dim = 3 * grid.0 * grid.1;
        let net = navicim_nn::mlp::Mlp::builder(in_dim)
            .dense(16)
            .relu()
            .dropout(0.5)
            .dense(6)
            .build(&mut rng)
            .unwrap();
        let samples = make_samples(&ds.frames, &ds.camera, grid.0, grid.1);
        let calib: Vec<Vec<f64>> = samples.iter().take(4).map(|s| s.features.clone()).collect();
        let vo = BayesianVo::build(
            &net,
            &calib,
            VoPipelineConfig {
                mc_iterations: 12,
                ..VoPipelineConfig::default()
            },
        )
        .unwrap();
        VoStage::new(vo, policy, &ds.camera, &ds.frames[0].depth, grid.0, grid.1).unwrap()
    }

    #[test]
    fn vo_stage_reports_and_leaves_map_side_bit_identical() {
        use crate::vo::{AdaptiveMcConfig, AdaptiveMcPolicy};
        let ds = small_dataset();
        let config = || small_config(GateConfig::gated(DIGITAL_GMM, CIM_HMGM));
        let bare = LocalizationPipeline::build(&ds, config())
            .unwrap()
            .run(&ds)
            .unwrap();
        let policy = AdaptiveMcPolicy::new(AdaptiveMcConfig {
            min_iterations: 4,
            max_iterations: 12,
            var_low: 1e-6,
            var_high: 1e9,
            dwell: 1,
        })
        .unwrap();
        let stage = vo_stage_for(&ds, policy, (4, 3));
        let run = LocalizationPipeline::build(&ds, config())
            .unwrap()
            .with_vo(stage)
            .run(&ds)
            .unwrap();
        assert_eq!(run.vo_policy.as_deref(), Some("adaptive-mc[4..12]"));
        // The VO stage is a pure observer: the map side is bit-identical.
        assert_eq!(run.stats, bare.stats);
        for (with_vo, without) in run.frames.iter().zip(&bare.frames) {
            assert_eq!(with_vo.slot, without.slot);
            assert_eq!(with_vo.summary, without.summary);
            assert_eq!(with_vo.map_energy_pj, without.map_energy_pj);
            assert_eq!(with_vo.signals.spread, without.signals.spread);
        }
        // Every frame carries a VO record with bounded depth and energy;
        // the first frame runs at max depth (no variance history).
        let first = run.frames[0].vo.unwrap();
        assert_eq!(first.iterations, 12);
        assert_eq!(run.frames[0].signals.vo_variance, None);
        for f in &run.frames {
            let vo = f.vo.expect("stage attached");
            assert!((4..=12).contains(&vo.iterations));
            assert!(vo.variance > 0.0);
            assert!(vo.energy_pj > 0.0);
            assert!(f.total_energy_pj() > f.map_energy_pj);
        }
        // From frame 1 on, the bus carries the previous frame's fresh
        // variance.
        for w in run.frames.windows(2) {
            assert_eq!(w[1].signals.vo_variance, Some(w[0].vo.unwrap().variance));
        }
        assert!(run.total_vo_energy_pj() > 0.0);
        assert!(
            (run.total_energy_pj() - run.total_map_energy_pj() - run.total_vo_energy_pj()).abs()
                < 1e-9
        );
        assert!(run.mean_mc_iterations() >= 4.0 && run.mean_mc_iterations() <= 12.0);
    }

    #[test]
    fn vo_stage_rejects_mismatched_grid() {
        use crate::vo::AdaptiveMcPolicy;
        let ds = small_dataset();
        // Stage helper builds a 4x3 net; a 5x3 grid must be rejected.
        use crate::vo::VoPipelineConfig;
        let mut rng = Pcg32::seed_from_u64(41);
        let net = navicim_nn::mlp::Mlp::builder(36)
            .dense(8)
            .relu()
            .dropout(0.5)
            .dense(6)
            .build(&mut rng)
            .unwrap();
        let calib = vec![vec![0.1; 36]; 2];
        let vo = BayesianVo::build(&net, &calib, VoPipelineConfig::default()).unwrap();
        let err = VoStage::new(
            vo,
            AdaptiveMcPolicy::fixed(8).unwrap(),
            &ds.camera,
            &ds.frames[0].depth,
            5,
            3,
        )
        .unwrap_err();
        assert!(err.to_string().contains("45"), "{err}");
    }

    #[test]
    fn csv_log_carries_the_full_bus() {
        use crate::vo::AdaptiveMcPolicy;
        let ds = small_dataset();
        let stage = vo_stage_for(&ds, AdaptiveMcPolicy::fixed(8).unwrap(), (4, 3));
        let run = LocalizationPipeline::build(
            &ds,
            small_config(GateConfig::gated(DIGITAL_GMM, CIM_HMGM)),
        )
        .unwrap()
        .with_vo(stage)
        .run(&ds)
        .unwrap();
        let csv = run.to_csv();
        assert_eq!(csv.len(), run.frames.len());
        let text = csv.to_string();
        let header = text.lines().next().unwrap();
        assert_eq!(header, PipelineRun::CSV_HEADER.join(","));
        let col = |name: &str| {
            PipelineRun::CSV_HEADER
                .iter()
                .position(|c| *c == name)
                .unwrap_or_else(|| panic!("missing column {name}"))
        };
        // Frame 0: warm-up bus (empty innovation and bus vo_variance
        // cells), populated vo columns, open-loop control columns.
        let row0: Vec<&str> = text.lines().nth(1).unwrap().split(',').collect();
        assert_eq!(row0[col("frame")], "0");
        assert_eq!(row0[col("innovation")], "", "innovation warm-up empty");
        assert_eq!(row0[col("bus_vo_variance")], "", "bus vo_variance empty");
        assert_eq!(row0[col("mc_iterations")], "8", "fixed depth logged");
        assert_eq!(row0[col("control_source")], "ground-truth");
        assert_eq!(row0[col("noise_scale")], "1");
        // A no-VO run leaves the vo columns empty but keeps the header.
        let bare = LocalizationPipeline::build(&ds, small_config(GateConfig::default()))
            .unwrap()
            .run(&ds)
            .unwrap();
        let bare_text = bare.to_csv().to_string();
        let bare_row: Vec<&str> = bare_text.lines().nth(1).unwrap().split(',').collect();
        assert_eq!(bare_row[col("mc_iterations")], "");
        assert_eq!(bare_row[col("vo_variance")], "");
    }

    #[test]
    fn pricing_rejects_invalid_profiles_and_prices_zero_for_idle_frames() {
        let pricing = EnergyPricing::default();
        let idle = BackendStats::default();
        assert_eq!(pricing.frame_pj(&idle, 10, 3, 4, 4).unwrap(), 0.0);
        let digital = BackendStats {
            evaluations: 100,
            ..BackendStats::default()
        };
        let e = pricing.frame_pj(&digital, 16, 3, 4, 4).unwrap();
        assert!(e > 0.0);
        let bad = EnergyPricing {
            digital_bits: 0,
            ..EnergyPricing::default()
        };
        assert!(bad.frame_pj(&digital, 16, 3, 4, 4).is_err());

        // VO pricing: idle frames are free, busy frames positive, zero
        // weight precision rejected.
        let idle_macro = MacroStats::default();
        assert_eq!(pricing.vo_frame_pj(&idle_macro, 0, 4, 12).unwrap(), 0.0);
        let busy = MacroStats {
            macs_executed: 10_000,
            adc_conversions: 500,
            ..MacroStats::default()
        };
        assert!(pricing.vo_frame_pj(&busy, 100, 4, 12).unwrap() > 0.0);
        assert!(pricing.vo_frame_pj(&busy, 100, 0, 12).is_err());
    }

    fn bus(spread: f64, ess: f64, innovation: Option<f64>) -> UncertaintySignals {
        UncertaintySignals {
            spread,
            ess_fraction: ess,
            innovation,
            vo_variance: None,
        }
    }

    fn ms_ctx(frame: usize, signals: UncertaintySignals, current: usize) -> GateContext {
        GateContext {
            frame,
            signals,
            current,
            num_backends: 2,
        }
    }

    #[test]
    fn multi_signal_gate_matches_hysteresis_on_neutral_bus() {
        // With a healthy ESS and no innovation reading, the overrides
        // never fire and the gate is decision-for-decision the
        // spread-only hysteresis gate.
        let spread_cfg = HysteresisConfig {
            analog_enter: 0.1,
            digital_enter: 0.2,
            dwell: 2,
            start: DIGITAL_SLOT,
        };
        let mut plain = HysteresisGate::new(spread_cfg).unwrap();
        let mut multi = MultiSignalGate::new(MultiSignalConfig {
            spread: spread_cfg,
            innovation_wake: -2.0,
            ess_wake: 0.05,
        })
        .unwrap();
        let spreads = [0.3, 0.05, 0.05, 0.15, 0.25, 0.05, 0.3, 0.05, 0.05];
        let mut cur_a = DIGITAL_SLOT;
        let mut cur_b = DIGITAL_SLOT;
        for (frame, &s) in spreads.iter().enumerate() {
            cur_a = plain.select(&ctx(frame, s, cur_a));
            cur_b = multi.select(&ms_ctx(frame, bus(s, 1.0, None), cur_b));
            assert_eq!(cur_a, cur_b, "frame {frame}");
        }
        assert_eq!(plain.switches(), multi.switches());
        assert_eq!(multi.rescues(), 0);
    }

    #[test]
    fn multi_signal_gate_wakes_digital_on_negative_innovation() {
        // A tight cloud (spread well under analog_enter) with a strongly
        // negative innovation is the "collapsed but biased" case: the
        // spread-only gate stays analog, the multi-signal gate rescues.
        let mut gate = MultiSignalGate::new(MultiSignalConfig {
            spread: HysteresisConfig {
                analog_enter: 0.1,
                digital_enter: 0.2,
                dwell: 1,
                start: ANALOG_SLOT,
            },
            innovation_wake: -1.5,
            ess_wake: 0.05,
        })
        .unwrap();
        assert_eq!(
            gate.select(&ms_ctx(0, bus(0.05, 1.0, None), 1)),
            ANALOG_SLOT
        );
        // Mildly negative innovation: no rescue.
        assert_eq!(
            gate.select(&ms_ctx(1, bus(0.05, 1.0, Some(-0.5)), 1)),
            ANALOG_SLOT
        );
        // Strongly negative innovation: digital despite the tight cloud.
        assert_eq!(
            gate.select(&ms_ctx(2, bus(0.05, 1.0, Some(-3.0)), 1)),
            DIGITAL_SLOT
        );
        assert_eq!(gate.rescues(), 1);
        // The override also *holds* digital while it keeps firing.
        assert_eq!(
            gate.select(&ms_ctx(3, bus(0.05, 1.0, Some(-3.0)), 0)),
            DIGITAL_SLOT
        );
        // Signal recovers: the spread band takes back over.
        assert_eq!(
            gate.select(&ms_ctx(4, bus(0.05, 1.0, Some(0.0)), 0)),
            ANALOG_SLOT
        );
        // A warm-up innovation (None) never fires the override.
        assert_eq!(
            gate.select(&ms_ctx(5, bus(0.05, 1.0, None), 1)),
            ANALOG_SLOT
        );
    }

    #[test]
    fn multi_signal_gate_wakes_digital_on_collapsed_ess() {
        let mut gate = MultiSignalGate::new(MultiSignalConfig {
            spread: HysteresisConfig {
                analog_enter: 0.1,
                digital_enter: 0.2,
                dwell: 1,
                start: ANALOG_SLOT,
            },
            innovation_wake: -1.5,
            ess_wake: 0.1,
        })
        .unwrap();
        gate.select(&ms_ctx(0, bus(0.05, 1.0, None), 1));
        // Weight mass collapsed onto a sliver of the cloud: rescue.
        assert_eq!(
            gate.select(&ms_ctx(1, bus(0.05, 0.02, None), 1)),
            DIGITAL_SLOT
        );
        assert_eq!(gate.rescues(), 1);
        assert_eq!(gate.switches(), 1);
        gate.reset();
        assert_eq!(gate.rescues(), 0);
        assert_eq!(gate.switches(), 0);
    }

    #[test]
    fn multi_signal_gate_respects_dwell_on_rescues() {
        // The rescue is subject to the same dwell lock as any switch: a
        // fresh switch to analog blocks the rescue until the window
        // expires.
        let mut gate = MultiSignalGate::new(MultiSignalConfig {
            spread: HysteresisConfig {
                analog_enter: 0.1,
                digital_enter: 0.2,
                dwell: 3,
                start: DIGITAL_SLOT,
            },
            innovation_wake: -1.5,
            ess_wake: 0.05,
        })
        .unwrap();
        gate.select(&ms_ctx(0, bus(0.3, 1.0, None), 0));
        // Collapse: switch to analog at frame 3 (dwell satisfied).
        gate.select(&ms_ctx(1, bus(0.05, 1.0, None), 0));
        gate.select(&ms_ctx(2, bus(0.05, 1.0, None), 0));
        let s3 = gate.select(&ms_ctx(3, bus(0.05, 1.0, None), 0));
        assert_eq!(s3, ANALOG_SLOT);
        // Bad innovation right after the switch: dwell-locked.
        assert_eq!(
            gate.select(&ms_ctx(4, bus(0.05, 1.0, Some(-9.0)), 1)),
            ANALOG_SLOT
        );
        assert_eq!(
            gate.select(&ms_ctx(5, bus(0.05, 1.0, Some(-9.0)), 1)),
            ANALOG_SLOT
        );
        // Window expired: the rescue fires.
        assert_eq!(
            gate.select(&ms_ctx(6, bus(0.05, 1.0, Some(-9.0)), 1)),
            DIGITAL_SLOT
        );
        assert_eq!(gate.rescues(), 1);
    }

    #[test]
    fn multi_signal_validation_rejects_each_bad_field() {
        let good = MultiSignalConfig::default();
        assert!(MultiSignalGate::new(good).is_ok());
        // The embedded spread band goes through the shared hysteresis
        // validation.
        let bad_spread = MultiSignalConfig {
            spread: HysteresisConfig {
                analog_enter: 0.3,
                digital_enter: 0.2,
                ..HysteresisConfig::default()
            },
            ..good
        };
        assert!(MultiSignalGate::new(bad_spread).is_err());
        for innovation_wake in [0.0, 1.0, f64::NAN, f64::NEG_INFINITY] {
            assert!(
                MultiSignalGate::new(MultiSignalConfig {
                    innovation_wake,
                    ..good
                })
                .is_err(),
                "innovation_wake {innovation_wake} accepted"
            );
        }
        for ess_wake in [0.0, -0.1, 1.0, 1.5, f64::NAN] {
            assert!(
                MultiSignalGate::new(MultiSignalConfig { ess_wake, ..good }).is_err(),
                "ess_wake {ess_wake} accepted"
            );
        }
        // And the GateKind plumbing demands two slots like the others.
        let config = GateConfig {
            backends: vec![DIGITAL_GMM.into()],
            policy: GateKind::MultiSignal(MultiSignalConfig::default()),
        };
        assert!(config.build_policy(1).is_err());
        assert!(
            GateConfig::multi_signal(DIGITAL_GMM, CIM_HMGM, MultiSignalConfig::default())
                .build_policy(2)
                .is_ok()
        );
    }

    #[test]
    fn validation_parity_across_gate_and_policy_configs() {
        // Satellite audit: every threshold family rejects non-finite
        // values, inverted bands and zero dwells the same way.
        // Spread band (shared by hysteresis and multi-signal gates):
        for config in [
            HysteresisConfig {
                analog_enter: f64::NAN,
                ..HysteresisConfig::default()
            },
            HysteresisConfig {
                analog_enter: f64::INFINITY,
                ..HysteresisConfig::default()
            },
            HysteresisConfig {
                digital_enter: f64::NAN,
                ..HysteresisConfig::default()
            },
            HysteresisConfig {
                digital_enter: f64::INFINITY,
                ..HysteresisConfig::default()
            },
            HysteresisConfig {
                dwell: 0,
                ..HysteresisConfig::default()
            },
            HysteresisConfig {
                start: 2,
                ..HysteresisConfig::default()
            },
        ] {
            assert!(config.validate().is_err(), "{config:?} accepted");
            assert!(HysteresisGate::new(config).is_err());
            assert!(MultiSignalGate::new(MultiSignalConfig {
                spread: config,
                ..MultiSignalConfig::default()
            })
            .is_err());
        }
        // Adaptive-MC variance band: same rules on the VO axis.
        use crate::vo::{AdaptiveMcConfig, AdaptiveMcPolicy};
        let mc = AdaptiveMcConfig {
            min_iterations: 4,
            max_iterations: 16,
            var_low: 0.1,
            var_high: 0.2,
            dwell: 2,
        };
        assert!(AdaptiveMcPolicy::new(mc).is_ok());
        for bad in [
            AdaptiveMcConfig {
                var_low: f64::NAN,
                ..mc
            },
            AdaptiveMcConfig {
                var_low: f64::INFINITY,
                ..mc
            },
            AdaptiveMcConfig {
                var_high: f64::NAN,
                ..mc
            },
            AdaptiveMcConfig {
                var_high: f64::INFINITY,
                ..mc
            },
            AdaptiveMcConfig {
                var_low: 0.3,
                var_high: 0.2,
                ..mc
            },
            AdaptiveMcConfig {
                var_low: -0.1,
                ..mc
            },
            AdaptiveMcConfig { dwell: 0, ..mc },
            AdaptiveMcConfig {
                min_iterations: 1,
                ..mc
            },
            AdaptiveMcConfig {
                min_iterations: 20,
                max_iterations: 16,
                ..mc
            },
        ] {
            assert!(AdaptiveMcPolicy::new(bad).is_err(), "{bad:?} accepted");
        }
    }

    #[test]
    fn noise_inflation_accepts_valid_configs() {
        assert!(NoiseInflation::new(30.0, 1.0, 4.0).is_ok());
        // Degenerate-but-legal: zero gain, floor == ceiling.
        assert!(NoiseInflation::new(0.0, 0.5, 0.5).is_ok());
    }

    #[test]
    fn noise_inflation_rejects_non_finite_gain() {
        for gain in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = NoiseInflation::new(gain, 1.0, 4.0).unwrap_err();
            assert!(err.to_string().contains("gain must be finite"), "{err}");
        }
    }

    #[test]
    fn noise_inflation_rejects_negative_gain() {
        let err = NoiseInflation::new(-1.0, 1.0, 4.0).unwrap_err();
        assert!(err.to_string().contains("gain must be >= 0"), "{err}");
    }

    #[test]
    fn noise_inflation_rejects_bad_floor() {
        for floor in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = NoiseInflation::new(1.0, floor, 4.0).unwrap_err();
            assert!(err.to_string().contains("floor"), "{err}");
        }
    }

    #[test]
    fn noise_inflation_rejects_non_finite_ceiling() {
        for ceiling in [f64::NAN, f64::INFINITY] {
            let err = NoiseInflation::new(1.0, 1.0, ceiling).unwrap_err();
            assert!(err.to_string().contains("ceiling must be finite"), "{err}");
        }
    }

    #[test]
    fn noise_inflation_rejects_ceiling_below_floor() {
        let err = NoiseInflation::new(1.0, 2.0, 1.0).unwrap_err();
        assert!(
            err.to_string().contains("ceiling must be >= floor"),
            "{err}"
        );
    }

    #[test]
    fn literal_constructed_inflation_is_caught_by_validate_not_by_a_panic() {
        // The fields are public, so a struct literal can bypass `new` —
        // `validate` must catch what `scale` would otherwise *panic* on
        // (std clamp with floor > ceiling).
        let inverted = NoiseInflation {
            gain: 1.0,
            floor: 4.0,
            ceiling: 1.0,
        };
        assert!(inverted.validate().is_err());
        let ds = small_dataset();
        let err = LocalizationPipeline::build(&ds, small_config(GateConfig::default()))
            .unwrap()
            .with_noise_inflation(inverted)
            .unwrap_err();
        assert!(
            err.to_string().contains("ceiling must be >= floor"),
            "{err}"
        );
        let nan_gain = NoiseInflation {
            gain: f64::NAN,
            floor: 1.0,
            ceiling: 4.0,
        };
        assert!(nan_gain.validate().is_err());
    }

    #[test]
    fn noise_inflation_scale_bounds() {
        let inflation = NoiseInflation::new(10.0, 1.0, 3.0).unwrap();
        // Total for any input: None and garbage price at the ceiling.
        assert_eq!(inflation.scale(None), 3.0);
        assert_eq!(inflation.scale(Some(f64::NAN)), 3.0);
        assert_eq!(inflation.scale(Some(f64::INFINITY)), 3.0);
        assert_eq!(inflation.scale(Some(f64::NEG_INFINITY)), 3.0);
        // Finite variances map through the clamped affine law.
        assert_eq!(inflation.scale(Some(0.0)), 1.0);
        assert_eq!(inflation.scale(Some(0.05)), 1.5);
        assert_eq!(inflation.scale(Some(10.0)), 3.0);
        // Negative variances (impossible, but total) clamp to the floor.
        assert_eq!(inflation.scale(Some(-5.0)), 1.0);
    }

    /// A detector tuning that fires within 1-2 frames of a blind burst
    /// but stays quiet through clean tracking wobble.
    fn test_safe_mode_config() -> SafeModeConfig {
        SafeModeConfig {
            detector: FaultDetectorConfig {
                drift: 2.0,
                threshold: 10.0,
                warmup: 0,
            },
            hold_frames: 2,
            recovery_innovation: -1.0,
        }
    }

    #[test]
    fn safe_mode_validation_rejects_bad_tunings() {
        let ds = small_dataset();
        let build =
            || LocalizationPipeline::build(&ds, small_config(GateConfig::default())).unwrap();
        assert!(build()
            .with_safe_mode(SafeModeConfig {
                hold_frames: 0,
                ..SafeModeConfig::default()
            })
            .is_err());
        assert!(build()
            .with_safe_mode(SafeModeConfig {
                recovery_innovation: f64::NAN,
                ..SafeModeConfig::default()
            })
            .is_err());
        // Detector validation propagates through the builder.
        assert!(build()
            .with_safe_mode(SafeModeConfig {
                detector: FaultDetectorConfig {
                    threshold: -1.0,
                    ..FaultDetectorConfig::default()
                },
                ..SafeModeConfig::default()
            })
            .is_err());
        assert!(build().with_safe_mode(SafeModeConfig::default()).is_ok());
    }

    #[test]
    fn armed_but_never_alarmed_safe_mode_is_bit_identical() {
        // Arming fault detection must not perturb a clean run: the
        // detector only *reads* the bus, so until it alarms every
        // report is bit-identical to an unarmed pipeline's.
        let ds = small_dataset();
        let config = small_config(GateConfig::gated(DIGITAL_GMM, CIM_HMGM));
        let base = LocalizationPipeline::build(&ds, config.clone())
            .unwrap()
            .run(&ds)
            .unwrap();
        let armed = LocalizationPipeline::build(&ds, config)
            .unwrap()
            .with_safe_mode(SafeModeConfig {
                detector: FaultDetectorConfig {
                    threshold: 1e9,
                    ..FaultDetectorConfig::default()
                },
                ..SafeModeConfig::default()
            })
            .unwrap()
            .run(&ds)
            .unwrap();
        assert_eq!(base.frames, armed.frames);
        assert!(armed.frames.iter().all(|f| !f.fault_active && !f.safe_mode));
        assert!(armed.frames.iter().all(|f| f.nees.is_finite()));
    }

    #[test]
    fn blind_burst_trips_safe_mode_forces_digital_and_recovers() {
        // An analog-pinned gate + a mid-run blind burst: the detector
        // must alarm within two frames of the burst, the response must
        // override the pinned slot to DIGITAL_SLOT and clamp the noise
        // scale to the inflation ceiling, and once honest frames
        // return, the dwell-gated exit must re-arm the detector.
        let ds = small_dataset();
        let config = small_config(GateConfig::always(vec![DIGITAL_GMM, CIM_HMGM], ANALOG_SLOT));
        let mut pipeline = LocalizationPipeline::build(&ds, config)
            .unwrap()
            .with_safe_mode(test_safe_mode_config())
            .unwrap();
        let ceiling = pipeline.noise_inflation().scale(None);
        let controls = ds.control_deltas();
        let blind = DepthImage::new(ds.frames[0].depth.width(), ds.frames[0].depth.height());
        let mut reports = Vec::new();
        // 20 frames total, cycling the dataset; frames 6..9 are blind.
        for t in 0..20 {
            let k = t % controls.len();
            let truth = ds.frames[k + 1].pose;
            let depth = if (6..9).contains(&t) {
                &blind
            } else {
                &ds.frames[k + 1].depth
            };
            reports.push(pipeline.step(&controls[k], depth, truth).unwrap());
        }
        // Clean prefix: quiet detector, gate-pinned analog slot.
        for f in &reports[..6] {
            assert!(
                !f.fault_active && !f.safe_mode,
                "false alarm at {}",
                f.frame
            );
            assert_eq!(f.slot, ANALOG_SLOT);
        }
        // The first blind frame's BLIND_LL reading lands on the bus one
        // frame later: detection by frame 7, never before the burst.
        let first_detect = reports
            .iter()
            .position(|f| f.fault_active)
            .expect("blind burst detected");
        assert!(
            (6..=7).contains(&first_detect),
            "detected at {first_detect}"
        );
        // While safe mode governs: forced digital + ceiling clamp.
        let governed: Vec<&FrameReport> = reports.iter().filter(|f| f.safe_mode).collect();
        assert!(governed.len() >= 2, "safe mode never engaged");
        for f in &governed {
            assert_eq!(f.slot, DIGITAL_SLOT, "frame {} not forced digital", f.frame);
            assert_eq!(f.noise_scale, ceiling, "frame {} not clamped", f.frame);
        }
        // Recovery: honest frames resume, safe mode exits and re-arms.
        assert!(!pipeline.safe_mode_active(), "safe mode never exited");
        assert!(!pipeline.fault_alarmed(), "detector never re-armed");
        assert_eq!(pipeline.safe_mode_entries(), 1);
        let last = reports.last().unwrap();
        assert!(!last.safe_mode);
        assert_eq!(last.slot, ANALOG_SLOT, "gate did not resume after recovery");
    }

    #[test]
    fn forked_sessions_get_fresh_fault_state() {
        let ds = small_dataset();
        let config = small_config(GateConfig::gated(DIGITAL_GMM, CIM_HMGM));
        let prototype = LocalizationPipeline::build(&ds, config)
            .unwrap()
            .with_safe_mode(test_safe_mode_config())
            .unwrap();
        let fork = prototype.fork_session(99).unwrap();
        assert_eq!(
            fork.safe_mode_config(),
            prototype.safe_mode_config(),
            "fork keeps the tuning"
        );
        assert!(!fork.safe_mode_active());
        assert_eq!(fork.safe_mode_entries(), 0);
    }

    #[test]
    fn closed_loop_without_vo_stage_is_rejected() {
        let ds = small_dataset();
        let mut pipeline = LocalizationPipeline::build(
            &ds,
            small_config(GateConfig::gated(DIGITAL_GMM, CIM_HMGM)),
        )
        .unwrap()
        .with_control(ControlSource::VisualOdometry);
        assert_eq!(pipeline.control_source(), ControlSource::VisualOdometry);
        let err = pipeline.run(&ds).unwrap_err();
        assert!(err.to_string().contains("VO stage"), "{err}");
    }

    #[test]
    fn closed_loop_runs_on_vo_controls_with_bounded_noise_scale() {
        use crate::vo::AdaptiveMcPolicy;
        let ds = small_dataset();
        let stage = vo_stage_for(&ds, AdaptiveMcPolicy::fixed(8).unwrap(), (4, 3));
        let inflation = NoiseInflation::new(5.0, 1.0, 3.5).unwrap();
        let run = LocalizationPipeline::build(
            &ds,
            small_config(GateConfig::gated(DIGITAL_GMM, CIM_HMGM)),
        )
        .unwrap()
        .with_vo(stage)
        .with_control(ControlSource::VisualOdometry)
        .with_noise_inflation(inflation)
        .unwrap()
        .run(&ds)
        .unwrap();
        assert_eq!(run.frames.len(), 9);
        for f in &run.frames {
            assert_eq!(f.control_source, ControlSource::VisualOdometry);
            // The applied noise scale is the bounded inflation of this
            // frame's fresh VO variance.
            let vo = f.vo.expect("stage attached");
            assert_eq!(f.noise_scale, inflation.scale(Some(vo.variance)));
            assert!((1.0..=3.5).contains(&f.noise_scale));
            assert!(f.summary.error.is_finite());
        }
        assert!(run.mean_noise_scale() >= 1.0 && run.mean_noise_scale() <= 3.5);
        // The VO deltas are real relative poses scored against truth.
        let ctrl_err = run.mean_control_error().expect("vo stage attached");
        assert!(ctrl_err.is_finite() && ctrl_err >= 0.0);
        // The CSV log records the closed-loop columns.
        let text = run.to_csv().to_string();
        let row1: Vec<&str> = text.lines().nth(1).unwrap().split(',').collect();
        let col = |name: &str| {
            PipelineRun::CSV_HEADER
                .iter()
                .position(|c| *c == name)
                .unwrap()
        };
        assert_eq!(row1[col("control_source")], "visual-odometry");
        assert!(row1[col("noise_scale")].parse::<f64>().unwrap() >= 1.0);
    }

    #[test]
    fn csv_sanitizes_non_finite_values_and_round_trips() {
        // A synthetic run with deliberately poisoned floats: the CSV
        // must render them as empty cells (never `NaN`/`inf` tokens),
        // keep finite values losslessly round-trippable, and keep the
        // locked header.
        let frame = FrameReport {
            frame: 0,
            slot: 0,
            signals: UncertaintySignals {
                spread: 0.125,
                ess_fraction: f64::NAN,
                innovation: Some(f64::NEG_INFINITY),
                vo_variance: Some(f64::INFINITY),
            },
            control_source: ControlSource::VisualOdometry,
            noise_scale: 2.5,
            summary: StepSummary {
                estimate: Pose::IDENTITY,
                error: f64::INFINITY,
                spread: 0.25,
                ess: 100.0,
            },
            nees: f64::NAN,
            fault_active: true,
            safe_mode: false,
            truth: Pose::IDENTITY,
            evaluations: 10,
            map_energy_pj: f64::NAN,
            vo: Some(VoFrameReport {
                iterations: 8,
                variance: f64::NAN,
                delta: Pose::IDENTITY,
                energy_pj: 3.0,
            }),
        };
        let run = PipelineRun {
            backends: vec!["digital-gmm".into()],
            gate: "test".into(),
            vo_policy: None,
            frames: vec![frame],
            stats: vec![BackendStats::default()],
        };
        let text = run.to_csv().to_string();
        let mut lines = text.lines();
        assert_eq!(lines.next().unwrap(), PipelineRun::CSV_HEADER.join(","));
        let row: Vec<&str> = lines.next().unwrap().split(',').collect();
        assert_eq!(row.len(), PipelineRun::CSV_HEADER.len());
        let col = |name: &str| {
            PipelineRun::CSV_HEADER
                .iter()
                .position(|c| *c == name)
                .unwrap()
        };
        // Non-finite floats → empty cells, wherever they appear.
        for poisoned in [
            "ess_fraction",
            "innovation",
            "bus_vo_variance",
            "error_m",
            "map_energy_pj",
            "vo_variance",
            "total_energy_pj",
            "nees",
        ] {
            assert_eq!(row[col(poisoned)], "", "{poisoned} leaked a token");
        }
        // The robustness booleans render as 0/1.
        assert_eq!(row[col("fault_active")], "1");
        assert_eq!(row[col("safe_mode")], "0");
        // No NaN/inf token anywhere in the document.
        assert!(!text.contains("NaN") && !text.contains("inf"), "{text}");
        // Finite values round-trip exactly through the shortest format.
        assert_eq!(row[col("spread")].parse::<f64>().unwrap(), 0.125);
        assert_eq!(row[col("noise_scale")].parse::<f64>().unwrap(), 2.5);
        assert_eq!(row[col("post_spread")].parse::<f64>().unwrap(), 0.25);
        assert_eq!(row[col("vo_energy_pj")].parse::<f64>().unwrap(), 3.0);
        assert_eq!(row[col("mc_iterations")].parse::<usize>().unwrap(), 8);
        assert_eq!(row[col("control_source")], "visual-odometry");
    }

    #[test]
    fn pipeline_is_send() {
        // Whole sessions move across fleet worker threads.
        fn assert_send<T: Send>() {}
        assert_send::<LocalizationPipeline>();
        assert_send::<PendingFrame>();
    }

    #[test]
    fn split_frame_path_matches_monolithic_step() {
        // begin_frame → external evaluation → finish_frame must be
        // bit-identical to step(), frame by frame, on a gated
        // digital+analog pipeline (the serving fast path).
        let ds = small_dataset();
        let config = small_config(GateConfig::gated(DIGITAL_GMM, CIM_HMGM).with_hysteresis(
            HysteresisConfig {
                analog_enter: 0.12,
                digital_enter: 0.2,
                dwell: 2,
                start: DIGITAL_SLOT,
            },
        ));
        let mut mono = LocalizationPipeline::build(&ds, config.clone()).unwrap();
        let mut split = LocalizationPipeline::build(&ds, config).unwrap();
        let controls = ds.control_deltas();
        let mut lls = Vec::new();
        let mut served_analog = false;
        for (t, control) in controls.iter().enumerate() {
            let depth = &ds.frames[t + 1].depth;
            let truth = ds.frames[t + 1].pose;
            let expected = mono.step(control, depth, truth).unwrap();
            let pending = split.begin_frame(control, depth).unwrap();
            let slot = pending.slot();
            served_analog |= slot == ANALOG_SLOT;
            let batch = split.staged_batch().clone();
            lls.resize(batch.len(), 0.0);
            split
                .backend_mut(slot)
                .log_likelihood_into(&batch, &mut lls);
            let report = split.finish_frame(pending, &lls, truth).unwrap();
            assert_eq!(report, expected, "frame {t} diverged");
        }
        assert!(served_analog, "gate never exercised the analog slot");
    }

    #[test]
    fn fork_session_with_master_seed_matches_fresh_build() {
        // The fleet determinism anchor: fork_session(config.seed) on a
        // pristine pipeline behaves exactly like a fresh build.
        let ds = small_dataset();
        let config = small_config(GateConfig::gated(DIGITAL_GMM, CIM_HMGM));
        let prototype = LocalizationPipeline::build(&ds, config.clone()).unwrap();
        let mut forked = prototype.fork_session(config.seed).unwrap();
        let mut fresh = LocalizationPipeline::build(&ds, config.clone()).unwrap();
        let run_forked = forked.run(&ds).unwrap();
        let run_fresh = fresh.run(&ds).unwrap();
        assert_eq!(run_forked.frames, run_fresh.frames);
        assert_eq!(run_forked.stats, run_fresh.stats);
        // Distinct seeds draw distinct clouds (independent agents).
        let mut other = prototype.fork_session(config.seed ^ 0xdead_beef).unwrap();
        let run_other = other.run(&ds).unwrap();
        assert_ne!(
            run_other.frames.last().unwrap().summary.estimate,
            run_fresh.frames.last().unwrap().summary.estimate
        );
    }

    #[test]
    fn fork_session_rejects_stepped_pipelines() {
        let ds = small_dataset();
        let config = small_config(GateConfig::default());
        let mut pipeline = LocalizationPipeline::build(&ds, config.clone()).unwrap();
        assert!(pipeline.fork_session(1).is_ok());
        let controls = ds.control_deltas();
        pipeline
            .step(&controls[0], &ds.frames[1].depth, ds.frames[1].pose)
            .unwrap();
        let err = pipeline.fork_session(1).unwrap_err().to_string();
        assert!(err.contains("pristine"), "{err}");
    }
}
