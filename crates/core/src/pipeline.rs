//! The uncertainty-gated streaming localization pipeline.
//!
//! [`crate::localization::CimLocalizer`] historically bound one map
//! backend at build time and ran it for the whole trajectory. The paper's
//! core argument cuts the other way: particle-spread uncertainty should
//! *drive* the compute substrate. When the cloud is wide (lost, startup,
//! kidnapped), spend energy on the accurate digital datapath; once it has
//! collapsed, the cheap analog CIM array holds the track at a fraction of
//! the energy — the wake-up/fallback pattern of the memristor front-end
//! literature.
//!
//! This module is that redesign:
//!
//! - [`LocalizationPipeline`] — owns **multiple** live backends built by
//!   name from the [`BackendRegistry`] and streams depth frames through a
//!   per-frame predict/gate/weigh/report loop,
//! - [`GatePolicy`] — the arbitration strategy (uncertainty metric →
//!   backend slot). [`HysteresisGate`] is the default co-design: spread
//!   enter/exit thresholds plus a dwell count so the gate never thrashes;
//!   [`AlwaysBackend`] pins a slot and provides the always-digital /
//!   always-analog baselines,
//! - [`FrameReport`] / [`PipelineRun`] — per-frame records of the chosen
//!   slot, the gate's uncertainty input, pose error and the Fig. 2(i)-style
//!   map-evaluation energy priced through `navicim-energy`, so a run shows
//!   the analog-mode energy savings directly.
//!
//! `CimLocalizer` is now a thin wrapper over a single-backend pipeline, so
//! the monolithic API (and its bit-exact behavior) survives unchanged.

use crate::localization::{LocalizerConfig, ScanScratch, ScanSensor, StepSummary};
use crate::registry::{BackendRegistry, BackendStats, MapBackend, MapFitContext};
use crate::reportfmt::{fmt_pct, Table};
use crate::{CoreError, Result};
use navicim_energy::analog::AnalogCimProfile;
use navicim_energy::digital::DigitalProfile;
use navicim_filter::estimate::{mean_pose, position_spread};
use navicim_filter::filter::ParticleFilter;
use navicim_math::geom::Pose;
use navicim_math::rng::Pcg32;
use navicim_scene::camera::{DepthCamera, DepthImage};
use navicim_scene::dataset::LocalizationDataset;
use std::fmt;

/// Conventional slot of the accurate digital reference backend.
pub const DIGITAL_SLOT: usize = 0;
/// Conventional slot of the cheap analog backend.
pub const ANALOG_SLOT: usize = 1;

/// Everything a gate sees before a frame is weighed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateContext {
    /// 0-based index of the upcoming frame.
    pub frame: usize,
    /// Particle-cloud positional spread (1σ radius, metres) *before* the
    /// motion prediction — the uncertainty signal.
    pub spread: f64,
    /// Effective sample size of the current weights.
    pub ess: f64,
    /// Slot that served the previous frame (the gate's start slot on
    /// frame 0).
    pub current: usize,
    /// Number of live backend slots.
    pub num_backends: usize,
}

/// Per-frame backend arbitration: an uncertainty metric in, a backend
/// slot out.
///
/// Policies are stateful (`&mut self`) so hysteresis and dwell logic can
/// live inside them; [`GatePolicy::reset`] returns a policy to its
/// initial state for a fresh run.
pub trait GatePolicy {
    /// Policy name for reports.
    fn name(&self) -> &str;

    /// Chooses the backend slot for the upcoming frame.
    fn select(&mut self, ctx: &GateContext) -> usize;

    /// Resets internal state (dwell counters, switch counts).
    fn reset(&mut self) {}
}

/// The trivial policy: every frame on one pinned slot. Provides the
/// always-digital / always-analog baselines the gated runs are measured
/// against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AlwaysBackend {
    slot: usize,
    name: String,
}

impl AlwaysBackend {
    /// Pins all frames to `slot`.
    pub fn new(slot: usize) -> Self {
        Self {
            slot,
            name: format!("always-slot{slot}"),
        }
    }

    /// The always-digital baseline ([`DIGITAL_SLOT`]).
    pub fn digital() -> Self {
        Self {
            slot: DIGITAL_SLOT,
            name: "always-digital".into(),
        }
    }

    /// The always-analog baseline ([`ANALOG_SLOT`]).
    pub fn analog() -> Self {
        Self {
            slot: ANALOG_SLOT,
            name: "always-analog".into(),
        }
    }

    /// The pinned slot.
    pub fn slot(&self) -> usize {
        self.slot
    }
}

impl GatePolicy for AlwaysBackend {
    fn name(&self) -> &str {
        &self.name
    }

    fn select(&mut self, _ctx: &GateContext) -> usize {
        self.slot
    }
}

/// Thresholds of the default [`HysteresisGate`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HysteresisConfig {
    /// Spread at or below which frames go to the cheap analog slot (the
    /// cloud has collapsed; the approximate path can hold the track).
    pub analog_enter: f64,
    /// Spread at or above which the gate wakes the accurate digital slot
    /// (uncertainty is growing; pay for precision). Must exceed
    /// [`Self::analog_enter`]; the band between the two is the
    /// hysteresis dead zone where the gate keeps its current slot.
    pub digital_enter: f64,
    /// Minimum number of frames between switches (≥ 1). A switch locks
    /// the gate for `dwell` frames, so backend churn is bounded even on
    /// noisy spread signals.
    pub dwell: usize,
    /// Slot served on frame 0 (digital by default: the cloud starts
    /// wide).
    pub start: usize,
}

impl Default for HysteresisConfig {
    fn default() -> Self {
        Self {
            analog_enter: 0.10,
            digital_enter: 0.20,
            dwell: 3,
            start: DIGITAL_SLOT,
        }
    }
}

/// The default gate: particle-spread thresholds with hysteresis and a
/// dwell count.
///
/// - spread ≤ `analog_enter` → the cheap analog slot,
/// - spread ≥ `digital_enter` → the accurate digital slot,
/// - in between → keep the current slot (dead zone),
/// - after any switch the gate dwells for `dwell` frames regardless of
///   the signal, so it can never switch more than once per dwell window.
#[derive(Debug, Clone, PartialEq)]
pub struct HysteresisGate {
    config: HysteresisConfig,
    current: usize,
    since_switch: usize,
    switches: u64,
    started: bool,
}

impl HysteresisGate {
    /// Validates the thresholds and builds the gate.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] unless
    /// `0 < analog_enter < digital_enter` (both finite), `dwell ≥ 1` and
    /// the start slot is digital or analog.
    pub fn new(config: HysteresisConfig) -> Result<Self> {
        if !(config.analog_enter > 0.0)
            || !(config.digital_enter > config.analog_enter)
            || !config.digital_enter.is_finite()
        {
            return Err(CoreError::InvalidArgument(format!(
                "hysteresis thresholds must satisfy 0 < analog_enter < digital_enter \
                 (got {} / {})",
                config.analog_enter, config.digital_enter
            )));
        }
        if config.dwell == 0 {
            return Err(CoreError::InvalidArgument(
                "hysteresis dwell must be at least 1 frame".into(),
            ));
        }
        if config.start > ANALOG_SLOT {
            return Err(CoreError::InvalidArgument(format!(
                "hysteresis start slot {} is neither digital (0) nor analog (1)",
                config.start
            )));
        }
        Ok(Self {
            config,
            current: config.start,
            since_switch: 0,
            switches: 0,
            started: false,
        })
    }

    /// The gate's thresholds.
    pub fn config(&self) -> &HysteresisConfig {
        &self.config
    }

    /// Number of backend switches performed since construction/reset.
    pub fn switches(&self) -> u64 {
        self.switches
    }
}

impl GatePolicy for HysteresisGate {
    fn name(&self) -> &str {
        "hysteresis"
    }

    fn select(&mut self, ctx: &GateContext) -> usize {
        if !self.started {
            self.started = true;
            self.current = self.config.start;
            self.since_switch = 0;
            return self.current;
        }
        self.since_switch = self.since_switch.saturating_add(1);
        if self.since_switch >= self.config.dwell {
            let target = if ctx.spread <= self.config.analog_enter {
                ANALOG_SLOT
            } else if ctx.spread >= self.config.digital_enter {
                DIGITAL_SLOT
            } else {
                self.current
            };
            if target != self.current {
                self.current = target;
                self.since_switch = 0;
                self.switches += 1;
            }
        }
        self.current
    }

    fn reset(&mut self) {
        self.current = self.config.start;
        self.since_switch = 0;
        self.switches = 0;
        self.started = false;
    }
}

/// Built-in gate policies, selected through [`GateConfig`] the same way
/// backends are selected by name — no serde, plain builder calls.
#[derive(Debug, Clone, PartialEq)]
pub enum GateKind {
    /// Pin every frame to one slot.
    Always(usize),
    /// Spread-thresholded digital↔analog arbitration with hysteresis.
    Hysteresis(HysteresisConfig),
}

/// The `gate` section of [`LocalizerConfig`]: which backend slots the
/// pipeline instantiates and which built-in policy arbitrates them.
///
/// With an empty slot list (the default) the pipeline serves
/// [`LocalizerConfig::backend`] alone and the policy must be
/// `Always(0)` — exactly the monolithic behavior. Slot order is the
/// contract: slot [`DIGITAL_SLOT`] is the accurate reference, slot
/// [`ANALOG_SLOT`] the cheap alternate.
///
/// ```
/// use navicim_core::pipeline::GateConfig;
/// use navicim_core::registry::{CIM_HMGM, DIGITAL_GMM};
///
/// // Uncertainty-gated digital↔analog arbitration with the default
/// // thresholds:
/// let gate = GateConfig::gated(DIGITAL_GMM, CIM_HMGM);
/// assert_eq!(gate.backends.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GateConfig {
    /// Backend registry names, by slot. Empty = single-backend mode.
    pub backends: Vec<String>,
    /// The arbitration policy.
    pub policy: GateKind,
}

impl Default for GateConfig {
    fn default() -> Self {
        Self {
            backends: Vec::new(),
            policy: GateKind::Always(DIGITAL_SLOT),
        }
    }
}

impl GateConfig {
    /// Single-backend mode (the default): serve
    /// [`LocalizerConfig::backend`] on every frame.
    pub fn single() -> Self {
        Self::default()
    }

    /// Multi-backend slots with every frame pinned to `slot` — the
    /// baseline configurations of a gating ablation.
    pub fn always<S: Into<String>>(backends: Vec<S>, slot: usize) -> Self {
        Self {
            backends: backends.into_iter().map(Into::into).collect(),
            policy: GateKind::Always(slot),
        }
    }

    /// Hysteresis-gated `digital` ↔ `analog` arbitration with default
    /// thresholds; tune them with [`Self::with_hysteresis`].
    pub fn gated(digital: impl Into<String>, analog: impl Into<String>) -> Self {
        Self {
            backends: vec![digital.into(), analog.into()],
            policy: GateKind::Hysteresis(HysteresisConfig::default()),
        }
    }

    /// Replaces the hysteresis thresholds (builder style).
    pub fn with_hysteresis(mut self, config: HysteresisConfig) -> Self {
        self.policy = GateKind::Hysteresis(config);
        self
    }

    /// Registry names the pipeline will instantiate, resolving the
    /// empty-slot default against the localizer's single backend name.
    pub fn slot_names<'a>(&'a self, fallback: &'a str) -> Vec<&'a str> {
        if self.backends.is_empty() {
            vec![fallback]
        } else {
            self.backends.iter().map(String::as_str).collect()
        }
    }

    /// Builds the configured policy, validating it against the number of
    /// live slots.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] when the pinned slot is out
    /// of range or a hysteresis gate is configured without both a digital
    /// and an analog slot.
    pub fn build_policy(&self, num_slots: usize) -> Result<Box<dyn GatePolicy>> {
        match &self.policy {
            GateKind::Always(slot) => {
                if *slot >= num_slots {
                    return Err(CoreError::InvalidArgument(format!(
                        "gate pins slot {slot} but only {num_slots} backend(s) are configured"
                    )));
                }
                Ok(Box::new(match (*slot, num_slots) {
                    // Single-backend mode keeps the generic label; in
                    // multi-slot mode the conventional slots get their
                    // baseline names.
                    (_, 1) => AlwaysBackend::new(*slot),
                    (DIGITAL_SLOT, _) => AlwaysBackend::digital(),
                    (ANALOG_SLOT, _) => AlwaysBackend::analog(),
                    _ => AlwaysBackend::new(*slot),
                }))
            }
            GateKind::Hysteresis(config) => {
                if num_slots < 2 {
                    return Err(CoreError::InvalidArgument(
                        "hysteresis gating requires a digital and an analog backend slot".into(),
                    ));
                }
                Ok(Box::new(HysteresisGate::new(*config)?))
            }
        }
    }
}

/// Fig. 2(i)-style pricing of per-frame map evaluations: analog frames
/// cost measured array current × DAC/ADC conversions, digital frames the
/// per-component GMM datapath energy.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyPricing {
    /// Analog CIM cost profile.
    pub analog: AnalogCimProfile,
    /// Digital datapath cost profile.
    pub digital: DigitalProfile,
    /// Digital operand width in bits.
    pub digital_bits: u32,
}

impl Default for EnergyPricing {
    fn default() -> Self {
        Self {
            analog: AnalogCimProfile::paper_45nm(),
            digital: DigitalProfile::paper_calibrated_gmm_asic(),
            digital_bits: 8,
        }
    }
}

impl EnergyPricing {
    /// Energy of one frame's map evaluations in pJ, from that frame's
    /// [`BackendStats`] delta. Analog deltas (converter activity present)
    /// are priced per evaluation at the frame's measured average array
    /// current; digital deltas at the per-point mixture datapath cost.
    ///
    /// # Errors
    ///
    /// Propagates profile validation (zero widths, negative currents).
    pub fn frame_pj(
        &self,
        delta: &BackendStats,
        components: usize,
        dim: usize,
        dac_bits: u32,
        adc_bits: u32,
    ) -> Result<f64> {
        if delta.evaluations == 0 {
            return Ok(0.0);
        }
        let per_eval = if delta.is_analog() {
            self.analog
                .likelihood_eval_pj(delta.avg_current(), dim, dac_bits, adc_bits)?
        } else {
            self.digital
                .gmm_point_pj(dim, components.max(1), self.digital_bits)?
        };
        Ok(per_eval * delta.evaluations as f64)
    }
}

/// Everything one streamed frame produced: the gate's decision and
/// input, the filter summary, and the frame's evaluation/energy
/// accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameReport {
    /// 0-based frame index (the first tracked frame is dataset frame 1).
    pub frame: usize,
    /// Backend slot the gate chose for this frame.
    pub slot: usize,
    /// Gate input: the particle spread *before* this frame's prediction.
    pub gate_spread: f64,
    /// Filter summary after the update (estimate, error, post spread,
    /// ESS).
    pub summary: StepSummary,
    /// Ground-truth pose of this frame.
    pub truth: Pose,
    /// Map point evaluations served this frame.
    pub evaluations: u64,
    /// Map-evaluation energy this frame, in pJ.
    pub energy_pj: f64,
}

/// Outcome of a gated pipeline run.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineRun {
    /// Backend names, by slot.
    pub backends: Vec<String>,
    /// Gate policy name.
    pub gate: String,
    /// Per-frame reports, in stream order.
    pub frames: Vec<FrameReport>,
    /// Cumulative per-slot backend stats at the end of the run.
    pub stats: Vec<BackendStats>,
}

impl PipelineRun {
    /// Mean translation error over the final quarter of the run.
    pub fn steady_state_error(&self) -> f64 {
        let n = self.frames.len();
        if n == 0 {
            return 0.0;
        }
        let tail = &self.frames[n - (n / 4).max(1)..];
        tail.iter().map(|f| f.summary.error).sum::<f64>() / tail.len() as f64
    }

    /// Number of frames served by `slot`.
    pub fn frames_on(&self, slot: usize) -> usize {
        self.frames.iter().filter(|f| f.slot == slot).count()
    }

    /// Fraction of frames served by `slot` (0 for an empty run).
    pub fn slot_fraction(&self, slot: usize) -> f64 {
        if self.frames.is_empty() {
            0.0
        } else {
            self.frames_on(slot) as f64 / self.frames.len() as f64
        }
    }

    /// Fraction of frames served by an analog backend (identified by its
    /// converter counters).
    pub fn analog_fraction(&self) -> f64 {
        if self.frames.is_empty() {
            return 0.0;
        }
        let analog = self
            .frames
            .iter()
            .filter(|f| {
                self.stats
                    .get(f.slot)
                    .map(BackendStats::is_analog)
                    .unwrap_or(false)
            })
            .count();
        analog as f64 / self.frames.len() as f64
    }

    /// Total map-evaluation energy of the run, in pJ.
    pub fn total_energy_pj(&self) -> f64 {
        self.frames.iter().map(|f| f.energy_pj).sum()
    }

    /// Total map point evaluations of the run.
    pub fn total_evaluations(&self) -> u64 {
        self.frames.iter().map(|f| f.evaluations).sum()
    }

    /// All per-slot stats merged into one total.
    pub fn merged_stats(&self) -> BackendStats {
        self.stats
            .iter()
            .fold(BackendStats::default(), |acc, s| acc.merged(s))
    }

    /// Number of frames on which the served slot differs from the
    /// previous frame's.
    pub fn switches(&self) -> usize {
        self.frames
            .windows(2)
            .filter(|w| w[0].slot != w[1].slot)
            .count()
    }

    /// Markdown summary: one row per slot with frame share, evaluations
    /// and energy.
    pub fn summary_table(&self) -> Table {
        let mut table = Table::new(vec![
            "slot",
            "backend",
            "frames",
            "share",
            "point evals",
            "energy (pJ)",
        ]);
        for (slot, name) in self.backends.iter().enumerate() {
            let frames = self.frames_on(slot);
            let evals: u64 = self
                .frames
                .iter()
                .filter(|f| f.slot == slot)
                .map(|f| f.evaluations)
                .sum();
            let energy: f64 = self
                .frames
                .iter()
                .filter(|f| f.slot == slot)
                .map(|f| f.energy_pj)
                .sum();
            table.row(vec![
                format!("{slot}"),
                name.clone(),
                format!("{frames}"),
                fmt_pct(self.slot_fraction(slot)),
                format!("{evals}"),
                format!("{energy:.1}"),
            ]);
        }
        table
    }
}

/// The streaming localization pipeline: multiple live backends, a gate
/// policy arbitrating them per frame, and per-frame energy accounting.
pub struct LocalizationPipeline {
    backends: Vec<Box<dyn MapBackend>>,
    names: Vec<String>,
    gate: Box<dyn GatePolicy>,
    camera: DepthCamera,
    pf: ParticleFilter<Pose>,
    config: LocalizerConfig,
    pricing: EnergyPricing,
    rng: Pcg32,
    scratch: ScanScratch,
    prev_stats: Vec<BackendStats>,
    frame: usize,
    current: usize,
}

impl fmt::Debug for LocalizationPipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LocalizationPipeline")
            .field("backends", &self.names)
            .field("gate", &self.gate.name())
            .field("particles", &self.pf.particles().len())
            .field("frame", &self.frame)
            .finish_non_exhaustive()
    }
}

impl LocalizationPipeline {
    /// Builds the pipeline against the default registry.
    ///
    /// # Errors
    ///
    /// See [`Self::build_with_registry`].
    pub fn build(dataset: &LocalizationDataset, config: LocalizerConfig) -> Result<Self> {
        Self::build_with_registry(dataset, config, &BackendRegistry::with_defaults())
    }

    /// Builds every backend slot named by `config.gate` (or the single
    /// `config.backend` when the gate section is empty) from `registry`,
    /// constructs the gate policy, and initializes the particle cloud
    /// around the first frame's pose.
    ///
    /// The particle-init RNG stream is independent of how many backends
    /// are built, so a single-backend pipeline is bit-identical to the
    /// pre-pipeline `CimLocalizer`.
    ///
    /// # Errors
    ///
    /// Rejects empty datasets, unknown backend names and inconsistent
    /// gate configurations; propagates fit/compile errors.
    pub fn build_with_registry(
        dataset: &LocalizationDataset,
        config: LocalizerConfig,
        registry: &BackendRegistry,
    ) -> Result<Self> {
        let slot_names: Vec<String> = config
            .gate
            .slot_names(&config.backend)
            .into_iter()
            .map(str::to_string)
            .collect();
        let gate = config.gate.build_policy(slot_names.len())?;
        Self::with_gate(dataset, config, registry, &slot_names, gate)
    }

    /// The fully general entry point: explicit slot names and a
    /// caller-supplied [`GatePolicy`] — the hook for custom arbitration
    /// strategies (learned gates, duty-cycle schedules) without touching
    /// this crate.
    ///
    /// # Errors
    ///
    /// Rejects empty datasets and slot lists; propagates registry and
    /// fit errors.
    pub fn with_gate(
        dataset: &LocalizationDataset,
        config: LocalizerConfig,
        registry: &BackendRegistry,
        slot_names: &[String],
        gate: Box<dyn GatePolicy>,
    ) -> Result<Self> {
        if dataset.frames.is_empty() {
            return Err(CoreError::InvalidArgument("dataset has no frames".into()));
        }
        if slot_names.is_empty() {
            return Err(CoreError::InvalidArgument(
                "pipeline requires at least one backend slot".into(),
            ));
        }
        let mut rng = Pcg32::seed_from_u64(config.seed);
        let points = dataset.map_points_as_rows();
        let ctx = MapFitContext {
            points: &points,
            components: config.components,
            fit: &config.fit,
            cim: &config.cim,
            // Factories seed their own fit RNGs from the master seed; the
            // filter RNG below advances independently, so neither backend
            // choice nor slot count perturbs the particle stream.
            seed: config.seed,
        };
        let mut backends = Vec::with_capacity(slot_names.len());
        for name in slot_names {
            backends.push(registry.build(name, &ctx)?);
        }
        let names: Vec<String> = backends.iter().map(|b| b.name().to_string()).collect();

        let prior = dataset.frames[0].pose;
        let states: Vec<Pose> = (0..config.num_particles)
            .map(|_| {
                crate::localization::perturb_pose(
                    prior,
                    config.init_spread,
                    config.init_yaw_spread,
                    &mut rng,
                )
            })
            .collect();
        let pf = ParticleFilter::new(
            navicim_filter::particle::ParticleSet::from_states(states)
                .map_err(|e| CoreError::InvalidArgument(e.to_string()))?,
            config.filter,
        );
        let prev_stats = backends.iter().map(|b| b.stats()).collect();
        Ok(Self {
            backends,
            names,
            gate,
            camera: dataset.camera,
            pf,
            config,
            pricing: EnergyPricing::default(),
            rng,
            scratch: ScanScratch::default(),
            prev_stats,
            frame: 0,
            current: 0,
        })
    }

    /// Replaces the energy pricing profiles (builder style).
    pub fn with_pricing(mut self, pricing: EnergyPricing) -> Self {
        self.pricing = pricing;
        self
    }

    /// Backend names, by slot.
    pub fn backend_names(&self) -> &[String] {
        &self.names
    }

    /// The backend serving `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn backend(&self, slot: usize) -> &dyn MapBackend {
        self.backends[slot].as_ref()
    }

    /// Number of backend slots.
    pub fn num_backends(&self) -> usize {
        self.backends.len()
    }

    /// The gate policy name.
    pub fn gate_name(&self) -> &str {
        self.gate.name()
    }

    /// Current pose estimate (weighted mean of the cloud).
    pub fn estimate(&self) -> Pose {
        mean_pose(self.pf.particles())
    }

    /// Current particle spread — the signal the gate will see next frame.
    pub fn spread(&self) -> f64 {
        self.pf.spread(|p| p.translation.to_array())
    }

    /// Streams one frame: reads the cloud spread, lets the gate pick a
    /// slot, runs the predict/weigh/resample step on that backend and
    /// prices the frame's evaluations.
    ///
    /// # Errors
    ///
    /// Propagates filter degeneracy and pricing errors; rejects gates
    /// that select an out-of-range slot.
    pub fn step(&mut self, control: &Pose, depth: &DepthImage, truth: Pose) -> Result<FrameReport> {
        let gate_spread = self.pf.spread(|p| p.translation.to_array());
        let ctx = GateContext {
            frame: self.frame,
            spread: gate_spread,
            ess: self.pf.particles().ess(),
            current: self.current,
            num_backends: self.backends.len(),
        };
        let slot = self.gate.select(&ctx);
        if slot >= self.backends.len() {
            return Err(CoreError::InvalidArgument(format!(
                "gate '{}' selected slot {slot} but only {} backend(s) are live",
                self.gate.name(),
                self.backends.len()
            )));
        }
        let mut sensor = ScanSensor::new(
            self.backends[slot].as_mut(),
            &self.camera,
            self.config.pixel_stride,
            self.config.sharpness,
            self.config.weight_path,
            &mut self.scratch,
        );
        self.pf.step(
            control,
            depth,
            &self.config.motion,
            &mut sensor,
            &mut self.rng,
        )?;
        let estimate = mean_pose(self.pf.particles());
        let summary = StepSummary {
            estimate,
            error: estimate.translation_distance(truth),
            spread: position_spread(self.pf.particles()),
            ess: self.pf.particles().ess(),
        };
        let stats = self.backends[slot].stats();
        let delta = stats.delta_since(&self.prev_stats[slot]);
        self.prev_stats[slot] = stats;
        // The filter and the gate have both committed to this frame, so
        // advance the stream counters before anything else can fail —
        // a pricing error below must not leave `frame`/`current` out of
        // sync with the gate's internal state.
        let frame = self.frame;
        self.frame += 1;
        self.current = slot;
        let energy_pj = self.pricing.frame_pj(
            &delta,
            self.backends[slot].components(),
            self.backends[slot].dim(),
            self.config.cim.dac_bits,
            self.config.cim.adc_bits,
        )?;
        Ok(FrameReport {
            frame,
            slot,
            gate_spread,
            summary,
            truth,
            evaluations: delta.evaluations,
            energy_pj,
        })
    }

    /// Streams the whole dataset using ground-truth frame deltas as
    /// odometry (the motion model adds its own noise).
    ///
    /// # Errors
    ///
    /// Propagates step errors.
    pub fn run(&mut self, dataset: &LocalizationDataset) -> Result<PipelineRun> {
        let mut frames = Vec::with_capacity(dataset.frames.len().saturating_sub(1));
        for t in 1..dataset.frames.len() {
            let control = dataset.frames[t - 1].pose.delta_to(dataset.frames[t].pose);
            let truth = dataset.frames[t].pose;
            frames.push(self.step(&control, &dataset.frames[t].depth, truth)?);
        }
        Ok(PipelineRun {
            backends: self.names.clone(),
            gate: self.gate.name().to_string(),
            frames,
            stats: self.backends.iter().map(|b| b.stats()).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::localization::CimLocalizer;
    use crate::registry::{CIM_HMGM, DIGITAL_GMM};
    use navicim_scene::dataset::LocalizationConfig;

    fn small_dataset() -> LocalizationDataset {
        let config = LocalizationConfig {
            image_width: 24,
            image_height: 18,
            map_points: 600,
            frames: 10,
            ..LocalizationConfig::default()
        };
        LocalizationDataset::generate(&config, 7).unwrap()
    }

    fn small_config(gate: GateConfig) -> LocalizerConfig {
        LocalizerConfig {
            num_particles: 250,
            pixel_stride: 7,
            components: 10,
            gate,
            seed: 3,
            ..LocalizerConfig::default()
        }
    }

    fn ctx(frame: usize, spread: f64, current: usize) -> GateContext {
        GateContext {
            frame,
            spread,
            ess: 100.0,
            current,
            num_backends: 2,
        }
    }

    #[test]
    fn hysteresis_thresholds_and_dead_zone() {
        let mut gate = HysteresisGate::new(HysteresisConfig {
            analog_enter: 0.1,
            digital_enter: 0.2,
            dwell: 1,
            start: DIGITAL_SLOT,
        })
        .unwrap();
        // Frame 0: start slot regardless of signal.
        assert_eq!(gate.select(&ctx(0, 0.01, DIGITAL_SLOT)), DIGITAL_SLOT);
        // Collapsed spread: go analog.
        assert_eq!(gate.select(&ctx(1, 0.05, DIGITAL_SLOT)), ANALOG_SLOT);
        // Dead zone: keep the current slot.
        assert_eq!(gate.select(&ctx(2, 0.15, ANALOG_SLOT)), ANALOG_SLOT);
        // Spread grows past the digital threshold: wake the digital path.
        assert_eq!(gate.select(&ctx(3, 0.25, ANALOG_SLOT)), DIGITAL_SLOT);
        // Dead zone again: stay digital.
        assert_eq!(gate.select(&ctx(4, 0.15, DIGITAL_SLOT)), DIGITAL_SLOT);
        assert_eq!(gate.switches(), 2);
        gate.reset();
        assert_eq!(gate.switches(), 0);
        assert_eq!(gate.select(&ctx(0, 0.01, DIGITAL_SLOT)), DIGITAL_SLOT);
    }

    #[test]
    fn hysteresis_dwell_blocks_rapid_switching() {
        let mut gate = HysteresisGate::new(HysteresisConfig {
            analog_enter: 0.1,
            digital_enter: 0.2,
            dwell: 3,
            start: DIGITAL_SLOT,
        })
        .unwrap();
        // An oscillating signal that would thrash a dwell-free gate.
        let spreads = [0.05, 0.3, 0.05, 0.3, 0.05, 0.3, 0.05, 0.3, 0.05];
        let mut current = DIGITAL_SLOT;
        let mut last_switch: Option<usize> = None;
        for (frame, &s) in spreads.iter().enumerate() {
            let next = gate.select(&ctx(frame, s, current));
            if next != current {
                if let Some(prev) = last_switch {
                    assert!(
                        frame - prev >= 3,
                        "switched at {prev} and again at {frame} (dwell 3)"
                    );
                }
                last_switch = Some(frame);
            }
            current = next;
        }
        assert!(gate.switches() >= 1, "the gate did switch at least once");
    }

    #[test]
    fn hysteresis_validation() {
        let bad = |analog_enter, digital_enter, dwell| {
            HysteresisGate::new(HysteresisConfig {
                analog_enter,
                digital_enter,
                dwell,
                start: DIGITAL_SLOT,
            })
            .is_err()
        };
        assert!(bad(0.0, 0.2, 3)); // non-positive enter
        assert!(bad(0.2, 0.1, 3)); // inverted band
        assert!(bad(0.1, f64::INFINITY, 3)); // non-finite
        assert!(bad(0.1, 0.2, 0)); // zero dwell
        assert!(HysteresisGate::new(HysteresisConfig::default()).is_ok());
    }

    #[test]
    fn gate_config_validation() {
        // Pinned slot out of range.
        assert!(GateConfig::always(vec![DIGITAL_GMM], 1)
            .build_policy(1)
            .is_err());
        // Hysteresis needs two slots.
        let gated = GateConfig {
            backends: vec![DIGITAL_GMM.into()],
            policy: GateKind::Hysteresis(HysteresisConfig::default()),
        };
        assert!(gated.build_policy(1).is_err());
        assert!(GateConfig::gated(DIGITAL_GMM, CIM_HMGM)
            .build_policy(2)
            .is_ok());
        // The default single-backend config resolves to the fallback name.
        assert_eq!(GateConfig::default().slot_names("x"), vec!["x"]);
    }

    #[test]
    fn single_backend_pipeline_matches_cim_localizer() {
        // The wrapper invariant: a single-slot pipeline and the
        // monolithic localizer produce bit-identical runs.
        let ds = small_dataset();
        let run = LocalizationPipeline::build(&ds, small_config(GateConfig::default()))
            .unwrap()
            .run(&ds)
            .unwrap();
        let legacy = CimLocalizer::build(&ds, small_config(GateConfig::default()))
            .unwrap()
            .run(&ds)
            .unwrap();
        assert_eq!(run.frames.len(), legacy.errors.len());
        let errors: Vec<f64> = run.frames.iter().map(|f| f.summary.error).collect();
        assert_eq!(errors, legacy.errors);
        let spreads: Vec<f64> = run.frames.iter().map(|f| f.summary.spread).collect();
        assert_eq!(spreads, legacy.spreads);
        assert_eq!(run.merged_stats(), legacy.stats);
        assert_eq!(run.total_evaluations(), legacy.point_evaluations);
        assert_eq!(run.gate, "always-slot0");
    }

    #[test]
    fn gated_pipeline_uses_both_backends_and_prices_energy() {
        let ds = small_dataset();
        let config = small_config(GateConfig::gated(DIGITAL_GMM, CIM_HMGM).with_hysteresis(
            HysteresisConfig {
                analog_enter: 0.12,
                digital_enter: 0.2,
                dwell: 2,
                start: DIGITAL_SLOT,
            },
        ));
        let mut pipeline = LocalizationPipeline::build(&ds, config).unwrap();
        assert_eq!(pipeline.num_backends(), 2);
        assert_eq!(pipeline.gate_name(), "hysteresis");
        let run = pipeline.run(&ds).unwrap();
        assert_eq!(run.frames.len(), 9);
        // The cloud starts wide (digital) and collapses (analog).
        assert_eq!(run.frames[0].slot, DIGITAL_SLOT);
        assert!(run.frames_on(ANALOG_SLOT) > 0, "{:?}", run.frames);
        assert!(run.analog_fraction() > 0.0);
        // Every frame carries evaluations and positive energy.
        for f in &run.frames {
            assert!(f.evaluations > 0, "frame {} had no evaluations", f.frame);
            assert!(f.energy_pj > 0.0);
            assert!(f.gate_spread.is_finite());
        }
        // Slot stats separate digital from analog counters.
        assert!(!run.stats[DIGITAL_SLOT].is_analog());
        assert!(run.stats[ANALOG_SLOT].is_analog());
        // The summary table renders one row per slot.
        let table = run.summary_table();
        assert_eq!(table.len(), 2);
        assert!(table.to_string().contains(CIM_HMGM));
    }

    #[test]
    fn gated_runs_are_deterministic() {
        let ds = small_dataset();
        let config = || small_config(GateConfig::gated(DIGITAL_GMM, CIM_HMGM));
        let run1 = LocalizationPipeline::build(&ds, config())
            .unwrap()
            .run(&ds)
            .unwrap();
        let run2 = LocalizationPipeline::build(&ds, config())
            .unwrap()
            .run(&ds)
            .unwrap();
        assert_eq!(run1, run2);
    }

    #[test]
    fn always_analog_baseline_runs_on_the_analog_slot() {
        let ds = small_dataset();
        let config = small_config(GateConfig {
            backends: vec![DIGITAL_GMM.into(), CIM_HMGM.into()],
            policy: GateKind::Always(ANALOG_SLOT),
        });
        let run = LocalizationPipeline::build(&ds, config)
            .unwrap()
            .run(&ds)
            .unwrap();
        assert_eq!(run.frames_on(ANALOG_SLOT), run.frames.len());
        assert!((run.analog_fraction() - 1.0).abs() < 1e-12);
        assert_eq!(run.switches(), 0);
        // The digital slot was built but never served.
        assert_eq!(run.stats[DIGITAL_SLOT].evaluations, 0);
    }

    #[test]
    fn pricing_rejects_invalid_profiles_and_prices_zero_for_idle_frames() {
        let pricing = EnergyPricing::default();
        let idle = BackendStats::default();
        assert_eq!(pricing.frame_pj(&idle, 10, 3, 4, 4).unwrap(), 0.0);
        let digital = BackendStats {
            evaluations: 100,
            ..BackendStats::default()
        };
        let e = pricing.frame_pj(&digital, 16, 3, 4, 4).unwrap();
        assert!(e > 0.0);
        let bad = EnergyPricing {
            digital_bits: 0,
            ..EnergyPricing::default()
        };
        assert!(bad.frame_pj(&digital, 16, 3, 4, 4).is_err());
    }
}
