//! Markdown table rendering for the experiment binaries.

use std::fmt;

/// A simple markdown table.
///
/// ```
/// use navicim_core::reportfmt::Table;
/// let mut t = Table::new(vec!["k", "value"]);
/// t.row(vec!["a".into(), format!("{:.2}", 1.5)]);
/// assert!(t.to_string().contains("| a | 1.50 |"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (cells are padded/truncated to the header count).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        let mut cells = cells;
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "| {} |", self.headers.join(" | "))?;
        writeln!(
            f,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        )?;
        for row in &self.rows {
            writeln!(f, "| {} |", row.join(" | "))?;
        }
        Ok(())
    }
}

/// A minimal CSV document: a header plus data rows, with RFC-4180-style
/// quoting for cells containing commas, quotes or line breaks. This is
/// the machine-readable sibling of [`Table`] — the experiment binaries
/// render both so frame logs can feed offline analysis (and, eventually,
/// learned gate training) without a parser dependency.
///
/// ```
/// use navicim_core::reportfmt::Csv;
/// let mut c = Csv::new(vec!["frame", "note"]);
/// c.row(vec!["1".into(), "a,b".into()]);
/// assert_eq!(c.to_string(), "frame,note\n1,\"a,b\"\n");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csv {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Csv {
    /// Creates a document with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (cells are padded/truncated to the header count).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        let mut cells = cells;
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the document has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

fn csv_cell(f: &mut fmt::Formatter<'_>, cell: &str) -> fmt::Result {
    if cell.contains([',', '"', '\n', '\r']) {
        write!(f, "\"{}\"", cell.replace('"', "\"\""))
    } else {
        f.write_str(cell)
    }
}

impl fmt::Display for Csv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for line in std::iter::once(&self.headers).chain(&self.rows) {
            for (i, cell) in line.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                csv_cell(f, cell)?;
            }
            f.write_str("\n")?;
        }
        Ok(())
    }
}

/// Formats a fraction as a percentage with one decimal (`0.5` → `50.0%`).
pub fn fmt_pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Formats a float with engineering-style precision for tables.
pub fn fmt_sig(x: f64) -> String {
    if x == 0.0 {
        return "0".into();
    }
    let a = x.abs();
    if a >= 100.0 {
        format!("{x:.1}")
    } else if a >= 1.0 {
        format!("{x:.3}")
    } else if a >= 1e-3 {
        format!("{x:.5}")
    } else {
        format!("{x:.3e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_separator_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.to_string();
        assert!(s.starts_with("| a | b |\n|---|---|\n"));
        assert!(s.contains("| 1 | 2 |"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["x".into()]);
        assert!(t.to_string().contains("| x |  |  |"));
    }

    #[test]
    fn csv_renders_and_escapes() {
        let mut c = Csv::new(vec!["a", "b", "c"]);
        c.row(vec!["1".into(), "plain".into(), "x,y".into()]);
        c.row(vec!["2".into(), "say \"hi\"".into()]);
        let s = c.to_string();
        assert_eq!(s, "a,b,c\n1,plain,\"x,y\"\n2,\"say \"\"hi\"\"\",\n");
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        assert!(Csv::new(vec!["only"]).is_empty());
    }

    #[test]
    fn csv_quotes_newlines() {
        let mut c = Csv::new(vec!["v"]);
        c.row(vec!["line1\nline2".into()]);
        assert_eq!(c.to_string(), "v\n\"line1\nline2\"\n");
    }

    #[test]
    fn fmt_pct_renders_fractions() {
        assert_eq!(fmt_pct(0.5), "50.0%");
        assert_eq!(fmt_pct(0.0), "0.0%");
        assert_eq!(fmt_pct(1.0), "100.0%");
        assert_eq!(fmt_pct(0.666), "66.6%");
    }

    #[test]
    fn fmt_sig_ranges() {
        assert_eq!(fmt_sig(0.0), "0");
        assert_eq!(fmt_sig(123.456), "123.5");
        assert_eq!(fmt_sig(1.23456), "1.235");
        assert_eq!(fmt_sig(0.012345), "0.01235");
        assert!(fmt_sig(1.5e-7).contains('e'));
    }
}
