//! Markdown table rendering for the experiment binaries.

use std::fmt;

/// A simple markdown table.
///
/// ```
/// use navicim_core::reportfmt::Table;
/// let mut t = Table::new(vec!["k", "value"]);
/// t.row(vec!["a".into(), format!("{:.2}", 1.5)]);
/// assert!(t.to_string().contains("| a | 1.50 |"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (cells are padded/truncated to the header count).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        let mut cells = cells;
        cells.resize(self.headers.len(), String::new());
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "| {} |", self.headers.join(" | "))?;
        writeln!(
            f,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        )?;
        for row in &self.rows {
            writeln!(f, "| {} |", row.join(" | "))?;
        }
        Ok(())
    }
}

/// Formats a fraction as a percentage with one decimal (`0.5` → `50.0%`).
pub fn fmt_pct(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

/// Formats a float with engineering-style precision for tables.
pub fn fmt_sig(x: f64) -> String {
    if x == 0.0 {
        return "0".into();
    }
    let a = x.abs();
    if a >= 100.0 {
        format!("{x:.1}")
    } else if a >= 1.0 {
        format!("{x:.3}")
    } else if a >= 1e-3 {
        format!("{x:.5}")
    } else {
        format!("{x:.3e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_separator_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.to_string();
        assert!(s.starts_with("| a | b |\n|---|---|\n"));
        assert!(s.contains("| 1 | 2 |"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["x".into()]);
        assert!(t.to_string().contains("| x |  |  |"));
    }

    #[test]
    fn fmt_pct_renders_fractions() {
        assert_eq!(fmt_pct(0.5), "50.0%");
        assert_eq!(fmt_pct(0.0), "0.0%");
        assert_eq!(fmt_pct(1.0), "100.0%");
        assert_eq!(fmt_pct(0.666), "66.6%");
    }

    #[test]
    fn fmt_sig_ranges() {
        assert_eq!(fmt_sig(0.0), "0");
        assert_eq!(fmt_sig(123.456), "123.5");
        assert_eq!(fmt_sig(1.23456), "1.235");
        assert_eq!(fmt_sig(0.012345), "0.01235");
        assert!(fmt_sig(1.5e-7).contains('e'));
    }
}
