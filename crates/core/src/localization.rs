//! Pipeline A — CIM particle-filter drone localization (paper Section II).
//!
//! A [`CimLocalizer`] fits a map mixture to a scene's point cloud, then
//! tracks the camera through its depth frames with a particle filter whose
//! measurement model projects subsampled depth pixels into the world and
//! scores them against the map. The map backend is switchable:
//!
//! - [`BackendKind::DigitalGmm`] — the conventional approach: a diagonal
//!   GMM evaluated on a digital datapath,
//! - [`BackendKind::CimHmgm`] — the co-design: an HMG mixture compiled
//!   onto the floating-gate inverter array and evaluated in analog,
//!   including DAC/ADC quantization, device variation and noise.
//!
//! Fig. 2(e–h) is the comparison of localization convergence between the
//! two; Fig. 2(i) is their energy comparison.

use crate::{CoreError, Result};
use navicim_analog::engine::{CimEngineConfig, EngineStats, HmgmCimEngine};
use navicim_analog::mapping::SpaceMap;
use navicim_backend::{LikelihoodBackend, PointBatch};
use navicim_filter::estimate::{mean_pose, position_spread};
use navicim_filter::filter::{FilterConfig, Measurement, ParticleFilter};
use navicim_filter::motion::OdometryMotion;
use navicim_filter::particle::ParticleSet;
use navicim_gmm::fit::{fit_diag_gmm, FitConfig};
use navicim_gmm::gaussian::Gmm;
use navicim_gmm::hmg::{fit_hmgm, HmgmFitConfig};
use navicim_math::geom::{Pose, Quat, Vec3};
use navicim_math::rng::{Pcg32, Rng64, SampleExt};
use navicim_scene::camera::{DepthCamera, DepthImage};
use navicim_scene::dataset::LocalizationDataset;

/// Map-likelihood backend selector.
#[derive(Debug, Clone, PartialEq)]
pub enum BackendKind {
    /// Conventional digital Gaussian-mixture map.
    DigitalGmm,
    /// Co-designed HMGM inverter-array CIM engine.
    CimHmgm(CimEngineConfig),
}

/// The compiled map backend.
#[derive(Debug, Clone)]
pub enum MapModel {
    /// Digital GMM evaluated in floating point.
    DigitalGmm {
        /// The fitted mixture.
        gmm: Gmm,
        /// Number of point evaluations served.
        evaluations: u64,
    },
    /// Analog HMGM engine.
    CimHmgm(Box<HmgmCimEngine>),
}

impl MapModel {
    /// Backend name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            MapModel::DigitalGmm { .. } => "digital-gmm",
            MapModel::CimHmgm(_) => "cim-hmgm",
        }
    }

    /// Number of mixture components.
    pub fn components(&self) -> usize {
        match self {
            MapModel::DigitalGmm { gmm, .. } => gmm.num_components(),
            MapModel::CimHmgm(engine) => engine.array().num_columns(),
        }
    }

    /// Point evaluations served so far.
    pub fn evaluations(&self) -> u64 {
        match self {
            MapModel::DigitalGmm { evaluations, .. } => *evaluations,
            MapModel::CimHmgm(engine) => engine.stats().evaluations,
        }
    }

    /// Engine statistics when running on the CIM backend.
    pub fn cim_stats(&self) -> Option<EngineStats> {
        match self {
            MapModel::DigitalGmm { .. } => None,
            MapModel::CimHmgm(engine) => Some(engine.stats()),
        }
    }

    /// Log-likelihood of one world point under the map.
    ///
    /// Scalar adapter over [`MapModel::point_log_likelihood_into`].
    pub fn point_log_likelihood(&mut self, p: Vec3) -> f64 {
        let mut batch = PointBatch::new(3);
        batch.push_xyz(p.x, p.y, p.z);
        let mut out = [0.0];
        self.point_log_likelihood_into(&batch, &mut out);
        out[0]
    }

    /// Log-likelihoods of a whole batch of world points under the map —
    /// the backend-level primitive of the per-frame weight step. Both
    /// backends serve the batch through their [`LikelihoodBackend`]
    /// implementation; evaluation counters advance by the batch size
    /// exactly as they would under scalar queries.
    pub fn point_log_likelihood_into(&mut self, batch: &PointBatch, out: &mut [f64]) {
        match self {
            MapModel::DigitalGmm { gmm, evaluations } => {
                *evaluations += batch.len() as u64;
                gmm.log_likelihood_into(batch, out);
            }
            MapModel::CimHmgm(engine) => engine.log_likelihood_into(batch, out),
        }
    }
}

/// How the particle-filter weight step feeds the map backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WeightPath {
    /// One backend call per particle (the pre-batching behavior; kept for
    /// A/B benchmarking and equivalence testing).
    Scalar,
    /// One backend call per frame: every particle's projected scan points
    /// are gathered into a single [`PointBatch`]. Bit-identical to
    /// [`WeightPath::Scalar`] and substantially faster.
    #[default]
    Batched,
}

/// Localizer configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalizerConfig {
    /// Number of particles.
    pub num_particles: usize,
    /// Depth-pixel subsampling stride for the measurement model.
    pub pixel_stride: usize,
    /// Number of mixture components in the map model.
    pub components: usize,
    /// Measurement sharpness: per-point mean log-likelihood is multiplied
    /// by this before weighting (tempering against weight collapse).
    pub sharpness: f64,
    /// Initial particle-cloud position σ around the prior pose, in metres.
    pub init_spread: f64,
    /// Initial yaw σ, in radians.
    pub init_yaw_spread: f64,
    /// Motion-model noise.
    pub motion: OdometryMotion,
    /// Particle-filter settings.
    pub filter: FilterConfig,
    /// Likelihood backend.
    pub backend: BackendKind,
    /// How the weight step feeds the backend (scalar vs batched).
    pub weight_path: WeightPath,
    /// Mixture-fit settings (GMM warm start for both backends).
    pub fit: FitConfig,
    /// Master seed.
    pub seed: u64,
}

impl Default for LocalizerConfig {
    fn default() -> Self {
        Self {
            num_particles: 500,
            pixel_stride: 13,
            components: 16,
            sharpness: 4.0,
            init_spread: 0.25,
            init_yaw_spread: 0.1,
            motion: OdometryMotion::indoor(),
            filter: FilterConfig::default(),
            backend: BackendKind::DigitalGmm,
            weight_path: WeightPath::default(),
            fit: FitConfig::default(),
            seed: 0xd20e,
        }
    }
}

/// Per-frame summary of one localization step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepSummary {
    /// Estimated pose after the update.
    pub estimate: Pose,
    /// Translation error against ground truth, in metres.
    pub error: f64,
    /// Particle-cloud positional spread (1σ radius), in metres.
    pub spread: f64,
    /// Effective sample size after the update.
    pub ess: f64,
}

/// Outcome of a full localization run.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalizationRun {
    /// Backend name.
    pub backend: &'static str,
    /// Per-frame estimates (starting at frame 1).
    pub estimates: Vec<Pose>,
    /// Per-frame ground truth (aligned with `estimates`).
    pub truths: Vec<Pose>,
    /// Per-frame translation errors.
    pub errors: Vec<f64>,
    /// Per-frame particle spreads.
    pub spreads: Vec<f64>,
    /// Map point evaluations served during the run.
    pub point_evaluations: u64,
    /// CIM engine stats, when applicable.
    pub cim_stats: Option<EngineStats>,
}

impl LocalizationRun {
    /// Mean translation error over the final quarter of the run
    /// (steady-state accuracy).
    pub fn steady_state_error(&self) -> f64 {
        let n = self.errors.len();
        if n == 0 {
            return 0.0;
        }
        let tail = &self.errors[n - (n / 4).max(1)..];
        navicim_math::stats::mean(tail)
    }
}

/// The Section II pipeline.
#[derive(Debug, Clone)]
pub struct CimLocalizer {
    map: MapModel,
    camera: DepthCamera,
    pf: ParticleFilter<Pose>,
    config: LocalizerConfig,
    rng: Pcg32,
}

struct ScanSensor<'a> {
    map: &'a mut MapModel,
    camera: &'a DepthCamera,
    stride: usize,
    sharpness: f64,
    path: WeightPath,
    /// Reused projection buffer.
    points: Vec<Vec3>,
    /// Reused frame-wide query batch.
    batch: PointBatch,
    /// Reused per-particle point counts.
    counts: Vec<usize>,
    /// Reused per-point log-likelihood buffer.
    lls: Vec<f64>,
}

impl<'a> ScanSensor<'a> {
    fn new(
        map: &'a mut MapModel,
        camera: &'a DepthCamera,
        stride: usize,
        sharpness: f64,
        path: WeightPath,
    ) -> Self {
        Self {
            map,
            camera,
            stride,
            sharpness,
            path,
            points: Vec::new(),
            batch: PointBatch::new(3),
            counts: Vec::new(),
            lls: Vec::new(),
        }
    }

    /// Penalty for a hypothesis whose scan projects to no valid points:
    /// heavily penalized but finite.
    const BLIND_LL: f64 = -1e3;

    /// Reduces one particle's per-point log-likelihoods to its weight.
    fn reduce(&self, sum: f64, count: usize) -> f64 {
        self.sharpness * sum / count as f64
    }
}

impl Measurement<Pose, DepthImage> for ScanSensor<'_> {
    fn log_likelihood(&mut self, state: &Pose, obs: &DepthImage) -> f64 {
        let mut points = std::mem::take(&mut self.points);
        self.camera
            .project_to_world_into(obs, *state, self.stride, &mut points);
        self.batch.clear();
        for p in &points {
            self.batch.push_xyz(p.x, p.y, p.z);
        }
        self.points = points;
        if self.batch.is_empty() {
            return Self::BLIND_LL;
        }
        self.lls.resize(self.batch.len(), 0.0);
        let mut lls = std::mem::take(&mut self.lls);
        self.map.point_log_likelihood_into(&self.batch, &mut lls);
        let sum: f64 = lls.iter().sum();
        let count = lls.len();
        self.lls = lls;
        self.reduce(sum, count)
    }

    /// The tentpole weight step: projects every particle's scan, gathers
    /// all query points into one frame-wide [`PointBatch`] and serves it
    /// to the map backend in a single call. Bit-identical to the scalar
    /// path — points are evaluated in the same order, so even the CIM
    /// engine's noise stream lines up.
    fn log_likelihood_batch(&mut self, states: &[Pose], obs: &DepthImage, out: &mut [f64]) {
        assert_eq!(
            states.len(),
            out.len(),
            "output buffer must hold one log-likelihood per state"
        );
        if self.path == WeightPath::Scalar {
            for (o, s) in out.iter_mut().zip(states) {
                *o = self.log_likelihood(s, obs);
            }
            return;
        }
        let mut points = std::mem::take(&mut self.points);
        self.batch.clear();
        self.counts.clear();
        for state in states {
            self.camera
                .project_to_world_into(obs, *state, self.stride, &mut points);
            self.counts.push(points.len());
            for p in &points {
                self.batch.push_xyz(p.x, p.y, p.z);
            }
        }
        self.points = points;
        self.lls.resize(self.batch.len(), 0.0);
        let mut lls = std::mem::take(&mut self.lls);
        self.map.point_log_likelihood_into(&self.batch, &mut lls);
        let mut offset = 0;
        for (o, &count) in out.iter_mut().zip(&self.counts) {
            if count == 0 {
                *o = Self::BLIND_LL;
                continue;
            }
            let sum: f64 = lls[offset..offset + count].iter().sum();
            *o = self.reduce(sum, count);
            offset += count;
        }
        self.lls = lls;
    }
}

impl CimLocalizer {
    /// Fits the map model on the dataset's point cloud, compiles the
    /// selected backend and initializes the particle cloud around the
    /// first frame's pose.
    ///
    /// # Errors
    ///
    /// Propagates fitting/compilation errors; rejects empty datasets.
    pub fn build(dataset: &LocalizationDataset, config: LocalizerConfig) -> Result<Self> {
        if dataset.frames.is_empty() {
            return Err(CoreError::InvalidArgument("dataset has no frames".into()));
        }
        let mut rng = Pcg32::seed_from_u64(config.seed);
        let points = dataset.map_points_as_rows();

        let map = match &config.backend {
            BackendKind::DigitalGmm => {
                let gmm = fit_diag_gmm(&points, config.components, &config.fit, &mut rng)?;
                MapModel::DigitalGmm {
                    gmm,
                    evaluations: 0,
                }
            }
            BackendKind::CimHmgm(cim) => {
                let vdd = cim.tech.vdd;
                let space = SpaceMap::fit_to_points(&points, vdd * 0.15, vdd * 0.85, 0.1)?;
                let (floors, ceilings) =
                    HmgmCimEngine::recommended_sigma_bounds_per_axis(&cim.tech, &space);
                let hmgm_config = HmgmFitConfig {
                    gmm: config.fit,
                    sigma_floor_axes: Some(floors),
                    sigma_ceiling_axes: Some(ceilings),
                    ..HmgmFitConfig::default()
                };
                let model = fit_hmgm(&points, config.components, &hmgm_config, &mut rng)?;
                let engine = HmgmCimEngine::build(&model, space, *cim)?;
                MapModel::CimHmgm(Box::new(engine))
            }
        };

        let prior = dataset.frames[0].pose;
        let states: Vec<Pose> = (0..config.num_particles)
            .map(|_| perturb_pose(prior, config.init_spread, config.init_yaw_spread, &mut rng))
            .collect();
        let pf = ParticleFilter::new(
            ParticleSet::from_states(states)
                .map_err(|e| CoreError::InvalidArgument(e.to_string()))?,
            config.filter,
        );
        Ok(Self {
            map,
            camera: dataset.camera,
            pf,
            config,
            rng,
        })
    }

    /// The map backend (for energy accounting).
    pub fn map(&self) -> &MapModel {
        &self.map
    }

    /// Current pose estimate (weighted mean of the cloud).
    pub fn estimate(&self) -> Pose {
        mean_pose(self.pf.particles())
    }

    /// One predict/update step given odometry `control` and the new depth
    /// frame; returns the per-frame summary against `truth`.
    ///
    /// # Errors
    ///
    /// Propagates filter degeneracy.
    pub fn step(&mut self, control: &Pose, depth: &DepthImage, truth: Pose) -> Result<StepSummary> {
        let mut sensor = ScanSensor::new(
            &mut self.map,
            &self.camera,
            self.config.pixel_stride,
            self.config.sharpness,
            self.config.weight_path,
        );
        self.pf.step(
            control,
            depth,
            &self.config.motion,
            &mut sensor,
            &mut self.rng,
        )?;
        let estimate = mean_pose(self.pf.particles());
        Ok(StepSummary {
            estimate,
            error: estimate.translation_distance(truth),
            spread: position_spread(self.pf.particles()),
            ess: self.pf.particles().ess(),
        })
    }

    /// Runs the filter over the whole dataset using ground-truth frame
    /// deltas as odometry (the motion model adds its own noise).
    ///
    /// # Errors
    ///
    /// Propagates step errors.
    pub fn run(&mut self, dataset: &LocalizationDataset) -> Result<LocalizationRun> {
        let mut estimates = Vec::new();
        let mut truths = Vec::new();
        let mut errors = Vec::new();
        let mut spreads = Vec::new();
        for t in 1..dataset.frames.len() {
            let control = dataset.frames[t - 1].pose.delta_to(dataset.frames[t].pose);
            let truth = dataset.frames[t].pose;
            let summary = self.step(&control, &dataset.frames[t].depth, truth)?;
            estimates.push(summary.estimate);
            truths.push(truth);
            errors.push(summary.error);
            spreads.push(summary.spread);
        }
        Ok(LocalizationRun {
            backend: self.map.name(),
            estimates,
            truths,
            errors,
            spreads,
            point_evaluations: self.map.evaluations(),
            cim_stats: self.map.cim_stats(),
        })
    }
}

fn perturb_pose<R: Rng64 + ?Sized>(prior: Pose, spread: f64, yaw_spread: f64, rng: &mut R) -> Pose {
    let dt = Vec3::new(
        rng.sample_normal(0.0, spread),
        rng.sample_normal(0.0, spread),
        rng.sample_normal(0.0, spread),
    );
    let dyaw = Quat::from_axis_angle(Vec3::Z, rng.sample_normal(0.0, yaw_spread));
    Pose::new(
        dyaw.mul_quat(prior.rotation).normalized(),
        prior.translation + dt,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use navicim_scene::dataset::LocalizationConfig;

    fn small_dataset() -> LocalizationDataset {
        let config = LocalizationConfig {
            image_width: 24,
            image_height: 18,
            map_points: 600,
            frames: 10,
            ..LocalizationConfig::default()
        };
        LocalizationDataset::generate(&config, 7).unwrap()
    }

    fn small_config(backend: BackendKind) -> LocalizerConfig {
        // The constrained HMGM map needs a few more kernels than an
        // unconstrained GMM to cover the same scene discriminatively.
        LocalizerConfig {
            num_particles: 250,
            pixel_stride: 7,
            components: 10,
            backend,
            seed: 3,
            ..LocalizerConfig::default()
        }
    }

    #[test]
    fn digital_backend_tracks() {
        let ds = small_dataset();
        let mut loc = CimLocalizer::build(&ds, small_config(BackendKind::DigitalGmm)).unwrap();
        let run = loc.run(&ds).unwrap();
        assert_eq!(run.backend, "digital-gmm");
        assert_eq!(run.errors.len(), 9);
        // Tracks within a fraction of the orbit radius throughout.
        let steady = run.steady_state_error();
        assert!(steady < 0.35, "steady-state error {steady}");
        assert!(run.point_evaluations > 0);
        assert!(run.cim_stats.is_none());
    }

    #[test]
    fn cim_backend_tracks_comparably() {
        // The headline claim of Fig. 2(e-h): the co-designed CIM backend
        // matches the conventional digital GMM accuracy.
        let ds = small_dataset();
        let mut digital = CimLocalizer::build(&ds, small_config(BackendKind::DigitalGmm)).unwrap();
        let digital_run = digital.run(&ds).unwrap();
        let mut cim = CimLocalizer::build(
            &ds,
            small_config(BackendKind::CimHmgm(CimEngineConfig::default())),
        )
        .unwrap();
        let cim_run = cim.run(&ds).unwrap();
        assert_eq!(cim_run.backend, "cim-hmgm");
        let d = digital_run.steady_state_error();
        let c = cim_run.steady_state_error();
        assert!(c < 0.3, "cim steady-state error {c}");
        assert!(c < d * 3.0 + 0.15, "cim {c} vs digital {d}");
        // Engine stats populated.
        let stats = cim_run.cim_stats.unwrap();
        assert!(stats.evaluations > 0);
        assert!(stats.avg_current() > 0.0);
    }

    #[test]
    fn batched_weight_path_is_bit_identical_to_scalar() {
        // The tentpole invariant: switching the weight step from
        // per-particle scalar calls to one frame-wide batch changes
        // nothing observable — same estimates, same errors, same
        // evaluation counts — on both backends.
        let ds = small_dataset();
        for backend in [
            BackendKind::DigitalGmm,
            BackendKind::CimHmgm(CimEngineConfig::default()),
        ] {
            let run_with = |path: WeightPath| {
                let config = LocalizerConfig {
                    weight_path: path,
                    ..small_config(backend.clone())
                };
                CimLocalizer::build(&ds, config).unwrap().run(&ds).unwrap()
            };
            let scalar = run_with(WeightPath::Scalar);
            let batched = run_with(WeightPath::Batched);
            assert_eq!(scalar.errors, batched.errors, "{backend:?}");
            assert_eq!(scalar.estimates, batched.estimates, "{backend:?}");
            assert_eq!(
                scalar.point_evaluations, batched.point_evaluations,
                "{backend:?}"
            );
            assert_eq!(scalar.cim_stats, batched.cim_stats, "{backend:?}");
        }
    }

    #[test]
    fn uncertainty_shrinks_from_initial_spread() {
        let ds = small_dataset();
        let mut loc = CimLocalizer::build(&ds, small_config(BackendKind::DigitalGmm)).unwrap();
        let run = loc.run(&ds).unwrap();
        let first = run.spreads.first().copied().unwrap();
        let last = run.spreads.last().copied().unwrap();
        assert!(last < first, "spread {first} -> {last}");
    }

    #[test]
    fn empty_dataset_rejected() {
        let ds = small_dataset();
        let empty = LocalizationDataset {
            scene: ds.scene.clone(),
            map_points: ds.map_points.clone(),
            frames: vec![],
            camera: ds.camera,
        };
        assert!(CimLocalizer::build(&empty, small_config(BackendKind::DigitalGmm)).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = small_dataset();
        let run1 = CimLocalizer::build(&ds, small_config(BackendKind::DigitalGmm))
            .unwrap()
            .run(&ds)
            .unwrap();
        let run2 = CimLocalizer::build(&ds, small_config(BackendKind::DigitalGmm))
            .unwrap()
            .run(&ds)
            .unwrap();
        assert_eq!(run1.errors, run2.errors);
    }
}
