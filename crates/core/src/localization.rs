//! Pipeline A — CIM particle-filter drone localization (paper Section II).
//!
//! A [`CimLocalizer`] fits a map backend to a scene's point cloud, then
//! tracks the camera through its depth frames with a particle filter whose
//! measurement model projects subsampled depth pixels into the world and
//! scores them against the map. The map backend is selected *by name*
//! from a [`BackendRegistry`] (the defaults are the paper's backends):
//!
//! - [`crate::registry::DIGITAL_GMM`] — the conventional approach: a
//!   diagonal GMM evaluated on a digital datapath,
//! - [`crate::registry::DIGITAL_HMGM`] — the co-designed kernel family
//!   evaluated in floating point (the map-family ablation),
//! - [`crate::registry::CIM_HMGM`] — the co-design: an HMG mixture
//!   compiled onto the floating-gate inverter array and evaluated in
//!   analog, including DAC/ADC quantization, device variation and noise.
//!
//! Custom backends register through
//! [`CimLocalizer::build_with_registry`] without touching this crate.
//! Fig. 2(e–h) is the comparison of localization convergence between the
//! digital and analog backends; Fig. 2(i) is their energy comparison.

use crate::pipeline::{GateConfig, LocalizationPipeline, PipelineRun};
use crate::registry::{BackendRegistry, BackendStats, MapBackend, DIGITAL_GMM};
use crate::Result;
use navicim_analog::engine::CimEngineConfig;
use navicim_backend::PointBatch;
use navicim_filter::filter::{FilterConfig, Measurement};
use navicim_filter::motion::OdometryMotion;
use navicim_gmm::fit::FitConfig;
use navicim_gmm::prune::PruneConfig;
use navicim_math::geom::{Pose, Quat, Vec3};
use navicim_math::rng::{Rng64, SampleExt};
use navicim_scene::camera::{DepthCamera, DepthImage};
use navicim_scene::dataset::LocalizationDataset;

/// How the particle-filter weight step feeds the map backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WeightPath {
    /// One backend call per particle (the pre-batching behavior; kept for
    /// A/B benchmarking and equivalence testing).
    Scalar,
    /// One backend call per frame: every particle's projected scan points
    /// are gathered into a single [`PointBatch`]. Bit-identical to
    /// [`WeightPath::Scalar`] and substantially faster.
    #[default]
    Batched,
}

/// Localizer configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalizerConfig {
    /// Number of particles.
    pub num_particles: usize,
    /// Depth-pixel subsampling stride for the measurement model.
    pub pixel_stride: usize,
    /// Number of mixture components in the map model.
    pub components: usize,
    /// Measurement sharpness: per-point mean log-likelihood is multiplied
    /// by this before weighting (tempering against weight collapse).
    pub sharpness: f64,
    /// Initial particle-cloud position σ around the prior pose, in metres.
    pub init_spread: f64,
    /// Initial yaw σ, in radians.
    pub init_yaw_spread: f64,
    /// Motion-model noise.
    pub motion: OdometryMotion,
    /// Particle-filter settings.
    pub filter: FilterConfig,
    /// Likelihood-backend name, resolved against the [`BackendRegistry`]
    /// at build time (defaults: `"digital-gmm"`, `"digital-hmgm"`,
    /// `"cim-hmgm"`).
    pub backend: String,
    /// Analog-engine settings, passed to the backend factory through the
    /// [`MapFitContext`] (digital backends ignore them).
    pub cim: CimEngineConfig,
    /// How the weight step feeds the backend (scalar vs batched).
    pub weight_path: WeightPath,
    /// Mixture-fit settings (GMM warm start for both backends).
    pub fit: FitConfig,
    /// Spatial component-pruning knob, compiled into every backend's
    /// fitted map (see `navicim_gmm::prune`). Off by default; off-mode
    /// evaluation is bit-identical to previous releases.
    pub prune: PruneConfig,
    /// Backend-arbitration section: which backend slots the streaming
    /// pipeline instantiates and which [`crate::pipeline::GatePolicy`]
    /// picks between them per frame. The default is single-backend mode
    /// (serve [`Self::backend`] on every frame), which preserves the
    /// monolithic behavior exactly.
    pub gate: GateConfig,
    /// Master seed.
    pub seed: u64,
}

impl Default for LocalizerConfig {
    fn default() -> Self {
        Self {
            num_particles: 500,
            pixel_stride: 13,
            components: 16,
            sharpness: 4.0,
            init_spread: 0.25,
            init_yaw_spread: 0.1,
            motion: OdometryMotion::indoor(),
            filter: FilterConfig::default(),
            backend: DIGITAL_GMM.to_string(),
            cim: CimEngineConfig::default(),
            weight_path: WeightPath::default(),
            fit: FitConfig::default(),
            prune: PruneConfig::default(),
            gate: GateConfig::default(),
            seed: 0xd20e,
        }
    }
}

/// Per-frame summary of one localization step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepSummary {
    /// Estimated pose after the update.
    pub estimate: Pose,
    /// Translation error against ground truth, in metres.
    pub error: f64,
    /// Particle-cloud positional spread (1σ radius), in metres.
    pub spread: f64,
    /// Effective sample size after the update.
    pub ess: f64,
}

/// Outcome of a full localization run.
#[derive(Debug, Clone, PartialEq)]
pub struct LocalizationRun {
    /// Backend name.
    pub backend: String,
    /// Per-frame estimates (starting at frame 1).
    pub estimates: Vec<Pose>,
    /// Per-frame ground truth (aligned with `estimates`).
    pub truths: Vec<Pose>,
    /// Per-frame translation errors.
    pub errors: Vec<f64>,
    /// Per-frame particle spreads.
    pub spreads: Vec<f64>,
    /// Map point evaluations served during the run.
    pub point_evaluations: u64,
    /// Trait-level backend operation counters (converter fields stay zero
    /// on digital backends; see [`BackendStats::is_analog`]).
    pub stats: BackendStats,
}

impl LocalizationRun {
    /// Mean translation error over the final quarter of the run
    /// (steady-state accuracy).
    pub fn steady_state_error(&self) -> f64 {
        let n = self.errors.len();
        if n == 0 {
            return 0.0;
        }
        let tail = &self.errors[n - (n / 4).max(1)..];
        navicim_math::stats::mean(tail)
    }
}

/// The Section II pipeline — now a thin wrapper over a single-backend
/// [`LocalizationPipeline`], so the monolithic build/step/run API keeps
/// working bit-for-bit while the streaming pipeline carries the actual
/// logic (and, when [`LocalizerConfig::gate`] names several backends,
/// the per-frame digital↔analog arbitration).
pub struct CimLocalizer {
    pipeline: LocalizationPipeline,
}

impl std::fmt::Debug for CimLocalizer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CimLocalizer")
            .field("pipeline", &self.pipeline)
            .finish_non_exhaustive()
    }
}

/// Reusable buffers of the scan measurement model, owned by the pipeline
/// so the per-frame weight step allocates nothing in steady state.
#[derive(Debug)]
pub(crate) struct ScanScratch {
    /// Reused projection buffer.
    points: Vec<Vec3>,
    /// Reused frame-wide query batch.
    pub(crate) batch: PointBatch,
    /// Reused per-particle point counts.
    pub(crate) counts: Vec<usize>,
    /// Reused per-point log-likelihood buffer.
    pub(crate) lls: Vec<f64>,
    /// Reused per-particle log-likelihood buffer (the reduce output when
    /// the evaluation phase runs outside the sensor, see
    /// `LocalizationPipeline::finish_frame`).
    pub(crate) particle_lls: Vec<f64>,
}

impl Default for ScanScratch {
    fn default() -> Self {
        Self {
            points: Vec::new(),
            batch: PointBatch::new(3),
            counts: Vec::new(),
            lls: Vec::new(),
            particle_lls: Vec::new(),
        }
    }
}

/// Penalty for a hypothesis whose scan projects to no valid points:
/// heavily penalized but finite.
pub(crate) const BLIND_LL: f64 = -1e3;

/// Phase A of the batched weight step: projects every particle's scan and
/// stages the frame-wide query batch plus per-particle point counts into
/// `scratch`. Shared verbatim by [`ScanSensor::log_likelihood_batch`] and
/// `LocalizationPipeline::begin_frame`, so the split (externally served)
/// evaluation path is bit-identical to the monolithic one by
/// construction.
pub(crate) fn stage_scan_batch(
    camera: &DepthCamera,
    obs: &DepthImage,
    stride: usize,
    states: &[Pose],
    scratch: &mut ScanScratch,
) {
    scratch.batch.clear();
    scratch.counts.clear();
    for state in states {
        camera.project_to_world_into(obs, *state, stride, &mut scratch.points);
        scratch.counts.push(scratch.points.len());
        for p in &scratch.points {
            scratch.batch.push_xyz(p.x, p.y, p.z);
        }
    }
}

/// Phase B of the batched weight step: reduces per-point log-likelihoods
/// (aligned with the staged batch) to per-particle weights; particles
/// whose scan projected to no valid points score [`BLIND_LL`].
pub(crate) fn reduce_scan_lls(sharpness: f64, counts: &[usize], lls: &[f64], out: &mut [f64]) {
    let mut offset = 0;
    for (o, &count) in out.iter_mut().zip(counts) {
        if count == 0 {
            *o = BLIND_LL;
            continue;
        }
        let sum: f64 = lls[offset..offset + count].iter().sum();
        *o = sharpness * sum / count as f64;
        offset += count;
    }
}

pub(crate) struct ScanSensor<'a> {
    map: &'a mut dyn MapBackend,
    camera: &'a DepthCamera,
    stride: usize,
    sharpness: f64,
    path: WeightPath,
    scratch: &'a mut ScanScratch,
}

impl<'a> ScanSensor<'a> {
    pub(crate) fn new(
        map: &'a mut dyn MapBackend,
        camera: &'a DepthCamera,
        stride: usize,
        sharpness: f64,
        path: WeightPath,
        scratch: &'a mut ScanScratch,
    ) -> Self {
        Self {
            map,
            camera,
            stride,
            sharpness,
            path,
            scratch,
        }
    }

    /// Reduces one particle's per-point log-likelihoods to its weight.
    fn reduce(sharpness: f64, sum: f64, count: usize) -> f64 {
        sharpness * sum / count as f64
    }
}

impl Measurement<Pose, DepthImage> for ScanSensor<'_> {
    fn log_likelihood(&mut self, state: &Pose, obs: &DepthImage) -> f64 {
        let sharpness = self.sharpness;
        let scratch = &mut *self.scratch;
        self.camera
            .project_to_world_into(obs, *state, self.stride, &mut scratch.points);
        scratch.batch.clear();
        for p in &scratch.points {
            scratch.batch.push_xyz(p.x, p.y, p.z);
        }
        if scratch.batch.is_empty() {
            return BLIND_LL;
        }
        scratch.lls.resize(scratch.batch.len(), 0.0);
        self.map
            .log_likelihood_into(&scratch.batch, &mut scratch.lls);
        let sum: f64 = scratch.lls.iter().sum();
        Self::reduce(sharpness, sum, scratch.lls.len())
    }

    /// The tentpole weight step: projects every particle's scan, gathers
    /// all query points into one frame-wide [`PointBatch`] and serves it
    /// to the map backend in a single call. Bit-identical to the scalar
    /// path — points are evaluated in the same order, so even the CIM
    /// engine's noise stream lines up.
    fn log_likelihood_batch(&mut self, states: &[Pose], obs: &DepthImage, out: &mut [f64]) {
        assert_eq!(
            states.len(),
            out.len(),
            "output buffer must hold one log-likelihood per state"
        );
        if self.path == WeightPath::Scalar {
            for (o, s) in out.iter_mut().zip(states) {
                *o = self.log_likelihood(s, obs);
            }
            return;
        }
        let sharpness = self.sharpness;
        let scratch = &mut *self.scratch;
        stage_scan_batch(self.camera, obs, self.stride, states, scratch);
        scratch.lls.resize(scratch.batch.len(), 0.0);
        self.map
            .log_likelihood_into(&scratch.batch, &mut scratch.lls);
        reduce_scan_lls(sharpness, &scratch.counts, &scratch.lls, out);
    }
}

impl CimLocalizer {
    /// Fits the map model on the dataset's point cloud, builds the named
    /// backend from the default [`BackendRegistry`] and initializes the
    /// particle cloud around the first frame's pose.
    ///
    /// # Errors
    ///
    /// Propagates fitting/compilation errors; rejects empty datasets and
    /// unknown backend names.
    pub fn build(dataset: &LocalizationDataset, config: LocalizerConfig) -> Result<Self> {
        Self::build_with_registry(dataset, config, &BackendRegistry::with_defaults())
    }

    /// [`Self::build`] against a caller-supplied registry — the hook for
    /// custom backends: register a factory, name it in
    /// [`LocalizerConfig::backend`], and the localizer serves it with no
    /// change to this crate.
    ///
    /// # Errors
    ///
    /// Propagates fitting/compilation errors; rejects empty datasets and
    /// unknown backend names.
    pub fn build_with_registry(
        dataset: &LocalizationDataset,
        config: LocalizerConfig,
        registry: &BackendRegistry,
    ) -> Result<Self> {
        Ok(Self {
            pipeline: LocalizationPipeline::build_with_registry(dataset, config, registry)?,
        })
    }

    /// The underlying streaming pipeline (gate state, per-slot backends).
    pub fn pipeline(&self) -> &LocalizationPipeline {
        &self.pipeline
    }

    /// Mutable access to the underlying pipeline.
    pub fn pipeline_mut(&mut self) -> &mut LocalizationPipeline {
        &mut self.pipeline
    }

    /// The map backend in slot 0 (for stats and energy accounting). In
    /// single-backend mode — the default — this is *the* backend.
    pub fn map(&self) -> &dyn MapBackend {
        self.pipeline.backend(0)
    }

    /// Current pose estimate (weighted mean of the cloud).
    pub fn estimate(&self) -> Pose {
        self.pipeline.estimate()
    }

    /// One predict/update step given odometry `control` and the new depth
    /// frame; returns the per-frame summary against `truth`.
    ///
    /// # Errors
    ///
    /// Propagates filter degeneracy.
    pub fn step(&mut self, control: &Pose, depth: &DepthImage, truth: Pose) -> Result<StepSummary> {
        Ok(self.pipeline.step(control, depth, truth)?.summary)
    }

    /// Runs the filter over the whole dataset using ground-truth frame
    /// deltas as odometry (the motion model adds its own noise). The
    /// wrapper always runs open loop; for VO-driven closed-loop control
    /// (`ControlSource::VisualOdometry` with uncertainty-scaled motion
    /// noise) use [`LocalizationPipeline`] directly — see
    /// `LocalizationPipeline::with_control`.
    ///
    /// # Errors
    ///
    /// Propagates step errors.
    pub fn run(&mut self, dataset: &LocalizationDataset) -> Result<LocalizationRun> {
        Ok(LocalizationRun::from(self.pipeline.run(dataset)?))
    }
}

impl From<PipelineRun> for LocalizationRun {
    /// Flattens a pipeline run into the monolithic run record: per-frame
    /// series extracted from the [`crate::pipeline::FrameReport`]s,
    /// per-slot stats merged into one total, slot names joined with `+`
    /// for gated runs.
    fn from(run: PipelineRun) -> Self {
        let stats = run.merged_stats();
        LocalizationRun {
            backend: run.backends.join("+"),
            estimates: run.frames.iter().map(|f| f.summary.estimate).collect(),
            truths: run.frames.iter().map(|f| f.truth).collect(),
            errors: run.frames.iter().map(|f| f.summary.error).collect(),
            spreads: run.frames.iter().map(|f| f.summary.spread).collect(),
            point_evaluations: stats.evaluations,
            stats,
        }
    }
}

pub(crate) fn perturb_pose<R: Rng64 + ?Sized>(
    prior: Pose,
    spread: f64,
    yaw_spread: f64,
    rng: &mut R,
) -> Pose {
    let dt = Vec3::new(
        rng.sample_normal(0.0, spread),
        rng.sample_normal(0.0, spread),
        rng.sample_normal(0.0, spread),
    );
    let dyaw = Quat::from_axis_angle(Vec3::Z, rng.sample_normal(0.0, yaw_spread));
    Pose::new(
        dyaw.mul_quat(prior.rotation).normalized(),
        prior.translation + dt,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{ClosureBackend, MapFitContext, CIM_HMGM};
    use navicim_scene::dataset::LocalizationConfig;

    fn small_dataset() -> LocalizationDataset {
        let config = LocalizationConfig {
            image_width: 24,
            image_height: 18,
            map_points: 600,
            frames: 10,
            ..LocalizationConfig::default()
        };
        LocalizationDataset::generate(&config, 7).unwrap()
    }

    fn small_config(backend: &str) -> LocalizerConfig {
        // The constrained HMGM map needs a few more kernels than an
        // unconstrained GMM to cover the same scene discriminatively.
        LocalizerConfig {
            num_particles: 250,
            pixel_stride: 7,
            components: 10,
            backend: backend.to_string(),
            seed: 3,
            ..LocalizerConfig::default()
        }
    }

    #[test]
    fn digital_backend_tracks() {
        let ds = small_dataset();
        let mut loc = CimLocalizer::build(&ds, small_config(DIGITAL_GMM)).unwrap();
        let run = loc.run(&ds).unwrap();
        assert_eq!(run.backend, DIGITAL_GMM);
        assert_eq!(run.errors.len(), 9);
        // Tracks within a fraction of the orbit radius throughout.
        let steady = run.steady_state_error();
        assert!(steady < 0.35, "steady-state error {steady}");
        assert!(run.point_evaluations > 0);
        assert!(!run.stats.is_analog());
        assert_eq!(run.stats.evaluations, run.point_evaluations);
    }

    #[test]
    fn cim_backend_tracks_comparably() {
        // The headline claim of Fig. 2(e-h): the co-designed CIM backend
        // matches the conventional digital GMM accuracy.
        let ds = small_dataset();
        let mut digital = CimLocalizer::build(&ds, small_config(DIGITAL_GMM)).unwrap();
        let digital_run = digital.run(&ds).unwrap();
        let mut cim = CimLocalizer::build(&ds, small_config(CIM_HMGM)).unwrap();
        let cim_run = cim.run(&ds).unwrap();
        assert_eq!(cim_run.backend, CIM_HMGM);
        let d = digital_run.steady_state_error();
        let c = cim_run.steady_state_error();
        assert!(c < 0.3, "cim steady-state error {c}");
        assert!(c < d * 3.0 + 0.15, "cim {c} vs digital {d}");
        // Trait-level stats carry the hardware counters.
        let stats = cim_run.stats;
        assert!(stats.is_analog());
        assert!(stats.evaluations > 0);
        assert!(stats.avg_current() > 0.0);
    }

    #[test]
    fn unknown_backend_name_rejected() {
        let ds = small_dataset();
        let err = CimLocalizer::build(&ds, small_config("warp-drive-map")).unwrap_err();
        assert!(err.to_string().contains("warp-drive-map"), "{err}");
    }

    #[test]
    fn custom_registered_backend_drives_the_filter() {
        // A backend registered from outside core serves the full
        // pipeline: no enum to extend, no core edits. The backend itself
        // is deliberately trivial — distance to the map centroid — since
        // this tests the plumbing, not map quality (a realistic custom
        // backend is demonstrated in examples/drone_localization.rs).
        let ds = small_dataset();
        let mut registry = BackendRegistry::with_defaults();
        registry.register("centroid-map", |ctx: &MapFitContext<'_>| {
            let n = ctx.points.len().max(1) as f64;
            let mut centroid = [0.0f64; 3];
            for p in ctx.points {
                for (c, &x) in centroid.iter_mut().zip(p) {
                    *c += x / n;
                }
            }
            Ok(Box::new(ClosureBackend::new(
                "centroid-map",
                3,
                1,
                move |q: &[f64]| {
                    -centroid
                        .iter()
                        .zip(q)
                        .map(|(c, x)| (c - x).powi(2))
                        .sum::<f64>()
                },
            )))
        });
        let mut loc =
            CimLocalizer::build_with_registry(&ds, small_config("centroid-map"), &registry)
                .unwrap();
        let run = loc.run(&ds).unwrap();
        assert_eq!(run.backend, "centroid-map");
        assert!(run.point_evaluations > 0);
        assert!(run.errors.iter().all(|e| e.is_finite()));
    }

    #[test]
    fn batched_weight_path_is_bit_identical_to_scalar() {
        // The tentpole invariant: switching the weight step from
        // per-particle scalar calls to one frame-wide batch changes
        // nothing observable — same estimates, same errors, same
        // evaluation counts — on both backends.
        let ds = small_dataset();
        for backend in [DIGITAL_GMM, CIM_HMGM] {
            let run_with = |path: WeightPath| {
                let config = LocalizerConfig {
                    weight_path: path,
                    ..small_config(backend)
                };
                CimLocalizer::build(&ds, config).unwrap().run(&ds).unwrap()
            };
            let scalar = run_with(WeightPath::Scalar);
            let batched = run_with(WeightPath::Batched);
            assert_eq!(scalar.errors, batched.errors, "{backend}");
            assert_eq!(scalar.estimates, batched.estimates, "{backend}");
            assert_eq!(
                scalar.point_evaluations, batched.point_evaluations,
                "{backend}"
            );
            assert_eq!(scalar.stats, batched.stats, "{backend}");
        }
    }

    #[test]
    fn uncertainty_shrinks_from_initial_spread() {
        let ds = small_dataset();
        let config = small_config(DIGITAL_GMM);
        let init_spread = config.init_spread;
        let mut loc = CimLocalizer::build(&ds, config).unwrap();
        let run = loc.run(&ds).unwrap();
        // The measurement updates collapse the cloud well below the
        // configured initial 1-sigma radius and keep it there.
        let last = run.spreads.last().copied().unwrap();
        assert!(last < init_spread / 2.0, "spread {init_spread} -> {last}");
    }

    #[test]
    fn empty_dataset_rejected() {
        let ds = small_dataset();
        let empty = LocalizationDataset {
            scene: ds.scene.clone(),
            map_points: ds.map_points.clone(),
            frames: vec![],
            camera: ds.camera,
        };
        assert!(CimLocalizer::build(&empty, small_config(DIGITAL_GMM)).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = small_dataset();
        let run1 = CimLocalizer::build(&ds, small_config(DIGITAL_GMM))
            .unwrap()
            .run(&ds)
            .unwrap();
        let run2 = CimLocalizer::build(&ds, small_config(DIGITAL_GMM))
            .unwrap()
            .run(&ds)
            .unwrap();
        assert_eq!(run1.errors, run2.errors);
    }
}
