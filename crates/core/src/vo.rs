//! Pipeline B — CIM MC-Dropout Bayesian visual odometry (Section III).
//!
//! A small pose regressor is trained on frame-pair features, exported to
//! the quantized representation and executed on the modeled SRAM CIM
//! macro. MC-Dropout inference draws dropout masks from either a software
//! PRNG or the modeled SRAM-embedded CCI RNG, optionally reorders the
//! iterations for compute reuse (the paper's sample ordering) and returns
//! predictive mean *and* variance per frame — the uncertainty signal of
//! Fig. 3(f).

use crate::{CoreError, Result};
use navicim_math::geom::Pose;
use navicim_math::metrics::{trajectory_error, TrajectoryError};
use navicim_math::rng::{Pcg32, Rng64};
use navicim_nn::loss::Mse;
use navicim_nn::mc::{mc_moments_in_place, McPrediction};
use navicim_nn::mlp::Mlp;
use navicim_nn::optim::Adam;
use navicim_nn::quant::{ForwardWorkspace, QuantBackend, QuantMatrix, QuantizedMlp};
use navicim_nn::train::{train, Example, TrainConfig};
use navicim_nn::Mode;
use navicim_scene::dataset::{integrate_deltas, VoDataset, VoSample};
use navicim_sram::cim_macro::{MacroConfig, MacroStats, SramCimMacro};
use navicim_sram::reuse::{flatten_iteration_into, greedy_order};
use navicim_sram::rng::{CciRng, CciRngConfig};

/// [`QuantBackend`] adapter over the modeled SRAM macro: programs weight
/// arrays lazily on first use and delegates every matrix-vector product.
#[derive(Debug, Clone)]
pub struct CimQuantBackend {
    cim: SramCimMacro,
}

impl CimQuantBackend {
    /// Wraps a macro.
    pub fn new(cim: SramCimMacro) -> Self {
        Self { cim }
    }

    /// The underlying macro (stats, configuration).
    pub fn cim(&self) -> &SramCimMacro {
        &self.cim
    }

    /// Mutable macro access.
    pub fn cim_mut(&mut self) -> &mut SramCimMacro {
        &mut self.cim
    }
}

impl QuantBackend for CimQuantBackend {
    fn matvec_into(
        &mut self,
        layer_id: usize,
        matrix: &QuantMatrix,
        input: &[i64],
        out_mask: &[bool],
        acc: &mut Vec<i64>,
    ) {
        if !self.cim.has_layer(layer_id) {
            self.cim
                .program_layer(layer_id, matrix.codes(), matrix.rows(), matrix.cols())
                .expect("matrix shape is self-consistent");
        }
        self.cim
            .matvec_into(layer_id, input, out_mask, acc)
            .expect("shapes validated by QuantizedMlp")
    }

    fn reset(&mut self) {
        self.cim.reset_reuse();
    }
}

/// Scale applied to the rotation components of the training targets
/// (PoseNet-style beta weighting). Values above 1 improve full-precision
/// yaw accuracy but widen the output-layer weight range, which hurts
/// 4-bit quantization; the default keeps the low-precision story of
/// Fig. 3(c-e) intact.
pub const ROT_TARGET_SCALE: f64 = 1.0;

/// Training configuration for the VO regressor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoTrainConfig {
    /// First hidden-layer width.
    pub hidden1: usize,
    /// Second hidden-layer width.
    pub hidden2: usize,
    /// Dropout probability (the paper uses 0.5).
    pub dropout_p: f64,
    /// Training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Seed for initialization, shuffling and dropout.
    pub seed: u64,
}

impl Default for VoTrainConfig {
    fn default() -> Self {
        Self {
            hidden1: 128,
            hidden2: 64,
            dropout_p: 0.5,
            epochs: 400,
            learning_rate: 2e-3,
            batch_size: 16,
            seed: 0x0d0,
        }
    }
}

/// Trains the 6-DoF pose regressor on a VO dataset's samples.
///
/// # Errors
///
/// Propagates network construction/training errors.
pub fn train_vo_network(
    samples: &[VoSample],
    in_dim: usize,
    config: &VoTrainConfig,
) -> Result<Mlp> {
    let mut rng = Pcg32::seed_from_u64(config.seed);
    let mut net = Mlp::builder(in_dim)
        .dense(config.hidden1)
        .relu()
        .dropout(config.dropout_p)
        .dense(config.hidden2)
        .relu()
        .dropout(config.dropout_p)
        .dense(6)
        .build(&mut rng)?;
    let examples: Vec<Example> = samples
        .iter()
        .map(|s| {
            let mut target = s.target.to_vec();
            for r in &mut target[3..6] {
                *r *= ROT_TARGET_SCALE;
            }
            Example {
                input: s.features.clone(),
                target,
            }
        })
        .collect();
    let mut opt = Adam::new(config.learning_rate)?;
    train(
        &mut net,
        &examples,
        &Mse,
        &mut opt,
        &TrainConfig {
            epochs: config.epochs,
            batch_size: config.batch_size,
            shuffle: true,
        },
        &mut rng,
    )?;
    Ok(net)
}

/// Where dropout bits come from.
#[derive(Debug, Clone)]
pub enum MaskSource {
    /// Software PRNG (ideal bits).
    Pseudorandom(Pcg32),
    /// The modeled SRAM-embedded CCI RNG (calibrated at construction).
    SramRng(Box<CciRng>),
}

impl MaskSource {
    fn rng_mut(&mut self) -> &mut dyn Rng64 {
        match self {
            MaskSource::Pseudorandom(r) => r,
            MaskSource::SramRng(r) => r.as_mut(),
        }
    }

    /// Bits drawn so far from the silicon RNG (`None` for the PRNG).
    pub fn silicon_bits(&self) -> Option<u64> {
        match self {
            MaskSource::Pseudorandom(_) => None,
            MaskSource::SramRng(r) => Some(r.bits_generated()),
        }
    }
}

/// Configuration of the Bayesian VO engine.
#[derive(Debug, Clone, PartialEq)]
pub struct VoPipelineConfig {
    /// Weight precision in bits (paper: 4 or 6).
    pub weight_bits: u32,
    /// Activation precision in bits.
    pub act_bits: u32,
    /// Partial-sum ADC resolution of the macro.
    pub adc_bits: u32,
    /// MC-Dropout iterations per frame (paper: 30).
    pub mc_iterations: usize,
    /// Enable the compute-reuse scheme in the macro.
    pub reuse: bool,
    /// Enable greedy sample ordering.
    pub order_samples: bool,
    /// Draw dropout bits from the modeled CCI RNG instead of a PRNG.
    pub silicon_rng: bool,
    /// Master seed.
    pub seed: u64,
}

impl Default for VoPipelineConfig {
    fn default() -> Self {
        Self {
            weight_bits: 4,
            act_bits: 4,
            adc_bits: 12,
            mc_iterations: 30,
            reuse: true,
            order_samples: true,
            silicon_rng: false,
            seed: 0xb0b,
        }
    }
}

/// Outcome of a trajectory run.
#[derive(Debug, Clone, PartialEq)]
pub struct VoRun {
    /// Estimated absolute trajectory (length = samples + 1).
    pub estimates: Vec<Pose>,
    /// Ground-truth trajectory.
    pub truths: Vec<Pose>,
    /// Per-step translation error of the predicted delta, in metres.
    pub per_step_error: Vec<f64>,
    /// Per-step total predictive variance (uncertainty signal).
    pub per_step_variance: Vec<f64>,
    /// Per-step MC-Dropout iteration counts (empty for the deterministic
    /// and full-precision baselines, which draw no stochastic samples).
    pub per_step_iterations: Vec<usize>,
    /// Trajectory error summary.
    pub trajectory: TrajectoryError,
    /// Macro operation counters accumulated over the run.
    pub macro_stats: MacroStats,
    /// Dropout bits drawn from the silicon RNG, when used.
    pub silicon_bits: Option<u64>,
}

impl VoRun {
    /// Mean MC-Dropout depth over the run (0 when no stochastic passes
    /// were drawn).
    pub fn mean_iterations(&self) -> f64 {
        if self.per_step_iterations.is_empty() {
            return 0.0;
        }
        self.per_step_iterations.iter().sum::<usize>() as f64
            / self.per_step_iterations.len() as f64
    }
}

/// Thresholds of the [`AdaptiveMcPolicy`] — the paper Section III knob:
/// MC-Dropout depth driven by predictive variance, mirroring the map
/// gate's hysteresis-plus-dwell shape on the VO axis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveMcConfig {
    /// Depth floor (≥ 2: variance needs at least two samples).
    pub min_iterations: usize,
    /// Depth ceiling (≥ `min_iterations`); also the startup depth — a
    /// fresh run is maximally uncertain, like the map gate starting
    /// digital.
    pub max_iterations: usize,
    /// Previous-frame total predictive variance at or below which the
    /// policy drops to `min_iterations` (confident: spend less compute).
    pub var_low: f64,
    /// Variance at or above which it returns to `max_iterations`
    /// (uncertain: spend more). Must exceed `var_low`; between the two
    /// the depth holds (hysteresis dead zone).
    pub var_high: f64,
    /// Minimum frames between depth changes (≥ 1), bounding oscillation
    /// on noisy variance signals exactly like the map gate's dwell.
    pub dwell: usize,
}

/// Per-frame MC-Dropout depth selection from the previous frame's
/// predictive variance.
///
/// Stateful like [`crate::pipeline::GatePolicy`]: the first call returns
/// `max_iterations` (no variance history yet), later calls apply the
/// hysteresis band with the dwell lock. Depth decisions are a pure
/// function of the observed variance sequence, so repeated runs are
/// bit-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveMcPolicy {
    config: AdaptiveMcConfig,
    current: usize,
    since_change: usize,
    changes: u64,
    started: bool,
}

impl AdaptiveMcPolicy {
    /// Validates the thresholds and builds the policy.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] unless
    /// `2 <= min_iterations <= max_iterations`,
    /// `0 <= var_low < var_high` (both finite) and `dwell >= 1`.
    pub fn new(config: AdaptiveMcConfig) -> Result<Self> {
        if config.min_iterations < 2 || config.max_iterations < config.min_iterations {
            return Err(CoreError::InvalidArgument(format!(
                "adaptive-mc iteration bounds must satisfy 2 <= min <= max (got {} / {})",
                config.min_iterations, config.max_iterations
            )));
        }
        if !(config.var_low >= 0.0)
            || !(config.var_high > config.var_low)
            || !config.var_high.is_finite()
        {
            return Err(CoreError::InvalidArgument(format!(
                "adaptive-mc variance thresholds must satisfy 0 <= var_low < var_high \
                 (got {} / {})",
                config.var_low, config.var_high
            )));
        }
        if config.dwell == 0 {
            return Err(CoreError::InvalidArgument(
                "adaptive-mc dwell must be at least 1 frame".into(),
            ));
        }
        Ok(Self {
            config,
            current: config.max_iterations,
            since_change: 0,
            changes: 0,
            started: false,
        })
    }

    /// A depth policy pinned to `iterations` — the fixed-depth baseline
    /// (the paper's constant 30) expressed in the same type, so fixed and
    /// adaptive runs share one code path.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] for fewer than 2 iterations.
    pub fn fixed(iterations: usize) -> Result<Self> {
        Self::new(AdaptiveMcConfig {
            min_iterations: iterations,
            max_iterations: iterations,
            var_low: 0.0,
            var_high: f64::MAX,
            dwell: 1,
        })
    }

    /// The policy's thresholds.
    pub fn config(&self) -> &AdaptiveMcConfig {
        &self.config
    }

    /// Whether the depth is pinned (`min_iterations == max_iterations`).
    pub fn is_fixed(&self) -> bool {
        self.config.min_iterations == self.config.max_iterations
    }

    /// Number of depth changes performed since construction/reset.
    pub fn changes(&self) -> u64 {
        self.changes
    }

    /// Policy name for reports.
    pub fn name(&self) -> String {
        if self.is_fixed() {
            format!("fixed-mc{}", self.config.max_iterations)
        } else {
            format!(
                "adaptive-mc[{}..{}]",
                self.config.min_iterations, self.config.max_iterations
            )
        }
    }

    /// Chooses this frame's MC-Dropout iteration count from the previous
    /// frame's total predictive variance (`None` on the first frame or
    /// when no prediction has run yet). Non-finite variances hold the
    /// current depth.
    pub fn next_iterations(&mut self, prev_variance: Option<f64>) -> usize {
        if !self.started {
            self.started = true;
            self.current = self.config.max_iterations;
            self.since_change = 0;
            return self.current;
        }
        self.since_change = self.since_change.saturating_add(1);
        if self.since_change >= self.config.dwell {
            let target = match prev_variance {
                Some(v) if v.is_finite() && v <= self.config.var_low => self.config.min_iterations,
                Some(v) if v.is_finite() && v >= self.config.var_high => self.config.max_iterations,
                _ => self.current,
            };
            if target != self.current {
                self.current = target;
                self.since_change = 0;
                self.changes += 1;
            }
        }
        self.current
    }

    /// Resets internal state (depth, dwell counter, change count) for a
    /// fresh run.
    pub fn reset(&mut self) {
        self.current = self.config.max_iterations;
        self.since_change = 0;
        self.changes = 0;
        self.started = false;
    }
}

/// The Section III pipeline: quantized MC-Dropout VO on the SRAM macro.
#[derive(Debug, Clone)]
pub struct BayesianVo {
    qnet: QuantizedMlp,
    backend: CimQuantBackend,
    masks: MaskSource,
    config: VoPipelineConfig,
    /// Persistent forward scratch — the per-frame prediction path
    /// allocates only its returned samples after warmup.
    ws: ForwardWorkspace,
    /// Reused per-iteration mask sets (outer and inner buffers kept).
    mask_sets: Vec<Vec<Vec<bool>>>,
    /// Reused flattened masks for the greedy ordering.
    flat_masks: Vec<Vec<bool>>,
}

impl BayesianVo {
    /// Quantizes a trained network and prepares the macro and mask source.
    ///
    /// # Errors
    ///
    /// Propagates quantization and RNG-fabrication errors; requires a
    /// non-empty calibration set.
    pub fn build(net: &Mlp, calibration: &[Vec<f64>], config: VoPipelineConfig) -> Result<Self> {
        let qnet = QuantizedMlp::from_mlp(net, config.weight_bits, config.act_bits, calibration)?;
        let backend = CimQuantBackend::new(SramCimMacro::new(MacroConfig {
            adc_bits: config.adc_bits,
            reuse: config.reuse,
            ..MacroConfig::default()
        }));
        let mut seed_rng = Pcg32::seed_from_u64(config.seed);
        let masks = if config.silicon_rng {
            let mut rng = CciRng::fabricate(&CciRngConfig::default(), &mut seed_rng)?;
            rng.calibrate(2000);
            MaskSource::SramRng(Box::new(rng))
        } else {
            MaskSource::Pseudorandom(seed_rng)
        };
        Ok(Self {
            qnet,
            backend,
            masks,
            config,
            ws: ForwardWorkspace::new(),
            mask_sets: Vec::new(),
            flat_masks: Vec::new(),
        })
    }

    /// The quantized network.
    pub fn qnet(&self) -> &QuantizedMlp {
        &self.qnet
    }

    /// Macro operation counters.
    pub fn macro_stats(&self) -> MacroStats {
        self.backend.cim().stats()
    }

    /// Dropout bits drawn so far from the silicon RNG (`None` for the
    /// software PRNG source) — snapshot this around a prediction to
    /// price the RNG term of a frame's inference energy.
    pub fn silicon_bits(&self) -> Option<u64> {
        self.masks.silicon_bits()
    }

    /// Clears macro counters.
    pub fn reset_macro_stats(&mut self) {
        self.backend.cim_mut().reset_stats();
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &VoPipelineConfig {
        &self.config
    }

    /// One MC-Dropout prediction: `mc_iterations` stochastic passes on the
    /// frame features, with optional greedy iteration ordering.
    ///
    /// Owned-output adapter over [`Self::predict_into`]; frame loops that
    /// want the zero-alloc path should reuse one [`McPrediction`] there
    /// instead.
    pub fn predict(&mut self, features: &[f64]) -> McPrediction {
        let mut pred = McPrediction::default();
        self.predict_into(features, &mut pred);
        pred
    }

    /// [`Self::predict`] into a caller-pooled [`McPrediction`]: the mask
    /// sets, the flattened ordering inputs, the forward scratch *and* the
    /// per-iteration sample vectors all live in reused buffers, so a
    /// steady-state frame loop performs no heap allocation beyond the
    /// greedy ordering's permutation. Arithmetic and RNG consumption are
    /// identical to [`Self::predict`].
    pub fn predict_into(&mut self, features: &[f64], pred: &mut McPrediction) {
        self.predict_n_into(features, self.config.mc_iterations, pred);
    }

    /// Variable-depth pooled prediction: `iterations` overrides the
    /// configured `mc_iterations` for this call — the compute-adaptive
    /// knob an [`AdaptiveMcPolicy`] drives per frame. All scratch
    /// (mask sets, flattened orderings, MC sample slots) is kept at its
    /// lifetime high-water mark: shrinking the depth deallocates
    /// nothing, growing allocates only past the widest call so far.
    /// With `iterations == config.mc_iterations` this is bit-identical
    /// to [`Self::predict_into`].
    ///
    /// # Panics
    ///
    /// Panics for fewer than 2 iterations (the predictive variance needs
    /// at least two samples).
    pub fn predict_n_into(&mut self, features: &[f64], iterations: usize, pred: &mut McPrediction) {
        assert!(iterations >= 2, "mc-dropout requires at least 2 iterations");
        let t = iterations;
        if self.mask_sets.len() < t {
            self.mask_sets.resize_with(t, Vec::new);
        }
        for set in &mut self.mask_sets[..t] {
            self.qnet.sample_masks_into(self.masks.rng_mut(), set);
        }
        let order: Vec<usize> = if self.config.order_samples {
            if self.flat_masks.len() < t {
                self.flat_masks.resize_with(t, Vec::new);
            }
            for (flat, set) in self.flat_masks[..t].iter_mut().zip(&self.mask_sets[..t]) {
                flatten_iteration_into(set, flat);
            }
            greedy_order(&self.flat_masks[..t]).expect("mask sets are non-empty and uniform")
        } else {
            (0..t).collect()
        };
        self.backend.reset();
        pred.resize_samples(t);
        pred.resize_logit_samples(t);
        for ((slot, logit_slot), &i) in pred
            .samples
            .iter_mut()
            .zip(pred.logit_samples.iter_mut())
            .zip(&order)
        {
            self.qnet.forward_with_masks_logits_into(
                &mut self.backend,
                features,
                &self.mask_sets[i],
                &mut self.ws,
                slot,
                logit_slot,
            );
        }
        mc_moments_in_place(pred);
    }

    /// MC-Dropout predictions for a whole sequence of frames, in order.
    ///
    /// The per-frame unit of batching in this pipeline is the
    /// `mc_iterations` stochastic passes (amortized on the macro by
    /// compute reuse); this entry point is the frame-sweep API the
    /// trajectory runners weight whole datasets through.
    pub fn predict_batch<'a>(
        &mut self,
        features_batch: impl IntoIterator<Item = &'a [f64]>,
    ) -> Vec<McPrediction> {
        features_batch
            .into_iter()
            .map(|features| self.predict(features))
            .collect()
    }

    /// Deterministic quantized prediction (no dropout at inference).
    pub fn predict_deterministic(&mut self, features: &[f64]) -> Vec<f64> {
        self.backend.reset();
        let mut y = Vec::with_capacity(self.qnet.out_dim());
        self.qnet
            .forward_with_masks_into(&mut self.backend, features, &[], &mut self.ws, &mut y);
        y
    }

    /// Runs MC-Dropout VO over a dataset at the configured fixed depth,
    /// integrating the predicted mean deltas into an absolute trajectory.
    ///
    /// One code path serves both depth modes: this is
    /// [`Self::run_trajectory_adaptive`] with a policy pinned at
    /// `config.mc_iterations` (a pinned policy grants that depth on
    /// every frame, so the runs are bit-identical — regression-tested).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] for datasets without
    /// samples or a configured depth below 2.
    pub fn run_trajectory(&mut self, dataset: &VoDataset) -> Result<VoRun> {
        let mut pinned = AdaptiveMcPolicy::fixed(self.config.mc_iterations)?;
        self.run_trajectory_adaptive(dataset, &mut pinned)
    }

    /// [`Self::run_trajectory`] with compute-adaptive depth: every
    /// frame's MC-Dropout iteration count comes from `policy`, driven by
    /// the *previous* frame's total predictive variance (the paper
    /// Section III knob). With a pinned policy
    /// ([`AdaptiveMcPolicy::fixed`] at `config.mc_iterations`) the run is
    /// bit-identical to [`Self::run_trajectory`].
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] for datasets without samples.
    pub fn run_trajectory_adaptive(
        &mut self,
        dataset: &VoDataset,
        policy: &mut AdaptiveMcPolicy,
    ) -> Result<VoRun> {
        if dataset.samples.is_empty() {
            return Err(CoreError::InvalidArgument(
                "vo dataset has no frame pairs".into(),
            ));
        }
        let n = dataset.samples.len();
        let mut deltas = Vec::with_capacity(n);
        let mut per_step_error = Vec::with_capacity(n);
        let mut per_step_variance = Vec::with_capacity(n);
        let mut per_step_iterations = Vec::with_capacity(n);
        let mut pred = McPrediction::default();
        let mut prev_variance = None;
        for sample in &dataset.samples {
            let t = policy.next_iterations(prev_variance);
            self.predict_n_into(&sample.features, t, &mut pred);
            prev_variance = Some(pred.total_variance());
            let (d, err) = delta_and_error(&pred.mean, &sample.target);
            per_step_error.push(err);
            per_step_variance.push(pred.total_variance());
            per_step_iterations.push(t);
            deltas.push(d);
        }
        let estimates = integrate_deltas(dataset.frames[0].pose, &deltas);
        let truths: Vec<Pose> = dataset.frames.iter().map(|f| f.pose).collect();
        let trajectory = trajectory_error(&estimates, &truths);
        Ok(VoRun {
            estimates,
            truths,
            per_step_error,
            per_step_variance,
            per_step_iterations,
            trajectory,
            macro_stats: self.macro_stats(),
            silicon_bits: self.masks.silicon_bits(),
        })
    }

    /// Runs deterministic quantized VO (the point-estimate baseline of
    /// Fig. 3(c–e)).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] for datasets without samples.
    pub fn run_trajectory_deterministic(&mut self, dataset: &VoDataset) -> Result<VoRun> {
        if dataset.samples.is_empty() {
            return Err(CoreError::InvalidArgument(
                "vo dataset has no frame pairs".into(),
            ));
        }
        let mut deltas = Vec::with_capacity(dataset.samples.len());
        let mut per_step_error = Vec::with_capacity(dataset.samples.len());
        for sample in &dataset.samples {
            let y = self.predict_deterministic(&sample.features);
            let (d, err) = delta_and_error(&y, &sample.target);
            per_step_error.push(err);
            deltas.push(d);
        }
        let estimates = integrate_deltas(dataset.frames[0].pose, &deltas);
        let truths: Vec<Pose> = dataset.frames.iter().map(|f| f.pose).collect();
        let trajectory = trajectory_error(&estimates, &truths);
        Ok(VoRun {
            estimates,
            truths,
            per_step_error,
            per_step_variance: Vec::new(),
            per_step_iterations: Vec::new(),
            trajectory,
            macro_stats: self.macro_stats(),
            silicon_bits: self.masks.silicon_bits(),
        })
    }
}

/// Converts a predicted 6-DoF mean `[dx, dy, dz, roll·S, pitch·S,
/// yaw·S]` (rotation components carrying the [`ROT_TARGET_SCALE`]
/// training weight `S`) into the relative [`Pose`] it encodes — the
/// odometry control a closed-loop particle filter composes into its
/// motion model, and the inverse of the target construction in
/// `navicim_scene::dataset::make_samples`.
///
/// # Panics
///
/// Panics when `mean` has fewer than 6 components.
pub fn delta_pose_from_mean(mean: &[f64]) -> Pose {
    assert!(
        mean.len() >= 6,
        "a 6-DoF delta needs 6 components, got {}",
        mean.len()
    );
    Pose::from_position_euler(
        navicim_math::geom::Vec3::new(mean[0], mean[1], mean[2]),
        mean[3] / ROT_TARGET_SCALE,
        mean[4] / ROT_TARGET_SCALE,
        mean[5] / ROT_TARGET_SCALE,
    )
}

/// Undoes the rotation-target scaling on a predicted 6-DoF mean and
/// computes its translation error against the sample target — the shared
/// accumulation step of every trajectory runner (identical arithmetic
/// across fixed, adaptive, deterministic and full-precision paths).
fn delta_and_error(mean: &[f64], target: &[f64; 6]) -> ([f64; 6], f64) {
    let mut d = [0.0; 6];
    d.copy_from_slice(mean);
    for r in &mut d[3..6] {
        *r /= ROT_TARGET_SCALE;
    }
    let err =
        ((d[0] - target[0]).powi(2) + (d[1] - target[1]).powi(2) + (d[2] - target[2]).powi(2))
            .sqrt();
    (d, err)
}

/// Runs the full-precision deterministic reference trajectory (Fig. 3's
/// "deterministic network" line).
pub fn run_fp_trajectory(net: &mut Mlp, dataset: &VoDataset) -> VoRun {
    let mut rng = Pcg32::seed_from_u64(0);
    let mut deltas = Vec::with_capacity(dataset.samples.len());
    let mut per_step_error = Vec::with_capacity(dataset.samples.len());
    for sample in &dataset.samples {
        let y = net.forward(&sample.features, Mode::Deterministic, &mut rng);
        let (d, err) = delta_and_error(&y, &sample.target);
        per_step_error.push(err);
        deltas.push(d);
    }
    let estimates = integrate_deltas(dataset.frames[0].pose, &deltas);
    let truths: Vec<Pose> = dataset.frames.iter().map(|f| f.pose).collect();
    let trajectory = trajectory_error(&estimates, &truths);
    VoRun {
        estimates,
        truths,
        per_step_error,
        per_step_variance: Vec::new(),
        per_step_iterations: Vec::new(),
        trajectory,
        macro_stats: MacroStats::default(),
        silicon_bits: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use navicim_scene::dataset::{VoConfig, VoTrajectory};
    use navicim_scene::noise::DepthNoise;

    fn tiny_dataset(seed: u64) -> VoDataset {
        VoDataset::generate(
            &VoConfig {
                image_width: 24,
                image_height: 18,
                grid_width: 4,
                grid_height: 3,
                frames: 30,
                trajectory: VoTrajectory::Waypoints(4),
                noise: DepthNoise::none(),
                ..VoConfig::default()
            },
            seed,
        )
        .unwrap()
    }

    fn tiny_train_config() -> VoTrainConfig {
        VoTrainConfig {
            hidden1: 24,
            hidden2: 12,
            epochs: 60,
            ..VoTrainConfig::default()
        }
    }

    fn calibration(ds: &VoDataset) -> Vec<Vec<f64>> {
        ds.samples
            .iter()
            .take(8)
            .map(|s| s.features.clone())
            .collect()
    }

    #[test]
    fn training_reduces_loss_and_pipeline_runs() {
        let ds = tiny_dataset(1);
        let net = train_vo_network(&ds.samples, ds.feature_dim(), &tiny_train_config()).unwrap();
        let mut vo = BayesianVo::build(
            &net,
            &calibration(&ds),
            VoPipelineConfig {
                weight_bits: 8,
                act_bits: 8,
                mc_iterations: 10,
                ..VoPipelineConfig::default()
            },
        )
        .unwrap();
        let run = vo.run_trajectory(&ds).unwrap();
        assert_eq!(run.estimates.len(), ds.frames.len());
        assert_eq!(run.per_step_variance.len(), ds.samples.len());
        assert!(run.per_step_variance.iter().all(|&v| v >= 0.0));
        assert!(run.trajectory.ate_rmse.is_finite());
        assert!(run.macro_stats.macs_executed > 0);
        // MC-dropout variance is non-degenerate.
        assert!(run.per_step_variance.iter().sum::<f64>() > 0.0);
    }

    #[test]
    fn reuse_cuts_executed_macs() {
        let ds = tiny_dataset(2);
        let net = train_vo_network(&ds.samples, ds.feature_dim(), &tiny_train_config()).unwrap();
        let run_with = |reuse: bool| {
            let mut vo = BayesianVo::build(
                &net,
                &calibration(&ds),
                VoPipelineConfig {
                    reuse,
                    order_samples: false,
                    mc_iterations: 12,
                    ..VoPipelineConfig::default()
                },
            )
            .unwrap();
            let _ = vo.predict(&ds.samples[0].features);
            vo.macro_stats()
        };
        let with = run_with(true);
        let without = run_with(false);
        assert_eq!(with.macs_full_equivalent, without.macs_full_equivalent);
        assert!(
            with.macs_executed < without.macs_executed,
            "reuse {} vs full {}",
            with.macs_executed,
            without.macs_executed
        );
    }

    #[test]
    fn ordering_does_not_hurt_and_usually_helps() {
        let ds = tiny_dataset(3);
        let net = train_vo_network(&ds.samples, ds.feature_dim(), &tiny_train_config()).unwrap();
        let macs = |order: bool| {
            let mut vo = BayesianVo::build(
                &net,
                &calibration(&ds),
                VoPipelineConfig {
                    order_samples: order,
                    mc_iterations: 16,
                    ..VoPipelineConfig::default()
                },
            )
            .unwrap();
            let _ = vo.predict(&ds.samples[0].features);
            vo.macro_stats().macs_executed
        };
        let ordered = macs(true);
        let unordered = macs(false);
        assert!(
            ordered <= unordered + unordered / 20,
            "ordered {ordered} vs unordered {unordered}"
        );
    }

    #[test]
    fn deterministic_paths_agree_at_high_precision() {
        let ds = tiny_dataset(4);
        let mut net =
            train_vo_network(&ds.samples, ds.feature_dim(), &tiny_train_config()).unwrap();
        let fp = run_fp_trajectory(&mut net, &ds);
        let mut vo = BayesianVo::build(
            &net,
            &calibration(&ds),
            VoPipelineConfig {
                weight_bits: 12,
                act_bits: 12,
                adc_bits: 0,
                ..VoPipelineConfig::default()
            },
        )
        .unwrap();
        let q = vo.run_trajectory_deterministic(&ds).unwrap();
        assert!(
            (q.trajectory.ate_rmse - fp.trajectory.ate_rmse).abs()
                < 0.1 * (1.0 + fp.trajectory.ate_rmse),
            "fp {} vs quant {}",
            fp.trajectory.ate_rmse,
            q.trajectory.ate_rmse
        );
    }

    #[test]
    fn pooled_predictions_match_owned() {
        // Reusing one McPrediction across frames (the run_trajectory
        // path) must be bit-identical to fresh predictions per frame.
        let ds = tiny_dataset(7);
        let net = train_vo_network(&ds.samples, ds.feature_dim(), &tiny_train_config()).unwrap();
        let config = VoPipelineConfig {
            mc_iterations: 8,
            ..VoPipelineConfig::default()
        };
        let mut owned_vo = BayesianVo::build(&net, &calibration(&ds), config.clone()).unwrap();
        let mut pooled_vo = BayesianVo::build(&net, &calibration(&ds), config).unwrap();
        let mut pooled = McPrediction::default();
        for sample in ds.samples.iter().take(5) {
            let owned = owned_vo.predict(&sample.features);
            pooled_vo.predict_into(&sample.features, &mut pooled);
            assert_eq!(owned, pooled);
        }
    }

    #[test]
    fn logit_variance_survives_narrow_quantization() {
        // Regression: at the default 4-bit precision the quantized MC
        // samples of different dropout masks frequently round onto
        // identical output codes, collapsing `total_variance()` to
        // numerical dust (~1e-19) — which starved the noise-inflation
        // and gating consumers. The pre-quantization shadow logits must
        // carry a live spread on every frame.
        let ds = tiny_dataset(9);
        let net = train_vo_network(&ds.samples, ds.feature_dim(), &tiny_train_config()).unwrap();
        let mut vo = BayesianVo::build(
            &net,
            &calibration(&ds),
            VoPipelineConfig {
                mc_iterations: 16,
                ..VoPipelineConfig::default()
            },
        )
        .unwrap();
        for sample in ds.samples.iter().take(5) {
            let pred = vo.predict(&sample.features);
            assert_eq!(pred.logit_samples.len(), pred.samples.len());
            let logit_var = pred
                .total_logit_variance()
                .expect("quantized path captures logits");
            assert!(
                logit_var.is_finite() && logit_var > 1e-8,
                "logit variance degenerate: {logit_var} (quantized: {})",
                pred.total_variance()
            );
        }
    }

    #[test]
    fn adaptive_policy_validation() {
        let bad = |min, max, lo, hi, dwell| {
            AdaptiveMcPolicy::new(AdaptiveMcConfig {
                min_iterations: min,
                max_iterations: max,
                var_low: lo,
                var_high: hi,
                dwell,
            })
            .is_err()
        };
        assert!(bad(1, 30, 0.1, 0.2, 1)); // min below 2
        assert!(bad(10, 5, 0.1, 0.2, 1)); // inverted bounds
        assert!(bad(5, 30, 0.2, 0.1, 1)); // inverted band
        assert!(bad(5, 30, -0.1, 0.2, 1)); // negative threshold
        assert!(bad(5, 30, 0.1, f64::INFINITY, 1)); // non-finite
        assert!(bad(5, 30, 0.1, 0.2, 0)); // zero dwell
        assert!(AdaptiveMcPolicy::fixed(30).is_ok());
        assert!(AdaptiveMcPolicy::fixed(1).is_err());
    }

    #[test]
    fn adaptive_policy_hysteresis_and_dwell() {
        let mut p = AdaptiveMcPolicy::new(AdaptiveMcConfig {
            min_iterations: 8,
            max_iterations: 30,
            var_low: 0.1,
            var_high: 0.3,
            dwell: 1,
        })
        .unwrap();
        // First frame: no history, maximum depth.
        assert_eq!(p.next_iterations(None), 30);
        // Confident: drop to the floor.
        assert_eq!(p.next_iterations(Some(0.05)), 8);
        // Dead zone: hold.
        assert_eq!(p.next_iterations(Some(0.2)), 8);
        // Uncertain: back to the ceiling.
        assert_eq!(p.next_iterations(Some(0.5)), 30);
        // Non-finite variance: hold.
        assert_eq!(p.next_iterations(Some(f64::NAN)), 30);
        assert_eq!(p.changes(), 2);
        p.reset();
        assert_eq!(p.changes(), 0);
        assert_eq!(p.next_iterations(Some(0.01)), 30, "first frame after reset");

        // Dwell 3 locks the depth for three frames after a change.
        let mut dwelled = AdaptiveMcPolicy::new(AdaptiveMcConfig {
            min_iterations: 8,
            max_iterations: 30,
            var_low: 0.1,
            var_high: 0.3,
            dwell: 3,
        })
        .unwrap();
        dwelled.next_iterations(None);
        let depths: Vec<usize> = [0.01, 0.5, 0.5, 0.5, 0.01]
            .iter()
            .map(|&v| dwelled.next_iterations(Some(v)))
            .collect();
        // No change can land within 3 frames of the previous one.
        let mut last_change = None;
        let mut prev = 30;
        for (i, &d) in depths.iter().enumerate() {
            if d != prev {
                if let Some(l) = last_change {
                    assert!(i - l >= 3, "changes at {l} and {i} under dwell 3");
                }
                last_change = Some(i);
            }
            prev = d;
        }
    }

    #[test]
    fn fixed_policy_is_pinned() {
        let mut p = AdaptiveMcPolicy::fixed(12).unwrap();
        assert!(p.is_fixed());
        assert_eq!(p.name(), "fixed-mc12");
        for v in [None, Some(0.0), Some(1e9), Some(f64::NAN)] {
            assert_eq!(p.next_iterations(v), 12);
        }
        assert_eq!(p.changes(), 0);
        let adaptive = AdaptiveMcPolicy::new(AdaptiveMcConfig {
            min_iterations: 4,
            max_iterations: 16,
            var_low: 0.1,
            var_high: 0.2,
            dwell: 2,
        })
        .unwrap();
        assert_eq!(adaptive.name(), "adaptive-mc[4..16]");
    }

    #[test]
    fn variable_depth_prediction_matches_fixed_at_config_depth() {
        // predict_n_into at the configured depth is the fixed path —
        // bit-identical samples, moments and RNG stream.
        let ds = tiny_dataset(8);
        let net = train_vo_network(&ds.samples, ds.feature_dim(), &tiny_train_config()).unwrap();
        let config = VoPipelineConfig {
            mc_iterations: 10,
            ..VoPipelineConfig::default()
        };
        let mut fixed = BayesianVo::build(&net, &calibration(&ds), config.clone()).unwrap();
        let mut variable = BayesianVo::build(&net, &calibration(&ds), config).unwrap();
        let mut fixed_pred = McPrediction::default();
        let mut var_pred = McPrediction::default();
        for sample in ds.samples.iter().take(4) {
            fixed.predict_into(&sample.features, &mut fixed_pred);
            variable.predict_n_into(&sample.features, 10, &mut var_pred);
            assert_eq!(fixed_pred, var_pred);
        }
        assert_eq!(fixed.macro_stats(), variable.macro_stats());
    }

    #[test]
    fn shrinking_depth_cuts_macro_work() {
        let ds = tiny_dataset(9);
        let net = train_vo_network(&ds.samples, ds.feature_dim(), &tiny_train_config()).unwrap();
        let config = VoPipelineConfig {
            mc_iterations: 24,
            ..VoPipelineConfig::default()
        };
        let mut vo = BayesianVo::build(&net, &calibration(&ds), config).unwrap();
        let mut pred = McPrediction::default();
        vo.predict_n_into(&ds.samples[0].features, 24, &mut pred);
        let deep = vo.macro_stats();
        assert_eq!(pred.samples.len(), 24);
        vo.predict_n_into(&ds.samples[1].features, 4, &mut pred);
        let shallow = vo.macro_stats().delta_since(&deep);
        assert_eq!(pred.samples.len(), 4);
        // A 4-pass frame executes a fraction of the 24-pass workload.
        assert!(
            shallow.macs_full_equivalent * 4 < deep.macs_full_equivalent,
            "shallow {} vs deep {}",
            shallow.macs_full_equivalent,
            deep.macs_full_equivalent
        );
    }

    #[test]
    fn adaptive_trajectory_with_pinned_policy_matches_fixed() {
        let ds = tiny_dataset(10);
        let net = train_vo_network(&ds.samples, ds.feature_dim(), &tiny_train_config()).unwrap();
        let config = VoPipelineConfig {
            mc_iterations: 8,
            ..VoPipelineConfig::default()
        };
        let fixed_run = BayesianVo::build(&net, &calibration(&ds), config.clone())
            .unwrap()
            .run_trajectory(&ds)
            .unwrap();
        let mut policy = AdaptiveMcPolicy::fixed(8).unwrap();
        let pinned_run = BayesianVo::build(&net, &calibration(&ds), config)
            .unwrap()
            .run_trajectory_adaptive(&ds, &mut policy)
            .unwrap();
        assert_eq!(fixed_run, pinned_run);
        assert_eq!(pinned_run.per_step_iterations, vec![8; ds.samples.len()]);
        assert_eq!(pinned_run.mean_iterations(), 8.0);
    }

    #[test]
    fn adaptive_trajectory_varies_depth_and_stays_in_bounds() {
        let ds = tiny_dataset(11);
        let net = train_vo_network(&ds.samples, ds.feature_dim(), &tiny_train_config()).unwrap();
        let config = VoPipelineConfig {
            mc_iterations: 20,
            ..VoPipelineConfig::default()
        };
        // Thresholds straddling the observed variance scale: probe with a
        // fixed run first.
        let probe = BayesianVo::build(&net, &calibration(&ds), config.clone())
            .unwrap()
            .run_trajectory(&ds)
            .unwrap();
        let mut sorted = probe.per_step_variance.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mid = sorted[sorted.len() / 2];
        let mc_config = AdaptiveMcConfig {
            min_iterations: 4,
            max_iterations: 20,
            var_low: mid,
            var_high: mid * 4.0 + 1e-9,
            dwell: 1,
        };
        let run = |ds: &VoDataset| {
            let mut policy = AdaptiveMcPolicy::new(mc_config).unwrap();
            BayesianVo::build(&net, &calibration(ds), config.clone())
                .unwrap()
                .run_trajectory_adaptive(ds, &mut policy)
                .unwrap()
        };
        let adaptive = run(&ds);
        assert!(adaptive
            .per_step_iterations
            .iter()
            .all(|&t| (4..=20).contains(&t)));
        assert_eq!(adaptive.per_step_iterations[0], 20, "starts at max depth");
        assert!(
            adaptive.mean_iterations() < 20.0,
            "depth adapted: {:?}",
            adaptive.per_step_iterations
        );
        // Fewer passes → strictly less macro work than the fixed run.
        assert!(adaptive.macro_stats.macs_full_equivalent < probe.macro_stats.macs_full_equivalent);
        // Deterministic across repeats.
        assert_eq!(run(&ds), adaptive);
    }

    #[test]
    fn silicon_rng_source_works() {
        let ds = tiny_dataset(5);
        let net = train_vo_network(&ds.samples, ds.feature_dim(), &tiny_train_config()).unwrap();
        let mut vo = BayesianVo::build(
            &net,
            &calibration(&ds),
            VoPipelineConfig {
                silicon_rng: true,
                mc_iterations: 8,
                ..VoPipelineConfig::default()
            },
        )
        .unwrap();
        let pred = vo.predict(&ds.samples[0].features);
        assert!(pred.total_variance() > 0.0);
        let bits = vo.masks.silicon_bits().unwrap();
        assert!(bits > 0, "silicon rng consumed {bits} bits");
    }

    #[test]
    fn empty_dataset_rejected() {
        let ds = tiny_dataset(6);
        let net = train_vo_network(&ds.samples, ds.feature_dim(), &tiny_train_config()).unwrap();
        let mut vo =
            BayesianVo::build(&net, &calibration(&ds), VoPipelineConfig::default()).unwrap();
        let empty = VoDataset {
            frames: ds.frames.clone(),
            samples: vec![],
            grid: ds.grid,
            camera: ds.camera,
        };
        assert!(vo.run_trajectory(&empty).is_err());
    }
}
