//! The pluggable map-backend registry.
//!
//! The localization pipeline used to hard-wire its map backends in a
//! closed enum, which meant a new backend (a learned NN map, a remote
//! map service, a test double) required editing `navicim-core`. This
//! module dissolves that enum into open trait-based serving:
//!
//! - [`MapBackend`] — what the particle filter's weight step needs from a
//!   map: batched log-likelihood evaluation (the
//!   [`LikelihoodBackend`] supertrait) plus a name, a component count and
//!   trait-level [`BackendStats`],
//! - [`BackendRegistry`] — named factories producing
//!   `Box<dyn MapBackend>` from a [`MapFitContext`] (the dataset's point
//!   cloud and fit settings); the digital GMM, the digital HMGM and the
//!   analog CIM engine are registered by default,
//! - [`NamedBackend`] / [`ClosureBackend`] — adapters that lift any
//!   [`LikelihoodBackend`] or any `FnMut(&[f64]) -> f64` into a
//!   [`MapBackend`], so examples and downstream crates can register
//!   custom backends without touching this crate.
//!
//! ```
//! use navicim_core::registry::{BackendRegistry, ClosureBackend, MapFitContext};
//! use navicim_analog::engine::CimEngineConfig;
//! use navicim_gmm::fit::FitConfig;
//!
//! let mut registry = BackendRegistry::with_defaults();
//! // A custom backend plugs in as a named factory.
//! registry.register("flat-map", |ctx: &MapFitContext<'_>| {
//!     let dim = ctx.points.first().map_or(3, Vec::len);
//!     Ok(Box::new(ClosureBackend::new("flat-map", dim, 1, |_q| 0.0)))
//! });
//! assert!(registry.contains("flat-map"));
//! assert!(registry.contains("cim-hmgm"));
//! ```

use crate::{CoreError, Result};
use navicim_analog::engine::{CimEngineConfig, EngineStats, HmgmCimEngine, NoiseSegment};
use navicim_analog::mapping::SpaceMap;
use navicim_backend::{check_batch_shape, par, LikelihoodBackend, PointBatch};
use navicim_device::noise::NoiseStream;
use navicim_gmm::fit::{fit_diag_gmm, FitConfig};
use navicim_gmm::hmg::{fit_hmgm, HmgmFitConfig};
use navicim_gmm::prune::PruneConfig;
use navicim_math::rng::Pcg32;
use std::collections::BTreeMap;
use std::fmt;

/// Name of the default conventional digital diagonal-GMM backend.
pub const DIGITAL_GMM: &str = "digital-gmm";
/// Name of the default digital HMGM backend (the co-designed kernel
/// family evaluated in floating point — the ablation between the two).
pub const DIGITAL_HMGM: &str = "digital-hmgm";
/// Name of the default analog HMGM inverter-array CIM backend.
pub const CIM_HMGM: &str = "cim-hmgm";

/// Operation counters every map backend reports, replacing per-variant
/// enum matching. Digital backends leave the converter fields at zero;
/// analog backends map their engine counters onto all four.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BackendStats {
    /// Point evaluations served.
    pub evaluations: u64,
    /// Input DAC conversions performed (analog backends only).
    pub dac_conversions: u64,
    /// Output ADC conversions performed (analog backends only).
    pub adc_conversions: u64,
    /// Sum of total array currents over all evaluations, in amperes
    /// (analog backends only).
    pub current_sum: f64,
    /// Analog column activations actually driven (gated columns
    /// excluded; zero for digital backends).
    pub column_activations: u64,
    /// Column activation slots offered — evaluations × array columns
    /// (zero for digital backends; equals `column_activations` when
    /// gating is off).
    pub column_slots: u64,
}

impl BackendStats {
    /// Average array current per evaluation, in amperes (zero for
    /// digital backends).
    pub fn avg_current(&self) -> f64 {
        if self.evaluations == 0 {
            0.0
        } else {
            self.current_sum / self.evaluations as f64
        }
    }

    /// Whether the counters came from an analog datapath (the energy
    /// binaries branch on this instead of on backend variants).
    pub fn is_analog(&self) -> bool {
        self.adc_conversions > 0 || self.dac_conversions > 0
    }

    /// Counters accumulated since an `earlier` snapshot of the same
    /// backend — the per-frame deltas the gated pipeline prices energy
    /// from.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `earlier` is ahead of `self`, which
    /// would mean the snapshots were swapped.
    pub fn delta_since(&self, earlier: &BackendStats) -> BackendStats {
        debug_assert!(
            self.evaluations >= earlier.evaluations,
            "stats snapshots out of order"
        );
        BackendStats {
            evaluations: self.evaluations - earlier.evaluations,
            dac_conversions: self.dac_conversions - earlier.dac_conversions,
            adc_conversions: self.adc_conversions - earlier.adc_conversions,
            current_sum: self.current_sum - earlier.current_sum,
            column_activations: self.column_activations - earlier.column_activations,
            column_slots: self.column_slots - earlier.column_slots,
        }
    }

    /// Fraction of offered column slots actually driven (1.0 when none
    /// were offered — digital backends, idle analog backends) — the
    /// factor the energy model scales per-evaluation DAC drive by.
    pub fn active_column_fraction(&self) -> f64 {
        if self.column_slots == 0 {
            1.0
        } else {
            self.column_activations as f64 / self.column_slots as f64
        }
    }

    /// Sum of the counters with `other` — aggregates the per-slot stats
    /// of a multi-backend pipeline into one run total.
    pub fn merged(&self, other: &BackendStats) -> BackendStats {
        BackendStats {
            evaluations: self.evaluations + other.evaluations,
            dac_conversions: self.dac_conversions + other.dac_conversions,
            adc_conversions: self.adc_conversions + other.adc_conversions,
            current_sum: self.current_sum + other.current_sum,
            column_activations: self.column_activations + other.column_activations,
            column_slots: self.column_slots + other.column_slots,
        }
    }
}

impl From<EngineStats> for BackendStats {
    fn from(s: EngineStats) -> Self {
        Self {
            evaluations: s.evaluations,
            dac_conversions: s.dac_conversions,
            adc_conversions: s.adc_conversions,
            current_sum: s.current_sum,
            column_activations: s.column_activations,
            column_slots: s.column_slots,
        }
    }
}

/// A named, stats-reporting map-likelihood backend — the object the
/// localization weight step is generic over.
///
/// The evaluation contract is inherited from [`LikelihoodBackend`]:
/// batch evaluation must be bit-identical to scalar evaluation in order,
/// so the filter can batch whole frames freely.
///
/// Backends are `Send` so localization sessions can move across the
/// worker threads of a serving layer; the optional serving surface
/// ([`Self::fork_session`] and the coalesced-serving trio) lets many
/// sessions share one fitted map with per-session evaluation state.
pub trait MapBackend: LikelihoodBackend + Send {
    /// Backend name for reports (usually the registry key it was built
    /// under).
    fn name(&self) -> &str;

    /// Number of mixture components (or the closest analogous notion of
    /// map capacity).
    fn components(&self) -> usize;

    /// Operation counters accumulated since construction.
    fn stats(&self) -> BackendStats;

    /// A fresh evaluation session over this backend's fitted map: the
    /// same map parameters (shared where possible — the CIM backend
    /// shares its fabricated fabric behind an `Arc`), with evaluation
    /// state (noise cursor, counters) reset as if just built, so a fork
    /// behaves bit-identically to rebuilding the backend from the same
    /// fit. `None` when the backend cannot fork (e.g. closures with
    /// captured mutable state); such backends cannot serve a fleet.
    fn fork_session(&self) -> Option<Box<dyn MapBackend>> {
        None
    }

    /// This session's counter-based evaluation noise stream, when
    /// evaluations consume one (analog backends). A serving layer uses it
    /// to build the [`NoiseSegment`]s of a coalesced batch and to audit
    /// that successive claims stay contiguous
    /// (`navicim_device::noise::StreamAudit`).
    fn noise_stream(&self) -> Option<NoiseStream> {
        None
    }

    /// Whether [`Self::serve_segments`] / [`Self::absorb_served`] are
    /// implemented, i.e. a serving layer may coalesce many sessions'
    /// frame batches into single large evaluations through this backend.
    fn supports_coalesced_serving(&self) -> bool {
        false
    }

    /// Evaluates a coalesced multi-session batch. `segments` assigns each
    /// slice of the batch to its owning session's noise stream (digital
    /// backends ignore it — their evaluations are pure, so any split is
    /// bit-identical by the [`LikelihoodBackend`] contract). Pre-noise
    /// array currents land in `currents` (untouched for digital
    /// backends). This instance acts only as the evaluator: its own
    /// session state must not change — each owning session commits its
    /// slice via [`Self::absorb_served`].
    ///
    /// # Panics
    ///
    /// Panics when `self.supports_coalesced_serving()` is false, and on
    /// shape mismatches.
    fn serve_segments(
        &mut self,
        batch: &PointBatch,
        segments: &[NoiseSegment],
        out: &mut [f64],
        currents: &mut [f64],
    ) {
        let _ = (batch, segments, out, currents);
        unimplemented!(
            "backend {:?} does not support coalesced serving",
            self.name()
        );
    }

    /// Commits `count` externally served evaluations (this session's
    /// slice of a coalesced batch, with its slice of the pre-noise
    /// currents) into the session state — exactly the bookkeeping a
    /// direct `log_likelihood_into` of the same points would have
    /// performed, so served sessions stay bit-identical to solo runs.
    ///
    /// # Panics
    ///
    /// Panics when `self.supports_coalesced_serving()` is false.
    fn absorb_served(&mut self, count: usize, currents: &[f64]) {
        let _ = (count, currents);
        unimplemented!(
            "backend {:?} does not support coalesced serving",
            self.name()
        );
    }

    /// [`Self::serve_segments`] that additionally reports per-segment
    /// column activations into `seg_activations` (same length as
    /// `segments`), so gated analog sessions can price only the columns
    /// actually driven. The default delegates to plain serving and
    /// reports zero — correct for backends without column accounting
    /// (digital backends leave the column counters at zero throughout).
    fn serve_segments_counted(
        &mut self,
        batch: &PointBatch,
        segments: &[NoiseSegment],
        out: &mut [f64],
        currents: &mut [f64],
        seg_activations: &mut [u64],
    ) {
        self.serve_segments(batch, segments, out, currents);
        seg_activations.fill(0);
    }

    /// [`Self::absorb_served`] with the session's column-activation count
    /// from [`Self::serve_segments_counted`]. The default ignores the
    /// count — again correct for backends without column accounting.
    fn absorb_served_gated(&mut self, count: usize, currents: &[f64], column_activations: u64) {
        let _ = column_activations;
        self.absorb_served(count, currents);
    }
}

/// Everything a backend factory gets to build a map: the dataset's point
/// cloud plus the localizer's fit settings.
#[derive(Debug, Clone, Copy)]
pub struct MapFitContext<'a> {
    /// Map point cloud, one row per world point.
    pub points: &'a [Vec<f64>],
    /// Requested mixture-component count.
    pub components: usize,
    /// Mixture-fit settings (GMM warm start for the HMGM family too).
    pub fit: &'a FitConfig,
    /// Analog-engine settings (ignored by digital backends). Note that
    /// hardware randomness — fabrication variation and evaluation noise —
    /// is governed by [`CimEngineConfig::seed`], not by [`Self::seed`],
    /// exactly as in the pre-registry pipeline: sweep the engine seed to
    /// sample process corners, the localizer seed to resample fits and
    /// particle clouds.
    pub cim: &'a CimEngineConfig,
    /// Spatial component-pruning knob, compiled into the fitted map by
    /// every default factory (digital kernels gate at the documented
    /// `PRUNE_EPSILON`; the CIM backend turns it into column gating).
    /// Disabled by default — off-mode is bit-identical by construction.
    pub prune: PruneConfig,
    /// Seed for map fitting (salted internally so factory fit draws never
    /// collide with the localizer's particle-init stream).
    pub seed: u64,
}

/// A factory producing a boxed backend from a fit context.
pub type BackendFactory =
    Box<dyn Fn(&MapFitContext<'_>) -> Result<Box<dyn MapBackend>> + Send + Sync>;

/// Named [`MapBackend`] factories.
///
/// Factories are looked up by name at
/// [`crate::localization::CimLocalizer::build`] time, so selecting a
/// backend is a string in [`crate::localization::LocalizerConfig`] and
/// adding one is a [`BackendRegistry::register`] call — no core changes
/// required.
pub struct BackendRegistry {
    factories: BTreeMap<String, BackendFactory>,
}

impl fmt::Debug for BackendRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BackendRegistry")
            .field("names", &self.names().collect::<Vec<_>>())
            .finish()
    }
}

impl Default for BackendRegistry {
    fn default() -> Self {
        Self::with_defaults()
    }
}

impl BackendRegistry {
    /// A registry with no factories.
    pub fn empty() -> Self {
        Self {
            factories: BTreeMap::new(),
        }
    }

    /// A registry with the three paper backends registered:
    /// [`DIGITAL_GMM`], [`DIGITAL_HMGM`] and [`CIM_HMGM`].
    pub fn with_defaults() -> Self {
        let mut reg = Self::empty();
        reg.register(DIGITAL_GMM, build_digital_gmm);
        reg.register(DIGITAL_HMGM, build_digital_hmgm);
        reg.register(CIM_HMGM, build_cim_hmgm);
        reg
    }

    /// Registers (or replaces) a factory under `name`.
    pub fn register<F>(&mut self, name: impl Into<String>, factory: F)
    where
        F: Fn(&MapFitContext<'_>) -> Result<Box<dyn MapBackend>> + Send + Sync + 'static,
    {
        self.factories.insert(name.into(), Box::new(factory));
    }

    /// Registered backend names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.factories.keys().map(String::as_str)
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.factories.contains_key(name)
    }

    /// Builds the backend registered under `name`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidArgument`] for unknown names (listing
    /// what is registered) and propagates factory errors.
    pub fn build(&self, name: &str, ctx: &MapFitContext<'_>) -> Result<Box<dyn MapBackend>> {
        let factory = self.factories.get(name).ok_or_else(|| {
            CoreError::InvalidArgument(format!(
                "unknown backend {name:?}; registered: [{}]",
                self.names().collect::<Vec<_>>().join(", ")
            ))
        })?;
        factory(ctx)
    }
}

/// Domain separator between the factories' fit RNGs and the localizer's
/// particle/filter RNG, which are both derived from the same master
/// seed: without it the centroid-init draws and the particle-init draws
/// would be bit-identical streams.
const FIT_RNG_SALT: u64 = 0x000f_175e_ed0f_ba5e;

fn fit_rng(seed: u64) -> Pcg32 {
    Pcg32::seed_from_u64(seed ^ FIT_RNG_SALT)
}

fn build_digital_gmm(ctx: &MapFitContext<'_>) -> Result<Box<dyn MapBackend>> {
    let mut rng = fit_rng(ctx.seed);
    let mut gmm = fit_diag_gmm(ctx.points, ctx.components, ctx.fit, &mut rng)?;
    gmm.set_prune(ctx.prune);
    let components = gmm.num_components();
    Ok(Box::new(NamedBackend::new(DIGITAL_GMM, components, gmm)))
}

fn build_digital_hmgm(ctx: &MapFitContext<'_>) -> Result<Box<dyn MapBackend>> {
    let mut rng = fit_rng(ctx.seed);
    let config = HmgmFitConfig {
        gmm: *ctx.fit,
        ..HmgmFitConfig::default()
    };
    let mut model = fit_hmgm(ctx.points, ctx.components, &config, &mut rng)?;
    model.set_prune(ctx.prune);
    let components = model.num_components();
    Ok(Box::new(NamedBackend::new(DIGITAL_HMGM, components, model)))
}

fn build_cim_hmgm(ctx: &MapFitContext<'_>) -> Result<Box<dyn MapBackend>> {
    let mut rng = fit_rng(ctx.seed);
    let cim = ctx.cim;
    let vdd = cim.tech.vdd;
    let space = SpaceMap::fit_to_points(ctx.points, vdd * 0.15, vdd * 0.85, 0.1)?;
    let (floors, ceilings) = HmgmCimEngine::recommended_sigma_bounds_per_axis(&cim.tech, &space);
    let hmgm_config = HmgmFitConfig {
        gmm: *ctx.fit,
        sigma_floor_axes: Some(floors),
        sigma_ceiling_axes: Some(ceilings),
        ..HmgmFitConfig::default()
    };
    let model = fit_hmgm(ctx.points, ctx.components, &hmgm_config, &mut rng)?;
    let engine = HmgmCimEngine::build_with_pruning(&model, space, *cim, ctx.prune)?;
    Ok(Box::new(CimMapBackend::new(engine)))
}

/// Lifts any pure [`LikelihoodBackend`] into a [`MapBackend`] by
/// attaching a name, a component count and an evaluation counter.
#[derive(Debug, Clone)]
pub struct NamedBackend<B> {
    name: String,
    components: usize,
    evaluations: u64,
    inner: B,
}

impl<B: LikelihoodBackend> NamedBackend<B> {
    /// Wraps `inner` under `name`.
    pub fn new(name: impl Into<String>, components: usize, inner: B) -> Self {
        Self {
            name: name.into(),
            components,
            evaluations: 0,
            inner,
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }
}

impl<B: LikelihoodBackend> LikelihoodBackend for NamedBackend<B> {
    fn dim(&self) -> usize {
        self.inner.dim()
    }

    fn log_likelihood_into(&mut self, batch: &PointBatch, out: &mut [f64]) {
        self.evaluations += batch.len() as u64;
        self.inner.log_likelihood_into(batch, out);
    }
}

impl<B: LikelihoodBackend + Clone + Send + 'static> MapBackend for NamedBackend<B> {
    fn name(&self) -> &str {
        &self.name
    }

    fn components(&self) -> usize {
        self.components
    }

    fn stats(&self) -> BackendStats {
        BackendStats {
            evaluations: self.evaluations,
            ..BackendStats::default()
        }
    }

    fn fork_session(&self) -> Option<Box<dyn MapBackend>> {
        Some(Box::new(Self {
            name: self.name.clone(),
            components: self.components,
            evaluations: 0,
            inner: self.inner.clone(),
        }))
    }

    fn supports_coalesced_serving(&self) -> bool {
        true
    }

    fn serve_segments(
        &mut self,
        batch: &PointBatch,
        _segments: &[NoiseSegment],
        out: &mut [f64],
        _currents: &mut [f64],
    ) {
        // Digital evaluation is pure, so a concatenated batch is
        // bit-identical to the per-session sub-batches by the
        // LikelihoodBackend contract. Going through `inner` directly
        // keeps this evaluator's own counter untouched.
        self.inner.log_likelihood_into(batch, out);
    }

    fn absorb_served(&mut self, count: usize, _currents: &[f64]) {
        self.evaluations += count as u64;
    }
}

/// The analog CIM engine as a [`MapBackend`], surfacing the engine's
/// hardware counters as [`BackendStats`].
#[derive(Debug, Clone)]
pub struct CimMapBackend {
    name: String,
    engine: HmgmCimEngine,
}

impl CimMapBackend {
    /// Wraps a compiled engine under the default [`CIM_HMGM`] name.
    pub fn new(engine: HmgmCimEngine) -> Self {
        Self::with_name(CIM_HMGM, engine)
    }

    /// Wraps a compiled engine under a custom name (for registering
    /// differently-configured analog variants side by side).
    pub fn with_name(name: impl Into<String>, engine: HmgmCimEngine) -> Self {
        Self {
            name: name.into(),
            engine,
        }
    }

    /// The compiled engine (array inspection, energy accounting).
    pub fn engine(&self) -> &HmgmCimEngine {
        &self.engine
    }
}

impl LikelihoodBackend for CimMapBackend {
    fn dim(&self) -> usize {
        self.engine.dim()
    }

    fn log_likelihood_into(&mut self, batch: &PointBatch, out: &mut [f64]) {
        self.engine.log_likelihood_into(batch, out);
    }
}

impl MapBackend for CimMapBackend {
    fn name(&self) -> &str {
        &self.name
    }

    fn components(&self) -> usize {
        self.engine.array().num_columns()
    }

    fn stats(&self) -> BackendStats {
        self.engine.stats().into()
    }

    fn fork_session(&self) -> Option<Box<dyn MapBackend>> {
        Some(Box::new(Self {
            name: self.name.clone(),
            engine: self.engine.fork_session(),
        }))
    }

    fn noise_stream(&self) -> Option<NoiseStream> {
        Some(self.engine.noise_stream())
    }

    fn supports_coalesced_serving(&self) -> bool {
        true
    }

    fn serve_segments(
        &mut self,
        batch: &PointBatch,
        segments: &[NoiseSegment],
        out: &mut [f64],
        currents: &mut [f64],
    ) {
        // The auto policy inherits `par::MIN_CHUNK` — the one chunk-size
        // source of truth — so a coalesced batch threads exactly when a
        // solo batch of the same size would.
        self.engine
            .serve_segments(batch, segments, out, currents, par::ChunkPolicy::auto());
    }

    fn absorb_served(&mut self, count: usize, currents: &[f64]) {
        assert_eq!(
            count,
            currents.len(),
            "analog absorb requires one pre-noise current per evaluation"
        );
        self.engine.absorb_served_evals(currents);
    }

    fn serve_segments_counted(
        &mut self,
        batch: &PointBatch,
        segments: &[NoiseSegment],
        out: &mut [f64],
        currents: &mut [f64],
        seg_activations: &mut [u64],
    ) {
        self.engine.serve_segments_counted(
            batch,
            segments,
            out,
            currents,
            par::ChunkPolicy::auto(),
            seg_activations,
        );
    }

    fn absorb_served_gated(&mut self, count: usize, currents: &[f64], column_activations: u64) {
        assert_eq!(
            count,
            currents.len(),
            "analog absorb requires one pre-noise current per evaluation"
        );
        self.engine
            .absorb_served_evals_gated(currents, column_activations);
    }
}

/// A [`MapBackend`] from a plain scoring closure — the cheapest way to
/// plug an experimental map (lookup table, learned regressor, test
/// double) into the localizer.
pub struct ClosureBackend<F> {
    name: String,
    dim: usize,
    components: usize,
    evaluations: u64,
    f: F,
}

impl<F: FnMut(&[f64]) -> f64 + Send> ClosureBackend<F> {
    /// Wraps `f` as a `dim`-dimensional backend named `name`.
    pub fn new(name: impl Into<String>, dim: usize, components: usize, f: F) -> Self {
        Self {
            name: name.into(),
            dim,
            components,
            evaluations: 0,
            f,
        }
    }
}

impl<F: FnMut(&[f64]) -> f64 + Send> LikelihoodBackend for ClosureBackend<F> {
    fn dim(&self) -> usize {
        self.dim
    }

    fn log_likelihood_into(&mut self, batch: &PointBatch, out: &mut [f64]) {
        check_batch_shape(self.dim, batch, out);
        self.evaluations += batch.len() as u64;
        for (o, p) in out.iter_mut().zip(batch.iter()) {
            *o = (self.f)(p);
        }
    }
}

impl<F: FnMut(&[f64]) -> f64 + Send> MapBackend for ClosureBackend<F> {
    fn name(&self) -> &str {
        &self.name
    }

    fn components(&self) -> usize {
        self.components
    }

    fn stats(&self) -> BackendStats {
        BackendStats {
            evaluations: self.evaluations,
            ..BackendStats::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use navicim_math::rng::SampleExt;

    fn blob_points(n: usize) -> Vec<Vec<f64>> {
        let mut rng = Pcg32::seed_from_u64(4);
        (0..n)
            .map(|_| {
                vec![
                    rng.sample_normal(0.0, 0.4),
                    rng.sample_normal(0.0, 0.4),
                    rng.sample_normal(0.5, 0.3),
                ]
            })
            .collect()
    }

    fn ctx<'a>(
        points: &'a [Vec<f64>],
        fit: &'a FitConfig,
        cim: &'a CimEngineConfig,
    ) -> MapFitContext<'a> {
        MapFitContext {
            points,
            components: 4,
            fit,
            cim,
            prune: PruneConfig::default(),
            seed: 9,
        }
    }

    #[test]
    fn default_registry_builds_all_three_backends() {
        let points = blob_points(400);
        let fit = FitConfig::default();
        let cim = CimEngineConfig::default();
        let ctx = ctx(&points, &fit, &cim);
        let registry = BackendRegistry::with_defaults();
        assert_eq!(
            registry.names().collect::<Vec<_>>(),
            vec![CIM_HMGM, DIGITAL_GMM, DIGITAL_HMGM]
        );
        for name in [DIGITAL_GMM, DIGITAL_HMGM, CIM_HMGM] {
            let mut backend = registry.build(name, &ctx).expect(name);
            assert_eq!(backend.name(), name);
            assert_eq!(backend.dim(), 3);
            assert!(backend.components() > 0);
            let ll = backend.log_likelihood_point(&[0.0, 0.0, 0.5]);
            assert!(ll.is_finite(), "{name}: {ll}");
            assert_eq!(backend.stats().evaluations, 1, "{name}");
            assert_eq!(backend.stats().is_analog(), name == CIM_HMGM, "{name}");
        }
    }

    #[test]
    fn unknown_backend_lists_registered_names() {
        let points = blob_points(50);
        let fit = FitConfig::default();
        let cim = CimEngineConfig::default();
        let err = BackendRegistry::with_defaults()
            .build("no-such-map", &ctx(&points, &fit, &cim))
            .err()
            .expect("unknown name must fail");
        let msg = err.to_string();
        assert!(msg.contains("no-such-map"), "{msg}");
        assert!(msg.contains(DIGITAL_GMM), "{msg}");
    }

    #[test]
    fn custom_factory_round_trips() {
        let points = blob_points(10);
        let fit = FitConfig::default();
        let cim = CimEngineConfig::default();
        let mut registry = BackendRegistry::empty();
        assert!(!registry.contains("origin-map"));
        registry.register("origin-map", |ctx: &MapFitContext<'_>| {
            let dim = ctx.points.first().map_or(3, Vec::len);
            Ok(Box::new(ClosureBackend::new(
                "origin-map",
                dim,
                1,
                |q: &[f64]| -q.iter().map(|x| x * x).sum::<f64>(),
            )))
        });
        let mut backend = registry
            .build("origin-map", &ctx(&points, &fit, &cim))
            .unwrap();
        assert_eq!(backend.log_likelihood_point(&[0.0, 0.0, 0.0]), 0.0);
        assert!(backend.log_likelihood_point(&[1.0, 0.0, 0.0]) < 0.0);
        assert_eq!(backend.stats().evaluations, 2);
        assert!(!backend.stats().is_analog());
    }

    #[test]
    fn named_backend_counts_evaluations_and_exposes_inner() {
        let points = blob_points(200);
        let mut rng = Pcg32::seed_from_u64(1);
        let gmm = fit_diag_gmm(&points, 3, &FitConfig::default(), &mut rng).unwrap();
        let mut named = NamedBackend::new("test-gmm", gmm.num_components(), gmm);
        let mut batch = PointBatch::new(3);
        batch.push_xyz(0.0, 0.0, 0.5);
        batch.push_xyz(1.0, 1.0, 1.0);
        let out = named.log_likelihood_batch(&batch);
        assert_eq!(out.len(), 2);
        assert_eq!(named.stats().evaluations, 2);
        assert_eq!(named.inner().num_components(), named.components());
        assert_eq!(named.stats().avg_current(), 0.0);
    }

    #[test]
    fn backend_stats_delta_and_merge() {
        let earlier = BackendStats {
            evaluations: 10,
            dac_conversions: 30,
            adc_conversions: 10,
            current_sum: 1.0,
            column_activations: 35,
            column_slots: 40,
        };
        let later = BackendStats {
            evaluations: 25,
            dac_conversions: 75,
            adc_conversions: 25,
            current_sum: 2.5,
            column_activations: 80,
            column_slots: 100,
        };
        let delta = later.delta_since(&earlier);
        assert_eq!(delta.evaluations, 15);
        assert_eq!(delta.dac_conversions, 45);
        assert_eq!(delta.adc_conversions, 15);
        assert!((delta.current_sum - 1.5).abs() < 1e-12);
        assert_eq!(delta.column_activations, 45);
        assert_eq!(delta.column_slots, 60);
        assert!((delta.active_column_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(BackendStats::default().active_column_fraction(), 1.0);
        assert_eq!(earlier.merged(&delta), later);
        assert_eq!(
            BackendStats::default().merged(&later).evaluations,
            later.evaluations
        );
    }

    #[test]
    fn backend_stats_avg_current() {
        let stats = BackendStats {
            evaluations: 4,
            dac_conversions: 12,
            adc_conversions: 4,
            current_sum: 8e-6,
            ..BackendStats::default()
        };
        assert!((stats.avg_current() - 2e-6).abs() < 1e-18);
        assert!(stats.is_analog());
        assert_eq!(BackendStats::default().avg_current(), 0.0);
    }
}
