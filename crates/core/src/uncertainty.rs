//! Uncertainty-calibration diagnostics shared by both pipelines.
//!
//! The paper's Fig. 3(f) argues that predictive variance correlates with
//! pose error, so high variance can *signal* likely mispredictions. These
//! utilities quantify that relationship.

use crate::{CoreError, Result};
use navicim_math::stats;

/// Summary of the error-uncertainty relationship.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationSummary {
    /// Pearson correlation between uncertainty and |error|.
    pub pearson: f64,
    /// Spearman rank correlation between uncertainty and |error|.
    pub spearman: f64,
    /// Mean |error| within each uncertainty quantile bin (ascending).
    pub binned_errors: Vec<f64>,
    /// Mean uncertainty within each bin (ascending).
    pub binned_uncertainty: Vec<f64>,
}

impl CalibrationSummary {
    /// Returns `true` when binned errors increase from the lowest to the
    /// highest uncertainty bin — the qualitative shape of Fig. 3(f).
    pub fn monotone_trend(&self) -> bool {
        match (self.binned_errors.first(), self.binned_errors.last()) {
            (Some(first), Some(last)) => last > first,
            _ => false,
        }
    }
}

/// Computes correlation and a quantile-binned calibration curve between
/// per-sample uncertainties and absolute errors.
///
/// # Errors
///
/// Returns [`CoreError::InvalidArgument`] for mismatched/short inputs or a
/// zero bin count, and propagates correlation failures (constant inputs).
pub fn calibration_summary(
    uncertainties: &[f64],
    errors: &[f64],
    bins: usize,
) -> Result<CalibrationSummary> {
    if uncertainties.len() != errors.len() || uncertainties.len() < 4 {
        return Err(CoreError::InvalidArgument(
            "calibration requires >= 4 matched samples".into(),
        ));
    }
    if bins == 0 || bins > uncertainties.len() {
        return Err(CoreError::InvalidArgument(
            "bin count must be in [1, n]".into(),
        ));
    }
    let abs_err: Vec<f64> = errors.iter().map(|e| e.abs()).collect();
    let pearson = stats::pearson(uncertainties, &abs_err)
        .map_err(|e| CoreError::InvalidArgument(e.to_string()))?;
    let spearman = stats::spearman(uncertainties, &abs_err)
        .map_err(|e| CoreError::InvalidArgument(e.to_string()))?;

    // Quantile binning by uncertainty.
    let mut idx: Vec<usize> = (0..uncertainties.len()).collect();
    idx.sort_by(|&a, &b| {
        uncertainties[a]
            .partial_cmp(&uncertainties[b])
            .expect("uncertainties must be comparable")
    });
    let mut binned_errors = Vec::with_capacity(bins);
    let mut binned_uncertainty = Vec::with_capacity(bins);
    for b in 0..bins {
        let lo = b * idx.len() / bins;
        let hi = ((b + 1) * idx.len() / bins).max(lo + 1).min(idx.len());
        let members = &idx[lo..hi];
        binned_errors.push(stats::mean(
            &members.iter().map(|&i| abs_err[i]).collect::<Vec<_>>(),
        ));
        binned_uncertainty.push(stats::mean(
            &members
                .iter()
                .map(|&i| uncertainties[i])
                .collect::<Vec<_>>(),
        ));
    }
    Ok(CalibrationSummary {
        pearson,
        spearman,
        binned_errors,
        binned_uncertainty,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use navicim_math::rng::{Pcg32, SampleExt};

    #[test]
    fn correlated_data_detected() {
        let mut rng = Pcg32::seed_from_u64(1);
        let unc: Vec<f64> = (0..500).map(|_| rng.sample_uniform(0.0, 1.0)).collect();
        let err: Vec<f64> = unc
            .iter()
            .map(|&u| u * 2.0 + rng.sample_normal(0.0, 0.2))
            .collect();
        let s = calibration_summary(&unc, &err, 5).unwrap();
        assert!(s.pearson > 0.8, "pearson {}", s.pearson);
        assert!(s.spearman > 0.8, "spearman {}", s.spearman);
        assert!(s.monotone_trend());
        assert_eq!(s.binned_errors.len(), 5);
        // Bins ordered by uncertainty.
        for w in s.binned_uncertainty.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn uncorrelated_data_near_zero() {
        let mut rng = Pcg32::seed_from_u64(2);
        let unc: Vec<f64> = (0..500).map(|_| rng.sample_uniform(0.0, 1.0)).collect();
        let err: Vec<f64> = (0..500).map(|_| rng.sample_uniform(0.0, 1.0)).collect();
        let s = calibration_summary(&unc, &err, 4).unwrap();
        assert!(s.pearson.abs() < 0.15, "pearson {}", s.pearson);
    }

    #[test]
    fn validation() {
        assert!(calibration_summary(&[1.0, 2.0], &[1.0], 2).is_err());
        assert!(calibration_summary(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0], 2).is_err());
        let four = [1.0, 2.0, 3.0, 4.0];
        assert!(calibration_summary(&four, &four, 0).is_err());
        assert!(calibration_summary(&four, &four, 9).is_err());
        // Constant uncertainty: correlation undefined.
        assert!(calibration_summary(&[1.0; 4], &four, 2).is_err());
    }

    #[test]
    fn empty_input_rejected() {
        assert!(calibration_summary(&[], &[], 1).is_err());
        assert!(calibration_summary(&[], &[1.0], 1).is_err());
    }

    #[test]
    fn single_bin_covers_all_samples() {
        let unc = [0.1, 0.2, 0.3, 0.4, 0.5];
        let err = [1.0, 2.0, 3.0, 4.0, 5.0];
        let s = calibration_summary(&unc, &err, 1).unwrap();
        assert_eq!(s.binned_errors.len(), 1);
        assert_eq!(s.binned_uncertainty.len(), 1);
        // The single bin is the global mean of both series.
        assert!((s.binned_errors[0] - 3.0).abs() < 1e-12);
        assert!((s.binned_uncertainty[0] - 0.3).abs() < 1e-12);
        // With one bin, first == last: no trend is detectable.
        assert!(!s.monotone_trend());
    }

    #[test]
    fn non_monotone_trend_detected() {
        // Errors *fall* as uncertainty grows: an anti-calibrated signal.
        let unc = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8];
        let err = [8.0, 7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0];
        let s = calibration_summary(&unc, &err, 4).unwrap();
        assert!(!s.monotone_trend());
        assert!(s.pearson < -0.9, "pearson {}", s.pearson);
        // A V-shaped relationship is also not a monotone trend when the
        // outer bins tie.
        let v_err = [4.0, 3.0, 2.0, 1.0, 1.0, 2.0, 3.0, 4.0];
        let v = calibration_summary(&unc, &v_err, 4).unwrap();
        assert!(!v.monotone_trend());
    }

    #[test]
    fn negative_errors_enter_as_magnitudes() {
        // Signed errors are folded to |error| before binning, so a
        // mirror-negative error series calibrates identically.
        let unc = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6];
        let err = [1.0, -2.0, 3.0, -4.0, 5.0, -6.0];
        let abs: Vec<f64> = err.iter().map(|e: &f64| e.abs()).collect();
        let s_signed = calibration_summary(&unc, &err, 3).unwrap();
        let s_abs = calibration_summary(&unc, &abs, 3).unwrap();
        assert_eq!(s_signed, s_abs);
        assert!(s_signed.monotone_trend());
    }
}
