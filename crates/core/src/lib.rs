//! The navicim co-design pipelines — the paper's two headline systems.
//!
//! - [`localization`] — Section II: Monte-Carlo localization of a drone in
//!   a procedural RGB-D scene, with the map-likelihood backend switchable
//!   between the conventional digital GMM and the co-designed HMGM
//!   inverter-array CIM engine (Fig. 2(e–h)), plus the energy accounting
//!   behind Fig. 2(i).
//! - [`vo`] — Section III: MC-Dropout Bayesian visual odometry executed on
//!   the SRAM CIM macro, with dropout bits from the modeled CCI RNG,
//!   compute reuse and sample ordering, and uncertainty-vs-error
//!   diagnostics (Fig. 3(c–f)) plus TOPS/W accounting.
//! - [`pipeline`] — the uncertainty-gated streaming localization
//!   pipeline: multiple live backends from the registry, a per-frame
//!   [`pipeline::UncertaintySignals`] bus (spread, ESS fraction,
//!   likelihood innovation, VO predictive variance) feeding a
//!   [`pipeline::GatePolicy`] that arbitrates digital↔analog, an
//!   optional [`pipeline::VoStage`] whose MC-Dropout depth adapts to
//!   predictive variance ([`vo::AdaptiveMcPolicy`] — the second gated
//!   compute axis), and [`pipeline::FrameReport`] joint map+VO energy
//!   accounting. [`localization::CimLocalizer`] is a thin wrapper over a
//!   single-backend pipeline.
//! - [`registry`] — the pluggable map-backend registry: named
//!   `Box<dyn MapBackend>` factories (digital GMM, digital HMGM and the
//!   analog CIM engine by default) through which [`localization`] selects
//!   its backend, and through which downstream crates register custom
//!   backends without touching this crate.
//! - [`uncertainty`] — calibration utilities shared by both pipelines.
//! - [`reportfmt`] — markdown table helpers used by the experiment
//!   binaries in `navicim-bench`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod localization;
pub mod pipeline;
pub mod registry;
pub mod reportfmt;
pub mod uncertainty;
pub mod vo;

use std::error::Error;
use std::fmt;

/// Error type aggregating the pipeline dependencies.
#[derive(Debug)]
pub enum CoreError {
    /// Scene/dataset generation failed.
    Scene(navicim_scene::SceneError),
    /// Mixture-model fitting failed.
    Gmm(navicim_gmm::GmmError),
    /// Analog-engine compilation failed.
    Analog(navicim_analog::AnalogError),
    /// Particle-filter update failed.
    Filter(navicim_filter::FilterError),
    /// Network construction/training failed.
    Nn(navicim_nn::NnError),
    /// SRAM-macro operation failed.
    Sram(navicim_sram::SramError),
    /// Energy-model construction failed.
    Energy(navicim_energy::EnergyError),
    /// An argument was outside its valid domain.
    InvalidArgument(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Scene(e) => write!(f, "scene error: {e}"),
            CoreError::Gmm(e) => write!(f, "mixture error: {e}"),
            CoreError::Analog(e) => write!(f, "analog error: {e}"),
            CoreError::Filter(e) => write!(f, "filter error: {e}"),
            CoreError::Nn(e) => write!(f, "network error: {e}"),
            CoreError::Sram(e) => write!(f, "sram error: {e}"),
            CoreError::Energy(e) => write!(f, "energy error: {e}"),
            CoreError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Scene(e) => Some(e),
            CoreError::Gmm(e) => Some(e),
            CoreError::Analog(e) => Some(e),
            CoreError::Filter(e) => Some(e),
            CoreError::Nn(e) => Some(e),
            CoreError::Sram(e) => Some(e),
            CoreError::Energy(e) => Some(e),
            CoreError::InvalidArgument(_) => None,
        }
    }
}

macro_rules! from_err {
    ($variant:ident, $ty:ty) => {
        #[doc(hidden)]
        impl From<$ty> for CoreError {
            fn from(e: $ty) -> Self {
                CoreError::$variant(e)
            }
        }
    };
}

from_err!(Scene, navicim_scene::SceneError);
from_err!(Gmm, navicim_gmm::GmmError);
from_err!(Analog, navicim_analog::AnalogError);
from_err!(Filter, navicim_filter::FilterError);
from_err!(Nn, navicim_nn::NnError);
from_err!(Sram, navicim_sram::SramError);
from_err!(Energy, navicim_energy::EnergyError);

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_conversion_and_source() {
        use std::error::Error as _;
        let e: CoreError = navicim_gmm::GmmError::InconsistentDimensions.into();
        assert!(e.to_string().contains("mixture"));
        assert!(e.source().is_some());
    }
}
