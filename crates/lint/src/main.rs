//! Exit-code CLI for the workspace invariant lint.
//!
//! `cargo run -p navicim-lint` from anywhere inside the workspace:
//! prints every finding as `file:line: [rule] message` and exits 1 if
//! any exist, 0 on a clean tree.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Walks upward from `start` to the directory containing the workspace
/// `Cargo.toml` (identified by its `[workspace]` table).
fn workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("navicim-lint: cannot read current dir: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(root) = workspace_root(&cwd) else {
        eprintln!(
            "navicim-lint: no workspace Cargo.toml found above {}",
            cwd.display()
        );
        return ExitCode::FAILURE;
    };
    match navicim_lint::lint_tree(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("navicim-lint: clean");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            eprintln!("navicim-lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("navicim-lint: {e}");
            ExitCode::FAILURE
        }
    }
}
