//! navicim-lint: machine-checks the workspace's determinism and
//! zero-alloc contracts.
//!
//! The reproduction's load-bearing invariants — bit-identical likelihood
//! kernels under any chunk/thread/coalesce split, zero-alloc hot paths,
//! deterministic replay — are invisible to the compiler. This crate
//! turns them into an exit-code check (`cargo run -p navicim-lint`) over
//! `crates/*/src/**.rs` using a string/comment-aware masking lexer
//! ([`lexer`]) and repo-specific rules:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `wall-clock` | no `Instant::now`/`SystemTime` outside the bench/serve timing allowlist |
//! | `ambient-rng` | no ambient RNG (`thread_rng`, entropy seeding) — only counter-seeded streams |
//! | `hash-iteration` | no `HashMap`/`HashSet` in result-affecting crates (iteration order) |
//! | `unsafe-safety` | every `unsafe` use preceded by a `// SAFETY:` comment |
//! | `hot-path-panic` | no `unwrap`/`panic!` in hot-path modules; `expect`/`unreachable!` only in files allowlisted with a reason |
//! | `reduction-order` | float reductions in kernel files need a `// lint: reduction-order` ack |
//! | `hot-path-alloc` | no allocating calls inside registered hot-path functions |
//! | `noise-stream-seq` | batch paths draw noise by absolute `.at(i)`, never sequentially |
//!
//! Any finding can be suppressed in place with
//! `// lint: allow(<rule>) <reason>` on the offending line or the line
//! above — the reason string is mandatory, and a reasonless `allow` is
//! itself a finding.

#![forbid(unsafe_code)]

pub mod lexer;

use std::fmt;
use std::path::{Path, PathBuf};

use lexer::{mask, strip_cfg_test, Comment};

/// One lint violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Rule identifier, e.g. `hash-iteration`.
    pub rule: &'static str,
    /// Human explanation of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Rule identifiers, the vocabulary accepted by `// lint: allow(...)`.
pub const RULES: &[&str] = &[
    "wall-clock",
    "ambient-rng",
    "hash-iteration",
    "unsafe-safety",
    "hot-path-panic",
    "reduction-order",
    "hot-path-alloc",
    "noise-stream-seq",
];

// ---------------------------------------------------------------------
// Rule scopes: the repo-specific configuration, hardcoded on purpose so
// the lint has no config file to drift from the tree.
// ---------------------------------------------------------------------

/// Files allowed to read the wall clock: measurement code whose *output*
/// is latency, not likelihoods.
const WALL_CLOCK_ALLOW: &[&str] = &[
    // Benches exist to time things.
    "crates/bench/",
    // Fleet rounds report per-session latency; the clock never feeds
    // any likelihood or control path.
    "crates/serve/src/fleet.rs",
];

/// Crates whose outputs are part of the determinism contract; `bench`
/// only reports timings and the lint itself is not result-affecting.
const HASH_ORDER_EXEMPT: &[&str] = &["crates/bench/", "crates/lint/"];

/// Hot-path modules: the per-frame / per-round loops where a panic
/// aborts a live localization session.
const HOT_PATH_FILES: &[&str] = &[
    "crates/gmm/src/gaussian.rs",
    "crates/gmm/src/hmg.rs",
    "crates/analog/src/engine.rs",
    "crates/serve/src/fleet.rs",
    "crates/serve/src/steal.rs",
    "crates/core/src/pipeline.rs",
    "crates/filter/src/particle.rs",
    "crates/filter/src/filter.rs",
];

/// Per-file allowlist for `expect`/`unreachable!` in hot-path modules.
/// Every entry carries the written reason the remaining sites are sound;
/// `unwrap`/`panic!` stay forbidden even here.
const HOT_PATH_EXPECT_ALLOW: &[(&str, &str)] = &[
    (
        "crates/gmm/src/gaussian.rs",
        "expect/unreachable document covariance invariants validated in Gmm::new \
         (diag plan existence mirrors Covariance::Diagonal)",
    ),
    (
        "crates/gmm/src/hmg.rs",
        "expects document parameter validity maintained by clamping in the EM fit loop",
    ),
    (
        "crates/serve/src/fleet.rs",
        "expects guard Option staging slots that every round refills before taking; \
         messages name the violated round invariant",
    ),
    (
        "crates/serve/src/steal.rs",
        "Mutex-poison expects: a panicked worker has already torn down the round, \
         propagating is the only sound continuation",
    ),
    (
        "crates/filter/src/particle.rs",
        "expects guard non-empty particle sets with finite weights, both validated \
         at construction",
    ),
];

/// Kernel files whose floating-point reductions are part of the
/// bit-identity contract: summation order must be acknowledged.
const REDUCTION_FILES: &[&str] = &[
    "crates/gmm/src/gaussian.rs",
    "crates/gmm/src/hmg.rs",
    "crates/analog/src/engine.rs",
    "crates/math/src/simd.rs",
];

/// Functions registered as hot-path: `(file suffix, fn name)`. Their
/// bodies must not allocate — the zero-alloc steady state asserted at
/// runtime by the `alloc-audit` counting allocator.
const HOT_PATH_FNS: &[(&str, &str)] = &[
    ("crates/core/src/pipeline.rs", "step"),
    ("crates/serve/src/fleet.rs", "step_round"),
    ("crates/serve/src/fleet.rs", "step_round_independent"),
    ("crates/serve/src/fleet.rs", "step_round_coalesced"),
    ("crates/serve/src/fleet.rs", "coalesce_and_serve"),
    ("crates/gmm/src/gaussian.rs", "log_likelihood_into_policy"),
    ("crates/gmm/src/gaussian.rs", "eval_range"),
    ("crates/gmm/src/gaussian.rs", "eval_range_pruned"),
    ("crates/gmm/src/hmg.rs", "log_likelihood_into_policy"),
    ("crates/gmm/src/hmg.rs", "eval_range"),
    ("crates/gmm/src/hmg.rs", "eval_range_pruned"),
    ("crates/analog/src/engine.rs", "log_likelihood_into_chunked"),
];

/// Allocating calls forbidden inside hot-path function bodies.
const ALLOC_TOKENS: &[&str] = &[
    "Vec::new(",
    "Vec::with_capacity(",
    "vec![",
    ".push(",
    ".collect(",
    "collect::<",
    "format!(",
    "Box::new(",
    "String::new(",
    "String::from(",
    ".to_vec(",
    ".to_string(",
    ".to_owned(",
];

/// Files serving *batches*: noise must be drawn by absolute index so the
/// value cannot depend on chunk/thread assignment.
const BATCH_NOISE_FILES: &[&str] = &["crates/analog/src/engine.rs", "crates/serve/src/"];

// ---------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------

/// A parsed `// lint: allow(<rule>) <reason>` directive.
#[derive(Debug, Clone)]
struct Suppression {
    line: usize,
    rule: String,
    has_reason: bool,
}

/// A parsed `// lint: reduction-order` acknowledgment.
#[derive(Debug, Clone)]
struct ReductionAck {
    line: usize,
}

fn parse_directives(comments: &[Comment]) -> (Vec<Suppression>, Vec<ReductionAck>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut acks = Vec::new();
    let mut errors = Vec::new();
    for c in comments {
        let Some(pos) = c.text.find("lint:") else {
            continue;
        };
        let rest = c.text[pos + "lint:".len()..].trim_start();
        if let Some(tail) = rest.strip_prefix("allow(") {
            let Some(close) = tail.find(')') else {
                errors.push(Finding {
                    file: String::new(),
                    line: c.line,
                    rule: "lint-directive",
                    message: "malformed `lint: allow(` directive: missing `)`".into(),
                });
                continue;
            };
            let rule = tail[..close].trim().to_string();
            let reason = tail[close + 1..].trim();
            allows.push(Suppression {
                line: c.line,
                rule,
                has_reason: !reason.is_empty(),
            });
        } else if rest.starts_with("reduction-order") {
            acks.push(ReductionAck { line: c.line });
        }
    }
    (allows, acks, errors)
}

// ---------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------

/// Per-file lint context handed to every rule.
struct FileCtx<'a> {
    /// Workspace-relative path with forward slashes.
    path: &'a str,
    /// Masked, `#[cfg(test)]`-stripped code (same line structure as the
    /// original file).
    code: &'a str,
    /// Line start byte offsets into `code` (index 0 → line 1).
    line_starts: &'a [usize],
    comments: &'a [Comment],
    acks: &'a [ReductionAck],
}

impl FileCtx<'_> {
    /// 1-based line of byte offset `pos` in `code`.
    fn line_of(&self, pos: usize) -> usize {
        match self.line_starts.binary_search(&pos) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// Is `pos` preceded/followed by identifier chars (i.e. the match at
    /// `pos..pos+len` is part of a longer identifier)?
    fn is_word(&self, pos: usize, len: usize) -> bool {
        let bytes = self.code.as_bytes();
        let before = pos
            .checked_sub(1)
            .map(|i| bytes[i] as char)
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
        let after = bytes
            .get(pos + len)
            .map(|&b| b as char)
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_');
        !before && !after
    }

    /// All occurrences of `needle` in the masked code, as (offset, line).
    fn find_all(&self, needle: &str) -> Vec<(usize, usize)> {
        let mut hits = Vec::new();
        let mut from = 0;
        while let Some(rel) = self.code[from..].find(needle) {
            let pos = from + rel;
            hits.push((pos, self.line_of(pos)));
            from = pos + needle.len();
        }
        hits
    }

    /// Is there a `// lint: reduction-order` ack covering `line`? An ack
    /// covers its own line (trailing comment) plus the statement that
    /// begins on the next code line — through the first line ending in
    /// `;` or `{`, so a multi-line iterator chain is covered whole.
    fn has_reduction_ack(&self, line: usize) -> bool {
        let last = self.line_starts.len();
        for a in self.acks {
            if a.line > line {
                continue;
            }
            let mut start = a.line;
            while start < last && self.is_fluff_line(start) {
                start += 1;
            }
            let mut end = start;
            while end < last {
                let t = self.code_line(end).trim_end();
                if t.ends_with(';') || t.ends_with('{') {
                    break;
                }
                end += 1;
            }
            if (a.line..=end).contains(&line) {
                return true;
            }
        }
        false
    }

    /// Text of 1-based `line` in the masked code (comments are spaces).
    fn code_line(&self, line: usize) -> &str {
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .map_or(self.code.len(), |&e| e - 1);
        &self.code[start..end.max(start)]
    }

    /// A "fluff" line carries no code: blank after masking (comments
    /// mask to spaces) or attribute-only.
    fn is_fluff_line(&self, line: usize) -> bool {
        let t = self.code_line(line).trim();
        t.is_empty() || t.starts_with("#[") || t.starts_with("#![")
    }

    /// Does a `// SAFETY:` comment cover `line`? It does when some
    /// SAFETY comment sits on the same line or above it with only fluff
    /// lines in between — i.e. directly above modulo comments/attrs.
    fn safety_covers(&self, line: usize) -> bool {
        for c in self.comments.iter().filter(|c| c.text.contains("SAFETY:")) {
            if c.line > line {
                continue;
            }
            if (c.line..line).all(|l| self.is_fluff_line(l)) {
                return true;
            }
        }
        false
    }
}

fn line_starts(code: &str) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, b) in code.bytes().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

fn in_scope(path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p) || path == *p)
}

/// Lints one file's source, returning all findings (suppressions already
/// applied). `path` must be workspace-relative with forward slashes.
pub fn lint_source(path: &str, source: &str) -> Vec<Finding> {
    let masked = mask(source);
    let code = strip_cfg_test(&masked.code);
    let starts = line_starts(&code);
    let (allows, acks, mut directive_errors) = parse_directives(&masked.comments);
    for f in &mut directive_errors {
        f.file = path.to_string();
    }
    let ctx = FileCtx {
        path,
        code: &code,
        line_starts: &starts,
        comments: &masked.comments,
        acks: &acks,
    };

    let mut findings = Vec::new();
    rule_wall_clock(&ctx, &mut findings);
    rule_ambient_rng(&ctx, &mut findings);
    rule_hash_iteration(&ctx, &mut findings);
    rule_unsafe_safety(&ctx, &mut findings);
    rule_hot_path_panic(&ctx, &mut findings);
    rule_reduction_order(&ctx, &mut findings);
    rule_hot_path_alloc(&ctx, &mut findings);
    rule_noise_stream_seq(&ctx, &mut findings);

    // Apply suppressions: an allow on the finding's line or the line
    // directly above silences it — but only with a reason.
    let mut out = directive_errors;
    for f in findings {
        let allow = allows
            .iter()
            .find(|a| a.rule == f.rule && (a.line == f.line || a.line + 1 == f.line));
        match allow {
            Some(a) if a.has_reason => {}
            Some(a) => out.push(Finding {
                file: path.to_string(),
                line: a.line,
                rule: "lint-directive",
                message: format!(
                    "`lint: allow({})` requires a reason string after the closing paren",
                    f.rule
                ),
            }),
            None => out.push(f),
        }
    }
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

// ---------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------

fn push(ctx: &FileCtx<'_>, out: &mut Vec<Finding>, line: usize, rule: &'static str, msg: String) {
    out.push(Finding {
        file: ctx.path.to_string(),
        line,
        rule,
        message: msg,
    });
}

/// Rule 1: replay determinism — no wall-clock reads outside measurement
/// code. A clock read that feeds any decision breaks record/replay.
fn rule_wall_clock(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if in_scope(ctx.path, WALL_CLOCK_ALLOW) {
        return;
    }
    for token in ["Instant::now", "SystemTime"] {
        for (pos, line) in ctx.find_all(token) {
            if !ctx.is_word(pos, token.len()) {
                continue;
            }
            push(
                ctx,
                out,
                line,
                "wall-clock",
                format!(
                    "`{token}` outside the bench/serve timing allowlist breaks replay determinism"
                ),
            );
        }
    }
}

/// Rule 2: all randomness must come from explicitly seeded, counter-based
/// streams; ambient RNG makes runs unreproducible.
fn rule_ambient_rng(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    for token in [
        "thread_rng",
        "from_entropy",
        "OsRng",
        "rand::random",
        "getrandom",
    ] {
        for (pos, line) in ctx.find_all(token) {
            if !ctx.is_word(pos, token.len()) {
                continue;
            }
            push(
                ctx,
                out,
                line,
                "ambient-rng",
                format!("`{token}` is ambient randomness; use an explicitly seeded counter stream"),
            );
        }
    }
}

/// Rule 3: `HashMap`/`HashSet` iteration order varies per process, which
/// silently reorders float reductions and output listings. Use
/// `BTreeMap` or index order in result-affecting crates.
fn rule_hash_iteration(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if in_scope(ctx.path, HASH_ORDER_EXEMPT) {
        return;
    }
    for token in ["HashMap", "HashSet"] {
        for (pos, line) in ctx.find_all(token) {
            if !ctx.is_word(pos, token.len()) {
                continue;
            }
            push(
                ctx,
                out,
                line,
                "hash-iteration",
                format!(
                    "`{token}` has nondeterministic iteration order; use `BTreeMap`/index order"
                ),
            );
        }
    }
}

/// Rule 4: every `unsafe` use must be justified by a `// SAFETY:`
/// comment directly above it (attribute lines, blank lines, and further
/// comment lines may sit between the comment and the `unsafe`).
fn rule_unsafe_safety(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    for (pos, line) in ctx.find_all("unsafe") {
        if !ctx.is_word(pos, "unsafe".len()) {
            continue;
        }
        if !ctx.safety_covers(line) {
            push(
                ctx,
                out,
                line,
                "unsafe-safety",
                "`unsafe` without a `// SAFETY:` comment directly above".into(),
            );
        }
    }
}

/// Rule 5: a panic in a hot-path module kills a live session mid-round.
/// `unwrap`/`panic!`/`todo!`/`unimplemented!` are always forbidden
/// there; `expect`/`unreachable!` (which at least document the violated
/// invariant) are allowed only in files allowlisted with a reason.
fn rule_hot_path_panic(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !HOT_PATH_FILES.contains(&ctx.path) {
        return;
    }
    for token in [".unwrap()", "panic!(", "todo!(", "unimplemented!("] {
        for (_, line) in ctx.find_all(token) {
            push(
                ctx,
                out,
                line,
                "hot-path-panic",
                format!("`{token}` in a hot-path module aborts a live session"),
            );
        }
    }
    let expect_allowed = HOT_PATH_EXPECT_ALLOW.iter().any(|(f, _)| *f == ctx.path);
    if expect_allowed {
        return;
    }
    for token in [".expect(", "unreachable!("] {
        for (_, line) in ctx.find_all(token) {
            push(
                ctx,
                out,
                line,
                "hot-path-panic",
                format!(
                    "`{token}` in a hot-path module not on the expect allowlist; \
                     add the file with a written reason or return an error"
                ),
            );
        }
    }
}

/// Rule 6: float summation order is part of the bit-identity contract.
/// Every reduction in a kernel file must carry a nearby
/// `// lint: reduction-order` acknowledgment that the order was chosen
/// deliberately (and matches the scalar path).
fn rule_reduction_order(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !REDUCTION_FILES.contains(&ctx.path) {
        return;
    }
    for token in [".sum::<f64>()", ".fold("] {
        for (_, line) in ctx.find_all(token) {
            if ctx.has_reduction_ack(line) {
                continue;
            }
            push(
                ctx,
                out,
                line,
                "reduction-order",
                format!(
                    "float reduction `{token}` in a kernel file needs a \
                     `// lint: reduction-order` ack (summation order is part of bit-identity)"
                ),
            );
        }
    }
}

/// Finds the body span (byte range) of `fn name` in masked code, for
/// every definition of that name: from the `fn` keyword's `{{` to its
/// matching `}}`.
fn fn_bodies(code: &str, name: &str) -> Vec<(usize, usize)> {
    let bytes = code.as_bytes();
    let needle = format!("fn {name}");
    let mut bodies = Vec::new();
    let mut from = 0;
    while let Some(rel) = code[from..].find(&needle) {
        let pos = from + rel;
        from = pos + needle.len();
        // Word boundaries: `fn step` must not match `fn step_round`.
        let after = bytes.get(pos + needle.len()).copied();
        if matches!(after, Some(b) if (b as char).is_ascii_alphanumeric() || b == b'_') {
            continue;
        }
        // Find the opening brace of the body. Signature parens/generics
        // may nest, but the first `{` at angle/paren depth 0 is the body
        // (where-clauses contain no braces in this codebase).
        let mut i = pos + needle.len();
        let mut paren = 0i64;
        let mut body_start = None;
        while i < bytes.len() {
            match bytes[i] {
                b'(' | b'[' => paren += 1,
                b')' | b']' => paren -= 1,
                b'{' if paren == 0 => {
                    body_start = Some(i);
                    break;
                }
                b';' if paren == 0 => break, // trait method decl, no body
                _ => {}
            }
            i += 1;
        }
        let Some(start) = body_start else { continue };
        let mut depth = 0i64;
        let mut end = bytes.len();
        for (j, &b) in bytes.iter().enumerate().skip(start) {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = j + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        bodies.push((start, end));
    }
    bodies
}

/// Rule 7: registered hot-path functions hold the zero-alloc steady
/// state the `alloc-audit` allocator asserts at runtime; the lint keeps
/// allocating calls from creeping in between audit runs.
fn rule_hot_path_alloc(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let fns: Vec<&str> = HOT_PATH_FNS
        .iter()
        .filter(|(f, _)| *f == ctx.path)
        .map(|(_, name)| *name)
        .collect();
    if fns.is_empty() {
        return;
    }
    for name in fns {
        for (start, end) in fn_bodies(ctx.code, name) {
            for token in ALLOC_TOKENS {
                let mut from = start;
                while let Some(rel) = ctx.code[from..end].find(token) {
                    let pos = from + rel;
                    from = pos + token.len();
                    let line = ctx.line_of(pos);
                    push(
                        ctx,
                        out,
                        line,
                        "hot-path-alloc",
                        format!("allocating call `{token}` inside hot-path fn `{name}`"),
                    );
                }
            }
        }
    }
}

/// Rule 8: batch paths must draw noise by absolute index (`.at(i)`), so
/// the value a query sees cannot depend on chunk/thread assignment.
/// Sequential draws (`next_z`) and cursor moves (`advance`) in batch
/// files are flagged.
fn rule_noise_stream_seq(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !in_scope(ctx.path, BATCH_NOISE_FILES) {
        return;
    }
    for token in [".next_z(", ".advance("] {
        for (_, line) in ctx.find_all(token) {
            push(
                ctx,
                out,
                line,
                "noise-stream-seq",
                format!(
                    "sequential noise-stream call `{token}` in a batch path; \
                     draw by absolute index with `.at(i)`"
                ),
            );
        }
    }
}

// ---------------------------------------------------------------------
// Tree walking
// ---------------------------------------------------------------------

/// Recursively collects `.rs` files under `dir`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.path());
    for entry in entries {
        let path = entry.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every `crates/*/src/**.rs` under `root` (the workspace root).
/// The lint crate's own sources are skipped — its rule tables and tests
/// necessarily spell the forbidden tokens.
///
/// # Errors
///
/// Propagates I/O errors from walking or reading the tree.
pub fn lint_tree(root: &Path) -> std::io::Result<Vec<Finding>> {
    let crates = root.join("crates");
    let mut crate_dirs: Vec<_> = std::fs::read_dir(&crates)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    let mut findings = Vec::new();
    for crate_dir in crate_dirs {
        if crate_dir.file_name().is_some_and(|n| n == "lint") {
            continue;
        }
        let src = crate_dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        collect_rs(&src, &mut files)?;
        for file in files {
            let rel = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            let source = std::fs::read_to_string(&file)?;
            findings.extend(lint_source(&rel, &source));
        }
    }
    Ok(findings)
}
